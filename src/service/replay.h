// Trace replay: re-issues a traced session's syscalls against a fresh OS
// substrate, reconstructing the application's I/O *pattern* (operation
// sequence, paths, sizes, offsets) — in the spirit of Re-animator [15] from
// the paper's related work. DIO events record argument sizes but not write
// payloads, so regenerated writes carry synthetic bytes of the recorded
// length; everything observable at the syscall level (paths, fds, offsets,
// return values of data ops) is reproduced and checked.
//
// Uses: replaying a production trace against a different storage
// configuration, regression-benchmarking an I/O pattern, or validating that
// a captured trace is self-consistent.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "backend/store.h"
#include "common/status.h"
#include "oskernel/kernel.h"

namespace dio::service {

struct SpoolLoadOptions {
  // Skip byte-identical duplicate lines. A retry stage above a fan-out
  // re-drives a whole batch when the bulk ack is lost, so the spool is
  // at-least-once: replaying it verbatim would double-index. Dedup restores
  // exactly-once on restore — every skipped line is counted, never silent.
  bool dedupe = false;
  // Tolerate an unparseable FINAL line with no trailing newline — the torn
  // write a crash mid-flush leaves behind. The truncation is reported in
  // SpoolLoadStats; corruption anywhere else still fails the load.
  bool allow_truncated_tail = false;
};

struct SpoolLoadStats {
  std::uint64_t loaded = 0;      // documents bulk-indexed
  std::uint64_t duplicates = 0;  // lines skipped by dedupe
  bool truncated_tail = false;   // a torn final line was tolerated
};

// Bulk-loads an NDJSON spool file (one Event::ToJson document per line, as
// written by transport::FileSpoolSink) into `index` of `store`, making a
// spooled session analyzable/replayable as if it had been shipped to the
// backend live — the offline half of the shipping path. The index is
// refreshed before returning. Parse errors report the 1-based file line
// number (blank lines included).
Expected<SpoolLoadStats> LoadSpool(backend::ElasticStore* store,
                                   const std::string& spool_path,
                                   const std::string& index,
                                   const SpoolLoadOptions& options);
// Strict form: no dedupe, any unparseable line (torn tail included) is an
// error. Returns the number of documents loaded.
Expected<std::uint64_t> LoadSpool(backend::ElasticStore* store,
                                  const std::string& spool_path,
                                  const std::string& index);

struct ReplayStats {
  std::uint64_t replayed = 0;       // events re-issued
  std::uint64_t skipped = 0;        // unsupported / un-replayable events
  std::uint64_t ret_matches = 0;    // replayed ret == recorded ret
  std::uint64_t ret_mismatches = 0;

  [[nodiscard]] double fidelity() const {
    const std::uint64_t total = ret_matches + ret_mismatches;
    return total == 0 ? 1.0
                      : static_cast<double>(ret_matches) /
                            static_cast<double>(total);
  }
};

class TraceReplayer {
 public:
  // Replays session `index` from `store` into `kernel`. The kernel should
  // have the same mounts as the traced one (paths must resolve).
  TraceReplayer(os::Kernel* kernel, backend::ElasticStore* store,
                std::string index);

  // Re-issues events in time order. Each traced process becomes a replay
  // process (same name); traced fd numbers are remapped through the opens
  // observed in the trace.
  Expected<ReplayStats> Run();

 private:
  struct ReplayTask {
    os::Pid pid = os::kNoPid;
    os::Tid tid = os::kNoTid;
  };

  ReplayTask& TaskFor(os::Pid traced_pid, const std::string& proc_name);

  os::Kernel* kernel_;
  backend::ElasticStore* store_;
  std::string index_;
  std::map<os::Pid, ReplayTask> tasks_;
  // (traced pid, traced fd) -> replay fd.
  std::map<std::pair<os::Pid, os::Fd>, os::Fd> fd_map_;
};

}  // namespace dio::service
