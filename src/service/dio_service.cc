#include "service/dio_service.h"

namespace dio::service {

Json SessionInfo::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("name", name);
  out.Set("owner", owner);
  out.Set("active", active);
  out.Set("started_at", started_at);
  out.Set("stopped_at", stopped_at);
  out.Set("events_emitted", static_cast<std::int64_t>(events_emitted));
  out.Set("events_dropped", static_cast<std::int64_t>(events_dropped));
  return out;
}

DioService::DioService(os::Kernel* kernel, backend::ElasticStore* store)
    : kernel_(kernel), store_(store) {}

DioService::~DioService() { StopAll(); }

Expected<SessionInfo> DioService::StartSession(
    tracer::TracerOptions options, std::string owner,
    backend::BulkClientOptions client_options) {
  if (options.session_name.empty()) {
    return InvalidArgument("session name must not be empty");
  }
  std::scoped_lock lock(mu_);
  if (sessions_.contains(options.session_name)) {
    return AlreadyExists("session exists: " + options.session_name);
  }
  if (store_->HasIndex(options.session_name)) {
    return AlreadyExists("backend index exists: " + options.session_name);
  }

  Session session;
  session.info.name = options.session_name;
  session.info.owner = std::move(owner);
  session.info.active = true;
  session.info.started_at = kernel_->clock()->NowNanos();
  session.client = std::make_unique<backend::BulkClient>(
      store_, options.session_name, client_options, kernel_->clock());
  session.tracer = std::make_unique<tracer::DioTracer>(
      kernel_, session.client.get(), std::move(options));
  DIO_RETURN_IF_ERROR(session.tracer->Start());

  SessionInfo info = session.info;
  sessions_[info.name] = std::move(session);
  return info;
}

Status DioService::StopSession(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NotFound("no such session: " + name);
  Session& session = it->second;
  if (!session.info.active) {
    return FailedPrecondition("session already stopped: " + name);
  }
  session.tracer->Stop();
  session.info.active = false;
  session.info.stopped_at = kernel_->clock()->NowNanos();
  RefreshInfoLocked(session);
  return Status::Ok();
}

void DioService::StopAll() {
  std::scoped_lock lock(mu_);
  for (auto& [name, session] : sessions_) {
    if (session.info.active) {
      session.tracer->Stop();
      session.info.active = false;
      session.info.stopped_at = kernel_->clock()->NowNanos();
      RefreshInfoLocked(session);
    }
  }
}

void DioService::RefreshInfoLocked(Session& session) const {
  const tracer::TracerStats stats = session.tracer->stats();
  session.info.events_emitted = stats.emitted;
  session.info.events_dropped = stats.ring_dropped + stats.pending_overflow;
}

std::vector<SessionInfo> DioService::ListSessions() const {
  std::scoped_lock lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    SessionInfo info = session.info;
    const tracer::TracerStats stats = session.tracer->stats();
    info.events_emitted = stats.emitted;
    info.events_dropped = stats.ring_dropped + stats.pending_overflow;
    out.push_back(std::move(info));
  }
  return out;
}

Expected<SessionInfo> DioService::GetSession(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NotFound("no such session: " + name);
  SessionInfo info = it->second.info;
  const tracer::TracerStats stats = it->second.tracer->stats();
  info.events_emitted = stats.emitted;
  info.events_dropped = stats.ring_dropped + stats.pending_overflow;
  return info;
}

Expected<backend::CorrelationStats> DioService::Correlate(
    const std::string& name) {
  {
    std::scoped_lock lock(mu_);
    if (!sessions_.contains(name) && !store_->HasIndex(name)) {
      return NotFound("no such session: " + name);
    }
  }
  store_->Refresh(name);
  backend::FilePathCorrelator correlator(store_);
  return correlator.Run(name);
}

Expected<std::vector<backend::Finding>> DioService::Diagnose(
    const std::string& name) {
  DIO_RETURN_IF_ERROR(Correlate(name).status());
  return backend::RunAllDetectors(store_, name);
}

}  // namespace dio::service
