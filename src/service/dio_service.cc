#include "service/dio_service.h"

#include <utility>

#include "trace/writer.h"

namespace dio::service {

Json SessionInfo::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("name", name);
  out.Set("owner", owner);
  out.Set("active", active);
  out.Set("started_at", started_at);
  out.Set("stopped_at", stopped_at);
  out.Set("events_emitted", static_cast<std::int64_t>(events_emitted));
  out.Set("events_dropped", static_cast<std::int64_t>(events_dropped));
  out.Set("transport_dropped", static_cast<std::int64_t>(transport_dropped));
  out.Set("transport_retries", static_cast<std::int64_t>(transport_retries));
  out.Set("transport_dead_letters",
          static_cast<std::int64_t>(transport_dead_letters));
  out.Set("transport_stages", transport_stages);
  if (cluster_health.is_object()) out.Set("cluster", cluster_health);
  if (filter_cache.is_object()) out.Set("filter_cache", filter_cache);
  return out;
}

Expected<BackendTier> BuildBackendTier(const Config& config) {
  BackendTier tier;
  const backend::ElasticStoreOptions store_options =
      backend::ElasticStoreOptions::FromConfig(config);
  bool clustered = false;
  for (const auto& [key, value] : config.entries()) {
    if (key.rfind("cluster.", 0) == 0) {
      clustered = true;
      break;
    }
  }
  if (clustered) {
    auto cluster_options = cluster::ClusterOptions::FromConfig(config);
    if (!cluster_options.ok()) return cluster_options.status();
    cluster_options->store = store_options;
    tier.router = std::make_unique<cluster::ClusterRouter>(*cluster_options);
    tier.query = tier.router.get();
  } else {
    tier.store = std::make_unique<backend::ElasticStore>(store_options);
    tier.query = tier.store.get();
  }
  return tier;
}

DioService::DioService(os::Kernel* kernel, backend::ElasticStore* store)
    : kernel_(kernel), store_(store), backend_(store) {}

DioService::DioService(os::Kernel* kernel, cluster::ClusterRouter* router)
    : kernel_(kernel), router_(router), backend_(router) {}

DioService::~DioService() { StopAll(); }

Expected<SessionInfo> DioService::StartSession(
    tracer::TracerOptions options, std::string owner,
    backend::BulkClientOptions client_options,
    transport::PipelineOptions pipeline_options) {
  if (options.session_name.empty()) {
    return InvalidArgument("session name must not be empty");
  }
  std::scoped_lock lock(mu_);
  if (sessions_.contains(options.session_name)) {
    return AlreadyExists("session exists: " + options.session_name);
  }
  if (backend_->HasIndex(options.session_name)) {
    return AlreadyExists("backend index exists: " + options.session_name);
  }

  Session session;
  session.info.name = options.session_name;
  session.info.owner = std::move(owner);
  session.info.active = true;
  session.info.started_at = kernel_->clock()->NowNanos();

  const std::string index = options.session_name;
  auto make_sink = [this, &index, &client_options](
                       const std::string& sink_name,
                       const transport::PipelineOptions& popts)
      -> Expected<std::unique_ptr<transport::Transport>> {
    // "trace" terminal: the binary record tap (transport.trace_path). Listed
    // alongside "bulk" it tees the session into a replayable trace file.
    if (sink_name == "trace") {
      auto sink = trace::TraceRecordSink::Open(popts.trace_path);
      if (!sink.ok()) return sink.status();
      return std::unique_ptr<transport::Transport>(std::move(*sink));
    }
    if (sink_name != "bulk") {
      return InvalidArgument("dio service: unknown sink: " + sink_name);
    }
    // The "bulk" terminal resolves to whichever backend tier the service
    // fronts: a single-store bulk client, or the cluster's replicated,
    // ack-gated ingest sink.
    if (router_ != nullptr) {
      return std::unique_ptr<transport::Transport>(
          std::make_unique<cluster::ClusterBulkSink>(
              router_, index, client_options.network_latency_ns,
              kernel_->clock()));
    }
    return std::unique_ptr<transport::Transport>(
        std::make_unique<backend::BulkClient>(store_, index, client_options,
                                              kernel_->clock()));
  };
  auto pipeline = transport::Pipeline::Build(index, pipeline_options,
                                             make_sink, kernel_->clock());
  if (!pipeline.ok()) return pipeline.status();
  session.pipeline = std::move(*pipeline);
  session.tracer = std::make_unique<tracer::DioTracer>(
      kernel_, session.pipeline.get(), std::move(options));
  DIO_RETURN_IF_ERROR(session.tracer->Start());

  RefreshInfoLocked(session);
  SessionInfo info = session.info;
  sessions_[info.name] = std::move(session);
  return info;
}

Expected<SessionInfo> DioService::StartSessionFromConfig(const Config& config,
                                                         std::string owner) {
  auto tracer_options = tracer::TracerOptions::FromConfig(config);
  if (!tracer_options.ok()) return tracer_options.status();
  auto pipeline_options = transport::PipelineOptions::FromConfig(config);
  if (!pipeline_options.ok()) return pipeline_options.status();
  return StartSession(std::move(tracer_options).value(), std::move(owner),
                      backend::BulkClientOptions::FromConfig(config),
                      std::move(pipeline_options).value());
}

Status DioService::StopSession(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NotFound("no such session: " + name);
  Session& session = it->second;
  if (!session.info.active) {
    return FailedPrecondition("session already stopped: " + name);
  }
  // Deterministic drain order: Stop() detaches the tracepoints and joins
  // the consumer threads (no more producers), then the transport chain is
  // flushed head-to-sink so every accepted batch is delivered or counted —
  // the Flush() guarantee holds even on abnormal teardown via StopAll().
  session.tracer->Stop();
  session.pipeline->Flush();
  session.info.active = false;
  session.info.stopped_at = kernel_->clock()->NowNanos();
  RefreshInfoLocked(session);
  return Status::Ok();
}

void DioService::StopAll() {
  std::scoped_lock lock(mu_);
  for (auto& [name, session] : sessions_) {
    if (session.info.active) {
      session.tracer->Stop();
      session.pipeline->Flush();
      session.info.active = false;
      session.info.stopped_at = kernel_->clock()->NowNanos();
      RefreshInfoLocked(session);
    }
  }
}

SessionInfo DioService::SnapshotLocked(const Session& session) const {
  SessionInfo info = session.info;
  const tracer::TracerStats stats = session.tracer->stats();
  info.events_emitted = stats.emitted;
  info.events_dropped = stats.ring_dropped + stats.pending_overflow;
  info.transport_dropped = 0;
  info.transport_retries = 0;
  info.transport_dead_letters = 0;
  for (const transport::StageStats& stage : session.pipeline->Stats()) {
    info.transport_dropped += stage.dropped_events;
    info.transport_retries += stage.retries;
    info.transport_dead_letters += stage.dead_letter_events;
  }
  info.transport_stages = session.pipeline->StatsJson();
  if (router_ != nullptr) info.cluster_health = router_->HealthJson();
  if (auto stats = backend_->Stats(info.name); stats.ok()) {
    Json cache = Json::MakeObject();
    cache.Set("hits", static_cast<std::int64_t>(stats->filter_cache_hits));
    cache.Set("misses", static_cast<std::int64_t>(stats->filter_cache_misses));
    cache.Set("evictions",
              static_cast<std::int64_t>(stats->filter_cache_evictions));
    info.filter_cache = cache;
  }
  return info;
}

void DioService::RefreshInfoLocked(Session& session) const {
  session.info = SnapshotLocked(session);
}

std::vector<SessionInfo> DioService::ListSessions() const {
  std::scoped_lock lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) {
    out.push_back(SnapshotLocked(session));
  }
  return out;
}

Expected<SessionInfo> DioService::GetSession(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NotFound("no such session: " + name);
  return SnapshotLocked(it->second);
}

Expected<backend::CorrelationStats> DioService::Correlate(
    const std::string& name) {
  {
    std::scoped_lock lock(mu_);
    if (!sessions_.contains(name) && !backend_->HasIndex(name)) {
      return NotFound("no such session: " + name);
    }
  }
  backend_->Refresh(name);
  backend::FilePathCorrelator correlator(backend_);
  return correlator.Run(name);
}

Expected<std::vector<backend::Finding>> DioService::Diagnose(
    const std::string& name) {
  DIO_RETURN_IF_ERROR(Correlate(name).status());
  return backend::RunAllDetectors(backend_, name);
}

}  // namespace dio::service
