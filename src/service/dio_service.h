// DioService: multi-session deployment (§II-F).
//
// "As the tracer component labels each tracing execution with a unique
// session name, one can deploy DIO as a service, setting up the analysis
// pipeline on dedicated servers and allowing multiple executions of DIO's
// tracer on different machines and by distinct users."
//
// The service owns the lifecycle of named tracing sessions against one
// shared backend: start/stop, metadata (who/when/how many events), and the
// post-session analysis entry points (correlation, detectors).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/bulk_client.h"
#include "backend/correlation.h"
#include "backend/detectors.h"
#include "backend/store.h"
#include "common/status.h"
#include "tracer/tracer.h"

namespace dio::service {

struct SessionInfo {
  std::string name;
  std::string owner;
  bool active = false;
  Nanos started_at = 0;
  Nanos stopped_at = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t events_dropped = 0;

  [[nodiscard]] Json ToJson() const;
};

class DioService {
 public:
  DioService(os::Kernel* kernel, backend::ElasticStore* store);
  ~DioService();

  DioService(const DioService&) = delete;
  DioService& operator=(const DioService&) = delete;

  // Starts a tracing session; options.session_name must be unique among
  // live AND finished sessions (each maps to a backend index).
  Expected<SessionInfo> StartSession(
      tracer::TracerOptions options, std::string owner = "",
      backend::BulkClientOptions client_options = {});

  // Stops tracing; the session's data stays queryable (post-mortem, §II).
  Status StopSession(const std::string& name);
  void StopAll();

  [[nodiscard]] std::vector<SessionInfo> ListSessions() const;
  [[nodiscard]] Expected<SessionInfo> GetSession(const std::string& name) const;

  // Analysis over a session's index (live or stopped).
  Expected<backend::CorrelationStats> Correlate(const std::string& name);
  Expected<std::vector<backend::Finding>> Diagnose(const std::string& name);

  [[nodiscard]] backend::ElasticStore* store() { return store_; }

 private:
  struct Session {
    SessionInfo info;
    std::unique_ptr<backend::BulkClient> client;
    std::unique_ptr<tracer::DioTracer> tracer;
  };

  void RefreshInfoLocked(Session& session) const;

  os::Kernel* kernel_;
  backend::ElasticStore* store_;
  mutable std::mutex mu_;
  std::map<std::string, Session> sessions_;
};

}  // namespace dio::service
