// DioService: multi-session deployment (§II-F).
//
// "As the tracer component labels each tracing execution with a unique
// session name, one can deploy DIO as a service, setting up the analysis
// pipeline on dedicated servers and allowing multiple executions of DIO's
// tracer on different machines and by distinct users."
//
// The service owns the lifecycle of named tracing sessions against one
// shared backend: start/stop, metadata (who/when/how many events), and the
// post-session analysis entry points (correlation, detectors). Each session
// ships events through its own transport pipeline (transport/pipeline.h):
// bounded queue -> optional retry -> bulk/spool sinks, assembled from
// [transport] config. Session info carries the per-stage drop/retry/
// dead-letter accounting so loss is attributable per stage.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/bulk_client.h"
#include "backend/correlation.h"
#include "backend/detectors.h"
#include "backend/store.h"
#include "cluster/cluster_sink.h"
#include "common/config.h"
#include "common/status.h"
#include "tracer/tracer.h"
#include "transport/pipeline.h"

namespace dio::service {

// The service's backend tier, built from config: a single embedded store by
// default, or — when the config sets any `cluster.*` knob — a hash-routed
// primary/replica cluster of embedded stores (cluster.{nodes,replicas,ack},
// see ClusterOptions::FromConfig). `query` points at whichever one serves
// analysis.
struct BackendTier {
  std::unique_ptr<backend::ElasticStore> store;
  std::unique_ptr<cluster::ClusterRouter> router;
  backend::QueryBackend* query = nullptr;

  [[nodiscard]] bool clustered() const { return router != nullptr; }
};

Expected<BackendTier> BuildBackendTier(const Config& config);

struct SessionInfo {
  std::string name;
  std::string owner;
  bool active = false;
  Nanos started_at = 0;
  Nanos stopped_at = 0;
  std::uint64_t events_emitted = 0;
  // Lost before the transport: ring-buffer overwrites + pending-map overflow.
  std::uint64_t events_dropped = 0;
  // Lost inside the transport chain, summed across stages.
  std::uint64_t transport_dropped = 0;     // backpressure drops (queue)
  std::uint64_t transport_retries = 0;     // delivery re-attempts
  std::uint64_t transport_dead_letters = 0;  // abandoned after retries
  // Per-stage StageStats::ToJson array, head to sink (queue, retry, sinks).
  Json transport_stages;
  // Cluster deployments only: ClusterRouter::HealthJson() at snapshot time
  // (per-node liveness, fan-out pool stats, replication/log counters,
  // per-index watermark lag). Null in single-store deployments.
  Json cluster_health;
  // Backend filter-bitmap cache traffic for this session's index
  // (hits/misses/evictions across segments and, in a cluster, nodes). Null
  // until the session's index exists.
  Json filter_cache;

  [[nodiscard]] Json ToJson() const;
};

class DioService {
 public:
  DioService(os::Kernel* kernel, backend::ElasticStore* store);
  // Cluster deployment: sessions ship through a ClusterBulkSink (replicated,
  // ack-gated ingest) and analysis scatter/gathers across the nodes.
  DioService(os::Kernel* kernel, cluster::ClusterRouter* router);
  ~DioService();

  DioService(const DioService&) = delete;
  DioService& operator=(const DioService&) = delete;

  // Starts a tracing session; options.session_name must be unique among
  // live AND finished sessions (each maps to a backend index). The shipping
  // path is assembled from `pipeline_options`; the "bulk" sink resolves to
  // a BulkClient built from `client_options`.
  Expected<SessionInfo> StartSession(
      tracer::TracerOptions options, std::string owner = "",
      backend::BulkClientOptions client_options = {},
      transport::PipelineOptions pipeline_options = {});

  // Config-driven variant: [tracer] -> TracerOptions, [transport] ->
  // PipelineOptions + BulkClientOptions. Unrecognized keys in either
  // section are warned about at parse time.
  Expected<SessionInfo> StartSessionFromConfig(const Config& config,
                                               std::string owner = "");

  // Stops tracing; the session's data stays queryable (post-mortem, §II).
  // Teardown is deterministic: consumers join, then the transport chain is
  // flushed queue-first so every accepted batch is delivered or accounted.
  Status StopSession(const std::string& name);
  void StopAll();

  [[nodiscard]] std::vector<SessionInfo> ListSessions() const;
  [[nodiscard]] Expected<SessionInfo> GetSession(const std::string& name) const;

  // Analysis over a session's index (live or stopped).
  Expected<backend::CorrelationStats> Correlate(const std::string& name);
  Expected<std::vector<backend::Finding>> Diagnose(const std::string& name);

  // The single embedded store, or nullptr in cluster deployments.
  [[nodiscard]] backend::ElasticStore* store() { return store_; }
  // The cluster router, or nullptr in single-store deployments.
  [[nodiscard]] cluster::ClusterRouter* router() { return router_; }
  // The analysis surface — never null.
  [[nodiscard]] backend::QueryBackend* query_backend() { return backend_; }

 private:
  struct Session {
    SessionInfo info;
    // The pipeline owns the whole transport chain, terminal BulkClient
    // included. Declared before the tracer so the tracer (the producer)
    // is destroyed first.
    std::unique_ptr<transport::Pipeline> pipeline;
    std::unique_ptr<tracer::DioTracer> tracer;
  };

  [[nodiscard]] SessionInfo SnapshotLocked(const Session& session) const;
  void RefreshInfoLocked(Session& session) const;

  os::Kernel* kernel_;
  backend::ElasticStore* store_ = nullptr;
  cluster::ClusterRouter* router_ = nullptr;
  backend::QueryBackend* backend_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, Session> sessions_;
};

}  // namespace dio::service
