#include "service/replay.h"

#include <fstream>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "oskernel/syscall_nr.h"

namespace dio::service {

Expected<SpoolLoadStats> LoadSpool(backend::ElasticStore* store,
                                   const std::string& spool_path,
                                   const std::string& index,
                                   const SpoolLoadOptions& options) {
  std::ifstream in(spool_path);
  if (!in) return NotFound("spool file not found: " + spool_path);
  SpoolLoadStats stats;
  std::vector<Json> batch;
  std::unordered_set<std::string> seen;
  constexpr std::size_t kBatchDocs = 512;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline consuming the last bytes without finding '\n' leaves eof set:
    // the final line was torn (e.g. a crash mid-flush).
    const bool torn_tail = in.eof();
    if (line.empty()) continue;
    auto doc = Json::Parse(line);
    if (!doc.ok()) {
      if (torn_tail && options.allow_truncated_tail) {
        stats.truncated_tail = true;
        break;
      }
      return InvalidArgument("spool line " + std::to_string(line_no) + ": " +
                             doc.status().message());
    }
    if (options.dedupe && !seen.insert(line).second) {
      ++stats.duplicates;
      continue;
    }
    batch.push_back(std::move(doc).value());
    if (batch.size() >= kBatchDocs) {
      store->Bulk(index, std::exchange(batch, {}));
    }
    ++stats.loaded;
  }
  if (!batch.empty()) store->Bulk(index, std::move(batch));
  store->Refresh(index);
  return stats;
}

Expected<std::uint64_t> LoadSpool(backend::ElasticStore* store,
                                  const std::string& spool_path,
                                  const std::string& index) {
  auto stats = LoadSpool(store, spool_path, index, SpoolLoadOptions{});
  if (!stats.ok()) return stats.status();
  return stats->loaded;
}

TraceReplayer::TraceReplayer(os::Kernel* kernel, backend::ElasticStore* store,
                             std::string index)
    : kernel_(kernel), store_(store), index_(std::move(index)) {}

TraceReplayer::ReplayTask& TraceReplayer::TaskFor(
    os::Pid traced_pid, const std::string& proc_name) {
  auto it = tasks_.find(traced_pid);
  if (it != tasks_.end()) return it->second;
  ReplayTask task;
  const std::string name =
      proc_name.empty() ? "replay-" + std::to_string(traced_pid) : proc_name;
  task.pid = kernel_->CreateProcess(name);
  task.tid = kernel_->SpawnThread(task.pid, name);
  return tasks_.emplace(traced_pid, task).first->second;
}

Expected<ReplayStats> TraceReplayer::Run() {
  backend::SearchRequest request;
  request.query = backend::Query::MatchAll();
  request.sort = {{"time_enter", true}};
  request.size = std::numeric_limits<std::size_t>::max();
  auto events = store_->Search(index_, request);
  if (!events.ok()) return events.status();

  ReplayStats stats;
  for (const backend::Hit& hit : events->hits) {
    const Json& doc = hit.source;
    const std::string syscall = doc.GetString("syscall");
    auto nr = os::SyscallFromName(syscall);
    if (!nr.has_value()) {
      ++stats.skipped;
      continue;
    }
    const auto traced_pid = static_cast<os::Pid>(doc.GetInt("pid"));
    const std::string proc_name = doc.GetString("proc_name");
    const std::int64_t recorded_ret = doc.GetInt("ret");
    const std::string path = doc.GetString("path");
    const std::string path2 = doc.GetString("path2");
    const auto count = static_cast<std::uint64_t>(doc.GetInt("count"));
    const auto traced_fd = static_cast<os::Fd>(doc.GetInt("fd", -1));

    ReplayTask& task = TaskFor(traced_pid, proc_name);
    os::ScopedTask bound(*kernel_, task.pid, task.tid);
    os::Kernel& k = *kernel_;

    // Maps the traced fd argument to the replay-side fd established when
    // the corresponding open event was replayed.
    const auto mapped_fd = [&]() -> os::Fd {
      auto it = fd_map_.find({traced_pid, traced_fd});
      return it == fd_map_.end() ? os::kNoFd : it->second;
    };

    std::int64_t ret = 0;
    bool compare_ret = true;
    switch (*nr) {
      case os::SyscallNr::kOpen:
      case os::SyscallNr::kOpenat:
      case os::SyscallNr::kCreat: {
        const auto flags = static_cast<std::uint32_t>(doc.GetInt("flags"));
        const auto mode = static_cast<std::uint32_t>(doc.GetInt("mode", 0644));
        if (*nr == os::SyscallNr::kCreat) {
          ret = k.sys_creat(path, mode);
        } else {
          ret = k.sys_openat(os::kAtFdCwd, path, flags, mode);
        }
        if (ret >= 0 && recorded_ret >= 0) {
          fd_map_[{traced_pid, static_cast<os::Fd>(recorded_ret)}] =
              static_cast<os::Fd>(ret);
        }
        // fd numbering may legitimately differ; success/failure must agree.
        if ((ret >= 0) == (recorded_ret >= 0)) ++stats.ret_matches;
        else ++stats.ret_mismatches;
        compare_ret = false;
        break;
      }
      case os::SyscallNr::kClose: {
        const os::Fd fd = mapped_fd();
        if (fd == os::kNoFd) {
          ++stats.skipped;
          continue;
        }
        fd_map_.erase({traced_pid, traced_fd});
        ret = k.sys_close(fd);
        break;
      }
      case os::SyscallNr::kRead:
      case os::SyscallNr::kWrite:
      case os::SyscallNr::kPread64:
      case os::SyscallNr::kPwrite64:
      case os::SyscallNr::kReadv:
      case os::SyscallNr::kWritev: {
        const os::Fd fd = mapped_fd();
        if (fd == os::kNoFd) {
          ++stats.skipped;
          continue;
        }
        const std::int64_t offset = doc.GetInt("arg_offset", -1);
        std::string buf;
        switch (*nr) {
          case os::SyscallNr::kRead:
            ret = k.sys_read(fd, &buf, count);
            break;
          case os::SyscallNr::kReadv: {
            const std::uint64_t lens[] = {count};
            ret = k.sys_readv(fd, &buf, lens);
            break;
          }
          case os::SyscallNr::kPread64:
            ret = k.sys_pread64(fd, &buf, count, offset);
            break;
          case os::SyscallNr::kWrite:
            ret = k.sys_write(fd, std::string(count, 'r'));
            break;
          case os::SyscallNr::kWritev: {
            const std::string chunk(count, 'r');
            const std::string_view iov[] = {chunk};
            ret = k.sys_writev(fd, iov);
            break;
          }
          default:  // kPwrite64
            ret = k.sys_pwrite64(fd, std::string(count, 'r'), offset);
            break;
        }
        break;
      }
      case os::SyscallNr::kLseek: {
        const os::Fd fd = mapped_fd();
        if (fd == os::kNoFd) {
          ++stats.skipped;
          continue;
        }
        ret = k.sys_lseek(fd, doc.GetInt("arg_offset", 0),
                          static_cast<int>(doc.GetInt("whence", 0)));
        break;
      }
      case os::SyscallNr::kFsync:
      case os::SyscallNr::kFdatasync: {
        const os::Fd fd = mapped_fd();
        if (fd == os::kNoFd) {
          ++stats.skipped;
          continue;
        }
        ret = *nr == os::SyscallNr::kFsync ? k.sys_fsync(fd)
                                           : k.sys_fdatasync(fd);
        break;
      }
      case os::SyscallNr::kFtruncate: {
        const os::Fd fd = mapped_fd();
        if (fd == os::kNoFd) {
          ++stats.skipped;
          continue;
        }
        ret = k.sys_ftruncate(fd, count);
        break;
      }
      case os::SyscallNr::kUnlink:
      case os::SyscallNr::kUnlinkat:
        ret = k.sys_unlink(path);
        break;
      case os::SyscallNr::kMkdir:
      case os::SyscallNr::kMkdirat:
        ret = k.sys_mkdir(
            path, static_cast<std::uint32_t>(doc.GetInt("mode", 0755)));
        break;
      case os::SyscallNr::kRmdir:
        ret = k.sys_rmdir(path);
        break;
      case os::SyscallNr::kRename:
      case os::SyscallNr::kRenameat:
      case os::SyscallNr::kRenameat2:
        ret = k.sys_rename(path, path2);
        break;
      case os::SyscallNr::kStat: {
        os::StatBuf st;
        ret = k.sys_stat(path, &st);
        break;
      }
      case os::SyscallNr::kLstat: {
        os::StatBuf st;
        ret = k.sys_lstat(path, &st);
        break;
      }
      case os::SyscallNr::kTruncate:
        ret = k.sys_truncate(path, count);
        break;
      default:
        ++stats.skipped;
        continue;
    }

    ++stats.replayed;
    if (compare_ret) {
      if (ret == recorded_ret) {
        ++stats.ret_matches;
      } else {
        ++stats.ret_mismatches;
      }
    }
  }
  return stats;
}

}  // namespace dio::service
