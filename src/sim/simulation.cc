#include "sim/simulation.h"

#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "backend/bulk_client.h"
#include "backend/correlation.h"
#include "backend/store.h"
#include "cluster/cluster_sink.h"
#include "cluster/router.h"
#include "common/clock.h"
#include "common/random.h"
#include "oskernel/kernel.h"
#include "service/replay.h"
#include "sim/scheduler.h"
#include "sim/invariants.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "tracer/tracer.h"
#include "transport/fan_out_sink.h"
#include "transport/queue_transport.h"
#include "transport/retrying_transport.h"
#include "transport/sinks.h"

namespace dio::sim {

namespace {

// Workload-clock layout: task t's op i always executes at
// kTimeBase + t * kTaskTimeStride + i * kOpTimeDelta, regardless of how the
// scheduler interleaves tasks. Timestamps (and therefore event documents
// and file tags) are schedule-invariant, which is what lets the golden
// parity checks compare document SETS across different schedules.
constexpr Nanos kTimeBase = kSecond;
constexpr Nanos kTaskTimeStride = 64 * kSecond;
constexpr Nanos kOpTimeDelta = kMicrosecond;

// AckLossSink: sim-only decorator modeling "the bulk request was indexed
// but the acknowledgement was lost on the way back". Every Nth successful
// downstream delivery is reported upstream as Unavailable AFTER the
// downstream indexed it, so the retry stage re-drives an already-indexed
// batch — the duplicate-delivery fault class the exactly-once invariant is
// about.
class AckLossSink final : public transport::Transport {
 public:
  AckLossSink(std::unique_ptr<transport::Transport> downstream,
              std::size_t drop_every)
      : downstream_(std::move(downstream)), drop_every_(drop_every) {
    stats_.stage = "ackloss";
  }

  Status Submit(transport::EventBatch batch) override {
    const std::size_t batch_events = batch.size();
    stats_.batches_in += 1;
    stats_.events_in += batch_events;
    Status status = downstream_->Submit(std::move(batch));
    if (!status.ok()) return status;
    ++delivered_;
    if (drop_every_ > 0 && delivered_ % drop_every_ == 0) {
      acks_dropped_batches_ += 1;
      acks_dropped_events_ += batch_events;
      return Unavailable("ack lost after delivery");
    }
    stats_.batches_out += 1;
    stats_.events_out += batch_events;
    return Status::Ok();
  }

  void Flush() override { downstream_->Flush(); }

  void CollectStats(std::vector<transport::StageStats>* out) const override {
    out->push_back(stats_);
    downstream_->CollectStats(out);
  }

  [[nodiscard]] std::string_view name() const override { return "ackloss"; }

  [[nodiscard]] std::uint64_t acks_dropped_batches() const {
    return acks_dropped_batches_;
  }
  [[nodiscard]] std::uint64_t acks_dropped_events() const {
    return acks_dropped_events_;
  }

 private:
  std::unique_ptr<transport::Transport> downstream_;
  std::size_t drop_every_;
  transport::StageStats stats_;
  std::uint64_t delivered_ = 0;
  std::uint64_t acks_dropped_batches_ = 0;
  std::uint64_t acks_dropped_events_ = 0;
};

// Adapts the transport chain's head stage to the tracer's EventSink.
class HeadSink final : public tracer::EventSink {
 public:
  explicit HeadSink(transport::Transport* head) : head_(head) {}

  void IndexBatch(std::vector<Json> documents) override {
    transport::EventBatch batch;
    batch.documents = std::move(documents);
    (void)head_->Submit(std::move(batch));
  }
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override {
    transport::EventBatch batch;
    batch.session = std::string(session);
    batch.events = std::move(events);
    (void)head_->Submit(std::move(batch));
  }
  void IndexWire(std::string_view session,
                 std::vector<tracer::WireEvent> records) override {
    // Typed batches enter the sim chain binary, exactly as in the service:
    // the ledger, spool, and exactly-once invariants must hold for both
    // ingest routes.
    transport::EventBatch batch;
    batch.session = std::string(session);
    batch.wire = std::move(records);
    (void)head_->Submit(std::move(batch));
  }
  void Flush() override { head_->Flush(); }

 private:
  transport::Transport* head_;
};

// One simulated application thread: its own pid/tid, its own directory
// (file tags never depend on the other task), its own op generator.
struct WorkloadTask {
  std::size_t index = 0;
  os::Pid pid = os::kNoPid;
  os::Tid tid = os::kNoTid;
  Random rng{0};
  std::size_t op_index = 0;
  std::string dir;
  std::vector<std::pair<os::Fd, std::string>> open_fds;
  // Trace mode only: re-issues the recorded stream for this task. Each
  // issuer consumes an identical event sequence, so its fd map — and
  // therefore which records it executes — is schedule-independent.
  std::unique_ptr<trace::SyscallIssuer> issuer;
};

// Everything a single run (golden or faulty) produced, for the invariant
// suite in RunSimulation.
struct RunData {
  RunArtifacts art;
  std::uint64_t total_ops = 0;
  std::vector<std::string> spool_docs;  // canonical dumps, file order
  std::set<std::string> spool_unique;
  bool restored = false;  // restore attempted (spool had documents)
  service::SpoolLoadStats restore;
  backend::IndexStats live_stats;
  bool have_live_stats = false;
  backend::IndexStats restored_stats;
  std::map<std::string, std::size_t> restored_key_counts;
  std::set<std::string> restored_canonical;
  std::map<std::string, std::string> tag_to_path;

  // Cluster-mode harvest (options.cluster_nodes > 0).
  bool node_crashed = false;     // the nodecrash fault actually fired
  bool partitioned = false;      // the partition window actually opened
  bool lagged = false;           // the lag (throttle) window actually opened
  std::uint64_t cluster_acked_batches = 0;
  std::uint64_t cluster_acked_events = 0;
  std::uint64_t cluster_duplicate_batches = 0;
  std::uint64_t cluster_rejected_batches = 0;
  std::uint64_t cluster_rejected_events = 0;
  std::uint64_t cluster_pending_applies = 0;
  std::vector<std::string> convergence;  // VerifyConvergence violations
  backend::IndexStats cluster_stats;
  bool have_cluster_stats = false;
  std::map<std::string, std::size_t> cluster_key_counts;
  std::set<std::string> cluster_canonical;
  std::uint64_t cluster_log_appended = 0;
  std::uint64_t cluster_log_compacted = 0;
  std::uint64_t cluster_log_retained = 0;
  std::uint64_t cluster_snapshot_catchups = 0;
  // Serialized query-mix results over the cluster and the restored store
  // (the scattered-vs-single-store golden parity check). The cluster digest
  // is taken through both fan-out routes: byte-equality of the two is the
  // parallel-scatter parity invariant.
  std::string cluster_query_digest;
  std::string cluster_query_digest_serial;
  std::string restored_query_digest;
};

// Dedup/identity key of one event document. Unique per event by
// construction: time_enter is the workload clock pinned per (task, op).
std::string EventKey(const Json& doc) {
  return std::to_string(doc.GetInt("tid")) + "|" +
         std::to_string(doc.GetInt("time_enter")) + "|" +
         doc.GetString("syscall");
}

// Serializes an AggResult (metrics plus buckets, recursively) for byte
// comparison between backends.
void AppendAgg(const backend::AggResult& agg, std::string* out) {
  out->append("metrics=").append(agg.metrics.Dump()).push_back('\n');
  for (const backend::AggBucket& bucket : agg.buckets) {
    out->append("bucket ").append(bucket.key.Dump());
    out->append(" n=").append(std::to_string(bucket.doc_count));
    out->push_back('\n');
    for (const auto& [name, sub] : bucket.sub) {
      out->append("sub ").append(name).push_back('\n');
      AppendAgg(sub, out);
    }
  }
}

// A fixed query mix — full scan with docids, a sorted+paged search, counts,
// a nested terms/stats aggregation, and percentiles — serialized over any
// QueryBackend. The cluster invariant compares the digest over the
// scatter/gather router against the digest over a single store holding the
// same documents: byte-identical means scattered execution is
// indistinguishable from one store.
Expected<std::string> QueryMixDigest(const backend::QueryBackend& backend,
                                     const std::string& index) {
  std::string out;
  backend::SearchRequest all;
  all.size = std::numeric_limits<std::size_t>::max();
  auto hits = backend.Search(index, all);
  if (!hits.ok()) return hits.status();
  out += "total=" + std::to_string(hits->total) + "\n";
  for (const backend::Hit& hit : hits->hits) {
    out += std::to_string(hit.id) + "|" + hit.source.Dump() + "\n";
  }
  backend::SearchRequest sorted;
  sorted.query = backend::Query::Term("syscall", Json("write"));
  sorted.sort = {{"ret", false}, {"time_enter", true}};
  sorted.from = 2;
  sorted.size = 40;
  auto page = backend.Search(index, sorted);
  if (!page.ok()) return page.status();
  out += "sorted_total=" + std::to_string(page->total) + "\n";
  for (const backend::Hit& hit : page->hits) {
    out += hit.source.Dump() + "\n";
  }
  const backend::Query counts[] = {
      backend::Query::MatchAll(),
      backend::Query::Exists("file_tag"),
      backend::Query::Range("ret", 0, std::nullopt),
  };
  for (const backend::Query& query : counts) {
    auto count = backend.Count(index, query);
    if (!count.ok()) return count.status();
    out += "count=" + std::to_string(*count) + "\n";
  }
  auto terms = backend.Aggregate(
      index, backend::Query::MatchAll(),
      backend::Aggregation::Terms("syscall").SubAgg(
          "ret_stats", backend::Aggregation::Stats("ret")));
  if (!terms.ok()) return terms.status();
  AppendAgg(*terms, &out);
  auto pct = backend.Aggregate(
      index, backend::Query::MatchAll(),
      backend::Aggregation::Percentiles("ret", {50.0, 95.0, 99.0}));
  if (!pct.ok()) return pct.status();
  AppendAgg(*pct, &out);
  return out;
}

// Issues exactly one syscall for `task` at its pinned virtual time.
void DoOneOp(os::Kernel& kernel, ManualClock& workload_clock,
             WorkloadTask& task) {
  workload_clock.SetNanos(kTimeBase +
                          static_cast<Nanos>(task.index) * kTaskTimeStride +
                          static_cast<Nanos>(task.op_index) * kOpTimeDelta);
  os::ScopedTask bound(kernel, task.pid, task.tid);
  os::Kernel& k = kernel;
  std::uint64_t roll = task.rng.Uniform(10);
  if (task.open_fds.empty() && roll != 8) roll = 0;
  if (task.open_fds.size() >= 6 && roll <= 2) roll = 9;
  switch (roll) {
    case 0:
    case 1: {
      const std::string path =
          task.dir + "/f" + std::to_string(task.rng.Uniform(6));
      const std::int64_t fd = k.sys_openat(
          os::kAtFdCwd, path,
          os::openflag::kCreate | os::openflag::kReadWrite, 0644);
      if (fd >= 0) task.open_fds.emplace_back(static_cast<os::Fd>(fd), path);
      break;
    }
    case 2: {
      const std::string path =
          task.dir + "/c" + std::to_string(task.rng.Uniform(4));
      const std::int64_t fd = k.sys_creat(path, 0644);
      if (fd >= 0) task.open_fds.emplace_back(static_cast<os::Fd>(fd), path);
      break;
    }
    case 3:
    case 4: {
      const auto pick = task.rng.Uniform(task.open_fds.size());
      const std::string data(32 + task.rng.Uniform(96), 'x');
      k.sys_write(task.open_fds[pick].first, data);
      break;
    }
    case 5: {
      const auto pick = task.rng.Uniform(task.open_fds.size());
      std::string buf;
      k.sys_read(task.open_fds[pick].first, &buf, 64);
      break;
    }
    case 6: {
      const auto pick = task.rng.Uniform(task.open_fds.size());
      k.sys_lseek(task.open_fds[pick].first, 0, os::kSeekSet);
      break;
    }
    case 7: {
      const auto pick = task.rng.Uniform(task.open_fds.size());
      k.sys_fsync(task.open_fds[pick].first);
      break;
    }
    case 8: {
      os::StatBuf st;
      k.sys_stat(task.dir, &st);
      break;
    }
    default: {
      const auto pick = task.rng.Uniform(task.open_fds.size());
      k.sys_close(task.open_fds[pick].first);
      task.open_fds.erase(task.open_fds.begin() +
                          static_cast<std::ptrdiff_t>(pick));
      break;
    }
  }
  ++task.op_index;
}

// Executes one full run: scheduler-driven pipeline, teardown, restore (for
// faulty runs), correlation, and harvest of everything the invariant suite
// needs. `golden` selects the serial round-robin schedule; the caller
// passes an empty plan with it.
Expected<RunData> RunOnce(const SimOptions& options, const FaultPlan& plan,
                          bool golden, const std::string& label) {
  RunData data;
  data.total_ops = options.num_tasks * options.ops_per_task;

  // Trace mode: decode the recorded stream once and index every distinct
  // recorded path (path and path2, first-use order). Each task replays the
  // same stream into its own directory — recorded path p becomes
  // <task.dir>/p<id> — and all of those files are pre-created below, so
  // replayed opens allocate no inodes mid-run. Skipped records (namespace
  // ops, unmappable fds) still advance the task's op index, which is why
  // total_ops is the issuable count, not the record count.
  const bool trace_mode = !options.trace_path.empty();
  std::vector<tracer::WireEvent> trace_events;
  std::map<std::string, std::size_t> trace_path_ids;
  if (trace_mode) {
    auto decoded = trace::ReadTraceFile(options.trace_path);
    if (!decoded.ok()) return decoded.status();
    trace_events = std::move(*decoded);
    for (const tracer::WireEvent& event : trace_events) {
      for (std::string path : {std::string(event.path, event.path_len),
                               std::string(event.path2, event.path2_len)}) {
        if (!path.empty()) {
          trace_path_ids.emplace(std::move(path), trace_path_ids.size());
        }
      }
    }
    data.total_ops =
        options.num_tasks *
        trace::CountIssuableEvents(trace_events, /*skip_namespace_ops=*/true);
  }
  const std::size_t ops_limit =
      trace_mode ? trace_events.size() : options.ops_per_task;

  const std::string session = "sim-run";
  data.art.session = session;
  data.art.spool_path = options.spool_dir + "/seed-" +
                        std::to_string(options.seed) + "-" + label +
                        ".ndjson";

  ManualClock workload_clock(kTimeBase);
  ManualClock sim_clock(0);

  os::KernelOptions kernel_options;
  kernel_options.num_cpus = 2;
  os::Kernel kernel(kernel_options, &workload_clock);
  auto device = kernel.MountDevice("/data", 7340032, [] {
    os::BlockDeviceOptions device_options;
    device_options.real_sleep = false;
    return device_options;
  }());
  if (!device.ok()) return device.status();

  backend::ElasticStoreOptions store_options;
  store_options.typed_ingest = options.typed_ingest;
  store_options.segment_docs = options.segment_docs;
  // In cluster mode `store` only serves the post-run spool restore (the
  // single-store oracle the scattered query results are compared against);
  // it always runs with segment_docs=0 (the rebuild-everything columnar
  // mode) so the restored-vs-scattered parity invariant is also a
  // sealed-segments-vs-full-rebuild oracle. The live backend is the
  // router's node stores, which take the configured segment size.
  backend::ElasticStoreOptions oracle_options = store_options;
  if (options.cluster_nodes > 0) oracle_options.segment_docs = 0;
  backend::ElasticStore store(oracle_options);

  const bool cluster_mode = options.cluster_nodes > 0;
  std::unique_ptr<cluster::ClusterRouter> router;
  cluster::ClusterBulkSink* cluster_sink_ptr = nullptr;

  // Transport chain, bottom-up: terminal sink (bulk client, or the cluster
  // sink in cluster mode) -> ackloss -> {.., spool} fanout -> retry ->
  // queue. The queue and all waits run in manual/virtual-time mode so the
  // scheduler is the only source of concurrency.
  std::unique_ptr<transport::Transport> terminal;
  if (cluster_mode) {
    cluster::ClusterOptions cluster_options;
    cluster_options.nodes = options.cluster_nodes;
    cluster_options.replicas = options.cluster_replicas;
    auto ack = cluster::AckLevelFromString(options.cluster_ack);
    if (!ack.ok()) return ack.status();
    cluster_options.ack = *ack;
    auto fanout = cluster::QueryFanoutFromString(options.cluster_fanout);
    if (!fanout.ok()) return fanout.status();
    cluster_options.query_fanout = *fanout;
    cluster_options.query_threads = options.cluster_query_threads;
    cluster_options.log_retain_batches = options.cluster_log_retain;
    cluster_options.store = store_options;
    router = std::make_unique<cluster::ClusterRouter>(cluster_options);
    auto sink = std::make_unique<cluster::ClusterBulkSink>(
        router.get(), session, 50 * kMicrosecond, &sim_clock);
    cluster_sink_ptr = sink.get();
    terminal = std::move(sink);
  } else {
    backend::BulkClientOptions bulk_options;
    bulk_options.network_latency_ns = 50 * kMicrosecond;
    bulk_options.refresh_every_batches = 4;
    terminal = std::make_unique<backend::BulkClient>(&store, session,
                                                     bulk_options, &sim_clock);
  }
  auto ack_loss = std::make_unique<AckLossSink>(
      std::move(terminal),
      plan.Has(kFaultDuplicateAck) ? plan.dup_ack_every : 0);
  AckLossSink* ack_loss_ptr = ack_loss.get();

  auto spool_sink = transport::FileSpoolSink::Open(
      transport::FileSpoolOptions{data.art.spool_path});
  if (!spool_sink.ok()) return spool_sink.status();

  std::vector<std::unique_ptr<transport::Transport>> children;
  children.push_back(std::move(ack_loss));
  children.push_back(std::move(*spool_sink));
  auto fanout = std::make_unique<transport::FanOutSink>(std::move(children));

  transport::RetryOptions retry_options;
  retry_options.max_attempts = plan.retry_max_attempts;
  retry_options.initial_backoff_ns = 100 * kMicrosecond;
  retry_options.max_backoff_ns = 2 * kMillisecond;
  retry_options.fault_rate = plan.Has(kFaultTransport) ? plan.fault_rate : 0.0;
  retry_options.fault_seed = options.seed ^ 0x5EEDULL;
  auto retry = std::make_unique<transport::RetryingTransport>(
      std::move(fanout), retry_options, &sim_clock);

  transport::QueueTransportOptions queue_options;
  queue_options.manual = true;
  if (plan.Has(kFaultQueueDrop)) {
    queue_options.policy = plan.queue_policy;
    queue_options.max_queued_batches = plan.queue_depth;
  }
  auto queue = std::make_unique<transport::QueueTransport>(std::move(retry),
                                                           queue_options);
  transport::QueueTransport* queue_ptr = queue.get();

  HeadSink head(queue_ptr);

  tracer::TracerOptions tracer_options;
  tracer_options.session_name = session;
  tracer_options.manual_consumers = true;
  tracer_options.consumer_threads = 2;
  tracer_options.batch_size = 16;
  tracer_options.flush_interval_ns = 100 * kMicrosecond;
  tracer_options.ring_bytes_per_cpu =
      plan.Has(kFaultRingOverflow) ? 16u * 1024 : 1u << 20;
  tracer::DioTracer tracer(&kernel, &head, tracer_options);

  // Workload tasks. The directory tree and every file the op generator can
  // touch are created serially BEFORE tracing starts: inode numbers are
  // allocated globally in creation order, so creating files during the
  // scheduled run would make inodes (and therefore file tags) depend on the
  // cross-task interleaving and break document parity with the golden run.
  std::vector<WorkloadTask> tasks(options.num_tasks);
  for (std::size_t t = 0; t < options.num_tasks; ++t) {
    WorkloadTask& task = tasks[t];
    task.index = t;
    task.dir = "/data/t" + std::to_string(t);
    task.pid = kernel.CreateProcess("sim-w" + std::to_string(t));
    task.tid = kernel.SpawnThread(task.pid, "sim-w" + std::to_string(t));
    task.rng = Random(options.seed * 1000003ULL + t);
    os::ScopedTask bound(kernel, task.pid, task.tid);
    kernel.sys_mkdir(task.dir, 0755);
    if (trace_mode) {
      // One flat file per distinct recorded path; the id order is the
      // stream's first-use order, so pre-creation order — and therefore
      // inode numbering — is a pure function of the trace.
      for (std::size_t p = 0; p < trace_path_ids.size(); ++p) {
        const std::int64_t fd = kernel.sys_creat(
            task.dir + "/p" + std::to_string(p), 0644);
        if (fd >= 0) kernel.sys_close(static_cast<os::Fd>(fd));
      }
      const std::string dir = task.dir;
      const auto* path_ids = &trace_path_ids;
      task.issuer = std::make_unique<trace::SyscallIssuer>(
          &kernel,
          [dir, path_ids](const std::string& recorded) {
            auto it = path_ids->find(recorded);
            const std::size_t id = it == path_ids->end() ? 0 : it->second;
            return dir + "/p" + std::to_string(id);
          },
          /*bind_tasks=*/false, /*skip_namespace_ops=*/true);
    } else {
      for (int i = 0; i < 6; ++i) {
        const std::int64_t fd = kernel.sys_creat(
            task.dir + "/f" + std::to_string(i), 0644);
        if (fd >= 0) kernel.sys_close(static_cast<os::Fd>(fd));
      }
      for (int i = 0; i < 4; ++i) {
        const std::int64_t fd = kernel.sys_creat(
            task.dir + "/c" + std::to_string(i), 0644);
        if (fd >= 0) kernel.sys_close(static_cast<os::Fd>(fd));
      }
    }
  }
  if (Status started = tracer.Start(); !started.ok()) return started;
  std::size_t global_ops = 0;
  std::size_t workloads_alive = options.num_tasks;
  bool crashed = false;

  bool node_restarted = false;
  bool partition_healed = false;
  bool lag_healed = false;

  const auto issue_op = [&](WorkloadTask& task) {
    if (trace_mode) {
      // Same pinned-clock layout as DoOneOp; skipped records advance the
      // clock too, so timestamps never depend on which records execute.
      workload_clock.SetNanos(
          kTimeBase + static_cast<Nanos>(task.index) * kTaskTimeStride +
          static_cast<Nanos>(task.op_index) * kOpTimeDelta);
      os::ScopedTask bound(kernel, task.pid, task.tid);
      task.issuer->Issue(trace_events[task.op_index]);
      ++task.op_index;
    } else {
      DoOneOp(kernel, workload_clock, task);
    }
    ++global_ops;
    if (plan.Has(kFaultCrashRestart) && !crashed &&
        global_ops >= plan.crash_at_op) {
      // Backend crash: the live index (refreshed and pending docs alike)
      // vanishes; later bulk requests auto-recreate it, and recovery is the
      // post-run spool replay.
      (void)store.DeleteIndex(session);
      crashed = true;
    }
    if (cluster_mode && plan.Has(kFaultNodeCrash)) {
      if (!data.node_crashed && global_ops >= plan.node_crash_at_op) {
        // Node death: store and watermarks wiped, replicas promoted. With
        // down=0 the node stays dead until the end-of-run heal.
        (void)router->CrashNode(plan.crash_node);
        data.node_crashed = true;
      } else if (data.node_crashed && !node_restarted &&
                 plan.node_down_for_ops > 0 &&
                 global_ops >= plan.node_crash_at_op + plan.node_down_for_ops) {
        (void)router->RestartNode(plan.crash_node);
        node_restarted = true;
      }
    }
    if (cluster_mode && plan.Has(kFaultPartition)) {
      if (!data.partitioned && global_ops >= plan.partition_from_op) {
        (void)router->SetReachable(plan.partition_node, false);
        data.partitioned = true;
      } else if (data.partitioned && !partition_healed &&
                 plan.partition_for_ops > 0 &&
                 global_ops >=
                     plan.partition_from_op + plan.partition_for_ops) {
        (void)router->SetReachable(plan.partition_node, true);
        partition_healed = true;
      }
    }
    if (cluster_mode && plan.Has(kFaultLag)) {
      // Replication throttle: the node still serves sync acks and reads,
      // but the async pump skips it, so its backlog — and the shard logs
      // above its watermark — grow until the window closes (or HealAll).
      if (!data.lagged && global_ops >= plan.lag_from_op) {
        (void)router->SetThrottled(plan.lag_node, true);
        data.lagged = true;
      } else if (data.lagged && !lag_healed && plan.lag_for_ops > 0 &&
                 global_ops >= plan.lag_from_op + plan.lag_for_ops) {
        (void)router->SetThrottled(plan.lag_node, false);
        lag_healed = true;
      }
    }
  };

  SchedulerOptions sched_options;
  sched_options.seed = options.seed;
  sched_options.round_robin = golden;
  sched_options.keep_trace = options.keep_trace;
  sched_options.max_steps = 500'000;
  SimScheduler scheduler(&sim_clock, sched_options);

  for (std::size_t t = 0; t < options.num_tasks; ++t) {
    scheduler.AddActor("workload-" + std::to_string(t), [&, t] {
      WorkloadTask& task = tasks[t];
      if (task.op_index >= ops_limit) {
        --workloads_alive;
        return StepResult::kDone;
      }
      std::size_t burst = 1;
      if (plan.Has(kFaultRingOverflow) &&
          global_ops % plan.overflow_every_ops == 0) {
        burst = plan.overflow_burst_ops;
      }
      for (std::size_t i = 0; i < burst && task.op_index < ops_limit; ++i) {
        issue_op(task);
      }
      return StepResult::kWorked;
    });
  }
  const std::size_t workers = tracer.manual_workers();
  std::vector<bool> consumer_done(workers, false);
  for (std::size_t w = 0; w < workers; ++w) {
    scheduler.AddActor("consumer-" + std::to_string(w), [&, w] {
      if (tracer.PumpConsumer(w) > 0) return StepResult::kWorked;
      if (workloads_alive == 0) {
        consumer_done[w] = true;
        return StepResult::kDone;
      }
      return StepResult::kIdle;
    });
  }
  bool queue_sender_done = false;
  scheduler.AddActor("queue-sender", [&] {
    if (queue_ptr->PumpOne()) return StepResult::kWorked;
    bool consumers_done = workloads_alive == 0;
    for (std::size_t w = 0; w < workers && consumers_done; ++w) {
      consumers_done = consumer_done[w];
    }
    if (!consumers_done) return StepResult::kIdle;
    queue_sender_done = true;
    return StepResult::kDone;
  });
  if (cluster_mode) {
    // Drains deferred replica applies concurrently with ingest, exactly as a
    // background replication thread would — interleaved by the scheduler, so
    // its timing is part of the explored schedule space. Finishes when the
    // chain is drained; a backlog blocked by a down/partitioned node is left
    // for the post-heal Settle in the teardown flush.
    scheduler.AddActor("cluster-replicator", [&] {
      if (router->PumpReplication(4) > 0) return StepResult::kWorked;
      return queue_sender_done ? StepResult::kDone : StepResult::kIdle;
    });
  }

  data.art.completed = scheduler.Run();
  data.art.schedule_digest = scheduler.trace_digest();
  data.art.steps = scheduler.steps();
  data.art.trace = scheduler.trace();
  data.art.crashed = crashed;

  // End-of-run heal: partitions close and crashed nodes rejoin BEFORE the
  // teardown flush, so the cluster sink's Flush (Settle + Refresh) can
  // drain the deferred backlog and replay the log into rejoined nodes —
  // the failover-recovery path the convergence invariant then verifies.
  if (cluster_mode) router->HealAll();

  // Teardown: final serial drain of rings and local batches, then the chain
  // flush (queue -> retry -> sinks), after which every accepted batch is
  // delivered or accounted and the live index is refreshed.
  tracer.Stop();

  data.art.tracer = tracer.stats();
  queue_ptr->CollectStats(&data.art.stages);
  data.art.acks_dropped_batches = ack_loss_ptr->acks_dropped_batches();
  data.art.acks_dropped_events = ack_loss_ptr->acks_dropped_events();

  if (auto stats = store.Stats(session); stats.ok()) {
    data.live_stats = *stats;
    data.have_live_stats = true;
  }

  if (cluster_mode) {
    // Harvest the quiescent cluster: counters, convergence, and the full
    // document set plus query-mix digest (both taken BEFORE any correlator
    // pass mutates documents, mirroring the restored-store harvest below).
    data.cluster_acked_batches = router->acked_batches();
    data.cluster_acked_events = router->acked_events();
    data.cluster_duplicate_batches = router->duplicate_batches();
    data.cluster_rejected_batches = cluster_sink_ptr->rejected_batches();
    data.cluster_rejected_events = cluster_sink_ptr->rejected_events();
    data.cluster_pending_applies = router->PendingApplies();
    // Final compaction pass over the settled cluster, so the log-ledger
    // conservation invariant sees steady state: all owners are at the head,
    // everything below it (minus the retain cushion) must be reclaimed.
    (void)router->CompactLogs();
    data.cluster_log_appended = router->log_appended_entries();
    data.cluster_log_compacted = router->log_compacted_entries();
    data.cluster_log_retained = router->log_retained_entries();
    data.cluster_snapshot_catchups = router->snapshot_catchups();
    data.convergence = router->VerifyConvergence(session);
    if (auto stats = router->Stats(session); stats.ok()) {
      data.cluster_stats = *stats;
      data.have_cluster_stats = true;
    }
    if (router->HasIndex(session)) {
      backend::SearchRequest request;
      request.size = std::numeric_limits<std::size_t>::max();
      auto hits = router->Search(session, request);
      if (!hits.ok()) return hits.status();
      for (const backend::Hit& hit : hits->hits) {
        data.cluster_key_counts[EventKey(hit.source)] += 1;
        data.cluster_canonical.insert(hit.source.Dump());
      }
      // Digest the query mix through BOTH scatter routes on the same
      // quiescent cluster. The parallel leg runs the real pooled path
      // (query_threads workers); byte-equality with the serial leg is the
      // fan-out parity invariant.
      router->SetQueryFanout(cluster::QueryFanout::kParallel);
      auto digest = QueryMixDigest(*router, session);
      if (!digest.ok()) return digest.status();
      data.cluster_query_digest = *digest;
      router->SetQueryFanout(cluster::QueryFanout::kSerial);
      auto serial_digest = QueryMixDigest(*router, session);
      if (!serial_digest.ok()) return serial_digest.status();
      data.cluster_query_digest_serial = *serial_digest;
      auto restored_fanout =
          cluster::QueryFanoutFromString(options.cluster_fanout);
      if (restored_fanout.ok()) router->SetQueryFanout(*restored_fanout);
    }
  }

  // Harvest the spool in canonical (parse -> dump) form.
  {
    std::ifstream in(data.art.spool_path);
    if (!in) return NotFound("sim spool missing: " + data.art.spool_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto doc = Json::Parse(line);
      if (!doc.ok()) {
        return InvalidArgument("sim spool line unparseable: " +
                               doc.status().message());
      }
      data.spool_docs.push_back(doc->Dump());
      data.spool_unique.insert(data.spool_docs.back());
    }
  }

  if (golden) {
    // Golden reference: correlate the (lossless) live backend — the single
    // store, or the scatter/gather router in cluster mode.
    backend::FilePathCorrelator correlator(
        cluster_mode ? static_cast<backend::QueryBackend*>(router.get())
                     : &store);
    if (auto run = correlator.Run(session); !run.ok()) return run.status();
    data.tag_to_path = correlator.tag_to_path();
    return data;
  }

  // Restart: replay the spool (deduped, so re-driven batches do not
  // double-index) into the restored index, then correlate there.
  const std::string restored_index = session + "-restored";
  auto restore = service::LoadSpool(&store, data.art.spool_path,
                                    restored_index,
                                    service::SpoolLoadOptions{
                                        .dedupe = true,
                                        .allow_truncated_tail = false,
                                    });
  if (!restore.ok()) return restore.status();
  data.restore = *restore;
  if (data.restore.loaded > 0) {
    data.restored = true;
    auto stats = store.Stats(restored_index);
    if (!stats.ok()) return stats.status();
    data.restored_stats = *stats;

    backend::SearchRequest request;
    request.query = backend::Query::MatchAll();
    request.size = std::numeric_limits<std::size_t>::max();
    auto hits = store.Search(restored_index, request);
    if (!hits.ok()) return hits.status();
    for (const backend::Hit& hit : hits->hits) {
      data.restored_key_counts[EventKey(hit.source)] += 1;
      data.restored_canonical.insert(hit.source.Dump());
    }

    if (cluster_mode) {
      // The restored single store is the oracle for the scattered query
      // digest: same spool, one store, no cluster.
      auto digest = QueryMixDigest(store, restored_index);
      if (!digest.ok()) return digest.status();
      data.restored_query_digest = *digest;
    }

    // Faulty-run correlation: over the restored index, or — in cluster mode
    // — over the router itself, exercising the analysis path through
    // scatter/gather (tag parity against the golden run's router pass).
    if (cluster_mode) {
      if (router->HasIndex(session)) {
        backend::FilePathCorrelator correlator(router.get());
        if (auto run = correlator.Run(session); !run.ok()) {
          return run.status();
        }
        data.tag_to_path = correlator.tag_to_path();
      }
    } else {
      backend::FilePathCorrelator correlator(&store);
      if (auto run = correlator.Run(restored_index); !run.ok()) {
        return run.status();
      }
      data.tag_to_path = correlator.tag_to_path();
    }
  }
  return data;
}

// Finds a stage by name in CollectStats order; every stage name in the sim
// chain is unique.
const transport::StageStats* FindStage(
    const std::vector<transport::StageStats>& stages, std::string_view name) {
  for (const transport::StageStats& stage : stages) {
    if (stage.stage == name) return &stage;
  }
  return nullptr;
}

}  // namespace

std::string SimResult::ReproLine(std::uint64_t seed) const {
  return "--seed=" + std::to_string(seed) + " --fault-plan=" + plan_spec;
}

Expected<SimResult> RunSimulation(const SimOptions& options) {
  std::size_t total_ops = options.num_tasks * options.ops_per_task;
  if (!options.trace_path.empty()) {
    // Trace-replay workload: the op-accounting invariants (and the fault
    // plan's op-count scaling) key off how many recorded events each task
    // will actually re-issue, which CountIssuableEvents predicts statically
    // — valid because RunOnce pre-creates every recorded path, so replayed
    // opens always succeed.
    auto decoded = trace::ReadTraceFile(options.trace_path);
    if (!decoded.ok()) return decoded.status();
    total_ops =
        options.num_tasks *
        trace::CountIssuableEvents(*decoded, /*skip_namespace_ops=*/true);
  }
  const bool cluster_mode = options.cluster_nodes > 0;
  FaultPlan plan;
  if (options.fault_spec.empty()) {
    plan = FaultPlan::FromSeed(options.seed, total_ops, options.cluster_nodes,
                               options.cluster_replicas);
  } else {
    auto parsed = FaultPlan::Parse(options.fault_spec, total_ops,
                                   options.cluster_nodes);
    if (!parsed.ok()) return parsed.status();
    plan = *parsed;
  }

  auto golden = RunOnce(options, FaultPlan{}, /*golden=*/true, "golden");
  if (!golden.ok()) return golden.status();
  auto run_a = RunOnce(options, plan, /*golden=*/false, "a");
  if (!run_a.ok()) return run_a.status();
  auto run_b = RunOnce(options, plan, /*golden=*/false, "b");
  if (!run_b.ok()) return run_b.status();

  SimResult result;
  result.plan = plan;
  result.plan_spec = plan.ToString();
  result.schedule_digest = run_a->art.schedule_digest;
  result.steps = run_a->art.steps;
  result.spool_lines = run_a->spool_docs.size();
  result.spool_unique = run_a->spool_unique.size();
  result.restored_docs = run_a->restore.loaded;

  const tracer::TracerStats& tstats = run_a->art.tracer;
  const auto* queue = FindStage(run_a->art.stages, "queue");
  const auto* retry = FindStage(run_a->art.stages, "retry");
  const auto* fanout = FindStage(run_a->art.stages, "fanout");
  const auto* ackloss = FindStage(run_a->art.stages, "ackloss");
  // The terminal stage under ackloss: the bulk client, or the cluster sink.
  const auto* terminal = FindStage(run_a->art.stages,
                                   cluster_mode ? "cluster" : "bulk");
  const auto* spool = FindStage(run_a->art.stages, "spool");

  result.saw_ring_drop = tstats.ring_dropped > 0;
  result.saw_queue_drop = queue != nullptr && queue->dropped_events > 0;
  result.saw_transport_fault = retry != nullptr && retry->faults_injected > 0;
  result.saw_dead_letter = retry != nullptr && retry->dead_letter_events > 0;
  result.saw_ack_drop = run_a->art.acks_dropped_events > 0;
  result.saw_crash = run_a->art.crashed;
  result.saw_node_crash = run_a->node_crashed;
  result.saw_partition = run_a->partitioned;
  result.saw_lag = run_a->lagged;
  result.saw_cluster_reject = run_a->cluster_rejected_batches > 0;
  result.cluster_docs =
      run_a->have_cluster_stats ? run_a->cluster_stats.doc_count : 0;
  result.cluster_duplicates = run_a->cluster_duplicate_batches;
  result.cluster_log_appended = run_a->cluster_log_appended;
  result.cluster_log_compacted = run_a->cluster_log_compacted;
  result.cluster_log_retained = run_a->cluster_log_retained;
  result.cluster_snapshot_catchups = run_a->cluster_snapshot_catchups;

  InvariantChecker check;

  // Determinism: the same seed must produce a byte-identical schedule.
  check.Check(run_a->art.completed, "faulty schedule did not terminate");
  check.Check(golden->art.completed, "golden schedule did not terminate");
  check.CheckEq(run_a->art.schedule_digest, run_b->art.schedule_digest,
                "same seed, same schedule digest");
  check.CheckEq(run_a->art.steps, run_b->art.steps,
                "same seed, same step count");
  check.Check(run_a->art.trace == run_b->art.trace,
              "same seed, same schedule trace");

  // The golden run is lossless and fault-free by construction.
  check.CheckEq(golden->art.tracer.ring_dropped, 0, "golden ring_dropped");
  check.CheckEq(golden->art.tracer.emitted, total_ops, "golden emitted");
  check.CheckEq(golden->spool_docs.size(), total_ops, "golden spool lines");
  check.CheckEq(golden->spool_unique.size(), total_ops,
                "golden spool uniqueness");
  if (const auto* gq = FindStage(golden->art.stages, "queue")) {
    check.CheckEq(gq->dropped_events, 0, "golden queue drops");
  }
  if (const auto* gr = FindStage(golden->art.stages, "retry")) {
    check.CheckEq(gr->faults_injected, 0, "golden faults");
    check.CheckEq(gr->dead_letter_events, 0, "golden dead letters");
  }
  CheckTracerCounters(golden->art.tracer, &check);
  if (cluster_mode) {
    // The fault-free golden cluster accepts everything, converges, and
    // leaves no backlog.
    check.CheckEq(golden->cluster_rejected_batches, 0,
                  "golden cluster rejects");
    check.Check(golden->have_cluster_stats, "golden cluster stats");
    if (golden->have_cluster_stats) {
      check.CheckEq(golden->cluster_stats.doc_count, total_ops,
                    "golden cluster doc_count");
    }
    check.Check(golden->convergence.empty(), "golden replica convergence");
    check.CheckEq(golden->cluster_pending_applies, 0,
                  "golden pending applies");
  }

  // Faulty run: tracer counters and per-stage ledgers (the fan-out and the
  // ack-loss decorator legitimately report upstream failures for batches
  // whose ack was dropped after delivery; those batches are re-driven by
  // the retry stage or dead-lettered, never silently lost).
  CheckTracerCounters(tstats, &check);
  check.CheckEq(tstats.enter_hits, total_ops, "workload op accounting");
  LedgerExpectations expect;
  // Cluster-rejected deliveries (ack level unsatisfiable) fail the Submit,
  // so the rejection surfaces as an in/out gap at the cluster stage AND at
  // every decorator above it, alongside the lost-ack gaps.
  expect.rejected_batches["fanout"] =
      run_a->art.acks_dropped_batches + run_a->cluster_rejected_batches;
  expect.rejected_events["fanout"] =
      run_a->art.acks_dropped_events + run_a->cluster_rejected_events;
  expect.rejected_batches["ackloss"] =
      run_a->art.acks_dropped_batches + run_a->cluster_rejected_batches;
  expect.rejected_events["ackloss"] =
      run_a->art.acks_dropped_events + run_a->cluster_rejected_events;
  if (cluster_mode) {
    expect.rejected_batches["cluster"] = run_a->cluster_rejected_batches;
    expect.rejected_events["cluster"] = run_a->cluster_rejected_events;
  }
  CheckStageLedgers(run_a->art.stages, expect, &check);

  // Cross-stage conservation.
  check.Check(queue != nullptr && retry != nullptr && fanout != nullptr &&
                  ackloss != nullptr && terminal != nullptr &&
                  spool != nullptr,
              "expected stages missing from CollectStats");
  if (queue != nullptr && retry != nullptr && fanout != nullptr &&
      ackloss != nullptr && terminal != nullptr && spool != nullptr) {
    check.CheckEq(queue->events_in, tstats.emitted,
                  "queue.events_in == tracer.emitted");
    check.CheckEq(retry->events_in, queue->events_out,
                  "retry.events_in == queue.events_out");
    check.CheckEq(fanout->events_in,
                  retry->events_out + run_a->art.acks_dropped_events +
                      run_a->cluster_rejected_events,
                  "fanout.events_in == retry.events_out + lost acks + "
                  "cluster rejects");
    check.CheckEq(ackloss->events_in, fanout->events_in,
                  "ackloss.events_in == fanout.events_in");
    check.CheckEq(terminal->events_in, ackloss->events_in,
                  "terminal.events_in == ackloss.events_in");
    check.CheckEq(spool->events_in, fanout->events_in,
                  "spool.events_in == fanout.events_in");
    check.CheckEq(result.spool_lines, spool->events_out,
                  "spool file lines == spool.events_out");
    // End-to-end: every emitted event is spooled, queue-dropped, or
    // dead-lettered; re-driven deliveries (ack lost, or refused by the
    // cluster's ack gate) are the only source of spool surplus.
    check.CheckEq(
        spool->events_in + queue->dropped_events + retry->dead_letter_events,
        tstats.emitted + run_a->art.acks_dropped_events +
            run_a->cluster_rejected_events,
        "end-to-end event conservation");
    if (cluster_mode) {
      // Cluster-wide ledger conservation: after the end-of-run heal and
      // settle, the logical index holds every acked event exactly once —
      // crashes promote replicas and the log replays, but nothing acked is
      // lost and nothing re-driven is double-indexed.
      check.Check(run_a->have_cluster_stats ||
                      run_a->cluster_acked_events == 0,
                  "cluster stats unavailable");
      if (run_a->have_cluster_stats) {
        check.CheckEq(run_a->cluster_stats.doc_count,
                      run_a->cluster_acked_events,
                      "cluster doc_count == acked events");
        check.CheckEq(run_a->cluster_stats.pending_count, 0,
                      "cluster pending_count post-refresh");
      }
      check.CheckEq(run_a->cluster_key_counts.size(),
                    run_a->cluster_canonical.size(),
                    "cluster distinct keys == distinct documents");
      for (const auto& [key, count] : run_a->cluster_key_counts) {
        check.Check(count == 1, "event in cluster " + std::to_string(count) +
                                    " times after failover: " + key);
      }
      check.CheckEq(run_a->cluster_pending_applies, 0,
                    "no pending applies after heal + settle");
      for (const std::string& divergence : run_a->convergence) {
        check.Check(false, "replica convergence: " + divergence);
      }
      // Replication-log ledger: every appended entry is either compacted
      // away or still retained — compaction never loses or double-counts.
      check.CheckEq(run_a->cluster_log_appended,
                    run_a->cluster_log_compacted + run_a->cluster_log_retained,
                    "log appended == compacted + retained");
      // With the settled cluster at the head of every log, retention is
      // bounded by the configured per-shard cushion (64 logical shards) —
      // O(lag), not O(history). The sim default retain=0 makes this exact:
      // a settled cluster holds zero log entries.
      check.CheckLe(run_a->cluster_log_retained,
                    options.cluster_log_retain *
                        cluster::ShardMap::kDefaultLogicalShards,
                    "retained log bounded by the retain cushion");
      // Snapshot catch-up only exists to serve rejoins stranded below a
      // compacted prefix; only a crash (wiped watermarks) or a
      // post-compaction promotion can strand, and both need a node death.
      check.Check(run_a->cluster_snapshot_catchups == 0 || run_a->node_crashed,
                  "snapshot catch-up without a node crash");
      // Parallel scatter parity: the pooled fan-out must be byte-identical
      // to the serial route over the same quiescent cluster — ids, sorted
      // pages, counts, and aggregations alike.
      check.Check(
          run_a->cluster_query_digest == run_a->cluster_query_digest_serial,
          "parallel query fan-out diverged from the serial route");
    } else {
      // Live-index consistency: without a crash, the store holds exactly
      // what the bulk sink delivered (duplicates included).
      if (!run_a->art.crashed) {
        check.Check(run_a->have_live_stats || terminal->events_in == 0,
                    "live index stats unavailable");
        if (run_a->have_live_stats) {
          check.CheckEq(run_a->live_stats.doc_count, terminal->events_in,
                        "live doc_count == bulk.events_in");
          check.CheckEq(run_a->live_stats.pending_count, 0,
                        "live pending_count post-refresh");
        }
      } else if (run_a->have_live_stats) {
        check.CheckLe(run_a->live_stats.doc_count, terminal->events_in,
                      "live doc_count bounded by bulk.events_in post-crash");
        check.CheckEq(run_a->live_stats.pending_count, 0,
                      "live pending_count post-refresh");
      }
    }
  }

  // Exactly-once after crash-restart replay: every document the spool
  // acked is present in the restored index exactly once.
  check.CheckEq(run_a->restore.loaded, result.spool_unique,
                "restored loaded == spool unique docs");
  check.CheckEq(run_a->restore.duplicates,
                result.spool_lines - result.spool_unique,
                "restore duplicate accounting");
  if (run_a->restored) {
    check.CheckEq(run_a->restored_stats.doc_count, result.spool_unique,
                  "restored doc_count");
    check.CheckEq(run_a->restored_stats.pending_count, 0,
                  "restored pending_count post-refresh");
    check.CheckEq(run_a->restored_key_counts.size(), result.spool_unique,
                  "restored distinct event keys");
    for (const auto& [key, count] : run_a->restored_key_counts) {
      check.Check(count == 1, "event indexed " + std::to_string(count) +
                                  " times after replay: " + key);
    }
  }

  // Scattered-vs-single-store golden parity. The cluster never invents
  // documents, and when no delivery was rejected (accept order == spool
  // first-occurrence order) the scatter/gather results — ids, sorted pages,
  // counts, aggregations — are byte-identical to the restored single store
  // holding the same spool.
  if (cluster_mode) {
    for (const std::string& doc : run_a->cluster_canonical) {
      check.Check(run_a->spool_unique.count(doc) > 0,
                  "cluster document absent from spool: " + doc);
    }
    if (run_a->restored && run_a->cluster_rejected_batches == 0) {
      check.Check(!run_a->cluster_query_digest.empty(),
                  "cluster query digest missing");
      check.CheckEq(run_a->cluster_canonical.size(),
                    run_a->restored_canonical.size(),
                    "cluster document set == restored document set");
      check.Check(
          run_a->cluster_query_digest == run_a->restored_query_digest,
          "scattered query results diverged from the single-store oracle");
    }
  }

  // Golden parity: a faulty schedule may lose events but must never invent
  // or corrupt them, and correlation must agree with the serial golden run
  // wherever it resolves at all.
  for (const std::string& doc : run_a->spool_unique) {
    check.Check(golden->spool_unique.count(doc) > 0,
                "faulty document absent from golden run: " + doc);
  }
  for (const auto& [tag, path] : run_a->tag_to_path) {
    auto it = golden->tag_to_path.find(tag);
    check.Check(it != golden->tag_to_path.end() && it->second == path,
                "correlation diverged from golden for tag " + tag);
  }

  result.violations = check.violations();
  return result;
}

}  // namespace dio::sim
