// InvariantChecker: the assertion library the simulation harness runs after
// every schedule. Unlike a gtest EXPECT, a violation does not stop the run —
// all violations are collected so one failing seed reports every broken
// invariant at once, and the caller turns the list into a minimal repro line
// (`--seed=X --fault-plan=Y`).
//
// The checks encode the pipeline's conservation laws:
//  * every StageStats ledger balances: in == out + dropped + dead-lettered
//    (+ explicitly expected rejections for stages that report upstream
//    failures without owning the loss, e.g. a fan-out with a failing child);
//  * the tracer's counters are internally consistent for a balanced
//    workload (every enter got its exit, everything drained at Stop).
// Cross-stage identities, exactly-once indexing, and golden-run parity are
// asserted by the simulation itself (simulation.cc) using the same checker.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tracer/tracer.h"
#include "transport/transport.h"

namespace dio::sim {

class InvariantChecker {
 public:
  // Records a violation when `condition` is false.
  void Check(bool condition, std::string what);
  // Records a violation when `actual != expected`, with both values in the
  // message.
  void CheckEq(std::uint64_t actual, std::uint64_t expected,
               std::string_view what);
  // Like CheckEq but only an upper bound: actual <= bound.
  void CheckLe(std::uint64_t actual, std::uint64_t bound,
               std::string_view what);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  // All violations joined with newlines ("" when ok).
  [[nodiscard]] std::string Report() const;

 private:
  std::vector<std::string> violations_;
};

// Per-stage rejections the ledger check should tolerate: batches/events a
// stage counted in and reported a failure for, where the loss (if any) is
// owned elsewhere. Keyed by StageStats::stage.
struct LedgerExpectations {
  std::map<std::string, std::uint64_t> rejected_batches;
  std::map<std::string, std::uint64_t> rejected_events;
};

// Asserts in == out + dropped + dead_letter (+ expected rejections) for
// every stage, for both the batch and event counters.
void CheckStageLedgers(const std::vector<transport::StageStats>& stages,
                       const LedgerExpectations& expect,
                       InvariantChecker* check);

// Asserts the tracer's counters are internally consistent after Stop() for
// a balanced workload (every syscall completed, rings fully drained):
//   enter_hits == exit_hits
//   enter_hits == filtered_out + pending_overflow + ring_pushed + ring_dropped
//   exit_hits  == unmatched_exit + ring_pushed + ring_dropped
//   ring_pushed == consumed
//   consumed   == emitted + user_filtered + decode_errors
void CheckTracerCounters(const tracer::TracerStats& stats,
                         InvariantChecker* check);

}  // namespace dio::sim
