// SimScheduler: the seeded cooperative scheduler at the heart of the
// deterministic simulation harness (FoundationDB-style). Every concurrent
// entity of the pipeline — workload threads, tracer consumers, the queue
// sender, fault controllers — is registered as an *actor* with a step
// function, and the scheduler picks which actor runs next from a seeded
// PRNG. No real threads exist, so one seed fully determines the
// interleaving; virtual time (a ManualClock) advances by a fixed quantum
// per step. The schedule is folded into an FNV-1a digest (optionally kept
// as a full text trace), so "same seed => byte-identical schedule" is
// checkable, and any failure replays exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace dio::sim {

// Outcome of one actor step. kIdle actors stay schedulable (they are
// waiting on another actor's progress); kDone actors are never stepped
// again. The scheduler terminates when every actor is done.
enum class StepResult { kWorked, kIdle, kDone };

struct SchedulerOptions {
  std::uint64_t seed = 1;
  // Virtual time added to the sim clock per scheduling step.
  Nanos step_quantum_ns = 10 * kMicrosecond;
  // Runaway guard: Run() gives up (returns false) after this many steps.
  std::size_t max_steps = 2'000'000;
  // Serial mode for the golden run: actors are stepped round-robin instead
  // of at random.
  bool round_robin = false;
  // Keep the full schedule trace text (one line per step) in addition to
  // the digest. Costs memory proportional to steps; used for repro dumps.
  bool keep_trace = false;
};

class SimScheduler {
 public:
  SimScheduler(ManualClock* clock, SchedulerOptions options);

  void AddActor(std::string name, std::function<StepResult()> step);

  // Steps actors until all report kDone. Returns false if max_steps was
  // exhausted first (a livelocked schedule — itself an invariant violation).
  bool Run();

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  // FNV-1a over (step index, actor name, result) for every step taken.
  [[nodiscard]] std::uint64_t trace_digest() const { return digest_; }
  [[nodiscard]] const std::string& trace() const { return trace_; }

 private:
  struct Actor {
    std::string name;
    std::function<StepResult()> step;
    bool done = false;
  };

  void Record(const Actor& actor, StepResult result);

  ManualClock* clock_;
  SchedulerOptions options_;
  Random rng_;
  std::vector<Actor> actors_;
  std::uint64_t steps_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::string trace_;
  std::size_t rr_next_ = 0;
};

}  // namespace dio::sim
