#include "sim/invariants.h"

#include <utility>

namespace dio::sim {

void InvariantChecker::Check(bool condition, std::string what) {
  if (!condition) violations_.push_back(std::move(what));
}

void InvariantChecker::CheckEq(std::uint64_t actual, std::uint64_t expected,
                               std::string_view what) {
  if (actual != expected) {
    violations_.push_back(std::string(what) + ": got " +
                          std::to_string(actual) + ", want " +
                          std::to_string(expected));
  }
}

void InvariantChecker::CheckLe(std::uint64_t actual, std::uint64_t bound,
                               std::string_view what) {
  if (actual > bound) {
    violations_.push_back(std::string(what) + ": got " +
                          std::to_string(actual) + ", bound " +
                          std::to_string(bound));
  }
}

std::string InvariantChecker::Report() const {
  std::string out;
  for (const std::string& violation : violations_) {
    if (!out.empty()) out += '\n';
    out += violation;
  }
  return out;
}

void CheckStageLedgers(const std::vector<transport::StageStats>& stages,
                       const LedgerExpectations& expect,
                       InvariantChecker* check) {
  for (const transport::StageStats& stage : stages) {
    std::uint64_t rejected_batches = 0;
    std::uint64_t rejected_events = 0;
    if (auto it = expect.rejected_batches.find(stage.stage);
        it != expect.rejected_batches.end()) {
      rejected_batches = it->second;
    }
    if (auto it = expect.rejected_events.find(stage.stage);
        it != expect.rejected_events.end()) {
      rejected_events = it->second;
    }
    check->CheckEq(stage.batches_in,
                   stage.batches_out + stage.dropped_batches +
                       stage.dead_letter_batches + rejected_batches,
                   "ledger[" + stage.stage + "].batches_in");
    check->CheckEq(stage.events_in,
                   stage.events_out + stage.dropped_events +
                       stage.dead_letter_events + rejected_events,
                   "ledger[" + stage.stage + "].events_in");
    check->CheckEq(stage.dropped_batches,
                   stage.dropped_newest + stage.dropped_oldest,
                   "ledger[" + stage.stage + "].dropped_batches split");
  }
}

void CheckTracerCounters(const tracer::TracerStats& stats,
                         InvariantChecker* check) {
  check->CheckEq(stats.enter_hits, stats.exit_hits,
                 "tracer.enter_hits == exit_hits");
  check->CheckEq(stats.enter_hits,
                 stats.filtered_out + stats.pending_overflow +
                     stats.ring_pushed + stats.ring_dropped,
                 "tracer.enter_hits decomposition");
  check->CheckEq(stats.exit_hits,
                 stats.unmatched_exit + stats.ring_pushed + stats.ring_dropped,
                 "tracer.exit_hits decomposition");
  check->CheckEq(stats.ring_pushed, stats.consumed,
                 "tracer.ring_pushed == consumed (post-drain)");
  check->CheckEq(stats.consumed,
                 stats.emitted + stats.user_filtered + stats.decode_errors,
                 "tracer.consumed decomposition");
}

}  // namespace dio::sim
