// FaultPlan: the seeded fault schedule of one simulation run. A plan names
// which fault classes are active and carries their fully-resolved
// parameters, and round-trips through a textual grammar so any run is
// reproducible from the repro line `--seed=X --fault-plan=Y` alone:
//
//   plan     := "none" | clause ("+" clause)*
//   clause   := "overflow" [":burst=N"] [":every=N"]     ring overflow bursts
//             | "queue"    [":policy=P"] [":depth=N"]    queue-stage drops
//             | "fault"    [":rate=F"] [":attempts=N"]   transport faults
//             | "crash"    [":at=N"]                     backend crash+restart
//             | "dupack"   [":every=N"]                  delivered, ack lost
//             | "nodecrash" [":node=N"][":at=N"][":down=N"]   cluster node dies
//             | "partition" [":node=N"][":from=N"][":for=N"]  node unreachable
//             | "lag"       [":node=N"][":from=N"][":for=N"]  replication lags
//
// e.g. "overflow:burst=96:every=64+crash:at=120+dupack:every=3".
// FromSeed derives a plan (classes and parameters) from the run seed, so a
// bare seed sweep explores the fault space; Parse/ToString round-trip
// exactly. The node fault classes exist only in cluster mode
// (`cluster_nodes > 0`): Parse rejects them otherwise, and rejects the
// single-store `crash` clause when the cluster is on (there is no single
// live index to delete — node crashes are the cluster's crash model).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "transport/transport.h"

namespace dio::sim {

enum FaultClassBit : std::uint32_t {
  kFaultRingOverflow = 1u << 0,  // workload bursts overrun tiny rings
  kFaultQueueDrop = 1u << 1,     // bounded queue with a drop policy
  kFaultTransport = 1u << 2,     // injected delivery failures + retries
  kFaultCrashRestart = 1u << 3,  // backend index wiped mid-run
  kFaultDuplicateAck = 1u << 4,  // bulk delivered but ack lost => re-driven
  kFaultNodeCrash = 1u << 5,     // cluster node process death + rejoin
  kFaultPartition = 1u << 6,     // cluster node network partition window
  kFaultLag = 1u << 7,           // cluster node replication throttled
};

struct FaultPlan {
  std::uint32_t classes = 0;

  // kFaultRingOverflow: the workload issues `overflow_burst_ops` syscalls
  // in one scheduler step (consumers cannot run in between) each time the
  // op counter crosses a multiple of `overflow_every_ops`, and the rings
  // are sized small so the burst overruns them.
  std::size_t overflow_burst_ops = 96;
  std::size_t overflow_every_ops = 64;

  // kFaultQueueDrop: bounded queue with a lossy policy.
  transport::Backpressure queue_policy = transport::Backpressure::kBlock;
  std::size_t queue_depth = 64;

  // kFaultTransport: delivery-attempt failure probability and the retry
  // budget that turns persistent failures into dead letters.
  double fault_rate = 0.0;
  std::size_t retry_max_attempts = 4;

  // kFaultCrashRestart: the backend's live index is deleted once the
  // workload has issued this many ops (the crash); after the run the spool
  // is replayed into a restored index (the restart).
  std::size_t crash_at_op = 0;

  // kFaultDuplicateAck: every Nth successfully delivered bulk batch loses
  // its ack, so the retry stage re-drives an already-indexed batch.
  std::size_t dup_ack_every = 0;

  // kFaultNodeCrash: cluster node `crash_node` dies (store and watermarks
  // wiped, replicas promoted) once the workload has issued
  // `node_crash_at_op` ops, and rejoins empty `node_down_for_ops` ops later
  // (0 = stays down until the end-of-run heal), replaying the shard logs.
  std::size_t crash_node = 0;
  std::size_t node_crash_at_op = 0;
  std::size_t node_down_for_ops = 0;

  // kFaultPartition: cluster node `partition_node` becomes unreachable at
  // op `partition_from_op` for `partition_for_ops` ops (0 = until the
  // end-of-run heal). It keeps data and ownership; acks that need it fail.
  std::size_t partition_node = 0;
  std::size_t partition_from_op = 0;
  std::size_t partition_for_ops = 0;

  // kFaultLag: cluster node `lag_node` is throttled (SetThrottled) at op
  // `lag_from_op` for `lag_for_ops` ops (0 = until the end-of-run heal).
  // It still serves sync acks and reads; the async pump skips it, so its
  // replication backlog grows — and caps log compaction — until healed.
  std::size_t lag_node = 0;
  std::size_t lag_from_op = 0;
  std::size_t lag_for_ops = 0;

  [[nodiscard]] bool Has(std::uint32_t bit) const {
    return (classes & bit) != 0;
  }

  // Derives a plan from the run seed: each class is enabled with p = 1/2
  // and its parameters are jittered deterministically. `ops` bounds
  // crash_at_op. With `cluster_nodes > 0` the single-store crash class is
  // replaced by the node fault classes; node crashes are only drawn when
  // `cluster_replicas >= 1` (a replica-less node crash really loses data).
  static FaultPlan FromSeed(std::uint64_t seed, std::size_t ops,
                            std::size_t cluster_nodes = 0,
                            std::size_t cluster_replicas = 1);
  static Expected<FaultPlan> Parse(std::string_view spec, std::size_t ops,
                                   std::size_t cluster_nodes = 0);
  [[nodiscard]] std::string ToString() const;
};

}  // namespace dio::sim
