#include "sim/scheduler.h"

#include <string_view>
#include <utility>

namespace dio::sim {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t FnvMix(std::uint64_t digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (i * 8)) & 0xFF;
    digest *= kFnvPrime;
  }
  return digest;
}

std::uint64_t FnvMix(std::uint64_t digest, std::string_view text) {
  for (const char c : text) {
    digest ^= static_cast<unsigned char>(c);
    digest *= kFnvPrime;
  }
  return digest;
}

}  // namespace

SimScheduler::SimScheduler(ManualClock* clock, SchedulerOptions options)
    : clock_(clock), options_(options), rng_(options.seed) {}

void SimScheduler::AddActor(std::string name,
                            std::function<StepResult()> step) {
  actors_.push_back(Actor{std::move(name), std::move(step), false});
}

void SimScheduler::Record(const Actor& actor, StepResult result) {
  digest_ = FnvMix(digest_, steps_);
  digest_ = FnvMix(digest_, actor.name);
  digest_ = FnvMix(digest_, static_cast<std::uint64_t>(result));
  if (options_.keep_trace) {
    trace_ += std::to_string(steps_);
    trace_ += ' ';
    trace_ += actor.name;
    trace_ += result == StepResult::kWorked
                  ? " worked"
                  : (result == StepResult::kIdle ? " idle" : " done");
    trace_ += " t=";
    trace_ += std::to_string(clock_->NowNanos());
    trace_ += '\n';
  }
}

bool SimScheduler::Run() {
  std::vector<std::size_t> alive;
  while (steps_ < options_.max_steps) {
    alive.clear();
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      if (!actors_[i].done) alive.push_back(i);
    }
    if (alive.empty()) return true;

    std::size_t pick;
    if (options_.round_robin) {
      // Serial golden mode: rotate through the alive actors in order.
      pick = alive[rr_next_ % alive.size()];
      ++rr_next_;
    } else {
      pick = alive[rng_.Uniform(alive.size())];
    }

    Actor& actor = actors_[pick];
    const StepResult result = actor.step();
    if (result == StepResult::kDone) actor.done = true;
    Record(actor, result);
    ++steps_;
    clock_->AdvanceNanos(options_.step_quantum_ns);
  }
  return false;
}

}  // namespace dio::sim
