#include "sim/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <vector>

#include "common/random.h"

namespace dio::sim {

namespace {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t pos = text.find(sep);
    if (pos == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, pos));
    text.remove_prefix(pos + 1);
  }
}

Expected<std::uint64_t> ParseUint(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgument("fault plan: bad integer '" + std::string(text) +
                           "'");
  }
  return value;
}

Expected<double> ParseDouble(std::string_view text) {
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgument("fault plan: bad number '" + std::string(text) +
                           "'");
  }
  return value;
}

}  // namespace

FaultPlan FaultPlan::FromSeed(std::uint64_t seed, std::size_t ops,
                              std::size_t cluster_nodes,
                              std::size_t cluster_replicas) {
  // Decorrelate from the scheduler's and workload's use of the same seed.
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xFA017ULL);
  FaultPlan plan;
  if (rng.OneIn(2)) {
    plan.classes |= kFaultRingOverflow;
    plan.overflow_burst_ops = 64 + rng.Uniform(64);
    plan.overflow_every_ops = 48 + rng.Uniform(48);
  }
  if (rng.OneIn(2)) {
    plan.classes |= kFaultQueueDrop;
    plan.queue_policy = rng.OneIn(2) ? transport::Backpressure::kDropNewest
                                     : transport::Backpressure::kDropOldest;
    plan.queue_depth = 2 + rng.Uniform(3);
  }
  if (rng.OneIn(2)) {
    plan.classes |= kFaultTransport;
    plan.fault_rate = 0.15 + 0.25 * rng.NextDouble();
    plan.retry_max_attempts = 2 + rng.Uniform(3);
  }
  if (rng.OneIn(2)) {
    // Single-store mode only: in cluster mode the crash model is a node
    // crash, drawn below. The roll still happens so enabling the cluster
    // does not reshuffle the other classes' parameters for the same seed.
    const std::size_t lo = ops / 4;
    const std::size_t at = lo + rng.Uniform(std::max<std::size_t>(1, ops / 2));
    if (cluster_nodes == 0) {
      plan.classes |= kFaultCrashRestart;
      plan.crash_at_op = at;
    }
  }
  if (rng.OneIn(2)) {
    plan.classes |= kFaultDuplicateAck;
    plan.dup_ack_every = 2 + rng.Uniform(3);
  }
  if (cluster_nodes > 0) {
    if (cluster_replicas >= 1 && rng.OneIn(2)) {
      // Replica-less clusters skip this class: crashing the only owner of a
      // shard genuinely loses acked data, which is a provisioning error the
      // invariants are not meant to absorb.
      plan.classes |= kFaultNodeCrash;
      plan.crash_node = rng.Uniform(cluster_nodes);
      const std::size_t lo = ops / 5;
      plan.node_crash_at_op =
          lo + rng.Uniform(std::max<std::size_t>(1, ops / 2));
      plan.node_down_for_ops = rng.OneIn(2) ? 0 : ops / 4 + rng.Uniform(ops / 4 + 1);
    }
    if (rng.OneIn(2)) {
      plan.classes |= kFaultPartition;
      plan.partition_node = rng.Uniform(cluster_nodes);
      plan.partition_from_op = rng.Uniform(std::max<std::size_t>(1, ops / 2));
      plan.partition_for_ops =
          rng.OneIn(2) ? 0 : ops / 6 + rng.Uniform(ops / 3 + 1);
    }
    // Drawn after the classes that existed before it, so enabling lag does
    // not reshuffle older plans for the same seed.
    if (rng.OneIn(2)) {
      plan.classes |= kFaultLag;
      plan.lag_node = rng.Uniform(cluster_nodes);
      plan.lag_from_op = rng.Uniform(std::max<std::size_t>(1, ops / 2));
      plan.lag_for_ops = rng.OneIn(2) ? 0 : ops / 6 + rng.Uniform(ops / 3 + 1);
    }
  }
  return plan;
}

Expected<FaultPlan> FaultPlan::Parse(std::string_view spec, std::size_t ops,
                                     std::size_t cluster_nodes) {
  FaultPlan plan;
  if (spec.empty()) return InvalidArgument("fault plan: empty spec");
  if (spec == "none") return plan;
  for (std::string_view clause : Split(spec, '+')) {
    const std::vector<std::string_view> parts = Split(clause, ':');
    const std::string_view name = parts[0];
    std::uint32_t bit = 0;
    if (name == "overflow") {
      bit = kFaultRingOverflow;
    } else if (name == "queue") {
      bit = kFaultQueueDrop;
      plan.queue_policy = transport::Backpressure::kDropNewest;
      plan.queue_depth = 2;
    } else if (name == "fault") {
      bit = kFaultTransport;
      plan.fault_rate = 0.25;
    } else if (name == "crash") {
      if (cluster_nodes > 0) {
        return InvalidArgument(
            "fault plan: 'crash' is the single-store crash model; use "
            "'nodecrash' in cluster mode");
      }
      bit = kFaultCrashRestart;
      plan.crash_at_op = ops / 2;
    } else if (name == "dupack") {
      bit = kFaultDuplicateAck;
      plan.dup_ack_every = 3;
    } else if (name == "nodecrash") {
      if (cluster_nodes == 0) {
        return InvalidArgument(
            "fault plan: 'nodecrash' requires cluster mode (cluster.nodes)");
      }
      bit = kFaultNodeCrash;
      plan.node_crash_at_op = ops / 2;
    } else if (name == "partition") {
      if (cluster_nodes == 0) {
        return InvalidArgument(
            "fault plan: 'partition' requires cluster mode (cluster.nodes)");
      }
      bit = kFaultPartition;
      plan.partition_from_op = ops / 3;
      plan.partition_for_ops = ops / 3;
    } else if (name == "lag") {
      if (cluster_nodes == 0) {
        return InvalidArgument(
            "fault plan: 'lag' requires cluster mode (cluster.nodes)");
      }
      bit = kFaultLag;
      plan.lag_from_op = ops / 3;
      plan.lag_for_ops = ops / 3;
    } else {
      return InvalidArgument("fault plan: unknown clause '" +
                             std::string(name) + "'");
    }
    plan.classes |= bit;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      if (eq == std::string_view::npos) {
        return InvalidArgument("fault plan: expected key=value in '" +
                               std::string(parts[i]) + "'");
      }
      const std::string_view key = parts[i].substr(0, eq);
      const std::string_view value = parts[i].substr(eq + 1);
      if (bit == kFaultRingOverflow && key == "burst") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.overflow_burst_ops = static_cast<std::size_t>(*n);
      } else if (bit == kFaultRingOverflow && key == "every") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.overflow_every_ops = std::max<std::size_t>(1, *n);
      } else if (bit == kFaultQueueDrop && key == "policy") {
        auto policy = transport::BackpressureFromString(value);
        if (!policy.ok()) return policy.status();
        plan.queue_policy = *policy;
      } else if (bit == kFaultQueueDrop && key == "depth") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.queue_depth = std::max<std::size_t>(1, *n);
      } else if (bit == kFaultTransport && key == "rate") {
        auto rate = ParseDouble(value);
        if (!rate.ok()) return rate.status();
        if (*rate < 0.0 || *rate > 1.0) {
          return InvalidArgument("fault plan: rate must be in [0, 1]");
        }
        plan.fault_rate = *rate;
      } else if (bit == kFaultTransport && key == "attempts") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.retry_max_attempts = std::max<std::size_t>(1, *n);
      } else if (bit == kFaultCrashRestart && key == "at") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.crash_at_op = static_cast<std::size_t>(*n);
      } else if (bit == kFaultDuplicateAck && key == "every") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.dup_ack_every = std::max<std::size_t>(1, *n);
      } else if (bit == kFaultNodeCrash && key == "node") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.crash_node = static_cast<std::size_t>(*n);
      } else if (bit == kFaultNodeCrash && key == "at") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.node_crash_at_op = static_cast<std::size_t>(*n);
      } else if (bit == kFaultNodeCrash && key == "down") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.node_down_for_ops = static_cast<std::size_t>(*n);
      } else if (bit == kFaultPartition && key == "node") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.partition_node = static_cast<std::size_t>(*n);
      } else if (bit == kFaultPartition && key == "from") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.partition_from_op = static_cast<std::size_t>(*n);
      } else if (bit == kFaultPartition && key == "for") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.partition_for_ops = static_cast<std::size_t>(*n);
      } else if (bit == kFaultLag && key == "node") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.lag_node = static_cast<std::size_t>(*n);
      } else if (bit == kFaultLag && key == "from") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.lag_from_op = static_cast<std::size_t>(*n);
      } else if (bit == kFaultLag && key == "for") {
        auto n = ParseUint(value);
        if (!n.ok()) return n.status();
        plan.lag_for_ops = static_cast<std::size_t>(*n);
      } else {
        return InvalidArgument("fault plan: unknown key '" +
                               std::string(key) + "' for clause '" +
                               std::string(name) + "'");
      }
    }
  }
  if (plan.Has(kFaultCrashRestart) && ops > 0) {
    plan.crash_at_op = std::min(plan.crash_at_op, ops);
  }
  if (cluster_nodes > 0) {
    plan.crash_node %= cluster_nodes;
    plan.partition_node %= cluster_nodes;
    plan.lag_node %= cluster_nodes;
    if (ops > 0) {
      plan.node_crash_at_op = std::min(plan.node_crash_at_op, ops);
      plan.partition_from_op = std::min(plan.partition_from_op, ops);
      plan.lag_from_op = std::min(plan.lag_from_op, ops);
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  if (classes == 0) return "none";
  std::string out;
  const auto append = [&out](const std::string& clause) {
    if (!out.empty()) out += '+';
    out += clause;
  };
  if (Has(kFaultRingOverflow)) {
    append("overflow:burst=" + std::to_string(overflow_burst_ops) +
           ":every=" + std::to_string(overflow_every_ops));
  }
  if (Has(kFaultQueueDrop)) {
    append("queue:policy=" + std::string(transport::ToString(queue_policy)) +
           ":depth=" + std::to_string(queue_depth));
  }
  if (Has(kFaultTransport)) {
    append("fault:rate=" + std::to_string(fault_rate) +
           ":attempts=" + std::to_string(retry_max_attempts));
  }
  if (Has(kFaultCrashRestart)) {
    append("crash:at=" + std::to_string(crash_at_op));
  }
  if (Has(kFaultDuplicateAck)) {
    append("dupack:every=" + std::to_string(dup_ack_every));
  }
  if (Has(kFaultNodeCrash)) {
    append("nodecrash:node=" + std::to_string(crash_node) +
           ":at=" + std::to_string(node_crash_at_op) +
           ":down=" + std::to_string(node_down_for_ops));
  }
  if (Has(kFaultPartition)) {
    append("partition:node=" + std::to_string(partition_node) +
           ":from=" + std::to_string(partition_from_op) +
           ":for=" + std::to_string(partition_for_ops));
  }
  if (Has(kFaultLag)) {
    append("lag:node=" + std::to_string(lag_node) +
           ":from=" + std::to_string(lag_from_op) +
           ":for=" + std::to_string(lag_for_ops));
  }
  return out;
}

}  // namespace dio::sim
