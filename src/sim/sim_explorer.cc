// sim_explorer: seed-sweep driver for the deterministic simulation.
//
//   sim_explorer [--seeds=N] [--seed=X] [--ops=N] [--fault-plan=SPEC]
//                [--spool-dir=DIR] [--trace] [--json-ingest]
//                [--segment-docs=N] [--replay-trace=FILE]
//                [--cluster=N] [--replicas=R] [--ack=LEVEL]
//
// --replay-trace=FILE replaces the seeded random workload with a recorded
// binary trace (see `dio-replay record`): every task replays FILE through
// a trace::SyscallIssuer into its own directory, and --ops is ignored.
// (--trace, by contrast, keeps the scheduler's step trace in memory.)
//
// --json-ingest sweeps the same seeds over the JSON-oracle ingest route
// (backend.typed_ingest=false) instead of the default typed wire->column
// route; every invariant must hold identically on both.
//
// --segment-docs=N sets the sealed-segment size of the run's stores
// (backend.segment_docs; 0 = legacy rebuild-everything columnar mode).
// The sim default is deliberately tiny (32) so seal boundaries fall mid-
// run; in cluster mode the restore oracle always runs with segment_docs=0,
// making the scattered-vs-restored parity a segments-vs-rebuild oracle.
//
// --cluster=N runs every seed against an N-node ClusterRouter backend
// (--replicas and --ack pick the replication factor and ack level): the
// fault space gains nodecrash/partition and the invariant suite gains
// cluster-wide ledger conservation, replica convergence, and scattered
// vs single-store query parity.
//
// Runs RunSimulation for each seed (1..N, or exactly X), prints one summary
// line per seed, and on any invariant violation prints the minimal repro
// line (`--seed=X --fault-plan=Y`) plus every violated invariant and exits
// non-zero. On success it reports, per fault class, the first seed whose
// plan included the class and the first seed where the fault's loss effect
// actually fired — the coverage table EXPERIMENTS.md records.
//
// Tier-1 runs this with --seeds=25 (the sim_explorer_smoke ctest); the
// nightly sweep is --seeds=2000.
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.h"

namespace {

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (arg.substr(0, name.size()) != name) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *value = arg.substr(1);
  return true;
}

std::uint64_t ParseCount(std::string_view text, const char* flag) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    std::fprintf(stderr, "sim_explorer: bad value for %s: '%.*s'\n", flag,
                 static_cast<int>(text.size()), text.data());
    std::exit(2);
  }
  return value;
}

struct Coverage {
  std::uint64_t first_planned = 0;  // 0 = never
  std::uint64_t first_fired = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 25;
  std::uint64_t only_seed = 0;
  std::size_t ops = 120;
  std::string fault_spec;
  std::string spool_dir;
  std::string replay_trace;
  bool keep_trace = false;
  bool json_ingest = false;
  std::size_t segment_docs = dio::sim::SimOptions{}.segment_docs;
  std::size_t cluster_nodes = 0;
  std::size_t cluster_replicas = 1;
  std::string cluster_ack = "quorum";

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (ParseFlag(arg, "--seeds", &value)) {
      seeds = ParseCount(value, "--seeds");
    } else if (ParseFlag(arg, "--seed", &value)) {
      only_seed = ParseCount(value, "--seed");
    } else if (ParseFlag(arg, "--ops", &value)) {
      ops = static_cast<std::size_t>(ParseCount(value, "--ops"));
    } else if (ParseFlag(arg, "--fault-plan", &value)) {
      fault_spec = std::string(value);
    } else if (ParseFlag(arg, "--spool-dir", &value)) {
      spool_dir = std::string(value);
    } else if (ParseFlag(arg, "--replay-trace", &value)) {
      replay_trace = std::string(value);
    } else if (ParseFlag(arg, "--cluster", &value)) {
      cluster_nodes = static_cast<std::size_t>(ParseCount(value, "--cluster"));
    } else if (ParseFlag(arg, "--replicas", &value)) {
      cluster_replicas =
          static_cast<std::size_t>(ParseCount(value, "--replicas"));
    } else if (ParseFlag(arg, "--ack", &value)) {
      cluster_ack = std::string(value);
    } else if (arg == "--trace") {
      keep_trace = true;
    } else if (ParseFlag(arg, "--segment-docs", &value)) {
      segment_docs =
          static_cast<std::size_t>(ParseCount(value, "--segment-docs"));
    } else if (arg == "--json-ingest") {
      json_ingest = true;
    } else {
      std::fprintf(stderr, "sim_explorer: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }

  std::error_code ec;
  bool owns_spool_dir = false;
  if (spool_dir.empty()) {
    const std::filesystem::path base =
        std::filesystem::temp_directory_path(ec);
    if (ec) {
      std::fprintf(stderr, "sim_explorer: no temp directory: %s\n",
                   ec.message().c_str());
      return 2;
    }
    spool_dir = (base / "dio-sim-explorer").string();
    owns_spool_dir = true;
  }
  std::filesystem::create_directories(spool_dir, ec);
  if (ec) {
    std::fprintf(stderr, "sim_explorer: cannot create %s: %s\n",
                 spool_dir.c_str(), ec.message().c_str());
    return 2;
  }

  std::vector<std::pair<std::uint32_t, const char*>> kClasses = {
      {dio::sim::kFaultRingOverflow, "overflow"},
      {dio::sim::kFaultQueueDrop, "queue"},
      {dio::sim::kFaultTransport, "fault"},
      {dio::sim::kFaultCrashRestart, "crash"},
      {dio::sim::kFaultDuplicateAck, "dupack"},
  };
  if (cluster_nodes > 0) {
    kClasses.emplace_back(dio::sim::kFaultNodeCrash, "nodecrash");
    kClasses.emplace_back(dio::sim::kFaultPartition, "partition");
    kClasses.emplace_back(dio::sim::kFaultLag, "lag");
  }
  std::map<std::string, Coverage> coverage;

  const std::uint64_t first = only_seed != 0 ? only_seed : 1;
  const std::uint64_t last = only_seed != 0 ? only_seed : seeds;
  int failures = 0;
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    dio::sim::SimOptions options;
    options.seed = seed;
    options.ops_per_task = ops;
    options.trace_path = replay_trace;
    options.fault_spec = fault_spec;
    options.spool_dir = spool_dir;
    options.keep_trace = keep_trace;
    options.typed_ingest = !json_ingest;
    options.segment_docs = segment_docs;
    options.cluster_nodes = cluster_nodes;
    options.cluster_replicas = cluster_replicas;
    options.cluster_ack = cluster_ack;

    auto result = dio::sim::RunSimulation(options);
    if (!result.ok()) {
      std::fprintf(stderr, "seed %llu: infrastructure error: %s\n",
                   static_cast<unsigned long long>(seed),
                   std::string(result.status().message()).c_str());
      return 2;
    }

    const bool fired[] = {result->saw_ring_drop,
                          result->saw_queue_drop,
                          result->saw_transport_fault || result->saw_dead_letter,
                          result->saw_crash,
                          result->saw_ack_drop,
                          result->saw_node_crash,
                          result->saw_partition,
                          result->saw_lag};
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
      Coverage& cov = coverage[kClasses[c].second];
      if (result->plan.Has(kClasses[c].first) && cov.first_planned == 0) {
        cov.first_planned = seed;
      }
      if (fired[c] && cov.first_fired == 0) cov.first_fired = seed;
    }

    std::string cluster_note;
    if (cluster_nodes > 0) {
      cluster_note = " cluster_docs=" + std::to_string(result->cluster_docs) +
                     " cluster_dups=" +
                     std::to_string(result->cluster_duplicates) +
                     " log=" + std::to_string(result->cluster_log_compacted) +
                     "c/" + std::to_string(result->cluster_log_retained) +
                     "r catchups=" +
                     std::to_string(result->cluster_snapshot_catchups);
    }
    std::printf(
        "seed %llu route=%s plan=%s steps=%llu digest=%016llx spool=%llu/%llu "
        "restored=%llu%s%s\n",
        static_cast<unsigned long long>(seed),
        json_ingest ? "json" : "typed", result->plan_spec.c_str(),
        static_cast<unsigned long long>(result->steps),
        static_cast<unsigned long long>(result->schedule_digest),
        static_cast<unsigned long long>(result->spool_unique),
        static_cast<unsigned long long>(result->spool_lines),
        static_cast<unsigned long long>(result->restored_docs),
        cluster_note.c_str(), result->ok() ? "" : " VIOLATION");
    if (!result->ok()) {
      ++failures;
      std::printf("repro: %s\n", result->ReproLine(seed).c_str());
      for (const std::string& violation : result->violations) {
        std::printf("  invariant violated: %s\n", violation.c_str());
      }
    }
  }

  std::printf("fault-class coverage (first seed planned / first seed fired):\n");
  for (const auto& [cls, name] : kClasses) {
    (void)cls;
    const Coverage& cov = coverage[name];
    std::printf("  %-8s planned=%llu fired=%llu\n", name,
                static_cast<unsigned long long>(cov.first_planned),
                static_cast<unsigned long long>(cov.first_fired));
  }

  if (owns_spool_dir) std::filesystem::remove_all(spool_dir, ec);

  if (failures > 0) {
    std::printf("%d seed(s) violated invariants\n", failures);
    return 1;
  }
  std::printf("all %llu seed(s) passed\n",
              static_cast<unsigned long long>(last - first + 1));
  return 0;
}
