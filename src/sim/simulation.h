// The whole-pipeline deterministic simulation: one seed fully determines a
// run of workload -> kernel tracepoints -> DioTracer -> QueueTransport ->
// RetryingTransport -> FanOut{BulkClient, FileSpoolSink} -> ElasticStore ->
// FilePathCorrelator, executed thread-free under a SimScheduler and two
// virtual clocks:
//
//  * the workload clock (the kernel's clock) is pinned per operation
//    (base + op_index * delta), so every event document is byte-identical
//    across schedules — which is what makes golden-run parity a set check;
//  * the sim clock paces the scheduler quantum, retry backoff, and the
//    bulk sink's network latency, so timing-dependent code runs in virtual
//    time.
//
// RunSimulation(seed) executes:
//   1. a serial golden run (round-robin schedule, no faults) whose spool is
//      the reference document set and whose correlator output is the
//      reference tag -> path dictionary;
//   2. the faulty run TWICE with the seeded random schedule and the seed's
//      FaultPlan, asserting the two schedule digests are byte-identical;
//   3. a restart: the faulty spool is replayed (deduped) into a restored
//      index — the recovery path after the in-run backend crash;
//   4. the invariant suite: per-stage ledgers, cross-stage conservation,
//      tracer counter consistency, exactly-once presence in the restored
//      index, and parity of documents and correlation against the golden
//      run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/fault_plan.h"
#include "tracer/tracer.h"
#include "transport/transport.h"

namespace dio::sim {

struct SimOptions {
  std::uint64_t seed = 1;
  // Workload size: `num_tasks` simulated application threads, each issuing
  // `ops_per_task` syscalls from its own seeded generator into its own
  // directory (so documents do not depend on cross-task interleaving).
  std::size_t num_tasks = 2;
  std::size_t ops_per_task = 120;
  // Recorded-trace workload: when set, every task replays this binary trace
  // (see trace/reader.h) through a trace::SyscallIssuer instead of running
  // the seeded random op generator — `ops_per_task` is ignored. Recorded
  // paths are rewritten into the task's directory and pre-created before
  // tracing starts, and namespace ops are skipped, so the inode-allocation
  // determinism contract (every inode allocated before tracer.Start())
  // holds exactly as in random mode and all golden-parity invariants apply
  // unchanged to replayed workloads.
  std::string trace_path;
  // Fault plan override; empty = FaultPlan::FromSeed(seed).
  std::string fault_spec;
  // Directory for the runs' NDJSON spool files (created by the caller).
  std::string spool_dir;
  // Keep the full schedule trace of each run (memory-heavy; repro dumps).
  bool keep_trace = false;
  // Ingest route for the run's ElasticStore: true = typed wire->column
  // ingest (the default production path), false = the JSON-oracle route
  // (wire records materialized to documents at the store boundary). Every
  // invariant must hold identically on both.
  bool typed_ingest = true;
  // Sealed-segment size for the run's stores (backend.segment_docs). Small
  // values force many seal boundaries at sim scale; 0 = the legacy
  // rebuild-everything columnar mode. In cluster mode the post-run restore
  // oracle always runs with segment_docs=0 so the scattered-vs-restored
  // parity check doubles as a segments-vs-full-rebuild oracle.
  std::size_t segment_docs = 32;
  // Cluster mode: > 0 replaces the single backend store with a
  // `cluster_nodes`-node ClusterRouter behind a ClusterBulkSink; the fault
  // space gains nodecrash/partition and the invariant suite gains
  // cluster-wide ledger conservation, replica convergence, and scattered
  // vs single-store golden query parity. 0 = the original single store.
  std::size_t cluster_nodes = 0;
  std::size_t cluster_replicas = 1;
  // AckLevel name: primary | quorum | all.
  std::string cluster_ack = "quorum";
  // QueryFanout name: serial | parallel. The harvest digests the query mix
  // through BOTH routes and asserts byte-parity, so this only selects which
  // route the in-run analysis (correlator) takes.
  std::string cluster_fanout = "parallel";
  // Width of the router's query pool. The pool is idle during the
  // scheduled run (nothing queries mid-run), so the schedule digest is
  // unaffected — but the harvest-time digests exercise the real pooled
  // scatter, making the parallel-vs-serial parity invariant non-vacuous.
  std::size_t cluster_query_threads = 2;
  // Per-shard replay cushion (cluster.log_retain_batches). 0 — instead of
  // the production default — so compaction actually fires at sim scale and
  // the snapshot catch-up path is exercised by rejoins.
  std::size_t cluster_log_retain = 0;
};

// Observed outcome of one simulated run (golden or faulty).
struct RunArtifacts {
  bool completed = false;  // scheduler reached all-done before max_steps
  std::uint64_t schedule_digest = 0;
  std::uint64_t steps = 0;
  std::string trace;  // only when keep_trace

  std::vector<transport::StageStats> stages;
  tracer::TracerStats tracer;
  std::uint64_t acks_dropped_batches = 0;
  std::uint64_t acks_dropped_events = 0;
  bool crashed = false;
  std::string spool_path;
  std::string session;
};

struct SimResult {
  FaultPlan plan;
  std::string plan_spec;
  std::vector<std::string> violations;  // empty = all invariants held

  std::uint64_t schedule_digest = 0;  // faulty run
  std::uint64_t steps = 0;

  // Which fault effects the run actually exhibited (a class being in the
  // plan does not guarantee its loss fired; the explorer reports both).
  bool saw_ring_drop = false;
  bool saw_queue_drop = false;
  bool saw_transport_fault = false;
  bool saw_dead_letter = false;
  bool saw_ack_drop = false;
  bool saw_crash = false;
  bool saw_node_crash = false;  // cluster mode: a node actually died
  bool saw_partition = false;   // cluster mode: a partition window opened
  bool saw_lag = false;         // cluster mode: a replication throttle opened
  bool saw_cluster_reject = false;  // an ingest was refused (ack level)

  std::uint64_t spool_lines = 0;     // faulty spool, including duplicates
  std::uint64_t spool_unique = 0;    // distinct documents in the spool
  std::uint64_t restored_docs = 0;   // docs in the replayed (restored) index
  std::uint64_t cluster_docs = 0;    // cluster mode: docs in the cluster index
  std::uint64_t cluster_duplicates = 0;  // re-driven batches deduped by fp
  // Cluster replication-log accounting at harvest (post heal + settle):
  // entries ever appended, dropped by compaction, still retained, and
  // snapshot catch-ups performed by rejoins stranded below a compacted base.
  std::uint64_t cluster_log_appended = 0;
  std::uint64_t cluster_log_compacted = 0;
  std::uint64_t cluster_log_retained = 0;
  std::uint64_t cluster_snapshot_catchups = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  // "--seed=X --fault-plan=Y" — replays this exact run.
  [[nodiscard]] std::string ReproLine(std::uint64_t seed) const;
};

// Runs golden + double faulty run + restore + invariant suite for one seed.
// Only infrastructure errors (unwritable spool dir, bad fault_spec) surface
// as a non-OK status; invariant violations land in SimResult::violations.
Expected<SimResult> RunSimulation(const SimOptions& options);

}  // namespace dio::sim
