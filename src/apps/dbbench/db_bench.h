// db_bench-style workload driver (§III-C methodology): N client threads in a
// closed loop issuing a YCSB-A mix (50% reads / 50% updates, Zipfian keys)
// against the LSM store, recording per-operation latency into time windows
// so the Fig. 3 p99-over-time series can be regenerated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/lsmkv/db.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/latency_recorder.h"
#include "common/status.h"

namespace dio::apps::dbbench {

struct DbBenchOptions {
  int client_threads = 8;  // the paper uses 8 db_bench client threads
  std::uint64_t num_keys = 50'000;
  std::size_t value_bytes = 256;
  double read_fraction = 0.5;  // YCSB-A
  Nanos duration = 10 * kSecond;
  std::uint64_t ops_limit = 0;  // 0 = run for `duration`
  Nanos latency_window = 500 * kMillisecond;
  std::uint64_t seed = 42;
  std::string client_comm = "db_bench";
};

struct DbBenchResult {
  std::uint64_t total_ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t read_misses = 0;
  double duration_seconds = 0.0;
  double throughput_ops_sec = 0.0;
  Histogram latency;                    // all operations
  std::vector<LatencyWindow> windows;   // p99 over time (Fig. 3 series)
};

class DbBench {
 public:
  DbBench(os::Kernel* kernel, lsmkv::Db* db, DbBenchOptions options);

  // Sequentially loads keys 0..num_keys-1 (db_bench `fillseq`).
  Status Fill();

  // Closed-loop mixed workload across client_threads threads.
  DbBenchResult Run();

  static std::string KeyFor(std::uint64_t index);

 private:
  void ClientLoop(int thread_index, Nanos deadline,
                  WindowedLatencyRecorder* recorder, DbBenchResult* result,
                  std::mutex* result_mu);

  os::Kernel* kernel_;
  lsmkv::Db* db_;
  DbBenchOptions options_;
  std::string value_pattern_;
};

}  // namespace dio::apps::dbbench
