#include "apps/dbbench/db_bench.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "common/zipfian.h"

namespace dio::apps::dbbench {

DbBench::DbBench(os::Kernel* kernel, lsmkv::Db* db, DbBenchOptions options)
    : kernel_(kernel), db_(db), options_(options) {
  value_pattern_.resize(options_.value_bytes);
  Random rng(options_.seed);
  for (char& c : value_pattern_) {
    c = static_cast<char>('a' + rng.Uniform(26));
  }
}

std::string DbBench::KeyFor(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu",
                static_cast<unsigned long long>(index));
  return buf;
}

Status DbBench::Fill() {
  const os::Tid tid = db_->RegisterClientThread(options_.client_comm);
  os::ScopedTask task(*kernel_, db_->pid(), tid);
  for (std::uint64_t i = 0; i < options_.num_keys; ++i) {
    DIO_RETURN_IF_ERROR(db_->Put(KeyFor(i), value_pattern_));
  }
  db_->WaitForQuiescence();
  return Status::Ok();
}

void DbBench::ClientLoop(int thread_index, Nanos deadline,
                         WindowedLatencyRecorder* recorder,
                         DbBenchResult* result, std::mutex* result_mu) {
  const os::Tid tid = db_->RegisterClientThread(options_.client_comm);
  os::ScopedTask task(*kernel_, db_->pid(), tid);

  Random op_rng(options_.seed * 7919 + static_cast<std::uint64_t>(thread_index));
  ScrambledZipfianGenerator keys(
      options_.num_keys,
      options_.seed + static_cast<std::uint64_t>(thread_index));

  Histogram local_latency;
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t misses = 0;

  const std::uint64_t per_thread_limit =
      options_.ops_limit == 0
          ? 0
          : options_.ops_limit /
                static_cast<std::uint64_t>(options_.client_threads);

  Clock* clock = kernel_->clock();
  while (true) {
    if (per_thread_limit != 0 && ops >= per_thread_limit) break;
    if (per_thread_limit == 0 && clock->NowNanos() >= deadline) break;

    const std::string key = KeyFor(keys.Next());
    const bool is_read = op_rng.NextDouble() < options_.read_fraction;
    const Nanos start = clock->NowNanos();
    if (is_read) {
      auto value = db_->Get(key);
      if (!value.ok()) ++misses;
      ++reads;
    } else {
      (void)db_->Put(key, value_pattern_);
      ++updates;
    }
    const Nanos latency = clock->NowNanos() - start;
    local_latency.Record(latency);
    recorder->Record(latency);
    ++ops;
  }

  std::scoped_lock lock(*result_mu);
  result->total_ops += ops;
  result->reads += reads;
  result->updates += updates;
  result->read_misses += misses;
  result->latency.Merge(local_latency);
}

DbBenchResult DbBench::Run() {
  DbBenchResult result;
  std::mutex result_mu;
  WindowedLatencyRecorder recorder(kernel_->clock(), options_.latency_window);

  const Nanos start = kernel_->clock()->NowNanos();
  const Nanos deadline = start + options_.duration;
  {
    std::vector<std::jthread> clients;
    clients.reserve(static_cast<std::size_t>(options_.client_threads));
    for (int i = 0; i < options_.client_threads; ++i) {
      clients.emplace_back([this, i, deadline, &recorder, &result,
                            &result_mu] {
        ClientLoop(i, deadline, &recorder, &result, &result_mu);
      });
    }
  }
  const Nanos end = kernel_->clock()->NowNanos();

  result.duration_seconds =
      static_cast<double>(end - start) / static_cast<double>(kSecond);
  result.throughput_ops_sec =
      result.duration_seconds == 0.0
          ? 0.0
          : static_cast<double>(result.total_ops) / result.duration_seconds;
  result.windows = recorder.Windows();
  return result;
}

}  // namespace dio::apps::dbbench
