#include "apps/flb/log_client.h"

namespace dio::apps::flb {

LogClient::LogClient(os::Kernel* kernel, std::string comm)
    : kernel_(kernel) {
  pid_ = kernel_->CreateProcess(comm);
  tid_ = kernel_->SpawnThread(pid_, std::move(comm));
}

LogClient::~LogClient() { kernel_->ExitProcess(pid_); }

std::int64_t LogClient::WriteLog(const std::string& path,
                                 std::string_view payload, bool append) {
  os::ScopedTask task(*kernel_, pid_, tid_);
  std::uint32_t flags = os::openflag::kWriteOnly | os::openflag::kCreate;
  if (append) flags |= os::openflag::kAppend;
  const std::int64_t fd = kernel_->sys_openat(os::kAtFdCwd, path, flags);
  if (fd < 0) return fd;
  const std::int64_t n =
      kernel_->sys_write(static_cast<os::Fd>(fd), payload);
  kernel_->sys_close(static_cast<os::Fd>(fd));
  if (n > 0) bytes_written_ += static_cast<std::uint64_t>(n);
  return n;
}

std::int64_t LogClient::RemoveLog(const std::string& path) {
  os::ScopedTask task(*kernel_, pid_, tid_);
  return kernel_->sys_unlink(path);
}

}  // namespace dio::apps::flb
