// The "app" of §III-B: a client program that generates log files with the
// exact I/O behaviour reported in fluent-bit issue #1875 — create, write,
// close, delete, then recreate the same file name (which recycles the inode
// number) and write again.
#pragma once

#include <string>
#include <vector>

#include "oskernel/kernel.h"

namespace dio::apps::flb {

class LogClient {
 public:
  LogClient(os::Kernel* kernel, std::string comm = "app");
  ~LogClient();

  LogClient(const LogClient&) = delete;
  LogClient& operator=(const LogClient&) = delete;

  // Each call issues openat(O_CREAT) + write + close on the caller's thread
  // (bound via ScopedTask internally). Returns bytes written or -errno.
  std::int64_t WriteLog(const std::string& path, std::string_view payload,
                        bool append = true);
  std::int64_t RemoveLog(const std::string& path);

  [[nodiscard]] os::Pid pid() const { return pid_; }
  [[nodiscard]] os::Tid tid() const { return tid_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  os::Kernel* kernel_;
  os::Pid pid_;
  os::Tid tid_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace dio::apps::flb
