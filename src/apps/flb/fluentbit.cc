#include "apps/flb/fluentbit.h"

#include <chrono>

namespace dio::apps::flb {

FluentBit::FluentBit(os::Kernel* kernel, FluentBitOptions options)
    : kernel_(kernel), options_(std::move(options)) {
  if (options_.pipeline_comm.empty()) {
    options_.pipeline_comm =
        options_.mode == Mode::kBuggyV14 ? "fluent-bit" : "flb-pipeline";
  }
  pid_ = kernel_->CreateProcess("fluent-bit");
  tid_ = kernel_->SpawnThread(pid_, options_.pipeline_comm);
}

FluentBit::~FluentBit() {
  Stop();
  kernel_->ExitProcess(pid_);
}

void FluentBit::Start() {
  if (running_.exchange(true)) return;
  pipeline_ = std::jthread([this](std::stop_token st) { PipelineLoop(st); });
}

void FluentBit::Stop() {
  if (!running_.exchange(false)) return;
  if (pipeline_.joinable()) {
    pipeline_.request_stop();
    pipeline_.join();
  }
}

void FluentBit::PipelineLoop(const std::stop_token& stop) {
  os::ScopedTask task(*kernel_, pid_, tid_);
  while (!stop.stop_requested()) {
    ScanOnce();
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.scan_interval));
  }
  // Final close on shutdown.
  if (fd_ != os::kNoFd) {
    kernel_->sys_close(fd_);
    fd_ = os::kNoFd;
  }
}

void FluentBit::ScanOnce() {
  {
    std::scoped_lock lock(mu_);
    ++stats_.scans;
  }
  os::StatBuf st;
  const std::int64_t rc = kernel_->sys_stat(options_.watch_path, &st);
  if (rc == -os::err::kENOENT) {
    HandleDisappeared();
    return;
  }
  if (rc != 0) return;

  // Rotation/recreation while we still hold the old generation's fd.
  if (fd_ != os::kNoFd && st.ino != current_ino_) {
    HandleDisappeared();
  }
  if (fd_ == os::kNoFd) {
    OpenAndSeek(st.ino);
    if (fd_ == os::kNoFd) return;
  }
  DrainNewContent();
}

void FluentBit::HandleDisappeared() {
  if (fd_ == os::kNoFd) return;
  kernel_->sys_close(fd_);
  fd_ = os::kNoFd;
  {
    std::scoped_lock lock(mu_);
    ++stats_.deletions_observed;
  }
  if (options_.mode == Mode::kFixedV205) {
    // The v2.0.5 fix: retire the database entry when the file goes away.
    db_.Remove(options_.watch_path, current_ino_);
  }
  current_ino_ = 0;
  position_ = 0;
  partial_.clear();
}

void FluentBit::OpenAndSeek(os::InodeNum ino) {
  const std::int64_t fd = kernel_->sys_openat(os::kAtFdCwd,
                                              options_.watch_path,
                                              os::openflag::kReadOnly);
  if (fd < 0) return;
  fd_ = static_cast<os::Fd>(fd);
  current_ino_ = ino;
  {
    std::scoped_lock lock(mu_);
    ++stats_.reopens;
  }
  // Resume from the number of bytes already processed for this
  // (name, inode) pair — the stale-entry read happens right here in v1.4.0.
  const std::uint64_t offset =
      db_.Get(options_.watch_path, ino).value_or(0);
  position_ = offset;
  if (offset > 0) {
    kernel_->sys_lseek(fd_, static_cast<std::int64_t>(offset), os::kSeekSet);
  }
}

void FluentBit::DrainNewContent() {
  std::string chunk;
  while (true) {
    const std::int64_t n =
        kernel_->sys_read(fd_, &chunk, options_.read_chunk);
    if (n <= 0) break;  // 0 = EOF probe (visible in the Fig. 2 trace)
    position_ += static_cast<std::uint64_t>(n);
    db_.Set(options_.watch_path, current_ino_, position_);
    std::scoped_lock lock(mu_);
    stats_.bytes_collected += static_cast<std::uint64_t>(n);
    partial_ += chunk;
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = partial_.find('\n', start);
      if (nl == std::string::npos) break;
      records_.push_back(partial_.substr(start, nl - start));
      ++stats_.records_collected;
      start = nl + 1;
    }
    partial_.erase(0, start);
  }
}

FluentBitStats FluentBit::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<std::string> FluentBit::collected_records() const {
  std::scoped_lock lock(mu_);
  return records_;
}

}  // namespace dio::apps::flb
