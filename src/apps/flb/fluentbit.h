// MiniFlb: a log processor/forwarder with a `tail` input plugin, faithful to
// the I/O behaviour of Fluent Bit's tail input as traced in Fig. 2:
//
//   * polls the watched file with stat(2);
//   * keeps the file open across scans; closes it when the file disappears;
//   * on (re)open, seeks to the offset recorded in a position database keyed
//     (name, inode);
//   * reads new content to EOF (the trailing read that returns 0 is the EOF
//     probe visible in the paper's tables);
//   * records processed bytes back into the position database.
//
// Mode::kBuggyV14 reproduces issue #1875: position-db entries are NOT
// removed when files are deleted, so a recreated file that recycles the
// inode number resumes at a stale offset and data is lost.
// Mode::kFixedV205 removes the entry on deletion, reading from offset 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/flb/position_db.h"
#include "common/clock.h"
#include "oskernel/kernel.h"

namespace dio::apps::flb {

enum class Mode {
  kBuggyV14,   // Fluent Bit v1.4.0 (issue #1875 present)
  kFixedV205,  // Fluent Bit v2.0.5 (fix applied)
};

struct FluentBitOptions {
  Mode mode = Mode::kBuggyV14;
  std::string watch_path;           // single tailed file
  Nanos scan_interval = 20 * kMillisecond;
  // Thread comm visible to the tracer: the paper shows "fluent-bit" for
  // v1.4.0 and "flb-pipeline" for v2.0.5.
  std::string pipeline_comm;
  std::uint64_t read_chunk = 32768;
};

struct FluentBitStats {
  std::uint64_t scans = 0;
  std::uint64_t bytes_collected = 0;
  std::uint64_t records_collected = 0;  // newline-terminated records
  std::uint64_t reopens = 0;
  std::uint64_t deletions_observed = 0;
};

class FluentBit {
 public:
  FluentBit(os::Kernel* kernel, FluentBitOptions options);
  ~FluentBit();

  FluentBit(const FluentBit&) = delete;
  FluentBit& operator=(const FluentBit&) = delete;

  // Spawns the pipeline thread (its own simulated process).
  void Start();
  void Stop();

  // Runs exactly one scan iteration on the caller's thread (which must be
  // bound to a kernel task). Used by deterministic tests and the Fig. 2
  // harness, which interleaves app and Fluent Bit steps explicitly.
  void ScanOnce();

  [[nodiscard]] FluentBitStats stats() const;
  [[nodiscard]] std::vector<std::string> collected_records() const;
  [[nodiscard]] os::Pid pid() const { return pid_; }
  [[nodiscard]] os::Tid tid() const { return tid_; }
  [[nodiscard]] const PositionDb& position_db() const { return db_; }

 private:
  void PipelineLoop(const std::stop_token& stop);
  void HandleDisappeared();
  void OpenAndSeek(os::InodeNum ino);
  void DrainNewContent();

  os::Kernel* kernel_;
  FluentBitOptions options_;
  os::Pid pid_ = os::kNoPid;
  os::Tid tid_ = os::kNoTid;

  PositionDb db_;

  // Tail state (single watched file).
  os::Fd fd_ = os::kNoFd;
  os::InodeNum current_ino_ = 0;
  std::uint64_t position_ = 0;  // bytes processed of the open generation
  std::string partial_;         // carry-over of an unterminated record

  mutable std::mutex mu_;
  FluentBitStats stats_;
  std::vector<std::string> records_;

  std::jthread pipeline_;
  std::atomic<bool> running_{false};
};

}  // namespace dio::apps::flb
