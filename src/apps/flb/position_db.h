// Tail-plugin position database: tracks how many bytes of each watched file
// have been processed, keyed by (file name, inode number) — the same keying
// Fluent Bit uses, and the root cause of issue #1875: when a deleted file's
// inode number is recycled by a new file with the same name, a stale entry
// resolves and reading resumes at the wrong offset (§III-B).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "oskernel/types.h"

namespace dio::apps::flb {

class PositionDb {
 public:
  using Key = std::pair<std::string, os::InodeNum>;

  void Set(const std::string& name, os::InodeNum ino, std::uint64_t offset) {
    std::scoped_lock lock(mu_);
    entries_[{name, ino}] = offset;
  }

  [[nodiscard]] std::optional<std::uint64_t> Get(const std::string& name,
                                                 os::InodeNum ino) const {
    std::scoped_lock lock(mu_);
    auto it = entries_.find({name, ino});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  // v2.0.5 behaviour: entries are removed when the file is deleted.
  void Remove(const std::string& name, os::InodeNum ino) {
    std::scoped_lock lock(mu_);
    entries_.erase({name, ino});
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<Key, std::uint64_t> entries_;
};

}  // namespace dio::apps::flb
