// Memtable: skiplist of key -> (value | tombstone) with byte accounting.
// Thread-safe; the DB swaps a full memtable to "immutable" and hands it to
// the flush thread.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "apps/lsmkv/skiplist.h"

namespace dio::apps::lsmkv {

// A value or a deletion marker.
struct ValueOrTombstone {
  bool deleted = false;
  std::string value;
};

class Memtable {
 public:
  Memtable() = default;

  void Put(const std::string& key, std::string value) {
    std::scoped_lock lock(mu_);
    approximate_bytes_ += key.size() + value.size() + 32;
    list_.Insert(key, ValueOrTombstone{false, std::move(value)});
  }

  void Delete(const std::string& key) {
    std::scoped_lock lock(mu_);
    approximate_bytes_ += key.size() + 32;
    list_.Insert(key, ValueOrTombstone{true, {}});
  }

  // nullopt = key unknown here; a present-but-deleted entry returns a
  // ValueOrTombstone with deleted=true (the caller must stop the search).
  [[nodiscard]] std::optional<ValueOrTombstone> Get(
      const std::string& key) const {
    std::scoped_lock lock(mu_);
    const ValueOrTombstone* found = list_.Find(key);
    if (found == nullptr) return std::nullopt;
    return *found;
  }

  [[nodiscard]] std::size_t ApproximateBytes() const {
    std::scoped_lock lock(mu_);
    return approximate_bytes_;
  }
  [[nodiscard]] std::size_t entries() const {
    std::scoped_lock lock(mu_);
    return list_.size();
  }
  [[nodiscard]] bool empty() const { return entries() == 0; }

  // Ordered scan (used by the flush job; the memtable is immutable by then
  // but locking is kept for safety).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    std::scoped_lock lock(mu_);
    list_.ForEach(fn);
  }

 private:
  mutable std::mutex mu_;
  SkipList<ValueOrTombstone> list_;
  std::size_t approximate_bytes_ = 0;
};

}  // namespace dio::apps::lsmkv
