// Db: an embedded LSM key-value store over the OS substrate, mirroring the
// RocksDB deployment of §III-C:
//   * writes append to a WAL and a skiplist memtable,
//   * full memtables flush to L0 on a dedicated high-priority thread
//     (comm "rocksdb:high0"),
//   * leveled compaction runs on a low-priority pool
//     (comms "rocksdb:low0".."rocksdb:low6"); L0->L1 is exclusive, deeper
//     compactions on disjoint files run in parallel,
//   * writers STALL when L0 is full or the flush lags — the SILK-style
//     client latency spike mechanism,
//   * reads go memtable -> immutable -> block cache -> SSTables (pread64).
//
// Every byte of I/O flows through the substrate syscalls on the calling
// thread, so DIO traces exactly what Fig. 4 shows: client threads
// ("db_bench"), the flush thread, and compaction threads competing for the
// shared disk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/lsmkv/block_cache.h"
#include "apps/lsmkv/memtable.h"
#include "apps/lsmkv/options.h"
#include "apps/lsmkv/sstable.h"
#include "apps/lsmkv/wal.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "oskernel/kernel.h"

namespace dio::apps::lsmkv {

class Db {
 public:
  Db(os::Kernel* kernel, LsmOptions options);
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // Creates the directory tree, recovers any WAL left on the filesystem,
  // and starts the background pools. Must be called once before use.
  Status Open();
  // Flush/compaction pools drain and stop. Idempotent.
  void Close();

  // Client operations. The calling thread must be bound to a kernel task
  // (use RegisterClientThread + ScopedTask, or any bound task).
  Status Put(const std::string& key, std::string value);
  Status Delete(const std::string& key);
  Expected<std::string> Get(const std::string& key);

  // Creates a client thread (comm e.g. "db_bench") in the DB's process.
  os::Tid RegisterClientThread(const std::string& comm);

  [[nodiscard]] os::Pid pid() const { return pid_; }
  [[nodiscard]] LsmStats stats() const;
  [[nodiscard]] const LsmOptions& options() const { return options_; }

  // Introspection for tests / benches.
  [[nodiscard]] std::vector<std::size_t> LevelFileCounts() const;
  [[nodiscard]] std::vector<std::uint64_t> LevelBytes() const;
  [[nodiscard]] int ActiveCompactions() const;
  // Blocks until no flush or compaction work remains.
  void WaitForQuiescence();

 private:
  struct Table {
    TableMeta meta;
    SSTableReader reader;
    Table(TableMeta m, SSTableReader r)
        : meta(std::move(m)), reader(std::move(r)) {}
  };
  using TablePtr = std::shared_ptr<Table>;

  // Immutable read view swapped atomically on structural changes.
  struct Snapshot {
    std::shared_ptr<Memtable> mem;
    std::shared_ptr<Memtable> imm;
    std::vector<std::vector<TablePtr>> levels;
  };

  struct CompactionTask {
    int level = 0;  // inputs from `level` and `level + 1`
    std::vector<TablePtr> inputs_upper;
    std::vector<TablePtr> inputs_lower;
    bool bottommost = false;
  };

  // All Locked() methods require mu_ held.
  void RebuildSnapshotLocked();
  void ScheduleFlushLocked();
  void MaybeScheduleCompactionLocked();
  std::optional<CompactionTask> PickCompactionLocked();
  [[nodiscard]] bool HasCompactionWorkLocked() const;
  [[nodiscard]] std::uint64_t LevelBytesLocked(int level) const;
  [[nodiscard]] std::uint64_t TargetBytes(int level) const;

  void FlushJob(std::shared_ptr<Memtable> imm, std::string wal_path);
  void CompactionWorker();
  void DoCompaction(CompactionTask task);

  Expected<TablePtr> BuildTable(
      const std::vector<std::pair<std::string, ValueOrTombstone>>& entries,
      std::size_t begin, std::size_t end);
  Expected<TablePtr> OpenTable(TableMeta meta);
  std::string TablePath(std::uint64_t id) const;

  os::Kernel* kernel_;
  LsmOptions options_;
  os::Pid pid_ = os::kNoPid;

  BlockCache cache_;

  mutable std::mutex mu_;
  std::condition_variable stall_cv_;
  std::shared_ptr<Memtable> memtable_;
  std::shared_ptr<Memtable> imm_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::uint64_t next_file_id_ = 1;
  std::uint64_t next_wal_id_ = 1;
  std::vector<std::vector<TablePtr>> levels_;
  std::shared_ptr<const Snapshot> snapshot_;
  std::set<std::uint64_t> busy_files_;
  bool l0_compaction_running_ = false;
  int compactions_inflight_ = 0;
  int compaction_jobs_queued_ = 0;
  bool flush_inflight_ = false;
  bool closing_ = false;
  LsmStats stats_;

  std::unique_ptr<ThreadPool> flush_pool_;
  std::unique_ptr<ThreadPool> compaction_pool_;
  bool opened_ = false;
};

}  // namespace dio::apps::lsmkv
