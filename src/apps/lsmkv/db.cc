#include "apps/lsmkv/db.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace dio::apps::lsmkv {

Db::Db(os::Kernel* kernel, LsmOptions options)
    : kernel_(kernel),
      options_(std::move(options)),
      cache_(options_.block_cache_bytes),
      memtable_(std::make_shared<Memtable>()),
      levels_(static_cast<std::size_t>(options_.max_levels)) {
  pid_ = kernel_->CreateProcess("rocksdb");
}

Db::~Db() {
  Close();
  kernel_->ExitProcess(pid_);
}

std::string Db::TablePath(std::uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/sst_%06llu.sst",
                static_cast<unsigned long long>(id));
  return options_.db_path + buf;
}

Status Db::Open() {
  if (opened_) return FailedPrecondition("db already open");
  opened_ = true;

  // Bootstrap thread: a transient task owned by the DB process.
  const os::Tid boot_tid = kernel_->SpawnThread(pid_, "rocksdb:open");
  os::ScopedTask boot(*kernel_, pid_, boot_tid);

  // mkdir -p for the db path.
  std::string partial;
  for (const std::string& part : Split(options_.db_path.substr(1), '/')) {
    if (part.empty()) continue;
    partial += "/" + part;
    const std::int64_t rc = kernel_->sys_mkdir(partial, 0755);
    if (rc != 0 && rc != -os::err::kEEXIST) {
      return Unavailable("mkdir failed: " + partial);
    }
  }

  // Recovery: replay any WAL files left behind (ordered by id), then load
  // any SSTables into L0 (no MANIFEST in this reproduction — levels beyond
  // L0 are rebuilt by compaction).
  std::vector<std::string> entries = kernel_->vfs().ListDir(options_.db_path);
  std::sort(entries.begin(), entries.end());
  for (const std::string& name : entries) {
    if (name.starts_with("wal_") && name.ends_with(".log")) {
      auto replayed = WriteAheadLog::Replay(
          kernel_, options_.db_path + "/" + name,
          [this](std::string key, std::string value) {
            memtable_->Put(key, std::move(value));
          },
          [this](std::string key) { memtable_->Delete(key); });
      if (replayed.ok()) {
        kernel_->sys_unlink(options_.db_path + "/" + name);
      }
    } else if (name.starts_with("sst_") && name.ends_with(".sst")) {
      TableMeta meta;
      meta.path = options_.db_path + "/" + name;
      meta.id = next_file_id_++;
      auto table = OpenTable(meta);
      if (table.ok()) {
        levels_[0].push_back(std::move(table.value()));
      }
    }
  }

  wal_ = std::make_unique<WriteAheadLog>(
      kernel_, options_.db_path + "/wal_" +
                   std::to_string(next_wal_id_++) + ".log");
  if (!wal_->ok()) return Unavailable("cannot open wal");

  flush_pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(options_.flush_threads), "rocksdb:high",
      [this](std::size_t, const std::string& name) {
        const os::Tid tid = kernel_->SpawnThread(pid_, name);
        kernel_->BindCurrentThread(pid_, tid);
      });
  compaction_pool_ = std::make_unique<ThreadPool>(
      static_cast<std::size_t>(options_.compaction_threads), "rocksdb:low",
      [this](std::size_t, const std::string& name) {
        const os::Tid tid = kernel_->SpawnThread(pid_, name);
        kernel_->BindCurrentThread(pid_, tid);
      });

  {
    std::scoped_lock lock(mu_);
    RebuildSnapshotLocked();
    MaybeScheduleCompactionLocked();
  }
  return Status::Ok();
}

void Db::Close() {
  {
    std::scoped_lock lock(mu_);
    if (!opened_ || closing_) return;
    closing_ = true;
  }
  stall_cv_.notify_all();
  WaitForQuiescence();
  flush_pool_.reset();
  compaction_pool_.reset();
  // Teardown I/O (WAL close + every table reader's close) runs under a
  // bound task so traced close events are attributed to the DB process.
  const os::Tid tid = kernel_->SpawnThread(pid_, "rocksdb:close");
  os::ScopedTask task(*kernel_, pid_, tid);
  if (wal_) wal_->Close();
  std::scoped_lock lock(mu_);
  snapshot_.reset();
  for (auto& level : levels_) level.clear();
}

os::Tid Db::RegisterClientThread(const std::string& comm) {
  return kernel_->SpawnThread(pid_, comm);
}

void Db::RebuildSnapshotLocked() {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->mem = memtable_;
  snapshot->imm = imm_;
  snapshot->levels = levels_;
  snapshot_ = std::move(snapshot);
}

// ---- write path -------------------------------------------------------------

Status Db::Put(const std::string& key, std::string value) {
  std::unique_lock lock(mu_);
  if (closing_) return Unavailable("db closing");
  const Nanos stall_start = kernel_->clock()->NowNanos();
  bool stalled = false;
  stall_cv_.wait(lock, [this, &stalled] {
    if (closing_) return true;
    const bool l0_full = levels_[0].size() >=
                         static_cast<std::size_t>(options_.l0_stop_trigger);
    const bool flush_backlog =
        imm_ != nullptr &&
        memtable_->ApproximateBytes() >= options_.memtable_bytes;
    if (l0_full || flush_backlog) {
      stalled = true;
      return false;
    }
    return true;
  });
  if (closing_) return Unavailable("db closing");
  if (stalled) {
    ++stats_.stall_count;
    stats_.stall_ns += kernel_->clock()->NowNanos() - stall_start;
  }

  // WAL append + memtable insert under the write lock (RocksDB serializes
  // its write group the same way).
  DIO_RETURN_IF_ERROR(wal_->AppendPut(key, value, options_.wal_sync_writes));
  memtable_->Put(key, std::move(value));
  ++stats_.puts;

  if (memtable_->ApproximateBytes() >= options_.memtable_bytes &&
      imm_ == nullptr) {
    ScheduleFlushLocked();
  }
  return Status::Ok();
}

Status Db::Delete(const std::string& key) {
  std::unique_lock lock(mu_);
  if (closing_) return Unavailable("db closing");
  DIO_RETURN_IF_ERROR(wal_->AppendDelete(key, options_.wal_sync_writes));
  memtable_->Delete(key);
  ++stats_.deletes;
  if (memtable_->ApproximateBytes() >= options_.memtable_bytes &&
      imm_ == nullptr) {
    ScheduleFlushLocked();
  }
  return Status::Ok();
}

void Db::ScheduleFlushLocked() {
  imm_ = memtable_;
  memtable_ = std::make_shared<Memtable>();
  std::string old_wal_path = wal_->path();
  wal_->Close();
  wal_ = std::make_unique<WriteAheadLog>(
      kernel_, options_.db_path + "/wal_" +
                   std::to_string(next_wal_id_++) + ".log");
  RebuildSnapshotLocked();
  flush_inflight_ = true;
  std::shared_ptr<Memtable> imm = imm_;
  flush_pool_->Submit([this, imm, old_wal_path] {
    FlushJob(imm, old_wal_path);
  });
}

Expected<Db::TablePtr> Db::OpenTable(TableMeta meta) {
  auto reader = SSTableReader::Open(kernel_, meta.path);
  if (!reader.ok()) return reader.status();
  if (meta.min_key.empty() && !reader->index().empty()) {
    // Recovered table: reconstruct the key range from a scan.
    std::string min_key;
    std::string max_key;
    std::uint64_t entries = 0;
    reader->Scan(options_.compaction_io_chunk,
                 [&](const std::string& key, const ValueOrTombstone&) {
                   if (entries == 0) min_key = key;
                   max_key = key;
                   ++entries;
                 });
    meta.min_key = min_key;
    meta.max_key = max_key;
    meta.entries = entries;
  }
  auto table = std::make_shared<Table>(std::move(meta),
                                       std::move(reader.value()));
  const std::uint64_t file_id = table->meta.id;
  table->reader.set_block_fetcher(
      [this, file_id](const SSTableReader& r,
                      const BlockIndexEntry& e) -> Expected<std::string> {
        const BlockCache::Key key{file_id, e.offset};
        if (auto hit = cache_.Get(key)) return std::move(*hit);
        auto block = r.ReadBlock(e);
        if (block.ok()) cache_.Put(key, block.value());
        return block;
      });
  return table;
}

Expected<Db::TablePtr> Db::BuildTable(
    const std::vector<std::pair<std::string, ValueOrTombstone>>& entries,
    std::size_t begin, std::size_t end) {
  std::uint64_t id;
  {
    std::scoped_lock lock(mu_);
    id = next_file_id_++;
  }
  TableMeta meta;
  meta.id = id;
  SSTableBuilder builder(kernel_, TablePath(id), options_.block_bytes);
  for (std::size_t i = begin; i < end; ++i) {
    DIO_RETURN_IF_ERROR(builder.Add(entries[i].first, entries[i].second));
  }
  auto built = builder.Finish();
  if (!built.ok()) return built.status();
  built->id = id;
  return OpenTable(std::move(built.value()));
}

void Db::FlushJob(std::shared_ptr<Memtable> imm, std::string wal_path) {
  // Runs on the high-priority pool thread (comm rocksdb:high0, bound).
  std::vector<std::pair<std::string, ValueOrTombstone>> entries;
  entries.reserve(imm->entries());
  imm->ForEach([&](const std::string& key, const ValueOrTombstone& value) {
    entries.emplace_back(key, value);
  });

  auto table = BuildTable(entries, 0, entries.size());
  if (!table.ok()) {
    log::Error("flush failed: ", table.status().ToString());
    return;
  }
  kernel_->sys_unlink(wal_path);

  {
    std::scoped_lock lock(mu_);
    levels_[0].push_back(std::move(table.value()));
    imm_.reset();
    flush_inflight_ = false;
    ++stats_.flushes;
    RebuildSnapshotLocked();
    MaybeScheduleCompactionLocked();
  }
  stall_cv_.notify_all();
}

// ---- compaction -------------------------------------------------------------

std::uint64_t Db::LevelBytesLocked(int level) const {
  std::uint64_t total = 0;
  for (const TablePtr& table : levels_[static_cast<std::size_t>(level)]) {
    total += table->meta.bytes;
  }
  return total;
}

std::uint64_t Db::TargetBytes(int level) const {
  std::uint64_t target = options_.level1_bytes;
  for (int l = 1; l < level; ++l) {
    target *= static_cast<std::uint64_t>(options_.level_size_multiplier);
  }
  return target;
}

bool Db::HasCompactionWorkLocked() const {
  if (levels_[0].size() >=
          static_cast<std::size_t>(options_.l0_compaction_trigger) &&
      !l0_compaction_running_) {
    return true;
  }
  for (int level = 1; level + 1 < options_.max_levels; ++level) {
    if (LevelBytesLocked(level) > TargetBytes(level)) return true;
  }
  return false;
}

void Db::MaybeScheduleCompactionLocked() {
  if (closing_) return;
  if (!HasCompactionWorkLocked()) return;
  const int budget = options_.compaction_threads -
                     compactions_inflight_ - compaction_jobs_queued_;
  if (budget <= 0) return;
  ++compaction_jobs_queued_;
  compaction_pool_->Submit([this] { CompactionWorker(); });
}

namespace {
bool Overlaps(const TableMeta& a, const std::string& min_key,
              const std::string& max_key) {
  return !(a.max_key < min_key || max_key < a.min_key);
}
}  // namespace

std::optional<Db::CompactionTask> Db::PickCompactionLocked() {
  const auto is_busy = [this](const TablePtr& table) {
    return busy_files_.contains(table->meta.id);
  };

  // L0 -> L1 (exclusive; all L0 files participate).
  if (levels_[0].size() >=
          static_cast<std::size_t>(options_.l0_compaction_trigger) &&
      !l0_compaction_running_) {
    bool any_busy = std::any_of(levels_[0].begin(), levels_[0].end(), is_busy);
    if (!any_busy) {
      CompactionTask task;
      task.level = 0;
      task.inputs_upper = levels_[0];
      std::string min_key;
      std::string max_key;
      bool first = true;
      for (const TablePtr& table : task.inputs_upper) {
        if (first || table->meta.min_key < min_key) min_key = table->meta.min_key;
        if (first || max_key < table->meta.max_key) max_key = table->meta.max_key;
        first = false;
      }
      bool lower_busy = false;
      for (const TablePtr& table : levels_[1]) {
        if (Overlaps(table->meta, min_key, max_key)) {
          if (is_busy(table)) {
            lower_busy = true;
            break;
          }
          task.inputs_lower.push_back(table);
        }
      }
      if (!lower_busy) {
        for (const TablePtr& t : task.inputs_upper) busy_files_.insert(t->meta.id);
        for (const TablePtr& t : task.inputs_lower) busy_files_.insert(t->meta.id);
        l0_compaction_running_ = true;
        bool deeper = false;
        for (int l = 2; l < options_.max_levels; ++l) {
          if (!levels_[static_cast<std::size_t>(l)].empty()) deeper = true;
        }
        task.bottommost = !deeper;
        return task;
      }
    }
  }

  // Ln -> Ln+1 for overfull levels; disjoint file sets run in parallel.
  for (int level = 1; level + 1 < options_.max_levels; ++level) {
    if (LevelBytesLocked(level) <= TargetBytes(level)) continue;
    for (const TablePtr& candidate :
         levels_[static_cast<std::size_t>(level)]) {
      if (is_busy(candidate)) continue;
      CompactionTask task;
      task.level = level;
      task.inputs_upper.push_back(candidate);
      bool lower_busy = false;
      for (const TablePtr& table :
           levels_[static_cast<std::size_t>(level + 1)]) {
        if (Overlaps(table->meta, candidate->meta.min_key,
                     candidate->meta.max_key)) {
          if (is_busy(table)) {
            lower_busy = true;
            break;
          }
          task.inputs_lower.push_back(table);
        }
      }
      if (lower_busy) continue;
      for (const TablePtr& t : task.inputs_upper) busy_files_.insert(t->meta.id);
      for (const TablePtr& t : task.inputs_lower) busy_files_.insert(t->meta.id);
      bool deeper = false;
      for (int l = level + 2; l < options_.max_levels; ++l) {
        if (!levels_[static_cast<std::size_t>(l)].empty()) deeper = true;
      }
      task.bottommost = !deeper;
      return task;
    }
  }
  return std::nullopt;
}

void Db::CompactionWorker() {
  // Runs on a low-priority pool thread (comm rocksdb:lowX, bound).
  while (true) {
    std::optional<CompactionTask> task;
    {
      std::scoped_lock lock(mu_);
      if (compaction_jobs_queued_ > 0) --compaction_jobs_queued_;
      if (closing_) return;
      task = PickCompactionLocked();
      if (!task.has_value()) return;
      ++compactions_inflight_;
      // Cascade: if more disjoint work exists, wake another worker.
      MaybeScheduleCompactionLocked();
    }
    DoCompaction(std::move(*task));
    {
      std::scoped_lock lock(mu_);
      --compactions_inflight_;
      MaybeScheduleCompactionLocked();
    }
    stall_cv_.notify_all();
  }
}

void Db::DoCompaction(CompactionTask task) {
  // Merge inputs, older first so newer versions overwrite. Within L0,
  // lower file id = older. Lower-level inputs are older than upper-level.
  std::map<std::string, ValueOrTombstone> merged;
  std::uint64_t bytes_read = 0;
  const auto ingest = [&](const TablePtr& table) {
    table->reader.Scan(options_.compaction_io_chunk,
                       [&](const std::string& key,
                           const ValueOrTombstone& value) {
                         merged[key] = value;
                       });
    bytes_read += table->meta.bytes;
  };
  for (const TablePtr& table : task.inputs_lower) ingest(table);
  std::vector<TablePtr> upper_sorted = task.inputs_upper;
  std::sort(upper_sorted.begin(), upper_sorted.end(),
            [](const TablePtr& a, const TablePtr& b) {
              return a->meta.id < b->meta.id;  // older first
            });
  for (const TablePtr& table : upper_sorted) ingest(table);

  // Materialize, dropping tombstones at the bottommost level.
  std::vector<std::pair<std::string, ValueOrTombstone>> entries;
  entries.reserve(merged.size());
  for (auto& [key, value] : merged) {
    if (task.bottommost && value.deleted) continue;
    entries.emplace_back(key, std::move(value));
  }

  // Cut outputs at the target table size.
  std::vector<TablePtr> outputs;
  std::size_t begin = 0;
  std::uint64_t bytes_written = 0;
  while (begin < entries.size()) {
    std::size_t end = begin;
    std::size_t bytes = 0;
    while (end < entries.size() && bytes < options_.sstable_target_bytes) {
      bytes += entries[end].first.size() + entries[end].second.value.size() + 9;
      ++end;
    }
    auto table = BuildTable(entries, begin, end);
    if (!table.ok()) {
      log::Error("compaction output failed: ", table.status().ToString());
      break;
    }
    bytes_written += (*table)->meta.bytes;
    outputs.push_back(std::move(table.value()));
    begin = end;
  }

  // Install results.
  std::vector<TablePtr> to_delete;
  {
    std::scoped_lock lock(mu_);
    const auto remove_inputs = [&](int level,
                                   const std::vector<TablePtr>& inputs) {
      auto& files = levels_[static_cast<std::size_t>(level)];
      for (const TablePtr& input : inputs) {
        files.erase(std::remove_if(files.begin(), files.end(),
                                   [&](const TablePtr& t) {
                                     return t->meta.id == input->meta.id;
                                   }),
                    files.end());
        busy_files_.erase(input->meta.id);
        to_delete.push_back(input);
      }
    };
    remove_inputs(task.level, task.inputs_upper);
    remove_inputs(task.level + 1, task.inputs_lower);
    auto& lower = levels_[static_cast<std::size_t>(task.level + 1)];
    for (TablePtr& output : outputs) lower.push_back(std::move(output));
    std::sort(lower.begin(), lower.end(),
              [](const TablePtr& a, const TablePtr& b) {
                return a->meta.min_key < b->meta.min_key;
              });
    if (task.level == 0) l0_compaction_running_ = false;
    ++stats_.compactions;
    stats_.compaction_bytes_read += bytes_read;
    stats_.compaction_bytes_written += bytes_written;
    RebuildSnapshotLocked();
  }

  // Delete the input files (outside the lock; charged to this thread).
  for (const TablePtr& table : to_delete) {
    cache_.EvictFile(table->meta.id);
    kernel_->sys_unlink(table->meta.path);
  }
}

// ---- read path --------------------------------------------------------------

Expected<std::string> Db::Get(const std::string& key) {
  std::shared_ptr<const Snapshot> snapshot;
  {
    std::scoped_lock lock(mu_);
    if (closing_ || snapshot_ == nullptr) return Unavailable("db closing");
    ++stats_.gets;
    snapshot = snapshot_;
  }
  const auto finish =
      [this](const ValueOrTombstone& v) -> Expected<std::string> {
    if (v.deleted) return NotFound("key deleted");
    std::scoped_lock lock(mu_);
    ++stats_.get_hits;
    return v.value;
  };

  if (auto found = snapshot->mem->Get(key)) return finish(*found);
  if (snapshot->imm) {
    if (auto found = snapshot->imm->Get(key)) return finish(*found);
  }
  // L0: newest first.
  const auto& l0 = snapshot->levels[0];
  for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
    const TableMeta& meta = (*it)->meta;
    if (key < meta.min_key || meta.max_key < key) continue;
    if (auto found = (*it)->reader.Get(key)) return finish(*found);
  }
  // L1+: non-overlapping; binary search by range.
  for (std::size_t level = 1; level < snapshot->levels.size(); ++level) {
    const auto& files = snapshot->levels[level];
    auto it = std::upper_bound(
        files.begin(), files.end(), key,
        [](const std::string& k, const TablePtr& t) {
          return k < t->meta.min_key;
        });
    if (it == files.begin()) continue;
    --it;
    const TableMeta& meta = (*it)->meta;
    if (key < meta.min_key || meta.max_key < key) continue;
    if (auto found = (*it)->reader.Get(key)) return finish(*found);
  }
  return NotFound("key absent: " + key);
}

// ---- introspection ----------------------------------------------------------

LsmStats Db::stats() const {
  std::scoped_lock lock(mu_);
  LsmStats out = stats_;
  out.block_cache_hits = cache_.hits();
  out.block_cache_misses = cache_.misses();
  return out;
}

std::vector<std::size_t> Db::LevelFileCounts() const {
  std::scoped_lock lock(mu_);
  std::vector<std::size_t> out;
  out.reserve(levels_.size());
  for (const auto& level : levels_) out.push_back(level.size());
  return out;
}

std::vector<std::uint64_t> Db::LevelBytes() const {
  std::scoped_lock lock(mu_);
  std::vector<std::uint64_t> out;
  for (int level = 0; level < options_.max_levels; ++level) {
    out.push_back(LevelBytesLocked(level));
  }
  return out;
}

int Db::ActiveCompactions() const {
  std::scoped_lock lock(mu_);
  return compactions_inflight_;
}

void Db::WaitForQuiescence() {
  while (true) {
    if (flush_pool_) flush_pool_->Drain();
    if (compaction_pool_) compaction_pool_->Drain();
    std::scoped_lock lock(mu_);
    if (flush_inflight_ || compactions_inflight_ > 0 ||
        compaction_jobs_queued_ > 0) {
      continue;
    }
    if (!closing_ && HasCompactionWorkLocked() && compaction_pool_) {
      MaybeScheduleCompactionLocked();
      continue;
    }
    return;
  }
}

}  // namespace dio::apps::lsmkv
