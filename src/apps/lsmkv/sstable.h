// SSTable: sorted immutable table on the substrate VFS.
//
// Layout:
//   data blocks:  repeated records { u8 type, u32 klen, u32 vlen, key, value }
//                 sorted by key, cut at ~block_bytes boundaries
//   index block:  repeated { u32 klen, key(first key of block),
//                            u64 offset, u32 length }
//   trailer (24B): u64 index_offset, u64 index_length, u64 magic
//
// The builder streams blocks through write(2); the reader loads the index
// once and serves point lookups with one pread64(2) per (uncached) block —
// this is the read path whose latency the Fig. 3 experiment observes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apps/lsmkv/memtable.h"
#include "common/status.h"
#include "oskernel/kernel.h"

namespace dio::apps::lsmkv {

constexpr std::uint64_t kSstMagic = 0xD10D10D10D10D1ULL;

struct TableMeta {
  std::uint64_t id = 0;
  std::string path;
  std::string min_key;
  std::string max_key;
  std::uint64_t bytes = 0;
  std::uint64_t entries = 0;
};

struct BlockIndexEntry {
  std::string first_key;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

class SSTableBuilder {
 public:
  SSTableBuilder(os::Kernel* kernel, std::string path,
                 std::size_t block_bytes);

  // Keys must be added in strictly increasing order.
  Status Add(const std::string& key, const ValueOrTombstone& value);
  // Flushes the tail block, writes index + trailer, fsyncs and closes.
  Expected<TableMeta> Finish();
  // Abandons the table (removes the partial file).
  void Abandon();

  [[nodiscard]] std::uint64_t bytes_so_far() const { return offset_ + buffer_.size(); }

 private:
  Status FlushBlock();

  os::Kernel* kernel_;
  std::string path_;
  std::size_t block_bytes_;
  os::Fd fd_ = os::kNoFd;
  std::string buffer_;            // current data block
  std::string block_first_key_;
  std::vector<BlockIndexEntry> index_;
  std::uint64_t offset_ = 0;
  TableMeta meta_;
  bool finished_ = false;
};

class SSTableReader {
 public:
  // Opens the table and loads its index (one open + fstat + 2 preads).
  static Expected<SSTableReader> Open(os::Kernel* kernel,
                                      const std::string& path);
  ~SSTableReader();

  SSTableReader(SSTableReader&& other) noexcept;
  SSTableReader& operator=(SSTableReader&& other) noexcept;
  SSTableReader(const SSTableReader&) = delete;
  SSTableReader& operator=(const SSTableReader&) = delete;

  // Point lookup. `read_block` is invoked to fetch a data block; the DB
  // routes it through the block cache. Returns nullopt when absent.
  [[nodiscard]] std::optional<ValueOrTombstone> Get(
      const std::string& key) const;

  // Full ordered scan (compaction input). Reads sequentially in
  // `chunk_bytes` units through read(2).
  Status Scan(std::size_t chunk_bytes,
              const std::function<void(const std::string&,
                                       const ValueOrTombstone&)>& fn) const;

  [[nodiscard]] const std::vector<BlockIndexEntry>& index() const {
    return index_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Block fetch hook (set by the DB to interpose its block cache). When
  // unset, blocks are pread64()'d directly.
  using BlockFetcher =
      std::function<Expected<std::string>(const SSTableReader&,
                                          const BlockIndexEntry&)>;
  void set_block_fetcher(BlockFetcher fetcher) {
    fetcher_ = std::move(fetcher);
  }

  // Direct block read (used by the default path and by the cache on miss).
  [[nodiscard]] Expected<std::string> ReadBlock(
      const BlockIndexEntry& entry) const;

 private:
  SSTableReader(os::Kernel* kernel, std::string path, os::Fd fd)
      : kernel_(kernel), path_(std::move(path)), fd_(fd) {}

  os::Kernel* kernel_ = nullptr;
  std::string path_;
  os::Fd fd_ = os::kNoFd;
  std::vector<BlockIndexEntry> index_;
  BlockFetcher fetcher_;
};

// Parses the records of one data block, calling fn(key, value) in order.
Status ParseBlock(const std::string& block,
                  const std::function<void(std::string,
                                           ValueOrTombstone)>& fn);

}  // namespace dio::apps::lsmkv
