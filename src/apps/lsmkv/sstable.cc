#include "apps/lsmkv/sstable.h"

#include <algorithm>
#include <cstring>

namespace dio::apps::lsmkv {

namespace {

void AppendU32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void AppendU64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
std::uint32_t ReadU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t ReadU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

// ---- builder ----------------------------------------------------------------

SSTableBuilder::SSTableBuilder(os::Kernel* kernel, std::string path,
                               std::size_t block_bytes)
    : kernel_(kernel), path_(std::move(path)), block_bytes_(block_bytes) {
  const std::int64_t fd = kernel_->sys_open(
      path_, os::openflag::kWriteOnly | os::openflag::kCreate |
                 os::openflag::kTruncate);
  if (fd >= 0) fd_ = static_cast<os::Fd>(fd);
  meta_.path = path_;
}

Status SSTableBuilder::Add(const std::string& key,
                           const ValueOrTombstone& value) {
  if (fd_ < 0) return FailedPrecondition("sstable not open: " + path_);
  if (meta_.entries > 0 && key <= meta_.max_key) {
    return InvalidArgument("keys must be added in increasing order");
  }
  if (buffer_.empty()) block_first_key_ = key;
  buffer_.push_back(value.deleted ? 1 : 0);
  AppendU32(&buffer_, static_cast<std::uint32_t>(key.size()));
  AppendU32(&buffer_, static_cast<std::uint32_t>(value.value.size()));
  buffer_ += key;
  buffer_ += value.value;

  if (meta_.entries == 0) meta_.min_key = key;
  meta_.max_key = key;
  ++meta_.entries;

  if (buffer_.size() >= block_bytes_) return FlushBlock();
  return Status::Ok();
}

Status SSTableBuilder::FlushBlock() {
  if (buffer_.empty()) return Status::Ok();
  index_.push_back(BlockIndexEntry{
      block_first_key_, offset_, static_cast<std::uint32_t>(buffer_.size())});
  const std::int64_t n = kernel_->sys_write(fd_, buffer_);
  if (n != static_cast<std::int64_t>(buffer_.size())) {
    return Unavailable("sstable block write failed");
  }
  offset_ += buffer_.size();
  buffer_.clear();
  return Status::Ok();
}

Expected<TableMeta> SSTableBuilder::Finish() {
  if (finished_) return FailedPrecondition("already finished");
  DIO_RETURN_IF_ERROR(FlushBlock());
  // Index block.
  std::string index_block;
  for (const BlockIndexEntry& entry : index_) {
    AppendU32(&index_block, static_cast<std::uint32_t>(entry.first_key.size()));
    index_block += entry.first_key;
    AppendU64(&index_block, entry.offset);
    AppendU32(&index_block, entry.length);
  }
  const std::uint64_t index_offset = offset_;
  std::string trailer;
  AppendU64(&trailer, index_offset);
  AppendU64(&trailer, index_block.size());
  AppendU64(&trailer, kSstMagic);
  if (kernel_->sys_write(fd_, index_block) !=
      static_cast<std::int64_t>(index_block.size())) {
    return Unavailable("sstable index write failed");
  }
  if (kernel_->sys_write(fd_, trailer) !=
      static_cast<std::int64_t>(trailer.size())) {
    return Unavailable("sstable trailer write failed");
  }
  kernel_->sys_fsync(fd_);
  kernel_->sys_close(fd_);
  fd_ = os::kNoFd;
  finished_ = true;
  meta_.bytes = index_offset + index_block.size() + trailer.size();
  return meta_;
}

void SSTableBuilder::Abandon() {
  if (fd_ >= 0) {
    kernel_->sys_close(fd_);
    fd_ = os::kNoFd;
  }
  kernel_->sys_unlink(path_);
  finished_ = true;
}

// ---- reader -----------------------------------------------------------------

Expected<SSTableReader> SSTableReader::Open(os::Kernel* kernel,
                                            const std::string& path) {
  const std::int64_t fd = kernel->sys_open(path, os::openflag::kReadOnly);
  if (fd < 0) return NotFound("sstable missing: " + path);
  SSTableReader reader(kernel, path, static_cast<os::Fd>(fd));

  os::StatBuf st;
  if (kernel->sys_fstat(reader.fd_, &st) != 0 || st.size < 24) {
    kernel->sys_close(reader.fd_);
    reader.fd_ = os::kNoFd;
    return InvalidArgument("sstable truncated: " + path);
  }
  std::string trailer;
  if (kernel->sys_pread64(reader.fd_, &trailer, 24,
                          static_cast<std::int64_t>(st.size - 24)) != 24) {
    kernel->sys_close(reader.fd_);
    reader.fd_ = os::kNoFd;
    return InvalidArgument("sstable trailer unreadable: " + path);
  }
  const std::uint64_t index_offset = ReadU64(trailer.data());
  const std::uint64_t index_length = ReadU64(trailer.data() + 8);
  const std::uint64_t magic = ReadU64(trailer.data() + 16);
  if (magic != kSstMagic || index_offset + index_length + 24 != st.size) {
    kernel->sys_close(reader.fd_);
    reader.fd_ = os::kNoFd;
    return InvalidArgument("sstable corrupt: " + path);
  }
  std::string index_block;
  if (kernel->sys_pread64(reader.fd_, &index_block, index_length,
                          static_cast<std::int64_t>(index_offset)) !=
      static_cast<std::int64_t>(index_length)) {
    kernel->sys_close(reader.fd_);
    reader.fd_ = os::kNoFd;
    return InvalidArgument("sstable index unreadable: " + path);
  }
  std::size_t pos = 0;
  while (pos + 4 <= index_block.size()) {
    const std::uint32_t klen = ReadU32(index_block.data() + pos);
    pos += 4;
    if (pos + klen + 12 > index_block.size()) {
      return InvalidArgument("sstable index corrupt: " + path);
    }
    BlockIndexEntry entry;
    entry.first_key = index_block.substr(pos, klen);
    pos += klen;
    entry.offset = ReadU64(index_block.data() + pos);
    pos += 8;
    entry.length = ReadU32(index_block.data() + pos);
    pos += 4;
    reader.index_.push_back(std::move(entry));
  }
  return reader;
}

SSTableReader::~SSTableReader() {
  if (fd_ >= 0 && kernel_ != nullptr) kernel_->sys_close(fd_);
}

SSTableReader::SSTableReader(SSTableReader&& other) noexcept {
  *this = std::move(other);
}

SSTableReader& SSTableReader::operator=(SSTableReader&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0 && kernel_ != nullptr) kernel_->sys_close(fd_);
    kernel_ = other.kernel_;
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    index_ = std::move(other.index_);
    fetcher_ = std::move(other.fetcher_);
    other.fd_ = os::kNoFd;
    other.kernel_ = nullptr;
  }
  return *this;
}

Expected<std::string> SSTableReader::ReadBlock(
    const BlockIndexEntry& entry) const {
  std::string block;
  const std::int64_t n =
      kernel_->sys_pread64(fd_, &block, entry.length,
                           static_cast<std::int64_t>(entry.offset));
  if (n != static_cast<std::int64_t>(entry.length)) {
    return Unavailable("sstable block read failed: " + path_);
  }
  return block;
}

Status ParseBlock(const std::string& block,
                  const std::function<void(std::string,
                                           ValueOrTombstone)>& fn) {
  std::size_t pos = 0;
  while (pos + 9 <= block.size()) {
    const std::uint8_t type = static_cast<std::uint8_t>(block[pos]);
    const std::uint32_t klen = ReadU32(block.data() + pos + 1);
    const std::uint32_t vlen = ReadU32(block.data() + pos + 5);
    pos += 9;
    if (pos + klen + vlen > block.size()) {
      return InvalidArgument("block record overruns block");
    }
    std::string key = block.substr(pos, klen);
    pos += klen;
    ValueOrTombstone value;
    value.deleted = type == 1;
    value.value = block.substr(pos, vlen);
    pos += vlen;
    fn(std::move(key), std::move(value));
  }
  return pos == block.size()
             ? Status::Ok()
             : InvalidArgument("trailing garbage in block");
}

std::optional<ValueOrTombstone> SSTableReader::Get(
    const std::string& key) const {
  if (index_.empty()) return std::nullopt;
  // Find the last block whose first_key <= key.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](const std::string& k, const BlockIndexEntry& e) {
        return k < e.first_key;
      });
  if (it == index_.begin()) return std::nullopt;
  --it;
  Expected<std::string> block =
      fetcher_ ? fetcher_(*this, *it) : ReadBlock(*it);
  if (!block.ok()) return std::nullopt;

  std::optional<ValueOrTombstone> result;
  ParseBlock(*block, [&](std::string k, ValueOrTombstone v) {
    if (k == key) result = std::move(v);
  });
  return result;
}

Status SSTableReader::Scan(
    std::size_t chunk_bytes,
    const std::function<void(const std::string&, const ValueOrTombstone&)>&
        fn) const {
  // Sequential read of the data area in chunk_bytes units, then parse.
  std::uint64_t data_end = 0;
  for (const BlockIndexEntry& entry : index_) {
    data_end = std::max(data_end, entry.offset + entry.length);
  }
  std::string data;
  data.reserve(data_end);
  std::uint64_t pos = 0;
  std::string chunk;
  while (pos < data_end) {
    const std::uint64_t want =
        std::min<std::uint64_t>(chunk_bytes, data_end - pos);
    const std::int64_t n = kernel_->sys_pread64(
        fd_, &chunk, want, static_cast<std::int64_t>(pos));
    if (n <= 0) return Unavailable("sstable scan read failed: " + path_);
    data += chunk;
    pos += static_cast<std::uint64_t>(n);
  }
  return ParseBlock(data, [&](std::string k, ValueOrTombstone v) {
    fn(k, v);
  });
}

}  // namespace dio::apps::lsmkv
