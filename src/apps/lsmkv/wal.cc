#include "apps/lsmkv/wal.h"

#include <cstring>

namespace dio::apps::lsmkv {

WriteAheadLog::WriteAheadLog(os::Kernel* kernel, std::string path)
    : kernel_(kernel), path_(std::move(path)) {
  const std::int64_t fd = kernel_->sys_open(
      path_, os::openflag::kWriteOnly | os::openflag::kCreate |
                 os::openflag::kTruncate | os::openflag::kAppend);
  if (fd >= 0) fd_ = static_cast<os::Fd>(fd);
}

WriteAheadLog::~WriteAheadLog() { Close(); }

void WriteAheadLog::Close() {
  if (fd_ >= 0) {
    kernel_->sys_close(fd_);
    fd_ = os::kNoFd;
  }
}

Status WriteAheadLog::Append(std::uint8_t type, std::string_view key,
                             std::string_view value, bool sync) {
  if (fd_ < 0) return FailedPrecondition("wal not open");
  std::string record;
  record.reserve(9 + key.size() + value.size());
  record.push_back(static_cast<char>(type));
  const auto klen = static_cast<std::uint32_t>(key.size());
  const auto vlen = static_cast<std::uint32_t>(value.size());
  record.append(reinterpret_cast<const char*>(&klen), 4);
  record.append(reinterpret_cast<const char*>(&vlen), 4);
  record.append(key);
  record.append(value);
  const std::int64_t n = kernel_->sys_write(fd_, record);
  if (n != static_cast<std::int64_t>(record.size())) {
    return Unavailable("wal write failed");
  }
  if (sync) kernel_->sys_fdatasync(fd_);
  return Status::Ok();
}

Status WriteAheadLog::AppendPut(std::string_view key, std::string_view value,
                                bool sync) {
  return Append(0, key, value, sync);
}

Status WriteAheadLog::AppendDelete(std::string_view key, bool sync) {
  return Append(1, key, {}, sync);
}

}  // namespace dio::apps::lsmkv
