// A classic skiplist keyed by std::string — the memtable's ordered core
// (RocksDB's memtable is likewise a skiplist). Single-writer-at-a-time by
// contract (the memtable serializes writers); readers take the same lock in
// Memtable, so no lock-free tricks are needed here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"

namespace dio::apps::lsmkv {

template <typename Value>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : head_(std::make_unique<Node>("", Value{}, kMaxHeight)) {}

  // Inserts or overwrites. Returns true if the key was new.
  bool Insert(const std::string& key, Value value) {
    Node* prev[kMaxHeight];
    Node* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) {
      node->value = std::move(value);
      return false;
    }
    const int height = RandomHeight();
    if (height > height_) {
      for (int level = height_; level < height; ++level) {
        prev[level] = head_.get();
      }
      height_ = height;
    }
    auto owned = std::make_unique<Node>(key, std::move(value), height);
    Node* raw = owned.get();
    for (int level = 0; level < height; ++level) {
      raw->next[level] = prev[level]->next[level];
      prev[level]->next[level] = raw;
    }
    nodes_.push_back(std::move(owned));
    ++size_;
    return true;
  }

  [[nodiscard]] const Value* Find(const std::string& key) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node != nullptr && node->key == key) return &node->value;
    return nullptr;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // In-order traversal.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* node = head_->next[0]; node != nullptr; node = node->next[0]) {
      fn(node->key, node->value);
    }
  }

 private:
  struct Node {
    Node(std::string k, Value v, int height)
        : key(std::move(k)), value(std::move(v)), next(height, nullptr) {}
    std::string key;
    Value value;
    std::vector<Node*> next;
  };

  Node* FindGreaterOrEqual(const std::string& key, Node** prev) const {
    Node* node = head_.get();
    int level = height_ - 1;
    while (true) {
      Node* next = node->next[level];
      if (next != nullptr && next->key < key) {
        node = next;
      } else {
        if (prev != nullptr) prev[level] = node;
        if (level == 0) return next;
        --level;
      }
    }
  }

  int RandomHeight() {
    int height = 1;
    // P = 1/4 branching, like LevelDB/RocksDB.
    while (height < kMaxHeight && rng_.OneIn(4)) ++height;
    return height;
  }

  std::unique_ptr<Node> head_;
  std::vector<std::unique_ptr<Node>> nodes_;  // ownership
  int height_ = 1;
  std::size_t size_ = 0;
  Random rng_{0xdb5eedULL};
};

}  // namespace dio::apps::lsmkv
