// Write-ahead log: length-prefixed Put/Delete records appended through the
// substrate's write(2). One log per memtable generation; replayed on open.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "oskernel/kernel.h"

namespace dio::apps::lsmkv {

class WriteAheadLog {
 public:
  // Opens (creating/truncating) `path` on the calling kernel task.
  WriteAheadLog(os::Kernel* kernel, std::string path);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  // Appends one record; optionally fdatasync()s.
  Status AppendPut(std::string_view key, std::string_view value, bool sync);
  Status AppendDelete(std::string_view key, bool sync);

  // Closes the fd (the file stays for replay until the DB unlinks it).
  void Close();

  // Replays a log file, invoking put(key, value) / del(key) per record.
  // Returns the number of records applied.
  template <typename PutFn, typename DelFn>
  static Expected<std::size_t> Replay(os::Kernel* kernel,
                                      const std::string& path, PutFn&& put,
                                      DelFn&& del);

 private:
  Status Append(std::uint8_t type, std::string_view key,
                std::string_view value, bool sync);

  os::Kernel* kernel_;
  std::string path_;
  os::Fd fd_ = os::kNoFd;
};

// ---- implementation of the templated replay --------------------------------

template <typename PutFn, typename DelFn>
Expected<std::size_t> WriteAheadLog::Replay(os::Kernel* kernel,
                                            const std::string& path,
                                            PutFn&& put, DelFn&& del) {
  const std::int64_t fd =
      kernel->sys_open(path, os::openflag::kReadOnly);
  if (fd < 0) return NotFound("wal not found: " + path);
  std::string content;
  std::string chunk;
  while (true) {
    const std::int64_t n =
        kernel->sys_read(static_cast<os::Fd>(fd), &chunk, 1u << 20);
    if (n <= 0) break;
    content += chunk;
  }
  kernel->sys_close(static_cast<os::Fd>(fd));

  std::size_t records = 0;
  std::size_t pos = 0;
  while (pos + 9 <= content.size()) {
    const std::uint8_t type = static_cast<std::uint8_t>(content[pos]);
    std::uint32_t klen = 0;
    std::uint32_t vlen = 0;
    std::memcpy(&klen, content.data() + pos + 1, 4);
    std::memcpy(&vlen, content.data() + pos + 5, 4);
    pos += 9;
    if (pos + klen + vlen > content.size()) break;  // torn tail record
    std::string key = content.substr(pos, klen);
    pos += klen;
    std::string value = content.substr(pos, vlen);
    pos += vlen;
    if (type == 0) {
      put(std::move(key), std::move(value));
    } else {
      del(std::move(key));
    }
    ++records;
  }
  return records;
}

}  // namespace dio::apps::lsmkv
