// User-space LRU block cache (RocksDB's block cache equivalent). Hot blocks
// are served from memory without issuing syscalls; only misses reach the
// disk — which is what lets compaction I/O dominate device time in §III-C.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace dio::apps::lsmkv {

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  struct Key {
    std::uint64_t file_id;
    std::uint64_t offset;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.file_id * 0x9E3779B97F4A7C15ULL ^
                                        k.offset);
    }
  };

  [[nodiscard]] std::optional<std::string> Get(const Key& key) {
    std::scoped_lock lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->block;
  }

  void Put(const Key& key, std::string block) {
    std::scoped_lock lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_ -= it->second->block.size();
      it->second->block = std::move(block);
      bytes_ += it->second->block.size();
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      lru_.push_front(Entry{key, std::move(block)});
      bytes_ += lru_.front().block.size();
      map_[key] = lru_.begin();
    }
    while (bytes_ > capacity_ && !lru_.empty()) {
      bytes_ -= lru_.back().block.size();
      map_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }

  // Drops all blocks of a file (called when compaction deletes the table).
  void EvictFile(std::uint64_t file_id) {
    std::scoped_lock lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.file_id == file_id) {
        bytes_ -= it->block.size();
        map_.erase(it->key);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }

  [[nodiscard]] std::uint64_t hits() const {
    std::scoped_lock lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::scoped_lock lock(mu_);
    return misses_;
  }
  [[nodiscard]] std::size_t bytes() const {
    std::scoped_lock lock(mu_);
    return bytes_;
  }

 private:
  struct Entry {
    Key key;
    std::string block;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dio::apps::lsmkv
