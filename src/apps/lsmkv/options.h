// Tuning knobs for the LSM KVS, defaulted to mirror the §III-C RocksDB
// deployment at laptop scale: 1 high-priority flush thread, 7 low-priority
// compaction threads, L0 build-up triggering compactions, and write stalls
// when L0 is full — the machinery behind SILK-style client latency spikes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/clock.h"

namespace dio::apps::lsmkv {

struct LsmOptions {
  std::string db_path = "/data/db";

  // Memtable / WAL.
  std::size_t memtable_bytes = 1u << 20;  // flush threshold
  bool wal_sync_writes = false;           // fsync per write (db_bench: off)

  // SSTable geometry.
  std::size_t block_bytes = 4096;
  std::size_t sstable_target_bytes = 1u << 20;

  // Leveled compaction.
  int l0_compaction_trigger = 4;   // schedule L0->L1 at this many L0 files
  int l0_stop_trigger = 12;        // stall writes at this many L0 files
  std::uint64_t level1_bytes = 8u << 20;
  int level_size_multiplier = 10;
  std::size_t compaction_io_chunk = 256u << 10;  // read/write chunk size
  int max_levels = 7;

  // Background threads (the paper's RocksDB config: 1 flush + 7 compaction).
  int flush_threads = 1;
  int compaction_threads = 7;

  // Block cache (user-space, like RocksDB's; absorbs hot reads so only
  // misses hit the disk through syscalls).
  std::size_t block_cache_bytes = 8u << 20;
};

struct LsmStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t compaction_bytes_read = 0;
  std::uint64_t compaction_bytes_written = 0;
  std::uint64_t stall_count = 0;       // writes that hit a stall condition
  Nanos stall_ns = 0;                  // total time writers spent stalled
  std::uint64_t block_cache_hits = 0;
  std::uint64_t block_cache_misses = 0;
};

}  // namespace dio::apps::lsmkv
