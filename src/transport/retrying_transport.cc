#include "transport/retrying_transport.h"

#include <algorithm>
#include <utility>

namespace dio::transport {

RetryingTransport::RetryingTransport(std::unique_ptr<Transport> downstream,
                                     RetryOptions options, Clock* clock)
    : downstream_(std::move(downstream)),
      options_(options),
      clock_(clock),
      rng_(options.fault_seed) {
  stats_.stage = "retry";
  options_.max_attempts = std::max<std::size_t>(1, options_.max_attempts);
  options_.backoff_multiplier = std::max(1.0, options_.backoff_multiplier);
  options_.jitter = std::clamp(options_.jitter, 0.0, 1.0);
}

void RetryingTransport::set_fault_hook(FaultHook hook) {
  std::scoped_lock lock(mu_);
  fault_hook_ = std::move(hook);
}

Status RetryingTransport::InjectFault(const EventBatch& batch,
                                      std::size_t attempt) {
  FaultHook hook;
  bool fire = false;
  {
    std::scoped_lock lock(mu_);
    if (fault_hook_) {
      hook = fault_hook_;
    } else if (options_.fault_rate > 0.0) {
      fire = rng_.NextDouble() < options_.fault_rate;
    }
  }
  if (hook) {
    Status status = hook(batch, attempt);
    if (!status.ok()) {
      std::scoped_lock lock(mu_);
      stats_.faults_injected += 1;
    }
    return status;
  }
  if (fire) {
    std::scoped_lock lock(mu_);
    stats_.faults_injected += 1;
    return Unavailable("injected network fault");
  }
  return Status::Ok();
}

Status RetryingTransport::Submit(EventBatch batch) {
  const std::size_t batch_events = batch.size();
  {
    std::scoped_lock lock(mu_);
    stats_.batches_in += 1;
    stats_.events_in += batch_events;
  }
  const Nanos start = clock_->NowNanos();
  Nanos backoff = std::max<Nanos>(1, options_.initial_backoff_ns);
  Status last = Status::Ok();
  for (std::size_t attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    last = InjectFault(batch, attempt);
    if (last.ok()) {
      // Copy so a failed downstream attempt can be retried with the same
      // payload (Submit consumes its argument).
      last = downstream_->Submit(batch);
    }
    if (last.ok()) {
      std::scoped_lock lock(mu_);
      stats_.batches_out += 1;
      stats_.events_out += batch_events;
      return Status::Ok();
    }
    if (attempt == options_.max_attempts) break;
    if (options_.deadline_ns > 0 &&
        clock_->NowNanos() - start >= options_.deadline_ns) {
      break;  // per-batch timeout exhausted
    }
    Nanos sleep_ns = backoff;
    {
      std::scoped_lock lock(mu_);
      stats_.retries += 1;
      if (options_.jitter > 0.0) {
        const double factor =
            1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
        sleep_ns = static_cast<Nanos>(static_cast<double>(backoff) * factor);
      }
    }
    clock_->SleepFor(sleep_ns);
    backoff = std::min<Nanos>(
        options_.max_backoff_ns,
        static_cast<Nanos>(static_cast<double>(backoff) *
                           options_.backoff_multiplier));
  }
  {
    std::scoped_lock lock(mu_);
    stats_.dead_letter_batches += 1;
    stats_.dead_letter_events += batch_events;
  }
  return last;
}

void RetryingTransport::CollectStats(std::vector<StageStats>* out) const {
  {
    std::scoped_lock lock(mu_);
    out->push_back(stats_);
  }
  downstream_->CollectStats(out);
}

}  // namespace dio::transport
