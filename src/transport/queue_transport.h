// QueueTransport: the asynchronous hop of the shipping path. A bounded
// queue decouples the tracer's consumer threads from sink latency (the
// paper's "asynchronous event handling", §II-B); a single sender thread
// pops batches and submits them downstream, so terminal sinks see exactly
// one caller. The Backpressure policy decides what happens when producers
// outrun the sender: block (lossless), drop the incoming batch, or evict
// the oldest queued one — every loss is counted per policy.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "transport/transport.h"

namespace dio::transport {

struct QueueTransportOptions {
  std::size_t max_queued_batches = 1024;
  Backpressure policy = Backpressure::kBlock;
  // Simulation seam (programmatic only, never set from config): no sender
  // thread is spawned; the owner drives delivery explicitly via PumpOne().
  // Under kBlock a producer hitting a full queue delivers the oldest batch
  // downstream inline instead of waiting — lossless and thread-free, so a
  // seeded cooperative scheduler fully determines the interleaving.
  bool manual = false;
};

class QueueTransport final : public Transport {
 public:
  QueueTransport(std::unique_ptr<Transport> downstream,
                 QueueTransportOptions options = {});
  ~QueueTransport() override;

  QueueTransport(const QueueTransport&) = delete;
  QueueTransport& operator=(const QueueTransport&) = delete;

  // Never fails under kBlock (waits for space); under the drop policies the
  // loss is recorded in stats and Ok is still returned — backpressure drops
  // are an accounted-for outcome, not an error the producer can act on.
  Status Submit(EventBatch batch) override;
  // Waits until the queue is empty and the sender is idle, then flushes
  // downstream. Deterministic: after Flush() returns, every batch accepted
  // so far has been delivered, dropped, or dead-lettered below. In manual
  // mode the caller drains the queue inline instead of waiting.
  void Flush() override;
  void CollectStats(std::vector<StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "queue"; }

  // Manual mode only: delivers the oldest queued batch downstream on the
  // calling thread. Returns false when the queue was empty.
  bool PumpOne();
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void SenderLoop(const std::stop_token& stop);
  // Pops the front batch and submits it downstream, releasing `lock` for
  // the duration of the downstream call. Accounting matches SenderLoop.
  void DeliverFrontLocked(std::unique_lock<std::mutex>& lock);

  std::unique_ptr<Transport> downstream_;
  QueueTransportOptions options_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<EventBatch> queue_;
  StageStats stats_;
  bool sending_ = false;  // a batch is in flight downstream
  bool stopping_ = false;
  std::jthread sender_;
};

}  // namespace dio::transport
