#include "transport/fan_out_sink.h"

#include <utility>

namespace dio::transport {

FanOutSink::FanOutSink(std::vector<std::unique_ptr<Transport>> children)
    : children_(std::move(children)) {
  stats_.stage = "fanout";
}

Status FanOutSink::Submit(EventBatch batch) {
  const std::size_t batch_events = batch.size();
  {
    std::scoped_lock lock(mu_);
    stats_.batches_in += 1;
    stats_.events_in += batch_events;
  }
  // Materialize once so N children do not each re-convert the same events —
  // except typed (wire) batches, which stay binary so a typed-ingest-capable
  // child (the bulk client) never sees JSON; a JSON-consuming child (spool)
  // materializes its own copy instead.
  if (batch.wire.empty()) batch.Materialize();
  Status first_error = Status::Ok();
  for (std::size_t i = 0; i < children_.size(); ++i) {
    // Move into the last child, copy into the others.
    Status status = i + 1 == children_.size()
                        ? children_[i]->Submit(std::move(batch))
                        : children_[i]->Submit(batch);
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  }
  {
    std::scoped_lock lock(mu_);
    if (first_error.ok()) {
      stats_.batches_out += 1;
      stats_.events_out += batch_events;
    }
    // On failure the in/out delta records that this batch did not clear all
    // branches; the retry stage above decides whether it becomes a dead
    // letter, so abandonment is counted exactly once in the chain.
  }
  return first_error;
}

void FanOutSink::Flush() {
  for (auto& child : children_) child->Flush();
}

void FanOutSink::CollectStats(std::vector<StageStats>* out) const {
  {
    std::scoped_lock lock(mu_);
    out->push_back(stats_);
  }
  for (const auto& child : children_) child->CollectStats(out);
}

}  // namespace dio::transport
