#include "transport/transport.h"

namespace dio::transport {

std::string_view ToString(Backpressure policy) {
  switch (policy) {
    case Backpressure::kBlock:
      return "block";
    case Backpressure::kDropNewest:
      return "drop_newest";
    case Backpressure::kDropOldest:
      return "drop_oldest";
  }
  return "unknown";
}

Expected<Backpressure> BackpressureFromString(std::string_view name) {
  if (name == "block") return Backpressure::kBlock;
  if (name == "drop_newest") return Backpressure::kDropNewest;
  if (name == "drop_oldest") return Backpressure::kDropOldest;
  return InvalidArgument("unknown backpressure policy: " + std::string(name) +
                         " (expected block|drop_newest|drop_oldest)");
}

void EventBatch::Materialize() {
  if (events.empty() && wire.empty()) return;
  documents.reserve(documents.size() + events.size() + wire.size());
  for (const tracer::Event& event : events) {
    documents.push_back(event.ToJson(session));
  }
  for (const tracer::WireEvent& record : wire) {
    documents.push_back(tracer::WireEventToJson(record, session));
  }
  events.clear();
  wire.clear();
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashInt(std::uint64_t* h, std::uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashString(std::uint64_t* h, std::string_view s) {
  HashInt(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

std::uint64_t EventBatch::Fingerprint() const {
  std::uint64_t h = kFnvOffset;
  HashString(&h, session);
  HashInt(&h, events.size());
  HashInt(&h, wire.size());
  HashInt(&h, documents.size());
  for (const tracer::Event& event : events) {
    HashInt(&h, static_cast<std::uint64_t>(event.nr));
    HashInt(&h, static_cast<std::uint64_t>(event.pid));
    HashInt(&h, static_cast<std::uint64_t>(event.tid));
    HashInt(&h, static_cast<std::uint64_t>(event.time_enter));
    HashInt(&h, static_cast<std::uint64_t>(event.time_exit));
    HashInt(&h, static_cast<std::uint64_t>(event.ret));
    HashString(&h, event.path);
  }
  for (const tracer::WireEvent& record : wire) {
    HashInt(&h, record.nr);
    HashInt(&h, static_cast<std::uint64_t>(record.pid));
    HashInt(&h, static_cast<std::uint64_t>(record.tid));
    HashInt(&h, static_cast<std::uint64_t>(record.time_enter));
    HashInt(&h, static_cast<std::uint64_t>(record.time_exit));
    HashInt(&h, static_cast<std::uint64_t>(record.ret));
    HashString(&h, {record.path, record.path_len});
  }
  for (const Json& doc : documents) {
    HashString(&h, doc.Dump());
  }
  return h;
}

Json StageStats::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("stage", stage);
  out.Set("batches_in", batches_in);
  out.Set("batches_out", batches_out);
  out.Set("events_in", events_in);
  out.Set("events_out", events_out);
  out.Set("dropped_batches", dropped_batches);
  out.Set("dropped_events", dropped_events);
  out.Set("dropped_newest", dropped_newest);
  out.Set("dropped_oldest", dropped_oldest);
  out.Set("retries", retries);
  out.Set("faults_injected", faults_injected);
  out.Set("dead_letter_batches", dead_letter_batches);
  out.Set("dead_letter_events", dead_letter_events);
  out.Set("queue_depth", queue_depth);
  out.Set("max_queue_depth", max_queue_depth);
  return out;
}

}  // namespace dio::transport
