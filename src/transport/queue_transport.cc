#include "transport/queue_transport.h"

#include <algorithm>
#include <utility>

namespace dio::transport {

QueueTransport::QueueTransport(std::unique_ptr<Transport> downstream,
                               QueueTransportOptions options)
    : downstream_(std::move(downstream)), options_(options) {
  stats_.stage = "queue";
  options_.max_queued_batches = std::max<std::size_t>(
      1, options_.max_queued_batches);
  if (!options_.manual) {
    sender_ = std::jthread([this](std::stop_token st) { SenderLoop(st); });
  }
}

QueueTransport::~QueueTransport() {
  // Abnormal-teardown guarantee: drain whatever was accepted before the
  // sender goes away, so destroying an un-flushed chain loses nothing.
  Flush();
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // jthread requests stop and joins.
}

Status QueueTransport::Submit(EventBatch batch) {
  if (batch.empty()) return Status::Ok();
  std::unique_lock lock(mu_);
  stats_.batches_in += 1;
  stats_.events_in += batch.size();
  if (queue_.size() >= options_.max_queued_batches) {
    switch (options_.policy) {
      case Backpressure::kBlock:
        if (options_.manual) {
          // No sender thread to wait for: the producer makes room by
          // delivering the oldest batch itself. Lossless, like blocking,
          // but cooperative — the sim scheduler stays in control.
          while (queue_.size() >= options_.max_queued_batches) {
            DeliverFrontLocked(lock);
          }
          break;
        }
        queue_cv_.wait(lock, [this] {
          return queue_.size() < options_.max_queued_batches || stopping_;
        });
        if (stopping_) {
          // Accounted as a drop rather than silently vanishing: the stage
          // was torn down while the producer was blocked.
          stats_.dropped_batches += 1;
          stats_.dropped_newest += 1;
          stats_.dropped_events += batch.size();
          return Unavailable("queue transport stopping");
        }
        break;
      case Backpressure::kDropNewest:
        stats_.dropped_batches += 1;
        stats_.dropped_newest += 1;
        stats_.dropped_events += batch.size();
        return Status::Ok();
      case Backpressure::kDropOldest: {
        EventBatch& oldest = queue_.front();
        stats_.dropped_batches += 1;
        stats_.dropped_oldest += 1;
        stats_.dropped_events += oldest.size();
        queue_.pop_front();
        break;
      }
    }
  }
  queue_.push_back(std::move(batch));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  queue_cv_.notify_all();
  return Status::Ok();
}

void QueueTransport::Flush() {
  {
    std::unique_lock lock(mu_);
    if (options_.manual) {
      while (!queue_.empty()) DeliverFrontLocked(lock);
    } else {
      drained_cv_.wait(lock, [this] { return queue_.empty() && !sending_; });
    }
  }
  downstream_->Flush();
}

void QueueTransport::DeliverFrontLocked(std::unique_lock<std::mutex>& lock) {
  EventBatch batch = std::move(queue_.front());
  queue_.pop_front();
  sending_ = true;
  const std::size_t batch_events = batch.size();
  lock.unlock();
  // Downstream failures are accounted in the failing stage's own stats,
  // exactly as in SenderLoop.
  (void)downstream_->Submit(std::move(batch));
  lock.lock();
  stats_.batches_out += 1;
  stats_.events_out += batch_events;
  sending_ = false;
  if (queue_.empty()) drained_cv_.notify_all();
}

bool QueueTransport::PumpOne() {
  std::unique_lock lock(mu_);
  if (queue_.empty()) return false;
  DeliverFrontLocked(lock);
  return true;
}

std::size_t QueueTransport::queue_depth() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void QueueTransport::SenderLoop(const std::stop_token& stop) {
  while (true) {
    EventBatch batch;
    {
      std::unique_lock lock(mu_);
      queue_cv_.wait(lock, [this, &stop] {
        return !queue_.empty() || stop.stop_requested() || stopping_;
      });
      if (queue_.empty()) {
        if (stop.stop_requested() || stopping_) return;
        continue;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      sending_ = true;
      queue_cv_.notify_all();
    }
    const std::size_t batch_events = batch.size();
    // Downstream failures (retry exhaustion, sink errors) are accounted in
    // the failing stage's own stats; this stage counts what it handed off,
    // keeping its invariant batches_in == batches_out + dropped_batches.
    (void)downstream_->Submit(std::move(batch));
    {
      std::scoped_lock lock(mu_);
      stats_.batches_out += 1;
      stats_.events_out += batch_events;
      sending_ = false;
      if (queue_.empty()) drained_cv_.notify_all();
    }
  }
}

void QueueTransport::CollectStats(std::vector<StageStats>* out) const {
  {
    std::scoped_lock lock(mu_);
    StageStats snapshot = stats_;
    snapshot.queue_depth = queue_.size();
    out->push_back(std::move(snapshot));
  }
  downstream_->CollectStats(out);
}

}  // namespace dio::transport
