#include "transport/pipeline.h"

#include <utility>

#include "transport/fan_out_sink.h"
#include "transport/sinks.h"

namespace dio::transport {

Expected<PipelineOptions> PipelineOptions::FromConfig(const Config& config) {
  (void)WarnUnknownKeys(
      config, "transport",
      {"queue_depth", "backpressure", "retry", "retry_max_attempts",
       "retry_initial_backoff_ns", "retry_backoff_multiplier",
       "retry_max_backoff_ns", "retry_jitter", "retry_deadline_ns",
       "fault_rate", "fault_seed", "sinks", "spool_path", "trace_path",
       "network_latency_ns", "refresh_every_batches", "auto_correlate"});

  PipelineOptions options;
  options.queue.max_queued_batches = static_cast<std::size_t>(
      config.GetInt("transport.queue_depth",
                    static_cast<std::int64_t>(
                        options.queue.max_queued_batches)));
  if (config.Has("transport.backpressure")) {
    auto policy =
        BackpressureFromString(config.GetString("transport.backpressure"));
    if (!policy.ok()) return policy.status();
    options.queue.policy = *policy;
  }
  options.retry_enabled =
      config.GetBool("transport.retry", options.retry_enabled);
  options.retry.max_attempts = static_cast<std::size_t>(
      config.GetInt("transport.retry_max_attempts",
                    static_cast<std::int64_t>(options.retry.max_attempts)));
  options.retry.initial_backoff_ns = config.GetInt(
      "transport.retry_initial_backoff_ns", options.retry.initial_backoff_ns);
  options.retry.backoff_multiplier = config.GetDouble(
      "transport.retry_backoff_multiplier", options.retry.backoff_multiplier);
  options.retry.max_backoff_ns = config.GetInt(
      "transport.retry_max_backoff_ns", options.retry.max_backoff_ns);
  options.retry.jitter =
      config.GetDouble("transport.retry_jitter", options.retry.jitter);
  options.retry.deadline_ns = config.GetInt("transport.retry_deadline_ns",
                                            options.retry.deadline_ns);
  options.retry.fault_rate =
      config.GetDouble("transport.fault_rate", options.retry.fault_rate);
  options.retry.fault_seed = static_cast<std::uint64_t>(config.GetInt(
      "transport.fault_seed",
      static_cast<std::int64_t>(options.retry.fault_seed)));
  if (config.Has("transport.sinks")) {
    options.sinks = config.GetList("transport.sinks");
    if (options.sinks.empty()) {
      return InvalidArgument("transport.sinks must name at least one sink");
    }
  }
  options.spool_path =
      config.GetString("transport.spool_path", options.spool_path);
  options.trace_path =
      config.GetString("transport.trace_path", options.trace_path);
  if (options.retry.fault_rate < 0.0 || options.retry.fault_rate > 1.0) {
    return InvalidArgument("transport.fault_rate must be in [0, 1]");
  }
  return options;
}

Expected<std::unique_ptr<Pipeline>> Pipeline::Build(
    std::string session, const PipelineOptions& options,
    const SinkFactory& make_sink, Clock* clock) {
  std::vector<std::unique_ptr<Transport>> sinks;
  sinks.reserve(options.sinks.size());
  for (const std::string& name : options.sinks) {
    if (name == "spool") {
      FileSpoolOptions spool;
      spool.path = options.spool_path;
      auto sink = FileSpoolSink::Open(std::move(spool));
      if (!sink.ok()) return sink.status();
      sinks.push_back(std::move(sink.value()));
      continue;
    }
    if (!make_sink) {
      return InvalidArgument("no sink factory for transport sink: " + name);
    }
    auto sink = make_sink(name, options);
    if (!sink.ok()) return sink.status();
    if (sink.value() == nullptr) {
      return InvalidArgument("sink factory returned null for: " + name);
    }
    sinks.push_back(std::move(sink.value()));
  }

  std::unique_ptr<Transport> chain;
  if (sinks.size() == 1) {
    chain = std::move(sinks.front());
  } else {
    chain = std::make_unique<FanOutSink>(std::move(sinks));
  }

  RetryingTransport* retry = nullptr;
  if (options.retry_enabled || options.retry.fault_rate > 0.0) {
    auto retrying = std::make_unique<RetryingTransport>(std::move(chain),
                                                        options.retry, clock);
    retry = retrying.get();
    chain = std::move(retrying);
  }

  chain = std::make_unique<QueueTransport>(std::move(chain), options.queue);
  return std::unique_ptr<Pipeline>(
      new Pipeline(std::move(session), std::move(chain), retry));
}

void Pipeline::IndexBatch(std::vector<Json> documents) {
  if (documents.empty()) return;
  EventBatch batch;
  batch.session = session_;
  batch.documents = std::move(documents);
  (void)head_->Submit(std::move(batch));
}

void Pipeline::IndexEvents(std::string_view session,
                           std::vector<tracer::Event> events) {
  if (events.empty()) return;
  EventBatch batch;
  batch.session = std::string(session);
  batch.events = std::move(events);
  (void)head_->Submit(std::move(batch));
}

void Pipeline::IndexWire(std::string_view session,
                         std::vector<tracer::WireEvent> records) {
  if (records.empty()) return;
  EventBatch batch;
  batch.session = std::string(session);
  batch.wire = std::move(records);
  (void)head_->Submit(std::move(batch));
}

void Pipeline::Flush() { head_->Flush(); }

std::vector<StageStats> Pipeline::Stats() const {
  std::vector<StageStats> stats;
  head_->CollectStats(&stats);
  return stats;
}

Json Pipeline::StatsJson() const {
  Json out = Json::MakeArray();
  for (const StageStats& stage : Stats()) out.Append(stage.ToJson());
  return out;
}

}  // namespace dio::transport
