// Pipeline: the configured transport chain, presented to the tracer as its
// EventSink. The per-CPU consumer threads emit batches into the head stage
// (a bounded QueueTransport); the chain below is assembled from config:
//
//   consumers -> queue[policy,depth] -> (retry[backoff,faults])? ->
//     sink | fanout{ sink, sink, ... }
//
// Config keys (section [transport]; all optional, defaults in
// PipelineOptions):
//   queue_depth               bounded queue size, in batches
//   backpressure              block | drop_newest | drop_oldest
//   retry                     enable the retry decorator
//   retry_max_attempts        delivery attempts per batch
//   retry_initial_backoff_ns  first backoff
//   retry_backoff_multiplier  exponential factor
//   retry_max_backoff_ns      backoff cap
//   retry_jitter              +/- fraction applied to each backoff
//   retry_deadline_ns         overall per-batch timeout (0 = unlimited)
//   fault_rate                injected delivery-failure probability [0,1]
//   fault_seed                PRNG seed for fault injection / jitter
//   sinks                     comma list of terminal sinks (bulk, spool, ...)
//   spool_path                NDJSON file for the spool sink
//   trace_path                binary trace file for the "trace" record sink
//   network_latency_ns        (bulk sink) simulated one-way hop latency
//   refresh_every_batches     (bulk sink) near-real-time refresh cadence
//   auto_correlate            (bulk sink) run correlation on flush
//
// Unrecognized [transport] keys are warned about at parse time so typos in
// bench configs are caught instead of silently reverting to defaults.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "tracer/sink.h"
#include "transport/queue_transport.h"
#include "transport/retrying_transport.h"
#include "transport/transport.h"

namespace dio::transport {

struct PipelineOptions {
  QueueTransportOptions queue;
  bool retry_enabled = false;
  RetryOptions retry;
  // Terminal sinks by name; >1 means fan-out. "spool" is built in; other
  // names resolve through the SinkFactory the caller passes to Build (the
  // service maps "bulk" to a backend BulkClient).
  std::vector<std::string> sinks = {"bulk"};
  std::string spool_path;
  // Output file for the "trace" sink (trace::TraceRecordSink, resolved by
  // the service's SinkFactory): the binary record/replay tap.
  std::string trace_path;

  // Parses [transport] keys and warns (via logging) on unrecognized ones.
  // Keys consumed by the bulk sink (network_latency_ns, ...) are part of
  // the recognized set but interpreted by backend::BulkClientOptions.
  static Expected<PipelineOptions> FromConfig(const Config& config);
};

class Pipeline final : public tracer::EventSink {
 public:
  // Resolves a terminal sink name to a transport. `options` is passed so
  // factories can read carried-through sink knobs.
  using SinkFactory = std::function<Expected<std::unique_ptr<Transport>>(
      const std::string& sink_name, const PipelineOptions& options)>;

  // `session` labels batches entering via IndexBatch (documents carry their
  // session inline; binary events are tagged by the tracer's IndexEvents
  // call). `make_sink` may be null if every configured sink is built in.
  static Expected<std::unique_ptr<Pipeline>> Build(
      std::string session, const PipelineOptions& options,
      const SinkFactory& make_sink = nullptr,
      Clock* clock = SteadyClock::Instance());

  // EventSink: the tracer-facing head of the chain.
  void IndexBatch(std::vector<Json> documents) override;
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override;
  // Typed-ingest fast path: the batch enters the chain as tagged binary wire
  // records and stays binary until a stage needs JSON (spool sink) or the
  // store's typed route ingests it directly (bulk sink).
  void IndexWire(std::string_view session,
                 std::vector<tracer::WireEvent> records) override;
  // Drains the chain deterministically: queue first, then retry, then
  // sinks. After it returns, every accepted batch is delivered or counted.
  void Flush() override;

  // Per-stage accounting, head to sinks.
  [[nodiscard]] std::vector<StageStats> Stats() const;
  [[nodiscard]] Json StatsJson() const;  // array of StageStats::ToJson

  // Non-null when the chain has a retry stage; tests install fault hooks
  // through it.
  [[nodiscard]] RetryingTransport* retry_stage() { return retry_; }

 private:
  Pipeline(std::string session, std::unique_ptr<Transport> head,
           RetryingTransport* retry)
      : session_(std::move(session)),
        head_(std::move(head)),
        retry_(retry) {}

  std::string session_;
  std::unique_ptr<Transport> head_;  // owns the whole chain
  RetryingTransport* retry_;         // borrowed pointer into the chain
};

}  // namespace dio::transport
