// RetryingTransport: failure-semantics decorator for an unreliable
// downstream (the paper's tracer→Elasticsearch hop crosses a real network).
// A failed downstream Submit is retried with exponential backoff and
// jitter, bounded by an attempt budget and an overall per-batch deadline;
// exhausted batches are counted as dead letters and surface in session
// info, so "events lost at the sink" is distinguishable from ring or queue
// loss. A fault-injection hook simulates the network failing at a
// configurable rate — the knob the ab_transport bench and the zero-loss
// acceptance test sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/random.h"
#include "transport/transport.h"

namespace dio::transport {

struct RetryOptions {
  // Total delivery attempts per batch (1 = no retry).
  std::size_t max_attempts = 5;
  Nanos initial_backoff_ns = kMillisecond;
  double backoff_multiplier = 2.0;
  Nanos max_backoff_ns = 100 * kMillisecond;
  // Uniform jitter applied to each backoff: sleep in
  // [backoff * (1 - jitter), backoff * (1 + jitter)].
  double jitter = 0.2;
  // Overall per-batch timeout across attempts; 0 = unlimited. Checked
  // before each retry sleep, so a slow sink cannot wedge the sender past
  // the deadline plus one attempt.
  Nanos deadline_ns = 0;
  // Simulated-network fault injection: probability in [0, 1] that a
  // delivery attempt fails before reaching downstream.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0x5eedf001;
};

class RetryingTransport final : public Transport {
 public:
  RetryingTransport(std::unique_ptr<Transport> downstream,
                    RetryOptions options = {},
                    Clock* clock = SteadyClock::Instance());

  // Test hook intercepting each delivery attempt: return non-OK to simulate
  // a network failure for that attempt. Takes precedence over fault_rate.
  using FaultHook = std::function<Status(const EventBatch& batch,
                                         std::size_t attempt)>;
  void set_fault_hook(FaultHook hook);

  Status Submit(EventBatch batch) override;
  void Flush() override { downstream_->Flush(); }
  void CollectStats(std::vector<StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "retry"; }

 private:
  // Returns the injected fault for this attempt, or Ok to proceed.
  Status InjectFault(const EventBatch& batch, std::size_t attempt);

  std::unique_ptr<Transport> downstream_;
  RetryOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;  // guards stats_, rng_, fault_hook_
  StageStats stats_;
  Random rng_;
  FaultHook fault_hook_;
};

}  // namespace dio::transport
