// FanOutSink: tees one event stream to N downstream sinks (e.g. the
// backend bulk client plus a replayable NDJSON spool). Each child gets its
// own copy of every batch; one child failing does not starve the others,
// and the first error is reported upstream so a retry stage above the fan
// re-drives delivery (children must tolerate duplicate batches in that
// configuration — the bulk store and the spool both do, append-only).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "transport/transport.h"

namespace dio::transport {

class FanOutSink final : public Transport {
 public:
  explicit FanOutSink(std::vector<std::unique_ptr<Transport>> children);

  Status Submit(EventBatch batch) override;
  void Flush() override;
  void CollectStats(std::vector<StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "fanout"; }

 private:
  std::vector<std::unique_ptr<Transport>> children_;
  mutable std::mutex mu_;
  StageStats stats_;
};

}  // namespace dio::transport
