// The transport layer: everything between the tracer's consumer threads and
// the terminal sinks (backend bulk client, NDJSON spool, ...).
//
// The paper ships events asynchronously in batches to a remote backend and
// accepts event discard under load as the cost of a lossy channel (§II-C,
// §III-D). This layer makes that channel explicit and composable: a chain of
// `Transport` stages, each accounting for what it accepted, delivered, and
// lost, so the discard experiment can report *where* events were lost (ring
// vs. transport queue vs. sink) instead of a single opaque number.
//
// Stage vocabulary (each is a Transport; decorators own their downstream):
//   QueueTransport     bounded queue + sender thread + Backpressure policy
//   RetryingTransport  timeout / exponential backoff / dead-letter / faults
//   FanOutSink         tees one stream to N downstream sinks
//   BulkClient         terminal: synchronous bulk-index into ElasticStore
//   FileSpoolSink      terminal: replayable NDJSON spool file
//   CollectorSink      terminal: in-memory (tests, benches)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "tracer/event.h"

namespace dio::transport {

// What a bounded stage does when a batch arrives and the queue is full.
enum class Backpressure {
  kBlock,       // producer waits for space (lossless; stalls consumers)
  kDropNewest,  // incoming batch is discarded
  kDropOldest,  // oldest queued batch is discarded to make room
};

[[nodiscard]] std::string_view ToString(Backpressure policy);
Expected<Backpressure> BackpressureFromString(std::string_view name);

// The unit shipped through the pipeline: a batch of events for one session,
// in deferred binary form (`events`, materialized as late as possible, on
// the far side of the queue hop), as tagged fixed-layout binary records
// (`wire`, the typed-ingest fast path: never converted to JSON unless a
// JSON-consuming sink asks), and/or pre-materialized JSON `documents`.
struct EventBatch {
  std::string session;
  std::vector<tracer::Event> events;
  std::vector<tracer::WireEvent> wire;
  std::vector<Json> documents;

  [[nodiscard]] std::size_t size() const {
    return events.size() + wire.size() + documents.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  // Converts all deferred events — `events` first, then `wire` — into
  // documents (appended after any pre-materialized ones) and clears both.
  // Wire records materialize through WireEventToJson, byte-identical to the
  // Event route, so a sink's output does not depend on which form arrived.
  void Materialize();

  // Content fingerprint for duplicate-delivery detection: an acked-but-
  // nacked batch re-driven by the retry stage hashes identically, so an
  // ack-aware sink (the cluster router) can acknowledge it again without
  // re-applying. Hashes the session plus every record's decoded fields —
  // never raw struct bytes, whose padding is unspecified.
  [[nodiscard]] std::uint64_t Fingerprint() const;
};

// Per-stage accounting, surfaced in session info and the bench reports.
// Invariant every stage maintains once Flush() returns:
//   batches_in == batches_out + dropped_batches + dead_letter_batches
// (and the same for events), so loss is attributable per stage.
struct StageStats {
  std::string stage;  // stage name, e.g. "queue", "retry", "fanout", "bulk"

  std::uint64_t batches_in = 0;   // accepted by Submit()
  std::uint64_t batches_out = 0;  // successfully handed downstream
  std::uint64_t events_in = 0;
  std::uint64_t events_out = 0;

  // Backpressure losses (queue stages), split by policy for the bench.
  std::uint64_t dropped_batches = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_newest = 0;  // batches dropped on arrival
  std::uint64_t dropped_oldest = 0;  // batches evicted from the queue

  // Retry stage accounting.
  std::uint64_t retries = 0;          // re-attempts after a failure
  std::uint64_t faults_injected = 0;  // simulated network failures
  std::uint64_t dead_letter_batches = 0;  // given up after retries/deadline
  std::uint64_t dead_letter_events = 0;

  std::size_t queue_depth = 0;      // snapshot at stats() time
  std::size_t max_queue_depth = 0;  // high-water mark

  [[nodiscard]] Json ToJson() const;
};

// One stage of the shipping path. Decorator stages own their downstream and
// forward Flush()/CollectStats() so a chain behaves as one object.
//
// Contract:
//  * Submit() is thread-safe. For synchronous stages the returned Status is
//    the delivery outcome; for queueing stages it is the acceptance outcome
//    (delivery happens on the stage's own thread).
//  * Flush() drains everything in flight through this stage, then flushes
//    downstream — so a chain flush is deterministic: queues first, sinks
//    last, exactly the teardown order DioService relies on.
//  * CollectStats() appends this stage's stats, then its downstream's, so a
//    chain renders head-to-sink in order.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Status Submit(EventBatch batch) = 0;
  virtual void Flush() = 0;
  virtual void CollectStats(std::vector<StageStats>* out) const = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace dio::transport
