// Terminal sinks that live in the transport layer itself:
//
//  * FileSpoolSink — writes every event document as one NDJSON line to a
//    local spool file. The spool is replayable: each line is exactly the
//    document the backend would index (Event::ToJson), so
//    service/replay can re-issue the traced syscalls from a spool without a
//    backend, and a spool can be bulk-loaded into an ElasticStore index
//    later (service::LoadSpool) — the offline/air-gapped shipping mode.
//
//  * CollectorSink — in-memory terminal sink for tests and benches, with a
//    configurable per-delivery latency (to exercise backpressure) and a
//    scriptable failure budget (to exercise retry/dead-letter paths).
//
// The backend's BulkClient is the third terminal sink; it stays in
// backend/ because it owns an ElasticStore dependency.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "transport/transport.h"

namespace dio::transport {

struct FileSpoolOptions {
  std::string path;  // spool file, created/truncated on Open
};

class FileSpoolSink final : public Transport {
 public:
  static Expected<std::unique_ptr<FileSpoolSink>> Open(FileSpoolOptions options);

  Status Submit(EventBatch batch) override;
  void Flush() override;
  void CollectStats(std::vector<StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "spool"; }

  [[nodiscard]] const std::string& path() const { return options_.path; }
  [[nodiscard]] std::uint64_t lines_written() const;

 private:
  explicit FileSpoolSink(FileSpoolOptions options);

  FileSpoolOptions options_;
  mutable std::mutex mu_;
  std::ofstream out_;
  StageStats stats_;
  std::uint64_t lines_written_ = 0;
};

struct CollectorOptions {
  // Simulated delivery latency per batch (stands in for the network +
  // index hop; lets benches create a slow sink deterministically).
  Nanos deliver_latency_ns = 0;
  // The latency is waited out through this clock, so a ManualClock turns it
  // into deterministic virtual time under the sim harness.
  Clock* clock = nullptr;  // null = SteadyClock
};

class CollectorSink final : public Transport {
 public:
  explicit CollectorSink(CollectorOptions options = {}) : options_(options) {
    stats_.stage = "collector";
  }

  Status Submit(EventBatch batch) override;
  void Flush() override {}
  void CollectStats(std::vector<StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "collector"; }

  // The next `n` Submit calls fail with Unavailable (before storing).
  void FailNext(std::size_t n);
  [[nodiscard]] std::vector<Json> documents() const;
  [[nodiscard]] std::size_t document_count() const;

 private:
  CollectorOptions options_;
  mutable std::mutex mu_;
  std::vector<Json> documents_;
  StageStats stats_;
  std::size_t fail_next_ = 0;
};

}  // namespace dio::transport
