#include "transport/sinks.h"

#include <memory>
#include <utility>

namespace dio::transport {

FileSpoolSink::FileSpoolSink(FileSpoolOptions options)
    : options_(std::move(options)) {
  stats_.stage = "spool";
}

Expected<std::unique_ptr<FileSpoolSink>> FileSpoolSink::Open(
    FileSpoolOptions options) {
  if (options.path.empty()) {
    return InvalidArgument("spool sink requires a non-empty path");
  }
  auto sink = std::unique_ptr<FileSpoolSink>(new FileSpoolSink(options));
  sink->out_.open(options.path, std::ios::trunc);
  if (!sink->out_) {
    return NotFound("cannot open spool file for writing: " + options.path);
  }
  return sink;
}

Status FileSpoolSink::Submit(EventBatch batch) {
  const std::size_t batch_events = batch.size();
  batch.Materialize();
  std::scoped_lock lock(mu_);
  stats_.batches_in += 1;
  stats_.events_in += batch_events;
  for (const Json& doc : batch.documents) {
    out_ << doc.Dump() << '\n';
    ++lines_written_;
  }
  if (!out_) {
    return Internal("spool write failed: " + options_.path);
  }
  stats_.batches_out += 1;
  stats_.events_out += batch_events;
  return Status::Ok();
}

void FileSpoolSink::Flush() {
  std::scoped_lock lock(mu_);
  out_.flush();
}

std::uint64_t FileSpoolSink::lines_written() const {
  std::scoped_lock lock(mu_);
  return lines_written_;
}

void FileSpoolSink::CollectStats(std::vector<StageStats>* out) const {
  std::scoped_lock lock(mu_);
  out->push_back(stats_);
}

Status CollectorSink::Submit(EventBatch batch) {
  const std::size_t batch_events = batch.size();
  if (options_.deliver_latency_ns > 0) {
    Clock* clock =
        options_.clock != nullptr ? options_.clock : SteadyClock::Instance();
    clock->SleepFor(options_.deliver_latency_ns);
  }
  batch.Materialize();
  std::scoped_lock lock(mu_);
  // A rejected batch never enters this stage's ledger: the caller (retry
  // stage) owns the failure accounting, so in == out holds here.
  if (fail_next_ > 0) {
    --fail_next_;
    return Unavailable("collector sink scripted failure");
  }
  stats_.batches_in += 1;
  stats_.events_in += batch_events;
  for (Json& doc : batch.documents) documents_.push_back(std::move(doc));
  stats_.batches_out += 1;
  stats_.events_out += batch_events;
  return Status::Ok();
}

void CollectorSink::FailNext(std::size_t n) {
  std::scoped_lock lock(mu_);
  fail_next_ = n;
}

std::vector<Json> CollectorSink::documents() const {
  std::scoped_lock lock(mu_);
  return documents_;
}

std::size_t CollectorSink::document_count() const {
  std::scoped_lock lock(mu_);
  return documents_.size();
}

void CollectorSink::CollectStats(std::vector<StageStats>* out) const {
  std::scoped_lock lock(mu_);
  out->push_back(stats_);
}

}  // namespace dio::transport
