#include "baselines/sysdig_sim.h"

#include <chrono>
#include <cstring>

#include "tracer/keys.h"

namespace dio::baselines {

namespace {
void SpinFor(Clock* clock, Nanos duration) {
  if (duration <= 0) return;
  const Nanos deadline = clock->NowNanos() + duration;
  while (clock->NowNanos() < deadline) {
  }
}

// Same (pid, fd) packing as the DIO tracer's fd maps.
using tracer::FdKey;
}  // namespace

SysdigSim::SysdigSim(os::Kernel* kernel, SysdigOptions options)
    : kernel_(kernel),
      options_(options),
      rings_(kernel->num_cpus(), options.ring_bytes_per_cpu) {}

SysdigSim::~SysdigSim() { Stop(); }

Status SysdigSim::Start() {
  if (started_) return FailedPrecondition("sysdig-sim already started");
  started_ = true;
  os::TracepointRegistry& registry = kernel_->tracepoints();
  for (const os::SyscallDescriptor& desc : os::SyscallTable()) {
    attachments_.push_back(registry.AttachEnter(
        desc.nr, [this](const os::SysEnterContext& ctx) {
          OnHook(ctx.nr, false, ctx.pid, ctx.tid, ctx.args, 0,
                 ctx.kernel->cpu_of(ctx.tid));
        }));
    attachments_.push_back(registry.AttachExit(
        desc.nr, [this](const os::SysExitContext& ctx) {
          OnHook(ctx.nr, true, ctx.pid, ctx.tid, ctx.args, ctx.ret,
                 ctx.kernel->cpu_of(ctx.tid));
        }));
  }
  consumer_ = std::jthread([this](std::stop_token st) { ConsumerLoop(st); });
  return Status::Ok();
}

void SysdigSim::Stop() {
  if (!started_) return;
  for (os::AttachId id : attachments_) kernel_->tracepoints().Detach(id);
  attachments_.clear();
  if (consumer_.joinable()) {
    consumer_.request_stop();
    consumer_.join();
  }
  started_ = false;
}

void SysdigSim::OnHook(os::SyscallNr nr, bool is_exit, os::Pid pid,
                       os::Tid tid, const os::SyscallArgs* args,
                       std::int64_t ret, int cpu) {
  SpinFor(kernel_->clock(), options_.per_hook_cost_ns);
  RawEvent event{};
  event.nr = static_cast<std::uint8_t>(nr);
  event.is_exit = is_exit ? 1 : 0;
  event.pid = pid;
  event.tid = tid;
  event.ret = ret;
  event.fd = args != nullptr ? args->fd : os::kNoFd;
  if (args != nullptr && !args->path.empty()) {
    std::strncpy(event.path, args->path.c_str(), sizeof(event.path) - 1);
  }
  rings_.Output(cpu, std::as_bytes(std::span(&event, 1)));
}

void SysdigSim::ConsumerLoop(const std::stop_token& stop) {
  const auto handle = [this](std::span<const std::byte> bytes) {
    if (bytes.size() != sizeof(RawEvent)) return;
    RawEvent event;
    std::memcpy(&event, bytes.data(), sizeof(event));
    if (!event.is_exit) return;  // user-space pairs on exit records
    consumed_.fetch_add(1, std::memory_order_relaxed);

    const auto nr = static_cast<os::SyscallNr>(event.nr);
    const os::SyscallDescriptor& desc = os::Describe(nr);
    // Learn fd -> name from successful opens.
    if ((nr == os::SyscallNr::kOpen || nr == os::SyscallNr::kOpenat ||
         nr == os::SyscallNr::kCreat) &&
        event.ret >= 0 && event.path[0] != '\0') {
      std::scoped_lock lock(fd_table_mu_);
      const std::uint64_t key =
          FdKey(event.pid, static_cast<os::Fd>(event.ret));
      if (!fd_table_.contains(key)) {
        fd_fifo_.push_back(key);
        if (fd_fifo_.size() > options_.fd_table_capacity) {
          fd_table_.erase(fd_fifo_.front());
          fd_fifo_.pop_front();
        }
      }
      fd_table_[key] = event.path;
    }
    // Resolution accounting for fd-based events.
    if (desc.takes_fd && event.fd >= 0) {
      fd_events_.fetch_add(1, std::memory_order_relaxed);
      std::scoped_lock lock(fd_table_mu_);
      if (fd_table_.contains(FdKey(event.pid, event.fd))) {
        fd_resolved_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  while (true) {
    const std::size_t n = rings_.Poll(handle, 256);
    if (n == 0) {
      if (stop.stop_requested()) break;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.poll_interval_ns));
    } else if (options_.consume_cost_ns > 0) {
      // Model the consumer's per-event processing time with ONE sleep per
      // drained batch: the consumer stays slow (so a full ring overflows,
      // like the real sysdig driver buffer) without per-event wakeups
      // stealing CPU from the traced workload on small machines — in the
      // real deployment this work runs on its own core.
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          options_.consume_cost_ns * static_cast<Nanos>(n)));
    }
  }
}

double SysdigSim::pathless_ratio() const {
  const std::uint64_t total = fd_events_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const std::uint64_t resolved = fd_resolved_.load(std::memory_order_relaxed);
  return 1.0 - static_cast<double>(resolved) / static_cast<double>(total);
}

TracerCapabilities SysdigSim::capabilities() const {
  TracerCapabilities caps;
  caps.name = "sysdig";
  caps.syscall_info = true;
  caps.file_offset = false;
  caps.file_type = true;
  caps.proc_name = true;
  caps.filters = true;
  caps.pipeline = "-";  // chisels exist but no integrated inline pipeline
  caps.customizable_analysis = false;
  caps.predefined_visualizations = false;
  caps.usecase_data_loss = "";
  caps.usecase_contention = "T";
  return caps;
}

}  // namespace dio::baselines
