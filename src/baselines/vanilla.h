// Vanilla baseline: no tracing at all (the Table II reference row).
#pragma once

#include "baselines/baseline.h"

namespace dio::baselines {

class Vanilla final : public TracerBaseline {
 public:
  [[nodiscard]] std::string name() const override { return "vanilla"; }
  Status Start() override { return Status::Ok(); }
  void Stop() override {}
  [[nodiscard]] TracerCapabilities capabilities() const override {
    TracerCapabilities caps;
    caps.name = "vanilla";
    return caps;
  }
  [[nodiscard]] std::uint64_t events_captured() const override { return 0; }
  [[nodiscard]] std::uint64_t events_dropped() const override { return 0; }
  [[nodiscard]] double pathless_ratio() const override { return 0.0; }
};

}  // namespace dio::baselines
