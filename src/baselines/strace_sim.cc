#include "baselines/strace_sim.h"

namespace dio::baselines {

namespace {
void SpinFor(Clock* clock, Nanos duration) {
  if (duration <= 0) return;
  const Nanos deadline = clock->NowNanos() + duration;
  while (clock->NowNanos() < deadline) {
  }
}
}  // namespace

StraceSim::StraceSim(os::Kernel* kernel, StraceOptions options)
    : kernel_(kernel), options_(options) {}

StraceSim::~StraceSim() { Stop(); }

Status StraceSim::Start() {
  if (started_) return FailedPrecondition("strace-sim already started");
  started_ = true;
  os::TracepointRegistry& registry = kernel_->tracepoints();
  for (const os::SyscallDescriptor& desc : os::SyscallTable()) {
    attachments_.push_back(registry.AttachEnter(
        desc.nr, [this](const os::SysEnterContext& ctx) {
          OnStop(ctx.nr, /*is_exit=*/false, ctx.args, 0, ctx.tid);
        }));
    attachments_.push_back(registry.AttachExit(
        desc.nr, [this](const os::SysExitContext& ctx) {
          OnStop(ctx.nr, /*is_exit=*/true, ctx.args, ctx.ret, ctx.tid);
        }));
  }
  return Status::Ok();
}

void StraceSim::Stop() {
  for (os::AttachId id : attachments_) {
    kernel_->tracepoints().Detach(id);
  }
  attachments_.clear();
  started_ = false;
}

void StraceSim::OnStop(os::SyscallNr nr, bool is_exit,
                       const os::SyscallArgs* args, std::int64_t ret,
                       os::Tid tid) {
  // The tracee traps and the single-threaded tracer serializes all stops.
  std::scoped_lock lock(tracer_mu_);
  SpinFor(kernel_->clock(), options_.per_stop_cost_ns);
  if (!is_exit) return;  // the line is emitted at syscall exit

  events_.fetch_add(1, std::memory_order_relaxed);
  std::string line = "[tid ";
  line += std::to_string(tid);
  line += "] ";
  line += os::SyscallName(nr);
  line += "(";
  if (args != nullptr && !args->path.empty()) {
    line += "\"" + args->path + "\"";
    with_path_.fetch_add(1, std::memory_order_relaxed);
  } else if (args != nullptr && args->fd != os::kNoFd) {
    line += std::to_string(args->fd);
  }
  line += ") = ";
  line += std::to_string(ret);
  if (output_.size() < options_.max_output_lines) {
    output_.push_back(std::move(line));
  }
}

double StraceSim::pathless_ratio() const {
  const std::uint64_t total = events_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  const std::uint64_t with_path = with_path_.load(std::memory_order_relaxed);
  return 1.0 - static_cast<double>(with_path) / static_cast<double>(total);
}

std::vector<std::string> StraceSim::output_tail(std::size_t n) const {
  std::scoped_lock lock(tracer_mu_);
  const std::size_t start = output_.size() > n ? output_.size() - n : 0;
  return {output_.begin() + static_cast<std::ptrdiff_t>(start),
          output_.end()};
}

TracerCapabilities StraceSim::capabilities() const {
  TracerCapabilities caps;
  caps.name = "strace";
  caps.syscall_info = true;
  caps.file_offset = false;
  caps.file_type = false;
  caps.proc_name = false;
  caps.filters = true;  // -e trace=..., -p pid
  caps.pipeline = "-";
  caps.customizable_analysis = false;
  caps.predefined_visualizations = false;
  caps.usecase_data_loss = "";   // cannot observe fd offsets
  caps.usecase_contention = "T";
  return caps;
}

}  // namespace dio::baselines
