// Adapter exposing the real DIO pipeline (tracer + backend + correlation)
// through the baseline harness interface, so Table II / §III-D compare all
// tracers uniformly.
#pragma once

#include <memory>
#include <string>

#include "backend/bulk_client.h"
#include "backend/correlation.h"
#include "backend/store.h"
#include "baselines/baseline.h"
#include "tracer/tracer.h"

namespace dio::baselines {

class DioAdapter final : public TracerBaseline {
 public:
  // `kernel` and `store` must outlive the adapter: the owned bulk client
  // flushes into the store during destruction.
  DioAdapter(os::Kernel* kernel, backend::ElasticStore* store,
             tracer::TracerOptions options,
             backend::BulkClientOptions client_options = {});

  [[nodiscard]] std::string name() const override { return "DIO"; }
  Status Start() override;
  void Stop() override;

  [[nodiscard]] TracerCapabilities capabilities() const override;
  [[nodiscard]] std::uint64_t events_captured() const override;
  [[nodiscard]] std::uint64_t events_dropped() const override;
  // Runs the file-path correlation algorithm, then reports the fraction of
  // tagged events left without a resolved path.
  [[nodiscard]] double pathless_ratio() const override;

  [[nodiscard]] tracer::DioTracer& tracer() { return *tracer_; }
  [[nodiscard]] const std::string& index() const;

 private:
  os::Kernel* kernel_;
  backend::ElasticStore* store_;
  std::unique_ptr<backend::BulkClient> client_;
  std::unique_ptr<tracer::DioTracer> tracer_;
};

}  // namespace dio::baselines
