// Adapter exposing the real DIO pipeline (tracer + transport + backend +
// correlation) through the baseline harness interface, so Table II / §III-D
// compare all tracers uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "backend/bulk_client.h"
#include "backend/correlation.h"
#include "backend/store.h"
#include "baselines/baseline.h"
#include "tracer/tracer.h"
#include "transport/pipeline.h"

namespace dio::baselines {

class DioAdapter final : public TracerBaseline {
 public:
  // `kernel` and `store` must outlive the adapter: the owned transport
  // pipeline flushes its terminal bulk sink into the store on Stop(). The
  // pipeline is assembled from `pipeline_options` with the "bulk" sink
  // resolving to a BulkClient built from `client_options`; if assembly
  // fails (bad sink name, unopenable spool path) the error surfaces from
  // Start().
  DioAdapter(os::Kernel* kernel, backend::ElasticStore* store,
             tracer::TracerOptions options,
             backend::BulkClientOptions client_options = {},
             transport::PipelineOptions pipeline_options = {});

  [[nodiscard]] std::string name() const override { return "DIO"; }
  Status Start() override;
  void Stop() override;

  [[nodiscard]] TracerCapabilities capabilities() const override;
  [[nodiscard]] std::uint64_t events_captured() const override;
  [[nodiscard]] std::uint64_t events_dropped() const override;
  // Runs the file-path correlation algorithm, then reports the fraction of
  // tagged events left without a resolved path.
  [[nodiscard]] double pathless_ratio() const override;

  [[nodiscard]] tracer::DioTracer& tracer() { return *tracer_; }
  [[nodiscard]] transport::Pipeline& pipeline() { return *pipeline_; }
  // Per-stage transport accounting (queue / retry / sinks), head to sink.
  [[nodiscard]] std::vector<transport::StageStats> transport_stats() const;
  [[nodiscard]] const std::string& index() const;

 private:
  os::Kernel* kernel_;
  backend::ElasticStore* store_;
  Status init_status_;
  // Destruction order matters: the tracer emits into the pipeline, so it is
  // declared last and destroyed first.
  std::unique_ptr<transport::Pipeline> pipeline_;
  std::unique_ptr<tracer::DioTracer> tracer_;
};

}  // namespace dio::baselines
