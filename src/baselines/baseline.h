// Common interface the Table II / Table III / §III-D harnesses drive:
// vanilla (no tracing), strace-sim, sysdig-sim, and DIO itself (adapter).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"

namespace dio::baselines {

// Table III capability row, self-reported by each tracer implementation.
struct TracerCapabilities {
  std::string name;
  bool syscall_info = false;   // type, args, return value
  bool file_offset = false;    // f_offset enrichment
  bool file_type = false;      // f_type enrichment
  bool proc_name = false;      // process/thread name enrichment
  bool filters = false;        // tracing-phase filtering
  // Analysis pipeline integration: "-" none, "O" offline, "I" inline.
  std::string pipeline = "-";
  bool customizable_analysis = false;
  bool predefined_visualizations = false;
  // Use-case support: "" none, "T" traces the needed info, "TA" traces and
  // provides the analysis to diagnose it.
  std::string usecase_data_loss;     // §III-B
  std::string usecase_contention;    // §III-C

  [[nodiscard]] Json ToJson() const;
};

class TracerBaseline {
 public:
  virtual ~TracerBaseline() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  virtual Status Start() = 0;
  virtual void Stop() = 0;

  [[nodiscard]] virtual TracerCapabilities capabilities() const = 0;

  // Events fully captured (post-drop).
  [[nodiscard]] virtual std::uint64_t events_captured() const = 0;
  // Events lost anywhere in the pipeline.
  [[nodiscard]] virtual std::uint64_t events_dropped() const = 0;
  // Fraction of captured events for which the tracer cannot report the file
  // path (§III-D: DIO <= 5%, Sysdig ~45%).
  [[nodiscard]] virtual double pathless_ratio() const = 0;
};

}  // namespace dio::baselines
