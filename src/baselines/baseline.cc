#include "baselines/baseline.h"

namespace dio::baselines {

Json TracerCapabilities::ToJson() const {
  Json out = Json::MakeObject();
  out.Set("name", name);
  out.Set("syscall_info", syscall_info);
  out.Set("f_offset", file_offset);
  out.Set("f_type", file_type);
  out.Set("proc_name", proc_name);
  out.Set("filters", filters);
  out.Set("pipeline", pipeline);
  out.Set("customizable", customizable_analysis);
  out.Set("predefined_vis", predefined_visualizations);
  out.Set("usecase_data_loss", usecase_data_loss);
  out.Set("usecase_contention", usecase_contention);
  return out;
}

}  // namespace dio::baselines
