// strace-sim: a ptrace-style tracer baseline.
//
// Why strace is slow (§III-D / [11] Gebai & Dagenais): every syscall stops
// the tracee twice (entry + exit); each stop traps to the kernel, context-
// switches to the single-threaded tracer process, which decodes and writes a
// text line, then resumes the tracee. We reproduce both costs:
//   * a fixed per-stop penalty on the traced thread (trap + 2 context
//     switches), busy-waited because it sits ON the critical path, and
//   * serialization: one tracer handles all threads' stops, so concurrent
//     syscalls queue on the tracer's lock — which is what hides concurrency
//     effects in multithreaded workloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/baseline.h"
#include "common/clock.h"
#include "oskernel/kernel.h"

namespace dio::baselines {

struct StraceOptions {
  // Cost of one ptrace stop: trap, two context switches to/from the
  // tracer, and the tracer's decode+format work. ~10us is representative of
  // full ptrace round trips on commodity hardware (Gebai & Dagenais [11]).
  Nanos per_stop_cost_ns = 10 * kMicrosecond;
  // Cap on retained output lines (memory bound for long runs).
  std::size_t max_output_lines = 1u << 20;
};

class StraceSim final : public TracerBaseline {
 public:
  StraceSim(os::Kernel* kernel, StraceOptions options = {});
  ~StraceSim() override;

  [[nodiscard]] std::string name() const override { return "strace"; }
  Status Start() override;
  void Stop() override;

  [[nodiscard]] TracerCapabilities capabilities() const override;
  [[nodiscard]] std::uint64_t events_captured() const override {
    return events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dropped() const override { return 0; }
  // strace prints path arguments but has no fd -> path resolution at all.
  [[nodiscard]] double pathless_ratio() const override;

  [[nodiscard]] std::vector<std::string> output_tail(std::size_t n) const;

 private:
  void OnStop(os::SyscallNr nr, bool is_exit, const os::SyscallArgs* args,
              std::int64_t ret, os::Tid tid);

  os::Kernel* kernel_;
  StraceOptions options_;
  // ptrace stand-in: hooks installed directly on the syscall tracepoints.
  std::vector<os::AttachId> attachments_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> with_path_{0};

  mutable std::mutex tracer_mu_;  // the single-threaded tracer process
  std::vector<std::string> output_;
  bool started_ = false;
};

}  // namespace dio::baselines
