// sysdig-sim: an eBPF-based tracer baseline that captures *less* than DIO.
//
// Sysdig's driver records compact raw events (no entry/exit aggregation in
// kernel for our purposes, no file-offset/file-tag enrichment) and resolves
// fd -> name in USER space from a bounded fd-table cache built from observed
// open events. Consequences the paper measures (§III-D):
//   * lowest overhead of the tracers (tiny kernel hook), and
//   * a large fraction of events whose file path cannot be reported —
//     any fd whose open was missed (pre-existing fds, dropped events,
//     cache evictions) stays unresolved (~45% in the paper's run).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/baseline.h"
#include "common/clock.h"
#include "ebpf/ringbuf.h"
#include "oskernel/kernel.h"

namespace dio::baselines {

struct SysdigOptions {
  // Small fixed in-kernel hook cost (sysdig's BPF probe fills a compact
  // raw event; a few hundred ns per hook).
  Nanos per_hook_cost_ns = 200;
  // Sysdig's driver buffer is small (8 MiB total by default, vs DIO's
  // 256 MiB per CPU) — scaled down here like every other buffer.
  std::size_t ring_bytes_per_cpu = 48u << 10;
  // Bounded user-space fd table (per-process fd -> name), like sysdig's
  // thread/fd table with eviction.
  std::size_t fd_table_capacity = 256;
  Nanos poll_interval_ns = kMillisecond;
  // User-space per-event processing cost (decode, thread/fd table upkeep,
  // formatting). When event production outpaces this, the ring fills and
  // records — including opens, which seed the fd table — are lost, which is
  // what leaves a large share of fd events without a resolvable path.
  Nanos consume_cost_ns = 8 * kMicrosecond;
};

class SysdigSim final : public TracerBaseline {
 public:
  SysdigSim(os::Kernel* kernel, SysdigOptions options = {});
  ~SysdigSim() override;

  [[nodiscard]] std::string name() const override { return "sysdig"; }
  Status Start() override;
  void Stop() override;

  [[nodiscard]] TracerCapabilities capabilities() const override;
  [[nodiscard]] std::uint64_t events_captured() const override {
    return consumed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dropped() const override {
    return rings_.TotalDropped();
  }
  [[nodiscard]] double pathless_ratio() const override;

 private:
  struct RawEvent {
    std::uint8_t nr;
    std::uint8_t is_exit;
    std::int32_t pid;
    std::int32_t tid;
    std::int64_t ret;
    std::int32_t fd;
    char path[64];  // truncated path argument, if any
  };

  void OnHook(os::SyscallNr nr, bool is_exit, os::Pid pid, os::Tid tid,
              const os::SyscallArgs* args, std::int64_t ret, int cpu);
  void ConsumerLoop(const std::stop_token& stop);

  os::Kernel* kernel_;
  SysdigOptions options_;
  std::vector<os::AttachId> attachments_;
  ebpf::PerCpuRingBuffer rings_;
  std::jthread consumer_;
  bool started_ = false;

  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> fd_events_{0};
  std::atomic<std::uint64_t> fd_resolved_{0};

  // User-space fd table: (pid, fd) -> path, bounded FIFO eviction.
  std::mutex fd_table_mu_;
  std::unordered_map<std::uint64_t, std::string> fd_table_;
  std::list<std::uint64_t> fd_fifo_;
};

}  // namespace dio::baselines
