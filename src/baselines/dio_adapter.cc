#include "baselines/dio_adapter.h"

namespace dio::baselines {

DioAdapter::DioAdapter(os::Kernel* kernel, backend::ElasticStore* store,
                       tracer::TracerOptions options,
                       backend::BulkClientOptions client_options)
    : kernel_(kernel), store_(store) {
  client_ = std::make_unique<backend::BulkClient>(
      store_, options.session_name, client_options, kernel_->clock());
  tracer_ = std::make_unique<tracer::DioTracer>(kernel_, client_.get(),
                                                std::move(options));
}

Status DioAdapter::Start() { return tracer_->Start(); }

void DioAdapter::Stop() {
  tracer_->Stop();
  client_->Flush();
}

const std::string& DioAdapter::index() const { return tracer_->session(); }

std::uint64_t DioAdapter::events_captured() const {
  return tracer_->stats().emitted;
}

std::uint64_t DioAdapter::events_dropped() const {
  const tracer::TracerStats stats = tracer_->stats();
  return stats.ring_dropped + stats.pending_overflow;
}

double DioAdapter::pathless_ratio() const {
  backend::FilePathCorrelator correlator(store_);
  auto stats = correlator.Run(tracer_->session());
  if (!stats.ok()) return 0.0;
  return stats->unresolved_ratio();
}

TracerCapabilities DioAdapter::capabilities() const {
  TracerCapabilities caps;
  caps.name = "DIO";
  caps.syscall_info = true;
  caps.file_offset = true;
  caps.file_type = true;
  caps.proc_name = true;
  caps.filters = true;
  caps.pipeline = "I";  // inline, near real-time
  caps.customizable_analysis = true;
  caps.predefined_visualizations = true;
  caps.usecase_data_loss = "TA";
  caps.usecase_contention = "TA";
  return caps;
}

}  // namespace dio::baselines
