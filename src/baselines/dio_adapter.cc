#include "baselines/dio_adapter.h"

#include <utility>

namespace dio::baselines {

DioAdapter::DioAdapter(os::Kernel* kernel, backend::ElasticStore* store,
                       tracer::TracerOptions options,
                       backend::BulkClientOptions client_options,
                       transport::PipelineOptions pipeline_options)
    : kernel_(kernel), store_(store) {
  const std::string session = options.session_name;
  auto make_sink = [this, session, client_options](
                       const std::string& sink_name,
                       const transport::PipelineOptions&)
      -> Expected<std::unique_ptr<transport::Transport>> {
    if (sink_name != "bulk") {
      return InvalidArgument("dio adapter: unknown sink: " + sink_name);
    }
    return std::unique_ptr<transport::Transport>(
        std::make_unique<backend::BulkClient>(store_, session, client_options,
                                              kernel_->clock()));
  };
  auto pipeline = transport::Pipeline::Build(session, pipeline_options,
                                             make_sink, kernel_->clock());
  if (!pipeline.ok()) {
    // Defer the configuration error to Start(); fall back to the default
    // chain so the adapter stays in a usable (if unstartable) state.
    init_status_ = pipeline.status();
    pipeline = transport::Pipeline::Build(session, transport::PipelineOptions{},
                                          make_sink, kernel_->clock());
  }
  pipeline_ = std::move(*pipeline);
  tracer_ = std::make_unique<tracer::DioTracer>(kernel_, pipeline_.get(),
                                                std::move(options));
}

Status DioAdapter::Start() {
  DIO_RETURN_IF_ERROR(init_status_);
  return tracer_->Start();
}

void DioAdapter::Stop() {
  // Deterministic drain: detach + join consumers, then flush the transport
  // chain (queue -> retry -> sinks) so the store sees every surviving batch.
  tracer_->Stop();
  pipeline_->Flush();
}

const std::string& DioAdapter::index() const { return tracer_->session(); }

std::uint64_t DioAdapter::events_captured() const {
  return tracer_->stats().emitted;
}

std::uint64_t DioAdapter::events_dropped() const {
  const tracer::TracerStats stats = tracer_->stats();
  return stats.ring_dropped + stats.pending_overflow;
}

std::vector<transport::StageStats> DioAdapter::transport_stats() const {
  return pipeline_->Stats();
}

double DioAdapter::pathless_ratio() const {
  backend::FilePathCorrelator correlator(store_);
  auto stats = correlator.Run(tracer_->session());
  if (!stats.ok()) return 0.0;
  return stats->unresolved_ratio();
}

TracerCapabilities DioAdapter::capabilities() const {
  TracerCapabilities caps;
  caps.name = "DIO";
  caps.syscall_info = true;
  caps.file_offset = true;
  caps.file_type = true;
  caps.proc_name = true;
  caps.filters = true;
  caps.pipeline = "I";  // inline, near real-time
  caps.customizable_analysis = true;
  caps.predefined_visualizations = true;
  caps.usecase_data_loss = "TA";
  caps.usecase_contention = "TA";
  return caps;
}

}  // namespace dio::baselines
