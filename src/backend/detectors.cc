#include "backend/detectors.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace dio::backend {

namespace {

std::vector<Json> DataSyscallNames() {
  return {Json("read"),  Json("write"),  Json("pread64"),
          Json("pwrite64"), Json("readv"), Json("writev")};
}

}  // namespace

Expected<std::vector<Finding>> DetectStaleOffsets(
    QueryBackend* store, const std::string& index,
    const StaleOffsetOptions& options) {
  // All reads with tags and offsets, in time order; track the first read of
  // every file generation (tag).
  SearchRequest request;
  request.query = Query::And({
      Query::Terms("syscall", {Json("read"), Json("pread64"), Json("readv")}),
      Query::Exists("file_tag"),
      Query::Exists("file_offset"),
  });
  request.sort = {{"time_enter", true}};
  request.size = std::numeric_limits<std::size_t>::max();
  auto reads = store->Search(index, request);
  if (!reads.ok()) return reads.status();

  std::vector<Finding> findings;
  std::map<std::string, bool> seen_tag;
  for (const Hit& hit : reads->hits) {
    const std::string tag = hit.source.GetString("file_tag");
    if (seen_tag[tag]) continue;
    seen_tag[tag] = true;
    const std::int64_t offset = hit.source.GetInt("file_offset");
    if (offset < options.min_suspicious_offset) continue;
    Finding finding;
    finding.detector = "stale-offset";
    finding.file_path = hit.source.GetString("file_path");
    const std::int64_t ret = hit.source.GetInt("ret");
    finding.severity = ret == 0 ? "critical" : "warning";
    finding.message =
        "first read of file generation starts at offset " +
        std::to_string(offset) + " (ret " + std::to_string(ret) +
        "); leading bytes were never consumed" +
        (ret == 0 ? " and the read returned 0 — data loss" : "");
    finding.evidence.Set("file_tag", tag);
    finding.evidence.Set("offset", offset);
    finding.evidence.Set("ret", ret);
    finding.evidence.Set("comm", hit.source.GetString("comm"));
    finding.evidence.Set("time_enter", hit.source.GetInt("time_enter"));
    findings.push_back(std::move(finding));
  }
  return findings;
}

Expected<std::vector<Finding>> DetectContention(
    QueryBackend* store, const std::string& index,
    const ContentionOptions& options) {
  // Foreground latency per window.
  auto fg_agg =
      Aggregation::DateHistogram("time_enter", options.window_ns)
          .SubAgg("lat", Aggregation::Percentiles("duration_ns", {99.0}));
  auto fg = store->Aggregate(
      index, Query::Prefix("comm", options.foreground_prefix), fg_agg);
  if (!fg.ok()) return fg.status();

  // Background activity per window: distinct busy background threads.
  auto bg_agg = Aggregation::DateHistogram("time_enter", options.window_ns)
                    .SubAgg("threads", Aggregation::Terms("comm"));
  std::vector<Query> bg_clauses;
  bg_clauses.reserve(options.background_prefixes.size());
  for (const std::string& prefix : options.background_prefixes) {
    bg_clauses.push_back(Query::Prefix("comm", prefix));
  }
  auto bg = store->Aggregate(index, Query::Or(std::move(bg_clauses)), bg_agg);
  if (!bg.ok()) return bg.status();

  std::map<std::int64_t, int> busy_threads;
  for (const AggBucket& bucket : bg->buckets) {
    const auto threads_it = bucket.sub.find("threads");
    if (threads_it != bucket.sub.end()) {
      busy_threads[bucket.key.as_int()] =
          static_cast<int>(threads_it->second.buckets.size());
    }
  }

  // Median foreground p99 across windows as the baseline.
  struct WindowLat {
    std::int64_t start;
    double p99;
  };
  std::vector<WindowLat> windows;
  for (const AggBucket& bucket : fg->buckets) {
    const auto lat_it = bucket.sub.find("lat");
    if (lat_it == bucket.sub.end() || lat_it->second.metrics.as_object().empty()) {
      continue;
    }
    windows.push_back(
        {bucket.key.as_int(),
         lat_it->second.metrics.as_object().front().second.as_double()});
  }
  if (windows.empty()) return std::vector<Finding>{};
  std::vector<double> latencies;
  latencies.reserve(windows.size());
  for (const WindowLat& w : windows) latencies.push_back(w.p99);
  std::nth_element(latencies.begin(),
                   latencies.begin() + latencies.size() / 2,
                   latencies.end());
  const double median = latencies[latencies.size() / 2];

  std::vector<Finding> findings;
  for (const WindowLat& w : windows) {
    const int threads = busy_threads.count(w.start) != 0
                            ? busy_threads[w.start]
                            : 0;
    if (threads >= options.min_background_threads &&
        w.p99 >= median * options.latency_factor) {
      Finding finding;
      finding.detector = "io-contention";
      finding.severity = "warning";
      finding.message =
          "foreground p99 " + FormatFixed(w.p99 / 1000.0, 0) + "us (" +
          FormatFixed(w.p99 / median, 1) + "x the median) while " +
          std::to_string(threads) + " background threads issued I/O";
      finding.evidence.Set("window_start", w.start);
      finding.evidence.Set("foreground_p99_ns", w.p99);
      finding.evidence.Set("median_p99_ns", median);
      finding.evidence.Set("background_threads", threads);
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

Expected<std::vector<Finding>> DetectSmallIo(
    QueryBackend* store, const std::string& index,
    const SmallIoOptions& options) {
  // Count per file: all data syscalls, then small ones.
  auto all = store->Aggregate(
      index,
      Query::And({Query::Terms("syscall", DataSyscallNames()),
                  Query::Exists("file_path"),
                  Query::Range("ret", 1, std::nullopt)}),
      Aggregation::Terms("file_path"));
  if (!all.ok()) return all.status();
  auto small = store->Aggregate(
      index,
      Query::And({Query::Terms("syscall", DataSyscallNames()),
                  Query::Exists("file_path"),
                  Query::Range("ret", 1,
                               static_cast<std::int64_t>(
                                   options.small_threshold_bytes - 1))}),
      Aggregation::Terms("file_path"));
  if (!small.ok()) return small.status();

  std::map<std::string, std::int64_t> small_counts;
  for (const AggBucket& bucket : small->buckets) {
    small_counts[bucket.key.as_string()] = bucket.doc_count;
  }
  std::vector<Finding> findings;
  for (const AggBucket& bucket : all->buckets) {
    if (bucket.doc_count < options.min_ops) continue;
    const std::int64_t small_count = small_counts[bucket.key.as_string()];
    const double fraction = static_cast<double>(small_count) /
                            static_cast<double>(bucket.doc_count);
    if (fraction < options.min_fraction) continue;
    Finding finding;
    finding.detector = "small-io";
    finding.severity = "info";
    finding.file_path = bucket.key.as_string();
    finding.message = FormatFixed(fraction * 100.0, 0) + "% of " +
                      std::to_string(bucket.doc_count) +
                      " data syscalls move <" +
                      std::to_string(options.small_threshold_bytes) +
                      " bytes; consider batching";
    finding.evidence.Set("total_ops", bucket.doc_count);
    finding.evidence.Set("small_ops", small_count);
    findings.push_back(std::move(finding));
  }
  return findings;
}

Expected<std::vector<Finding>> DetectRandomAccess(
    QueryBackend* store, const std::string& index,
    const RandomAccessOptions& options) {
  SearchRequest request;
  request.query = Query::And({Query::Terms("syscall", DataSyscallNames()),
                              Query::Exists("file_offset"),
                              Query::Exists("file_path")});
  request.sort = {{"time_enter", true}};
  request.size = std::numeric_limits<std::size_t>::max();
  auto events = store->Search(index, request);
  if (!events.ok()) return events.status();

  struct Pattern {
    std::int64_t next_expected = -1;
    std::int64_t sequential = 0;
    std::int64_t random = 0;
  };
  std::map<std::string, Pattern> per_file;
  for (const Hit& hit : events->hits) {
    Pattern& pattern = per_file[hit.source.GetString("file_path")];
    const std::int64_t offset = hit.source.GetInt("file_offset");
    const std::int64_t ret = hit.source.GetInt("ret");
    if (pattern.next_expected >= 0) {
      (offset == pattern.next_expected ? pattern.sequential
                                       : pattern.random)++;
    }
    pattern.next_expected = offset + std::max<std::int64_t>(ret, 0);
  }

  std::vector<Finding> findings;
  for (const auto& [path, pattern] : per_file) {
    const std::int64_t total = pattern.sequential + pattern.random;
    if (total < options.min_ops) continue;
    const double fraction =
        static_cast<double>(pattern.random) / static_cast<double>(total);
    if (fraction < options.min_random_fraction) continue;
    Finding finding;
    finding.detector = "random-access";
    finding.severity = "info";
    finding.file_path = path;
    finding.message = FormatFixed(fraction * 100.0, 0) +
                      "% non-sequential accesses across " +
                      std::to_string(total) + " data syscalls";
    finding.evidence.Set("sequential", pattern.sequential);
    finding.evidence.Set("random", pattern.random);
    findings.push_back(std::move(finding));
  }
  return findings;
}

Expected<std::vector<Finding>> DetectSyscallErrors(
    QueryBackend* store, const std::string& index,
    const ErrorRateOptions& options) {
  // Group failures by (syscall, ret); find the dominant comm per group.
  auto agg = Aggregation::Terms("syscall").SubAgg(
      "by_errno",
      Aggregation::Terms("ret").SubAgg("by_comm", Aggregation::Terms("comm", 1)));
  auto failures = store->Aggregate(
      index, Query::Range("ret", std::nullopt, -1), agg);
  if (!failures.ok()) return failures.status();

  std::vector<Finding> findings;
  for (const AggBucket& syscall_bucket : failures->buckets) {
    const auto errno_it = syscall_bucket.sub.find("by_errno");
    if (errno_it == syscall_bucket.sub.end()) continue;
    for (const AggBucket& errno_bucket : errno_it->second.buckets) {
      const int error = static_cast<int>(-errno_bucket.key.as_int());
      const bool critical =
          std::find(options.critical_errnos.begin(),
                    options.critical_errnos.end(),
                    error) != options.critical_errnos.end();
      if (!critical && errno_bucket.doc_count < options.min_failures) {
        continue;
      }
      std::string comm;
      const auto comm_it = errno_bucket.sub.find("by_comm");
      if (comm_it != errno_bucket.sub.end() &&
          !comm_it->second.buckets.empty()) {
        comm = comm_it->second.buckets.front().key.as_string();
      }
      Finding finding;
      finding.detector = "syscall-errors";
      finding.severity = critical ? "critical" : "warning";
      finding.message = std::string(syscall_bucket.key.as_string()) +
                        " failed " + std::to_string(errno_bucket.doc_count) +
                        " times with errno " + std::to_string(error) +
                        (comm.empty() ? "" : " (mostly from " + comm + ")");
      finding.evidence.Set("syscall", syscall_bucket.key);
      finding.evidence.Set("errno", error);
      finding.evidence.Set("failures", errno_bucket.doc_count);
      if (!comm.empty()) finding.evidence.Set("comm", comm);
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

Expected<std::vector<Finding>> RunAllDetectors(QueryBackend* store,
                                               const std::string& index) {
  std::vector<Finding> all;
  auto stale = DetectStaleOffsets(store, index);
  if (!stale.ok()) return stale.status();
  auto contention = DetectContention(store, index);
  if (!contention.ok()) return contention.status();
  auto small = DetectSmallIo(store, index);
  if (!small.ok()) return small.status();
  auto random = DetectRandomAccess(store, index);
  if (!random.ok()) return random.status();
  auto errors = DetectSyscallErrors(store, index);
  if (!errors.ok()) return errors.status();
  for (auto* findings : {&stale.value(), &contention.value(), &small.value(),
                         &random.value(), &errors.value()}) {
    for (Finding& finding : *findings) all.push_back(std::move(finding));
  }
  return all;
}

std::string RenderFindings(const std::vector<Finding>& findings) {
  if (findings.empty()) return "(no findings)\n";
  std::string out;
  for (const Finding& finding : findings) {
    out += "[" + finding.severity + "] " + finding.detector;
    if (!finding.file_path.empty()) out += " " + finding.file_path;
    out += ": " + finding.message + "\n";
  }
  return out;
}

}  // namespace dio::backend
