// QueryBackend: the abstract query surface of the analysis tier. Everything
// that *reads* traced data — the file-path correlator, the misbehaviour
// detectors, the dashboards, DioService's analysis entry points — is written
// against this interface, so the same algorithms run unchanged over a
// single embedded ElasticStore or over a multi-node cluster of them
// (cluster::ClusterRouter): the paper's "dedicated analysis servers"
// deployment shape without forking the analysis code.
//
// The request/response vocabulary (SearchRequest, SearchResult, Hit,
// IndexStats) lives here because it is the contract between backends and
// their consumers; ElasticStore adds the ingest/refresh/snapshot surface on
// top in store.h.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "backend/aggregation.h"
#include "backend/query.h"
#include "common/json.h"
#include "common/status.h"

namespace dio::backend {

using DocId = std::uint64_t;

struct Hit {
  DocId id = 0;
  Json source;
};

struct SortSpec {
  std::string field;
  bool ascending = true;
};

struct SearchRequest {
  Query query = Query::MatchAll();
  std::vector<SortSpec> sort;  // empty = docid (ingestion) order
  std::size_t from = 0;
  std::size_t size = 10'000;

  // Parses an Elasticsearch-style search body:
  //   {"query": {...}, "sort": ["time_enter", {"ret": {"order": "desc"}}],
  //    "from": 0, "size": 100}
  // Rejects requests paging past `max_result_window` (from + size), like
  // ES's index.max_result_window guard.
  static Expected<SearchRequest> FromJson(
      const Json& body, std::size_t max_result_window = 10'000);
  static Expected<SearchRequest> FromJsonText(
      std::string_view text, std::size_t max_result_window = 10'000);
};

struct SearchResult {
  std::vector<Hit> hits;
  std::size_t total = 0;  // matches before from/size paging
};

struct IndexStats {
  std::size_t doc_count = 0;       // searchable documents
  std::size_t pending_count = 0;   // bulked but not yet refreshed
  std::size_t typed_rows = 0;      // rows ingested via the typed route
  std::uint64_t bulk_requests = 0;
  std::uint64_t updates = 0;
  // Columnar engine: fields with doc-value columns (summed over sub-shards),
  // cumulative time spent building columns, and filter-bitmap cache traffic.
  std::size_t doc_value_fields = 0;
  std::uint64_t column_build_ns = 0;
  std::uint64_t filter_cache_hits = 0;
  std::uint64_t filter_cache_misses = 0;
  std::uint64_t filter_cache_evictions = 0;
  // Sealed-segment layout: total and sealed column blocks across sub-shards,
  // completed refreshes, and the exclusive-window duration of each recent
  // refresh (the pause concurrent queries can observe; bounded by tail
  // size when backend.segment_docs > 0).
  std::size_t segments = 0;
  std::size_t sealed_segments = 0;
  std::uint64_t refreshes = 0;
  std::vector<std::uint64_t> refresh_pause_ns;
  // Cluster query fan-out (zero on a single store): queries that took the
  // pooled scatter path, and per-shard tasks they fanned out.
  std::uint64_t fanout_queries = 0;
  std::uint64_t fanout_shard_tasks = 0;
};

// The read/analysis contract every backend implementation honors. All
// implementations return hits in ascending docid (ingestion) order when no
// sort is given, apply the same missing-last sort semantics, and count only
// actually-modified documents in UpdateByQuery — so analysis results are
// byte-identical across backends holding the same documents.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  [[nodiscard]] virtual Expected<SearchResult> Search(
      const std::string& index, const SearchRequest& request) const = 0;
  [[nodiscard]] virtual Expected<std::size_t> Count(
      const std::string& index, const Query& query) const = 0;
  [[nodiscard]] virtual Expected<AggResult> Aggregate(
      const std::string& index, const Query& query,
      const Aggregation& agg) const = 0;

  // Applies `update` to every matching document. The callback returns
  // whether it modified the document; only modified documents are
  // re-indexed and counted. Returns the number of documents modified.
  virtual Expected<std::size_t> UpdateByQuery(
      const std::string& index, const Query& query,
      const std::function<bool(Json&)>& update) = 0;

  // Makes all buffered documents searchable (near-real-time refresh).
  virtual void Refresh(const std::string& index) = 0;
  [[nodiscard]] virtual bool HasIndex(const std::string& index) const = 0;
  [[nodiscard]] virtual Expected<IndexStats> Stats(
      const std::string& index) const = 0;
};

}  // namespace dio::backend
