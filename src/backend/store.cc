#include "backend/store.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <thread>

namespace dio::backend {

Expected<SearchRequest> SearchRequest::FromJson(const Json& body) {
  if (!body.is_object()) {
    return InvalidArgument("search body must be an object");
  }
  SearchRequest request;
  for (const JsonMember& member : body.as_object()) {
    const std::string& key = member.first;
    const Json& value = member.second;
    if (key == "query") {
      auto query = Query::FromJson(value);
      if (!query.ok()) return query.status();
      request.query = std::move(query.value());
    } else if (key == "sort") {
      if (!value.is_array()) {
        return InvalidArgument("sort must be an array");
      }
      for (const Json& spec : value.as_array()) {
        if (spec.is_string()) {
          request.sort.push_back({spec.as_string(), true});
        } else if (spec.is_object() && spec.as_object().size() == 1) {
          const auto& [field, opts] = spec.as_object().front();
          const bool ascending = opts.GetString("order", "asc") != "desc";
          request.sort.push_back({field, ascending});
        } else {
          return InvalidArgument("bad sort spec");
        }
      }
    } else if (key == "from") {
      if (!value.is_number() || value.as_int() < 0) {
        return InvalidArgument("from must be a non-negative number");
      }
      request.from = static_cast<std::size_t>(value.as_int());
    } else if (key == "size") {
      if (!value.is_number() || value.as_int() < 0) {
        return InvalidArgument("size must be a non-negative number");
      }
      request.size = static_cast<std::size_t>(value.as_int());
    } else {
      return InvalidArgument("unknown search body key: " + key);
    }
  }
  return request;
}

Expected<SearchRequest> SearchRequest::FromJsonText(std::string_view text) {
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(*parsed);
}

ElasticStore::Index::Index(std::size_t num_shards) {
  shards.reserve(num_shards);
  lanes.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<SubShard>();
    shard->shard_index = s;
    shard->stride = num_shards;
    shards.push_back(std::move(shard));
    lanes.push_back(std::make_unique<IngestLane>());
  }
}

ElasticStore::ElasticStore(std::size_t shards_per_index)
    : shards_per_index_(std::max<std::size_t>(1, shards_per_index)) {}

Status ElasticStore::CreateIndex(const std::string& name) {
  std::unique_lock lock(indices_mu_);
  if (indices_.contains(name)) {
    return AlreadyExists("index exists: " + name);
  }
  indices_[name] = std::make_shared<Index>(shards_per_index_);
  return Status::Ok();
}

Status ElasticStore::DeleteIndex(const std::string& name) {
  std::unique_lock lock(indices_mu_);
  if (indices_.erase(name) == 0) return NotFound("no such index: " + name);
  return Status::Ok();
}

std::vector<std::string> ElasticStore::ListIndices() const {
  std::shared_lock lock(indices_mu_);
  std::vector<std::string> names;
  names.reserve(indices_.size());
  for (const auto& [name, index] : indices_) names.push_back(name);
  return names;
}

bool ElasticStore::HasIndex(const std::string& name) const {
  std::shared_lock lock(indices_mu_);
  return indices_.contains(name);
}

std::shared_ptr<ElasticStore::Index> ElasticStore::Find(
    const std::string& name) {
  std::shared_lock lock(indices_mu_);
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : it->second;
}

std::shared_ptr<const ElasticStore::Index> ElasticStore::Find(
    const std::string& name) const {
  std::shared_lock lock(indices_mu_);
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : it->second;
}

std::shared_ptr<ElasticStore::Index> ElasticStore::FindOrCreate(
    const std::string& name) {
  if (std::shared_ptr<Index> index = Find(name)) return index;
  // Auto-create (like ES with auto_create_index on).
  std::unique_lock lock(indices_mu_);
  auto it = indices_.find(name);
  if (it == indices_.end()) {
    it = indices_.emplace(name, std::make_shared<Index>(shards_per_index_))
             .first;
  }
  return it->second;
}

void ElasticStore::Bulk(const std::string& index_name,
                        std::vector<Json> documents) {
  const std::shared_ptr<Index> index = FindOrCreate(index_name);
  index->bulk_requests.fetch_add(1, std::memory_order_relaxed);
  // The sequence number fixes this batch's place in ingestion (docid)
  // order; the lane it lands on only spreads lock contention.
  const std::uint64_t seq =
      index->bulk_seq.fetch_add(1, std::memory_order_relaxed);
  IngestLane& lane = *index->lanes[seq % index->lanes.size()];
  std::scoped_lock lock(lane.mu);
  lane.batches.push_back(PendingBatch{seq, std::move(documents)});
}

std::string ElasticStore::TermKey(const Json& value) {
  switch (value.type()) {
    case Json::Type::kString: return "s:" + value.as_string();
    case Json::Type::kInt: return "i:" + std::to_string(value.as_int());
    case Json::Type::kDouble: {
      // Integral doubles share the int key so term queries match across
      // numeric types (like ES numeric coercion).
      const double d = value.as_double();
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) == d) return "i:" + std::to_string(i);
      return "d:" + std::to_string(d);
    }
    case Json::Type::kBool: return value.as_bool() ? "b:1" : "b:0";
    default: return "j:" + value.Dump();
  }
}

void ElasticStore::IndexDoc(SubShard& shard, DocId id, const Json& doc) {
  if (!doc.is_object()) return;
  for (const JsonMember& member : doc.as_object()) {
    const std::string& field = member.first;
    const Json& value = member.second;
    if (value.is_array() || value.is_object() || value.is_null()) continue;
    auto& postings = shard.terms[field][TermKey(value)];
    if (postings.empty() || postings.back() != id) postings.push_back(id);
    if (value.is_number()) {
      shard.numerics[field].emplace_back(value.as_int(), id);
      shard.numerics_dirty = true;
    }
  }
}

void ElasticStore::SortNumericsIfDirty(SubShard& shard) {
  if (!shard.numerics_dirty) return;
  for (auto& [field, entries] : shard.numerics) {
    std::sort(entries.begin(), entries.end());
  }
  shard.numerics_dirty = false;
}

void ElasticStore::Refresh(const std::string& index_name) {
  const std::shared_ptr<Index> index = Find(index_name);
  if (index == nullptr) return;
  std::unique_lock refresh_lock(index->refresh_mu);

  // Collect everything bulked so far, then replay in sequence order so
  // docids match a single-shard store exactly.
  std::vector<PendingBatch> batches;
  for (const auto& lane : index->lanes) {
    std::scoped_lock lane_lock(lane->mu);
    std::move(lane->batches.begin(), lane->batches.end(),
              std::back_inserter(batches));
    lane->batches.clear();
  }
  if (batches.empty()) return;
  std::sort(batches.begin(), batches.end(),
            [](const PendingBatch& a, const PendingBatch& b) {
              return a.seq < b.seq;
            });

  // Assign docids and stage each document with its owning sub-shard.
  const std::size_t num_shards = index->num_shards();
  std::vector<std::vector<std::pair<DocId, Json>>> staged(num_shards);
  std::size_t total = 0;
  for (PendingBatch& batch : batches) total += batch.docs.size();
  for (auto& stage : staged) stage.reserve(total / num_shards + 1);
  for (PendingBatch& batch : batches) {
    for (Json& doc : batch.docs) {
      const DocId id = index->next_docid++;
      staged[static_cast<std::size_t>(id) % num_shards].emplace_back(
          id, std::move(doc));
    }
  }

  // Index the sub-shards — in parallel when the batch is big enough to pay
  // for the threads (refresh_mu is held, so workers touching distinct
  // shards cannot race queries or each other).
  const auto ingest_shard = [&index, &staged](std::size_t s) {
    SubShard& shard = *index->shards[s];
    std::unique_lock shard_lock(shard.mu);
    for (auto& [id, doc] : staged[s]) {
      shard.docs.push_back(std::move(doc));
      IndexDoc(shard, id, shard.docs.back());
    }
    SortNumericsIfDirty(shard);
  };
  constexpr std::size_t kParallelRefreshThreshold = 4096;
  if (total >= kParallelRefreshThreshold && num_shards > 1 &&
      std::thread::hardware_concurrency() > 1) {
    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      workers.emplace_back(ingest_shard, s);
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (std::size_t s = 0; s < num_shards; ++s) ingest_shard(s);
  }
}

void ElasticStore::RefreshAll() {
  for (const std::string& name : ListIndices()) Refresh(name);
}

namespace {

std::vector<DocId> Intersect(std::vector<DocId> a, std::vector<DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> Union(std::vector<DocId> a, std::vector<DocId> b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Dedup(std::vector<DocId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::optional<std::vector<DocId>> ElasticStore::Candidates(
    const SubShard& shard, const Query& query) {
  switch (query.type()) {
    case Query::Type::kTerm:
    case Query::Type::kTerms: {
      auto field_it = shard.terms.find(query.field());
      if (field_it == shard.terms.end()) return std::vector<DocId>{};
      std::vector<DocId> out;
      for (const Json& value : query.values()) {
        auto term_it = field_it->second.find(TermKey(value));
        if (term_it != field_it->second.end()) {
          out = Union(std::move(out), term_it->second);
        }
      }
      return Dedup(std::move(out));
    }
    case Query::Type::kRange: {
      if (shard.numerics_dirty) return std::nullopt;  // pending resort
      auto field_it = shard.numerics.find(query.field());
      if (field_it == shard.numerics.end()) return std::vector<DocId>{};
      const auto& entries = field_it->second;
      auto lo = entries.begin();
      auto hi = entries.end();
      if (query.gte().has_value()) {
        lo = std::lower_bound(
            entries.begin(), entries.end(),
            std::make_pair(*query.gte(), std::numeric_limits<DocId>::min()));
      }
      if (query.lte().has_value()) {
        hi = std::upper_bound(
            entries.begin(), entries.end(),
            std::make_pair(*query.lte(), std::numeric_limits<DocId>::max()));
      }
      std::vector<DocId> out;
      out.reserve(static_cast<std::size_t>(std::distance(lo, hi)));
      for (auto it = lo; it != hi; ++it) out.push_back(it->second);
      return Dedup(std::move(out));
    }
    case Query::Type::kPrefix: {
      auto field_it = shard.terms.find(query.field());
      if (field_it == shard.terms.end()) return std::vector<DocId>{};
      const std::string key_prefix = "s:" + query.prefix();
      std::vector<DocId> out;
      for (const auto& [term, postings] : field_it->second) {
        if (term.starts_with(key_prefix)) {
          out = Union(std::move(out), postings);
        }
      }
      return Dedup(std::move(out));
    }
    case Query::Type::kAnd: {
      std::optional<std::vector<DocId>> narrowed;
      for (const Query& clause : query.clauses()) {
        auto candidates = Candidates(shard, clause);
        if (!candidates.has_value()) continue;  // clause needs a scan
        narrowed = narrowed.has_value()
                       ? Intersect(std::move(*narrowed),
                                   std::move(*candidates))
                       : std::move(*candidates);
      }
      return narrowed;  // nullopt if no clause was indexable
    }
    case Query::Type::kOr: {
      std::vector<DocId> out;
      for (const Query& clause : query.clauses()) {
        auto candidates = Candidates(shard, clause);
        if (!candidates.has_value()) return std::nullopt;  // must scan
        out = Union(std::move(out), std::move(*candidates));
      }
      return out;
    }
    case Query::Type::kMatchAll:
    case Query::Type::kExists:
    case Query::Type::kNot:
      return std::nullopt;
  }
  return std::nullopt;
}

std::vector<DocId> ElasticStore::MatchingDocs(const SubShard& shard,
                                              const Query& query) {
  std::vector<DocId> matches;
  auto candidates = Candidates(shard, query);
  if (candidates.has_value()) {
    for (DocId id : *candidates) {
      if (shard.Owns(id) && query.Matches(shard.DocAt(id))) {
        matches.push_back(id);
      }
    }
  } else {
    for (std::size_t pos = 0; pos < shard.docs.size(); ++pos) {
      if (query.Matches(shard.docs[pos])) {
        matches.push_back(static_cast<DocId>(pos * shard.stride +
                                             shard.shard_index));
      }
    }
  }
  return matches;
}

std::vector<DocId> ElasticStore::MatchingDocs(const Index& index,
                                              const Query& query) {
  std::vector<DocId> matches;
  for (const auto& shard : index.shards) {
    std::shared_lock shard_lock(shard->mu);
    std::vector<DocId> shard_matches = MatchingDocs(*shard, query);
    matches.insert(matches.end(), shard_matches.begin(), shard_matches.end());
  }
  // Ascending docid == ingestion order, exactly as the unsharded store.
  std::sort(matches.begin(), matches.end());
  return matches;
}

Expected<SearchResult> ElasticStore::Search(const std::string& index_name,
                                            const SearchRequest& request) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::shared_lock refresh_lock(index->refresh_mu);

  std::vector<DocId> matches = MatchingDocs(*index, request.query);

  if (!request.sort.empty()) {
    std::stable_sort(
        matches.begin(), matches.end(), [&](DocId a, DocId b) {
          for (const SortSpec& spec : request.sort) {
            const Json* va = index->DocAt(a).Find(spec.field);
            const Json* vb = index->DocAt(b).Find(spec.field);
            // Missing values sort last regardless of direction.
            if (va == nullptr && vb == nullptr) continue;
            if (va == nullptr) return false;
            if (vb == nullptr) return true;
            int cmp = 0;
            if (va->is_number() && vb->is_number()) {
              const double da = va->as_double();
              const double db = vb->as_double();
              cmp = da < db ? -1 : (da > db ? 1 : 0);
            } else if (va->is_string() && vb->is_string()) {
              cmp = va->as_string().compare(vb->as_string());
            }
            if (cmp != 0) return spec.ascending ? cmp < 0 : cmp > 0;
          }
          return a < b;
        });
  }

  SearchResult result;
  result.total = matches.size();
  const std::size_t start = std::min(request.from, matches.size());
  const std::size_t end = std::min(start + request.size, matches.size());
  result.hits.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) {
    result.hits.push_back(Hit{matches[i], index->DocAt(matches[i])});
  }
  return result;
}

Expected<std::size_t> ElasticStore::Count(const std::string& index_name,
                                          const Query& query) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::shared_lock refresh_lock(index->refresh_mu);
  return MatchingDocs(*index, query).size();
}

Expected<AggResult> ElasticStore::Aggregate(const std::string& index_name,
                                            const Query& query,
                                            const Aggregation& agg) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::shared_lock refresh_lock(index->refresh_mu);
  std::vector<DocId> matches = MatchingDocs(*index, query);
  std::vector<const Json*> docs;
  docs.reserve(matches.size());
  for (DocId id : matches) docs.push_back(&index->DocAt(id));
  return agg.Execute(docs);
}

Expected<std::size_t> ElasticStore::UpdateByQuery(
    const std::string& index_name, const Query& query,
    const std::function<void(Json&)>& update) {
  const std::shared_ptr<Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::unique_lock refresh_lock(index->refresh_mu);
  std::vector<DocId> matches = MatchingDocs(*index, query);
  for (DocId id : matches) {
    SubShard& shard = *index->shards[static_cast<std::size_t>(id) %
                                     index->num_shards()];
    std::unique_lock shard_lock(shard.mu);
    Json& doc = shard.DocAt(id);
    update(doc);
    // Re-index the updated document: postings become a superset (stale
    // entries are filtered by re-verification at query time).
    IndexDoc(shard, id, doc);
  }
  index->updates.fetch_add(matches.size(), std::memory_order_relaxed);
  for (const auto& shard : index->shards) {
    std::unique_lock shard_lock(shard->mu);
    SortNumericsIfDirty(*shard);
  }
  return matches.size();
}

Expected<IndexStats> ElasticStore::Stats(const std::string& index_name) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::shared_lock refresh_lock(index->refresh_mu);
  IndexStats stats;
  for (const auto& shard : index->shards) {
    std::shared_lock shard_lock(shard->mu);
    stats.doc_count += shard->docs.size();
  }
  for (const auto& lane : index->lanes) {
    std::scoped_lock lane_lock(lane->mu);
    for (const PendingBatch& batch : lane->batches) {
      stats.pending_count += batch.docs.size();
    }
  }
  stats.bulk_requests = index->bulk_requests.load(std::memory_order_relaxed);
  stats.updates = index->updates.load(std::memory_order_relaxed);
  return stats;
}

Status ElasticStore::SaveIndex(const std::string& index_name,
                               const std::string& file_path) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::ofstream out(file_path, std::ios::trunc);
  if (!out) return Unavailable("cannot open for writing: " + file_path);
  std::shared_lock refresh_lock(index->refresh_mu);
  std::size_t doc_count = 0;
  for (const auto& shard : index->shards) doc_count += shard->docs.size();
  Json header = Json::MakeObject();
  header.Set("dio_index_snapshot", index_name);
  header.Set("docs", static_cast<std::int64_t>(doc_count));
  out << header.Dump() << "\n";
  for (DocId id = 0; id < doc_count; ++id) {
    out << index->DocAt(id).Dump() << "\n";
  }
  out.close();
  if (!out) return Unavailable("write failed: " + file_path);
  return Status::Ok();
}

Expected<std::string> ElasticStore::LoadIndex(const std::string& file_path,
                                              const std::string& rename_to) {
  std::ifstream in(file_path);
  if (!in) return NotFound("cannot open snapshot: " + file_path);
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgument("empty snapshot: " + file_path);
  }
  auto header = Json::Parse(line);
  if (!header.ok() || !header->Has("dio_index_snapshot")) {
    return InvalidArgument("not a DIO index snapshot: " + file_path);
  }
  const std::string index = rename_to.empty()
                                ? header->GetString("dio_index_snapshot")
                                : rename_to;
  if (HasIndex(index)) {
    return AlreadyExists("index exists: " + index);
  }
  DIO_RETURN_IF_ERROR(CreateIndex(index));
  std::vector<Json> batch;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = Json::Parse(line);
    if (!doc.ok()) {
      (void)DeleteIndex(index);
      return InvalidArgument("corrupt snapshot line: " + doc.status().message());
    }
    batch.push_back(std::move(doc.value()));
  }
  Bulk(index, std::move(batch));
  Refresh(index);
  return index;
}

}  // namespace dio::backend
