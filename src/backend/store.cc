#include "backend/store.h"

#include <algorithm>
#include <condition_variable>
#include <fstream>
#include <limits>
#include <numeric>
#include <optional>
#include <thread>

#include "backend/simd_kernels.h"
#include "backend/typed_ingest.h"
#include "tracer/event.h"

namespace dio::backend {

Expected<SearchRequest> SearchRequest::FromJson(const Json& body,
                                                std::size_t max_result_window) {
  if (!body.is_object()) {
    return InvalidArgument("search body must be an object");
  }
  SearchRequest request;
  for (const JsonMember& member : body.as_object()) {
    const std::string& key = member.first;
    const Json& value = member.second;
    if (key == "query") {
      auto query = Query::FromJson(value);
      if (!query.ok()) return query.status();
      request.query = std::move(query.value());
    } else if (key == "sort") {
      if (!value.is_array()) {
        return InvalidArgument("sort must be an array");
      }
      for (const Json& spec : value.as_array()) {
        if (spec.is_string()) {
          request.sort.push_back({spec.as_string(), true});
        } else if (spec.is_object() && spec.as_object().size() == 1) {
          const auto& [field, opts] = spec.as_object().front();
          const bool ascending = opts.GetString("order", "asc") != "desc";
          request.sort.push_back({field, ascending});
        } else {
          return InvalidArgument("bad sort spec");
        }
      }
    } else if (key == "from") {
      if (!value.is_number() || value.as_int() < 0) {
        return InvalidArgument("from must be a non-negative number");
      }
      request.from = static_cast<std::size_t>(value.as_int());
    } else if (key == "size") {
      if (!value.is_number() || value.as_int() < 0) {
        return InvalidArgument("size must be a non-negative number");
      }
      request.size = static_cast<std::size_t>(value.as_int());
    } else {
      return InvalidArgument("unknown search body key: " + key);
    }
  }
  if (request.size > max_result_window ||
      request.from > max_result_window - request.size) {
    return InvalidArgument(
        "from + size must be <= max_result_window (" +
        std::to_string(max_result_window) + ")");
  }
  return request;
}

Expected<SearchRequest> SearchRequest::FromJsonText(
    std::string_view text, std::size_t max_result_window) {
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(*parsed, max_result_window);
}

ElasticStoreOptions ElasticStoreOptions::FromConfig(const Config& config) {
  WarnUnknownKeys(config, "backend",
                  {"shards_per_index", "query_threads", "doc_values",
                   "typed_ingest", "simd_kernels", "max_result_window",
                   "segment_docs", "filter_cache_entries"});
  ElasticStoreOptions opts;
  opts.shards_per_index = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("backend.shards_per_index",
                       static_cast<std::int64_t>(opts.shards_per_index))));
  opts.query_threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("backend.query_threads",
                       static_cast<std::int64_t>(opts.query_threads))));
  opts.doc_values = config.GetBool("backend.doc_values", opts.doc_values);
  opts.typed_ingest =
      config.GetBool("backend.typed_ingest", opts.typed_ingest);
  opts.simd_kernels =
      config.GetBool("backend.simd_kernels", opts.simd_kernels);
  opts.max_result_window = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("backend.max_result_window",
                       static_cast<std::int64_t>(opts.max_result_window))));
  opts.segment_docs = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("backend.segment_docs",
                       static_cast<std::int64_t>(opts.segment_docs))));
  opts.filter_cache_entries = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("backend.filter_cache_entries",
                       static_cast<std::int64_t>(opts.filter_cache_entries))));
  return opts;
}

ElasticStore::Index::Index(std::size_t num_shards, std::size_t segment_docs,
                           std::size_t cache_entries) {
  shards.reserve(num_shards);
  lanes.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<SubShard>(segment_docs, cache_entries);
    shard->shard_index = s;
    shard->stride = num_shards;
    shards.push_back(std::move(shard));
    lanes.push_back(std::make_unique<IngestLane>());
  }
}

Json ElasticStore::Index::MaterializedDoc(DocId id) const {
  const SubShard& shard = *shards[static_cast<std::size_t>(id) % shards.size()];
  const auto pos = static_cast<std::size_t>(id) / shards.size();
  if (shard.IsTyped(pos)) {
    const ColumnSegment& segment = shard.segments.SegmentFor(pos);
    return MaterializeWireDoc(segment.columns, shard.segments.LocalPos(pos));
  }
  return shard.docs[pos];
}

ElasticStore::ElasticStore(std::size_t shards_per_index)
    : ElasticStore([shards_per_index] {
        ElasticStoreOptions opts;
        opts.shards_per_index = shards_per_index;
        return opts;
      }()) {}

ElasticStore::ElasticStore(const ElasticStoreOptions& options)
    : options_([&options] {
        ElasticStoreOptions opts = options;
        opts.shards_per_index = std::max<std::size_t>(1, opts.shards_per_index);
        return opts;
      }()) {
  if (options_.query_threads > 0) {
    query_pool_ =
        std::make_unique<ThreadPool>(options_.query_threads, "es:query");
  }
  // The kernel switch is process-wide (the kernels are free functions under
  // the bitmap/column types); the most recently constructed store wins,
  // which in practice is the one store a process runs.
  simd::SetEnabled(options_.simd_kernels);
}

Status ElasticStore::CreateIndex(const std::string& name) {
  std::unique_lock lock(indices_mu_);
  if (indices_.contains(name)) {
    return AlreadyExists("index exists: " + name);
  }
  indices_[name] = std::make_shared<Index>(
      options_.shards_per_index, options_.segment_docs,
      options_.filter_cache_entries);
  return Status::Ok();
}

Status ElasticStore::DeleteIndex(const std::string& name) {
  std::unique_lock lock(indices_mu_);
  if (indices_.erase(name) == 0) return NotFound("no such index: " + name);
  return Status::Ok();
}

std::vector<std::string> ElasticStore::ListIndices() const {
  std::shared_lock lock(indices_mu_);
  std::vector<std::string> names;
  names.reserve(indices_.size());
  for (const auto& [name, index] : indices_) names.push_back(name);
  return names;
}

bool ElasticStore::HasIndex(const std::string& name) const {
  std::shared_lock lock(indices_mu_);
  return indices_.contains(name);
}

std::shared_ptr<ElasticStore::Index> ElasticStore::Find(
    const std::string& name) {
  std::shared_lock lock(indices_mu_);
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : it->second;
}

std::shared_ptr<const ElasticStore::Index> ElasticStore::Find(
    const std::string& name) const {
  std::shared_lock lock(indices_mu_);
  auto it = indices_.find(name);
  return it == indices_.end() ? nullptr : it->second;
}

std::shared_ptr<ElasticStore::Index> ElasticStore::FindOrCreate(
    const std::string& name) {
  if (std::shared_ptr<Index> index = Find(name)) return index;
  // Auto-create (like ES with auto_create_index on).
  std::unique_lock lock(indices_mu_);
  auto it = indices_.find(name);
  if (it == indices_.end()) {
    it = indices_
             .emplace(name, std::make_shared<Index>(
                                options_.shards_per_index,
                                options_.segment_docs,
                                options_.filter_cache_entries))
             .first;
  }
  return it->second;
}

void ElasticStore::Bulk(const std::string& index_name,
                        std::vector<Json> documents) {
  const std::shared_ptr<Index> index = FindOrCreate(index_name);
  index->bulk_requests.fetch_add(1, std::memory_order_relaxed);
  // The sequence number fixes this batch's place in ingestion (docid)
  // order; the lane it lands on only spreads lock contention.
  const std::uint64_t seq =
      index->bulk_seq.fetch_add(1, std::memory_order_relaxed);
  IngestLane& lane = *index->lanes[seq % index->lanes.size()];
  std::scoped_lock lock(lane.mu);
  lane.batches.push_back(PendingBatch{seq, std::move(documents), {}, {}});
}

void ElasticStore::BulkWire(const std::string& index_name,
                            std::string_view session,
                            std::vector<tracer::WireEvent> records) {
  if (!options_.typed_ingest || !options_.doc_values) {
    // Parity fallback: same documents, same docids, same everything — the
    // typed route only changes how the fields reach the columns.
    std::vector<Json> documents;
    documents.reserve(records.size());
    for (const tracer::WireEvent& record : records) {
      documents.push_back(tracer::WireEventToJson(record, session));
    }
    Bulk(index_name, std::move(documents));
    return;
  }
  const std::shared_ptr<Index> index = FindOrCreate(index_name);
  index->bulk_requests.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seq =
      index->bulk_seq.fetch_add(1, std::memory_order_relaxed);
  IngestLane& lane = *index->lanes[seq % index->lanes.size()];
  std::scoped_lock lock(lane.mu);
  lane.batches.push_back(
      PendingBatch{seq, {}, std::move(records), std::string(session)});
}

std::string ElasticStore::TermKey(const Json& value) {
  switch (value.type()) {
    case Json::Type::kString: return "s:" + value.as_string();
    case Json::Type::kInt: return "i:" + std::to_string(value.as_int());
    case Json::Type::kDouble: {
      // Integral doubles share the int key so term queries match across
      // numeric types (like ES numeric coercion).
      const double d = value.as_double();
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) == d) return "i:" + std::to_string(i);
      return "d:" + std::to_string(d);
    }
    case Json::Type::kBool: return value.as_bool() ? "b:1" : "b:0";
    default: return "j:" + value.Dump();
  }
}

void ElasticStore::IndexDoc(SubShard& shard, DocId id, const Json& doc) {
  if (!doc.is_object()) return;
  for (const JsonMember& member : doc.as_object()) {
    const std::string& field = member.first;
    const Json& value = member.second;
    if (value.is_array() || value.is_object() || value.is_null()) continue;
    auto& postings = shard.terms[field][TermKey(value)];
    if (postings.empty() || postings.back() != id) postings.push_back(id);
    if (value.is_number()) {
      shard.numerics[field].emplace_back(value.as_int(), id);
      shard.numerics_dirty = true;
    }
  }
}

void ElasticStore::SortNumericsIfDirty(SubShard& shard) {
  if (!shard.numerics_dirty) return;
  for (auto& [field, entries] : shard.numerics) {
    std::sort(entries.begin(), entries.end());
  }
  shard.numerics_dirty = false;
}

void ElasticStore::Refresh(const std::string& index_name) {
  const std::shared_ptr<Index> index = Find(index_name);
  if (index == nullptr) return;
  // Mutators serialize end-to-end on ingest_mu; concurrent queries are not
  // blocked until the brief exclusive swap window at the end.
  std::scoped_lock ingest_lock(index->ingest_mu);

  // Collect everything bulked so far, then replay in sequence order so
  // docids match a single-shard store exactly.
  std::vector<PendingBatch> batches;
  for (const auto& lane : index->lanes) {
    std::scoped_lock lane_lock(lane->mu);
    std::move(lane->batches.begin(), lane->batches.end(),
              std::back_inserter(batches));
    lane->batches.clear();
  }
  if (batches.empty()) return;
  std::sort(batches.begin(), batches.end(),
            [](const PendingBatch& a, const PendingBatch& b) {
              return a.seq < b.seq;
            });

  // Assign docids and stage each row with its owning sub-shard. JSON rows
  // move their document; typed rows carry a pointer into the (still-alive)
  // batch's wire records plus its session label. Reading next_docid without
  // refresh_mu is safe: only refreshes advance it, and they hold ingest_mu.
  struct StagedRow {
    DocId id = 0;
    Json doc;
    const tracer::WireEvent* wire = nullptr;
    const std::string* session = nullptr;
  };
  const std::size_t num_shards = index->num_shards();
  std::vector<std::vector<StagedRow>> staged(num_shards);
  std::size_t total = 0;
  for (PendingBatch& batch : batches) {
    total += batch.docs.size() + batch.wire.size();
  }
  for (auto& stage : staged) stage.reserve(total / num_shards + 1);
  std::uint64_t next_docid = index->next_docid;
  for (PendingBatch& batch : batches) {
    for (Json& doc : batch.docs) {
      const DocId id = next_docid++;
      staged[static_cast<std::size_t>(id) % num_shards].push_back(
          StagedRow{id, std::move(doc), nullptr, nullptr});
    }
    for (const tracer::WireEvent& record : batch.wire) {
      const DocId id = next_docid++;
      staged[static_cast<std::size_t>(id) % num_shards].push_back(
          StagedRow{id, Json(), &record, &batch.session});
    }
  }

  // Per-shard fan-out used by both phases — parallel when the batch is big
  // enough to pay for the threads.
  constexpr std::size_t kParallelRefreshThreshold = 4096;
  const auto per_shard = [&](const std::function<void(std::size_t)>& fn) {
    if (total >= kParallelRefreshThreshold && num_shards > 1 &&
        std::thread::hardware_concurrency() > 1) {
      std::vector<std::thread> workers;
      workers.reserve(num_shards);
      for (std::size_t s = 0; s < num_shards; ++s) workers.emplace_back(fn, s);
      for (std::thread& worker : workers) worker.join();
    } else {
      for (std::size_t s = 0; s < num_shards; ++s) fn(s);
    }
  };

  // Phase 1 (segmented mode): build the new rows' columns entirely
  // off-lock. Queries keep running against the live segment lists the whole
  // time — sealed segments are adopted by pointer, the growing tail is
  // cloned and appended into, blocks seal at segment_docs. Nothing mutates
  // the base lists underneath us: every mutator holds ingest_mu.
  const bool segmented = options_.doc_values && options_.segment_docs != 0;
  std::vector<std::unique_ptr<StagedSegmentBuild>> builds(num_shards);
  if (segmented) {
    const Nanos start = SteadyClock::Instance()->NowNanos();
    per_shard([&index, &staged, &builds](std::size_t s) {
      if (staged[s].empty()) return;
      auto build =
          std::make_unique<StagedSegmentBuild>(index->shards[s]->segments);
      std::optional<WireColumnAppender> appender;
      for (const StagedRow& row : staged[s]) {
        // A sealed block means a fresh tail ColumnSet: re-bind the appender
        // (it caches column pointers into one set).
        if (build->PrepareRow()) appender.reset();
        if (row.wire != nullptr) {
          if (!appender.has_value()) appender.emplace(&build->tail());
          appender->Append(*row.wire, *row.session);
        } else {
          build->tail().AppendDoc(row.doc);
        }
      }
      build->Finish();
      builds[s] = std::move(build);
    });
    index->column_build_ns.fetch_add(
        static_cast<std::uint64_t>(SteadyClock::Instance()->NowNanos() -
                                   start),
        std::memory_order_relaxed);
  }

  // Phase 2: the exclusive window — append the row store, index JSON rows'
  // postings, swap the staged segment lists in, publish the docids. In
  // segmented mode the column work already happened, so this pause is
  // bounded by the staged row count, never by index size.
  std::unique_lock refresh_lock = index->LockForMutation();
  const Nanos pause_start = SteadyClock::Instance()->NowNanos();
  per_shard([this, &index, &staged, &builds, segmented](std::size_t s) {
    SubShard& shard = *index->shards[s];
    std::unique_lock shard_lock(shard.mu);
    const bool legacy_columns = options_.doc_values && !segmented;
    const Nanos start = SteadyClock::Instance()->NowNanos();
    std::optional<WireColumnAppender> appender;
    for (StagedRow& row : staged[s]) {
      if (row.wire != nullptr) {
        // Typed rows get a null placeholder document and skip the
        // term/numeric indexes entirely — that skip is the bulk of the
        // typed route's win, paid for by forcing the scan path while the
        // shard holds typed rows.
        shard.docs.emplace_back();
        shard.typed.push_back(1);
        ++shard.typed_rows;
        if (legacy_columns) {
          if (!appender.has_value()) {
            appender.emplace(&shard.segments.EnsureTail().columns);
          }
          appender->Append(*row.wire, *row.session);
        }
      } else {
        shard.docs.push_back(std::move(row.doc));
        shard.typed.push_back(0);
        IndexDoc(shard, row.id, shard.docs.back());
        if (legacy_columns) {
          shard.segments.EnsureTail().columns.AppendDoc(shard.docs.back());
        }
      }
    }
    SortNumericsIfDirty(shard);
    if (segmented) {
      if (builds[s] != nullptr) builds[s]->Commit(&shard.segments);
    } else if (legacy_columns && !staged[s].empty()) {
      // Rebuild-everything mode: one block, grown in place under the lock,
      // every cached bitmap stale.
      ColumnSegment& tail = shard.segments.EnsureTail();
      tail.columns.FinishBatch();
      tail.cache.Clear();
      shard.segments.NoteInPlaceGrowth();
      index->column_build_ns.fetch_add(
          static_cast<std::uint64_t>(SteadyClock::Instance()->NowNanos() -
                                     start),
          std::memory_order_relaxed);
    }
  });
  index->next_docid = next_docid;
  index->refreshes.fetch_add(1, std::memory_order_relaxed);
  const auto pause_ns = static_cast<std::uint64_t>(
      SteadyClock::Instance()->NowNanos() - pause_start);
  refresh_lock.unlock();

  std::scoped_lock pause_lock(index->pause_mu);
  if (index->refresh_pause_ns.size() >= Index::kPauseSamples) {
    index->refresh_pause_ns.erase(
        index->refresh_pause_ns.begin(),
        index->refresh_pause_ns.begin() + Index::kPauseSamples / 2);
  }
  index->refresh_pause_ns.push_back(pause_ns);
}

void ElasticStore::RefreshAll() {
  for (const std::string& name : ListIndices()) Refresh(name);
}

namespace {

std::vector<DocId> Intersect(std::vector<DocId> a, std::vector<DocId> b) {
  std::vector<DocId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<DocId> Union(std::vector<DocId> a, std::vector<DocId> b) {
  std::vector<DocId> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Dedup(std::vector<DocId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::optional<std::vector<DocId>> ElasticStore::Candidates(
    const SubShard& shard, const Query& query) {
  switch (query.type()) {
    case Query::Type::kTerm:
    case Query::Type::kTerms: {
      auto field_it = shard.terms.find(query.field());
      if (field_it == shard.terms.end()) return std::vector<DocId>{};
      std::vector<DocId> out;
      for (const Json& value : query.values()) {
        auto term_it = field_it->second.find(TermKey(value));
        if (term_it != field_it->second.end()) {
          out = Union(std::move(out), term_it->second);
        }
      }
      return Dedup(std::move(out));
    }
    case Query::Type::kRange: {
      if (shard.numerics_dirty) return std::nullopt;  // pending resort
      auto field_it = shard.numerics.find(query.field());
      if (field_it == shard.numerics.end()) return std::vector<DocId>{};
      const auto& entries = field_it->second;
      auto lo = entries.begin();
      auto hi = entries.end();
      if (query.gte().has_value()) {
        lo = std::lower_bound(
            entries.begin(), entries.end(),
            std::make_pair(*query.gte(), std::numeric_limits<DocId>::min()));
      }
      if (query.lte().has_value()) {
        hi = std::upper_bound(
            entries.begin(), entries.end(),
            std::make_pair(*query.lte(), std::numeric_limits<DocId>::max()));
      }
      std::vector<DocId> out;
      out.reserve(static_cast<std::size_t>(std::distance(lo, hi)));
      for (auto it = lo; it != hi; ++it) out.push_back(it->second);
      return Dedup(std::move(out));
    }
    case Query::Type::kPrefix: {
      auto field_it = shard.terms.find(query.field());
      if (field_it == shard.terms.end()) return std::vector<DocId>{};
      // Term keys are sorted, so the matching "s:<prefix>…" terms are one
      // contiguous range starting at lower_bound.
      const std::string key_prefix = "s:" + query.prefix();
      std::vector<DocId> out;
      for (auto it = field_it->second.lower_bound(key_prefix);
           it != field_it->second.end() && it->first.starts_with(key_prefix);
           ++it) {
        out = Union(std::move(out), it->second);
      }
      return Dedup(std::move(out));
    }
    case Query::Type::kAnd: {
      std::optional<std::vector<DocId>> narrowed;
      for (const Query& clause : query.clauses()) {
        auto candidates = Candidates(shard, clause);
        if (!candidates.has_value()) continue;  // clause needs a scan
        narrowed = narrowed.has_value()
                       ? Intersect(std::move(*narrowed),
                                   std::move(*candidates))
                       : std::move(*candidates);
      }
      return narrowed;  // nullopt if no clause was indexable
    }
    case Query::Type::kOr: {
      std::vector<DocId> out;
      for (const Query& clause : query.clauses()) {
        auto candidates = Candidates(shard, clause);
        if (!candidates.has_value()) return std::nullopt;  // must scan
        out = Union(std::move(out), std::move(*candidates));
      }
      return out;
    }
    case Query::Type::kMatchAll:
    case Query::Type::kExists:
    case Query::Type::kNot:
      return std::nullopt;
  }
  return std::nullopt;
}

std::vector<DocId> ElasticStore::MatchingDocs(const SubShard& shard,
                                              const Query& query) {
  std::vector<DocId> matches;
  auto candidates = Candidates(shard, query);
  if (candidates.has_value()) {
    for (DocId id : *candidates) {
      if (shard.Owns(id) && query.Matches(shard.DocAt(id))) {
        matches.push_back(id);
      }
    }
  } else {
    for (std::size_t pos = 0; pos < shard.docs.size(); ++pos) {
      if (query.Matches(shard.docs[pos])) {
        matches.push_back(static_cast<DocId>(pos * shard.stride +
                                             shard.shard_index));
      }
    }
  }
  return matches;
}

std::vector<DocId> ElasticStore::MatchingDocsColumnar(const SubShard& shard,
                                                      const Query& query) {
  std::vector<DocId> matches;
  const SegmentedColumns& segments = shard.segments;
  // Typed rows have no postings/numerics entries, so while the shard holds
  // any, the candidate lists are incomplete — go straight to the scan path
  // (the compiled bitmaps read the columns, which do cover typed rows).
  auto candidates = shard.typed_rows == 0
                        ? Candidates(shard, query)
                        : std::optional<std::vector<DocId>>();
  if (candidates.has_value()) {
    // Candidates ascend, so the owning segment index is nondecreasing and
    // one compiled query per touched segment suffices (term ordinals and
    // prefix rank ranges resolve against that segment's dictionaries).
    std::optional<CompiledQuery> compiled;
    std::size_t current = std::numeric_limits<std::size_t>::max();
    for (DocId id : *candidates) {
      if (!shard.Owns(id)) continue;
      const std::size_t pos = static_cast<std::size_t>(id) / shard.stride;
      const std::size_t seg = segments.SegmentIndexFor(pos);
      if (seg != current) {
        compiled.emplace(query, segments.segments()[seg]->columns);
        current = seg;
      }
      if (compiled->Matches(segments.LocalPos(pos), shard.docs[pos])) {
        matches.push_back(id);
      }
    }
  } else {
    // Scan path, one segment at a time against that segment's bitmap
    // cache: sealed segments answer repeated predicates from cache, so
    // after a refresh only the tail is actually re-evaluated.
    for (const auto& segment : segments.segments()) {
      const CompiledQuery compiled(query, segment->columns);
      const FilterBitmap bitmap = compiled.Eval(
          std::span<const Json>(shard.docs.data() + segment->base,
                                segment->rows()),
          &segment->cache);
      const std::size_t base = segment->base;
      bitmap.ForEachSet([&matches, &shard, base](std::size_t local) {
        matches.push_back(static_cast<DocId>((base + local) * shard.stride +
                                             shard.shard_index));
      });
    }
  }
  return matches;
}

void ElasticStore::RunPerShard(
    std::size_t num_shards, const std::function<void(std::size_t)>& fn) const {
  if (query_pool_ == nullptr || num_shards <= 1) {
    for (std::size_t s = 0; s < num_shards; ++s) fn(s);
    return;
  }
  // Shard 0 runs on the calling thread, so the request makes progress even
  // when the pool is saturated by other requests; workers never wait on
  // anything but their own shard, so pool-sharing cannot deadlock.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = num_shards - 1;
  for (std::size_t s = 1; s < num_shards; ++s) {
    query_pool_->Submit([&fn, s, &mu, &cv, &remaining] {
      fn(s);
      std::scoped_lock lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  fn(0);
  std::unique_lock lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

std::vector<DocId> ElasticStore::MatchingDocs(const Index& index,
                                              const Query& query) const {
  const std::size_t num_shards = index.num_shards();
  std::vector<std::vector<DocId>> per_shard(num_shards);
  RunPerShard(num_shards, [&](std::size_t s) {
    const SubShard& shard = *index.shards[s];
    std::shared_lock shard_lock(shard.mu);
    per_shard[s] = options_.doc_values ? MatchingDocsColumnar(shard, query)
                                       : MatchingDocs(shard, query);
  });

  // Merge the per-shard lists (each ascending) in ascending docid order
  // (= ingestion order), exactly as the unsharded store.
  std::size_t total = 0;
  for (const auto& list : per_shard) total += list.size();
  std::vector<DocId> matches;
  matches.reserve(total);
  std::vector<std::size_t> cursor(num_shards, 0);
  while (matches.size() < total) {
    std::size_t best = num_shards;
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (cursor[s] < per_shard[s].size() &&
          (best == num_shards ||
           per_shard[s][cursor[s]] < per_shard[best][cursor[best]])) {
        best = s;
      }
    }
    matches.push_back(per_shard[best][cursor[best]++]);
  }
  return matches;
}

namespace {

// Decorated sort key for the columnar top-k path: the value class mirrors
// the JSON comparator's branches (missing sorts last; numbers and strings
// compare within their class; anything else ties and falls through to the
// next sort spec).
struct SortKey {
  enum : std::uint8_t { kMissing = 0, kNumber, kString, kOther };
  std::uint8_t cls = kMissing;
  double num = 0.0;
  std::string_view str;
};

}  // namespace

Expected<SearchResult> ElasticStore::Search(const std::string& index_name,
                                            const SearchRequest& request) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);

  std::vector<DocId> matches = MatchingDocs(*index, request.query);

  if (!options_.doc_values) {
    // Serial JSON engine: sort with per-comparison Json::Find (the oracle).
    if (!request.sort.empty()) {
      std::stable_sort(
          matches.begin(), matches.end(), [&](DocId a, DocId b) {
            for (const SortSpec& spec : request.sort) {
              const Json* va = index->DocAt(a).Find(spec.field);
              const Json* vb = index->DocAt(b).Find(spec.field);
              // Missing values sort last regardless of direction.
              if (va == nullptr && vb == nullptr) continue;
              if (va == nullptr) return false;
              if (vb == nullptr) return true;
              int cmp = 0;
              if (va->is_number() && vb->is_number()) {
                const double da = va->as_double();
                const double db = vb->as_double();
                cmp = da < db ? -1 : (da > db ? 1 : 0);
              } else if (va->is_string() && vb->is_string()) {
                cmp = va->as_string().compare(vb->as_string());
              }
              if (cmp != 0) return spec.ascending ? cmp < 0 : cmp > 0;
            }
            return a < b;
          });
    }
    SearchResult result;
    result.total = matches.size();
    const std::size_t start = std::min(request.from, matches.size());
    const std::size_t end = std::min(start + request.size, matches.size());
    result.hits.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      result.hits.push_back(Hit{matches[i], index->DocAt(matches[i])});
    }
    return result;
  }

  // Columnar engine. Paging bounds first (saturating), because the sort only
  // needs the top `end` entries.
  SearchResult result;
  result.total = matches.size();
  const std::size_t start = std::min(request.from, matches.size());
  const std::size_t end =
      start + std::min(request.size, matches.size() - start);

  if (request.sort.empty()) {
    result.hits.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      result.hits.push_back(Hit{matches[i], index->MaterializedDoc(matches[i])});
    }
    return result;
  }

  // Decorate once: resolve each sort field's column per (shard, segment),
  // then gather one flat key per (match, spec). The comparator never
  // touches Json.
  const std::size_t nspecs = request.sort.size();
  const std::size_t num_shards = index->num_shards();
  std::vector<std::vector<const DocValueColumn*>> cols(nspecs * num_shards);
  for (std::size_t j = 0; j < nspecs; ++j) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      auto& per_segment = cols[j * num_shards + s];
      const auto& segments = index->shards[s]->segments.segments();
      per_segment.reserve(segments.size());
      for (const auto& segment : segments) {
        per_segment.push_back(segment->columns.Find(request.sort[j].field));
      }
    }
  }
  std::vector<SortKey> keys(matches.size() * nspecs);
  for (std::size_t r = 0; r < matches.size(); ++r) {
    const auto id = static_cast<std::size_t>(matches[r]);
    const std::size_t s = id % num_shards;
    const std::size_t pos = id / num_shards;
    const SegmentedColumns& segments = index->shards[s]->segments;
    const std::size_t seg = segments.SegmentIndexFor(pos);
    const std::size_t local = segments.LocalPos(pos);
    for (std::size_t j = 0; j < nspecs; ++j) {
      const DocValueColumn* col = cols[j * num_shards + s][seg];
      SortKey& key = keys[r * nspecs + j];
      if (col == nullptr) continue;  // field absent from this whole segment
      switch (col->kind(local)) {
        case ValueKind::kMissing:
          break;
        case ValueKind::kInt:
        case ValueKind::kDouble:
          key.cls = SortKey::kNumber;
          key.num = col->dbls[local];
          break;
        case ValueKind::kString:
          key.cls = SortKey::kString;
          key.str = col->str(local);
          break;
        default:  // bools and non-scalars are present but never order docs
          key.cls = SortKey::kOther;
          break;
      }
    }
  }
  const auto before = [&](std::size_t a, std::size_t b) {
    for (std::size_t j = 0; j < nspecs; ++j) {
      const SortKey& ka = keys[a * nspecs + j];
      const SortKey& kb = keys[b * nspecs + j];
      if (ka.cls == SortKey::kMissing && kb.cls == SortKey::kMissing) continue;
      if (ka.cls == SortKey::kMissing) return false;
      if (kb.cls == SortKey::kMissing) return true;
      int cmp = 0;
      if (ka.cls == SortKey::kNumber && kb.cls == SortKey::kNumber) {
        cmp = ka.num < kb.num ? -1 : (ka.num > kb.num ? 1 : 0);
      } else if (ka.cls == SortKey::kString && kb.cls == SortKey::kString) {
        cmp = ka.str.compare(kb.str);
      }
      if (cmp != 0) return request.sort[j].ascending ? cmp < 0 : cmp > 0;
    }
    // Total docid tiebreak: the order is strict, so a plain (partial) sort
    // produces exactly what the oracle's stable_sort does.
    return matches[a] < matches[b];
  };
  std::vector<std::size_t> order(matches.size());
  std::iota(order.begin(), order.end(), 0);
  if (end < order.size()) {
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(end),
                      order.end(), before);
  } else {
    std::sort(order.begin(), order.end(), before);
  }
  result.hits.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) {
    const DocId id = matches[order[i]];
    result.hits.push_back(Hit{id, index->MaterializedDoc(id)});
  }
  return result;
}

Expected<SearchResult> ElasticStore::Search(const std::string& index_name,
                                            const Json& body) const {
  auto request = SearchRequest::FromJson(body, options_.max_result_window);
  if (!request.ok()) return request.status();
  return Search(index_name, *request);
}

Expected<std::size_t> ElasticStore::Count(const std::string& index_name,
                                          const Query& query) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);
  const std::size_t num_shards = index->num_shards();
  std::vector<std::size_t> counts(num_shards, 0);
  RunPerShard(num_shards, [&](std::size_t s) {
    const SubShard& shard = *index->shards[s];
    std::shared_lock shard_lock(shard.mu);
    counts[s] = (options_.doc_values ? MatchingDocsColumnar(shard, query)
                                     : MatchingDocs(shard, query))
                    .size();
  });
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  return total;
}

namespace {

// AggSource over a matched docid set: gathers one ColumnSlice per field from
// the per-shard columns, falling back to the document only for non-scalar
// members.
class ShardedAggSource final : public AggSource {
 public:
  struct ShardView {
    const std::vector<Json>* docs = nullptr;
    const SegmentedColumns* segments = nullptr;
  };

  ShardedAggSource(std::vector<ShardView> shards, std::vector<DocId> matches)
      : shards_(std::move(shards)), matches_(std::move(matches)) {}

  [[nodiscard]] std::size_t rows() const override { return matches_.size(); }

  [[nodiscard]] const ColumnSlice& Slice(
      const std::string& field) const override {
    auto [it, inserted] = cache_.try_emplace(field);
    if (!inserted) return it->second;
    ColumnSlice& slice = it->second;
    const std::size_t n = matches_.size();
    const std::size_t num_shards = shards_.size();
    slice.kinds.assign(n, static_cast<std::uint8_t>(ValueKind::kMissing));
    slice.ints.assign(n, 0);
    slice.dbls.assign(n, 0.0);
    slice.strs.assign(n, {});
    slice.raws.assign(n, nullptr);
    // The field's column resolved once per (shard, segment).
    std::vector<std::vector<const DocValueColumn*>> cols(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      const auto& segments = shards_[s].segments->segments();
      cols[s].reserve(segments.size());
      for (const auto& segment : segments) {
        cols[s].push_back(segment->columns.Find(field));
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      const auto id = static_cast<std::size_t>(matches_[r]);
      const std::size_t s = id % num_shards;
      const std::size_t pos = id / num_shards;
      const SegmentedColumns& segments = *shards_[s].segments;
      const std::size_t local = segments.LocalPos(pos);
      const DocValueColumn* col = cols[s][segments.SegmentIndexFor(pos)];
      if (col == nullptr) continue;
      const ValueKind kind = col->kind(local);
      slice.kinds[r] = static_cast<std::uint8_t>(kind);
      switch (kind) {
        case ValueKind::kInt:
        case ValueKind::kDouble:
          slice.ints[r] = col->ints[local];
          slice.dbls[r] = col->dbls[local];
          break;
        case ValueKind::kString:
          slice.strs[r] = col->str(local);
          break;
        case ValueKind::kBool:
          slice.ints[r] = col->ints[local];
          break;
        case ValueKind::kOther:
          slice.raws[r] = (*shards_[s].docs)[pos].Find(field);
          break;
        case ValueKind::kMissing:
          break;
      }
    }
    return slice;
  }

 private:
  std::vector<ShardView> shards_;
  std::vector<DocId> matches_;
  mutable std::map<std::string, ColumnSlice> cache_;
};

}  // namespace

Expected<AggResult> ElasticStore::Aggregate(const std::string& index_name,
                                            const Query& query,
                                            const Aggregation& agg) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);
  std::vector<DocId> matches = MatchingDocs(*index, query);
  if (!options_.doc_values) {
    std::vector<const Json*> docs;
    docs.reserve(matches.size());
    for (DocId id : matches) docs.push_back(&index->DocAt(id));
    return agg.Execute(docs);
  }
  std::vector<ShardedAggSource::ShardView> views;
  views.reserve(index->num_shards());
  for (const auto& shard : index->shards) {
    views.push_back({&shard->docs, &shard->segments});
  }
  const ShardedAggSource source(std::move(views), std::move(matches));
  return agg.ExecuteColumnar(source);
}

Expected<AggPartial> ElasticStore::AggregatePartial(
    const std::string& index_name, const Query& query,
    const Aggregation& agg) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);
  std::vector<DocId> matches = MatchingDocs(*index, query);
  if (!options_.doc_values) {
    std::vector<const Json*> docs;
    docs.reserve(matches.size());
    for (DocId id : matches) docs.push_back(&index->DocAt(id));
    return agg.ExecutePartial(docs);
  }
  std::vector<ShardedAggSource::ShardView> views;
  views.reserve(index->num_shards());
  for (const auto& shard : index->shards) {
    views.push_back({&shard->docs, &shard->segments});
  }
  const ShardedAggSource source(std::move(views), std::move(matches));
  return agg.ExecuteColumnarPartial(source);
}

Expected<std::size_t> ElasticStore::UpdateByQuery(
    const std::string& index_name, const Query& query,
    const std::function<bool(Json&)>& update) {
  const std::shared_ptr<Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::scoped_lock ingest_lock(index->ingest_mu);
  std::unique_lock refresh_lock = index->LockForMutation();
  std::vector<DocId> matches = MatchingDocs(*index, query);
  const std::size_t num_shards = index->num_shards();
  std::vector<std::vector<std::size_t>> modified_pos(num_shards);
  std::size_t modified = 0;
  for (DocId id : matches) {
    const std::size_t s = static_cast<std::size_t>(id) % num_shards;
    const auto pos = static_cast<std::size_t>(id) / num_shards;
    SubShard& shard = *index->shards[s];
    std::unique_lock shard_lock(shard.mu);
    if (shard.IsTyped(pos)) {
      // Typed rows are updated through their materialized document; a
      // modification converts the row to a JSON row (updates are rare —
      // one correlation pass per session — and conversion keeps the update
      // path identical for both routes from here on).
      const ColumnSegment& segment = shard.segments.SegmentFor(pos);
      Json doc =
          MaterializeWireDoc(segment.columns, shard.segments.LocalPos(pos));
      if (!update(doc)) continue;
      shard.docs[pos] = std::move(doc);
      shard.typed[pos] = 0;
      --shard.typed_rows;
    } else {
      if (!update(shard.docs[pos])) continue;
    }
    ++modified;
    modified_pos[s].push_back(pos);
    // Re-index the updated document: postings become a superset (stale
    // entries are filtered by re-verification at query time).
    IndexDoc(shard, id, shard.docs[pos]);
  }
  index->updates.fetch_add(modified, std::memory_order_relaxed);
  for (const auto& shard : index->shards) {
    std::unique_lock shard_lock(shard->mu);
    SortNumericsIfDirty(*shard);
  }
  if (options_.doc_values) {
    // Rewrite just the modified slots in place and invalidate only the
    // touched segments' caches: blocks the update never reached keep their
    // bitmaps and their dictionary ranks (a rewrite may add dictionary
    // entries, but FinishBatch re-ranks only dictionaries that grew).
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (modified_pos[s].empty()) continue;
      SubShard& shard = *index->shards[s];
      std::unique_lock shard_lock(shard.mu);
      std::vector<std::uint8_t> touched(shard.segments.num_segments(), 0);
      for (const std::size_t pos : modified_pos[s]) {
        ColumnSegment& segment = shard.segments.SegmentFor(pos);
        segment.columns.ReplaceRow(shard.segments.LocalPos(pos),
                                   shard.docs[pos]);
        touched[shard.segments.SegmentIndexFor(pos)] = 1;
      }
      for (std::size_t k = 0; k < touched.size(); ++k) {
        if (touched[k] == 0) continue;
        ColumnSegment& segment = *shard.segments.segments()[k];
        segment.columns.FinishBatch();
        segment.cache.Clear();
      }
    }
  }
  return modified;
}

Expected<IndexStats> ElasticStore::Stats(const std::string& index_name) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);
  IndexStats stats;
  for (const auto& shard : index->shards) {
    std::shared_lock shard_lock(shard->mu);
    stats.doc_count += shard->docs.size();
    stats.typed_rows += shard->typed_rows;
    stats.doc_value_fields += shard->segments.num_fields();
    stats.filter_cache_hits += shard->segments.cache_hits();
    stats.filter_cache_misses += shard->segments.cache_misses();
    stats.filter_cache_evictions += shard->segments.cache_evictions();
    stats.segments += shard->segments.num_segments();
    stats.sealed_segments += shard->segments.num_sealed();
  }
  for (const auto& lane : index->lanes) {
    std::scoped_lock lane_lock(lane->mu);
    for (const PendingBatch& batch : lane->batches) {
      stats.pending_count += batch.docs.size() + batch.wire.size();
    }
  }
  stats.bulk_requests = index->bulk_requests.load(std::memory_order_relaxed);
  stats.updates = index->updates.load(std::memory_order_relaxed);
  stats.column_build_ns =
      index->column_build_ns.load(std::memory_order_relaxed);
  stats.refreshes = index->refreshes.load(std::memory_order_relaxed);
  {
    std::scoped_lock pause_lock(index->pause_mu);
    stats.refresh_pause_ns = index->refresh_pause_ns;
  }
  return stats;
}

Status ElasticStore::SaveIndex(const std::string& index_name,
                               const std::string& file_path) const {
  const std::shared_ptr<const Index> index = Find(index_name);
  if (index == nullptr) return NotFound("no such index: " + index_name);
  std::ofstream out(file_path, std::ios::trunc);
  if (!out) return Unavailable("cannot open for writing: " + file_path);
  index->AwaitRefreshGate();
  std::shared_lock refresh_lock(index->refresh_mu);
  std::size_t doc_count = 0;
  for (const auto& shard : index->shards) doc_count += shard->docs.size();
  Json header = Json::MakeObject();
  header.Set("dio_index_snapshot", index_name);
  header.Set("docs", static_cast<std::int64_t>(doc_count));
  out << header.Dump() << "\n";
  for (DocId id = 0; id < doc_count; ++id) {
    out << index->MaterializedDoc(id).Dump() << "\n";
  }
  out.close();
  if (!out) return Unavailable("write failed: " + file_path);
  return Status::Ok();
}

Expected<std::string> ElasticStore::LoadIndex(const std::string& file_path,
                                              const std::string& rename_to) {
  std::ifstream in(file_path);
  if (!in) return NotFound("cannot open snapshot: " + file_path);
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgument("empty snapshot: " + file_path);
  }
  auto header = Json::Parse(line);
  if (!header.ok() || !header->Has("dio_index_snapshot")) {
    return InvalidArgument("not a DIO index snapshot: " + file_path);
  }
  const std::string index = rename_to.empty()
                                ? header->GetString("dio_index_snapshot")
                                : rename_to;
  if (HasIndex(index)) {
    return AlreadyExists("index exists: " + index);
  }
  DIO_RETURN_IF_ERROR(CreateIndex(index));
  std::vector<Json> batch;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = Json::Parse(line);
    if (!doc.ok()) {
      (void)DeleteIndex(index);
      return InvalidArgument("corrupt snapshot line: " + doc.status().message());
    }
    batch.push_back(std::move(doc.value()));
  }
  Bulk(index, std::move(batch));
  Refresh(index);
  return index;
}

}  // namespace dio::backend
