// SIMD-friendly kernels for the columnar query engine.
//
// The doc-value columns are dense parallel arrays (kind byte + int64 +
// double per slot), so the hot predicates — bitmap combination, numeric
// range filters, ordinal equality, histogram binning — are flat loops over
// contiguous memory with no per-element branches on shared state. The
// kernels here write those loops in the shape auto-vectorizers reliably
// turn into vector code: word-at-a-time bitwise ops, 4–8× unrolled compare
// loops accumulating into a bit mask, and branch-free bucket arithmetic.
// Every kernel has exactly the semantics of the scalar loop it replaces
// (CompiledQuery::MatchesNode / Aggregation::ExecuteColumnar), so routing a
// predicate through a kernel can never change a query result — only its
// cost. `backend.simd_kernels=false` keeps the original scalar loops as the
// parity/debug fallback (same trick as `backend.doc_values=false`).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dio::backend::simd {

// Process-wide kernel switch (the `backend.simd_kernels` knob). Call sites
// in doc_values.cc / aggregation.cc consult it and fall back to their scalar
// loops when disabled. Relaxed atomic: flipping it mid-query is benign
// because both paths compute identical results.
void SetEnabled(bool enabled);
[[nodiscard]] bool Enabled();

// ---- Bitmap word kernels ----------------------------------------------------
// dst[i] op= src[i] for n 64-bit words (FilterBitmap::AndWith / OrWith).
void AndWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
// dst[i] &= ~src[i]; the must_not combination without a Negate round trip.
void AndNotWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);
// words[i] = ~words[i] (FilterBitmap::Negate; caller masks the tail bits).
void NotWords(std::uint64_t* words, std::size_t n);

// ---- Column predicate kernels -----------------------------------------------
// All mask kernels OR their matches into `words` (n bits, words pre-zeroed
// or partially filled by a prior value of an OR-combined term list), and
// read `kinds` as backend::ValueKind bytes.

// Range filter: sets bit i where kinds[i] is a number (kInt or kDouble) and
// lo <= ints[i] <= hi — exactly CompiledQuery's kRange semantics (the int64
// shadow value is what the oracle compares). Open bounds are INT64_MIN/MAX.
void RangeMaskInt64(const std::int64_t* ints, const std::uint8_t* kinds,
                    std::size_t n, std::int64_t lo, std::int64_t hi,
                    std::uint64_t* words);

// Equality filter: sets bit i where kinds[i] == kind and ints[i] == value.
// Serves string terms (value = dictionary ordinal) and bool terms (0/1).
void EqMaskInt64(const std::int64_t* ints, const std::uint8_t* kinds,
                 std::size_t n, std::uint8_t kind, std::int64_t value,
                 std::uint64_t* words);

// Exists filter: sets bit i where kinds[i] != kMissing (the byte 0).
void NonMissingMask(const std::uint8_t* kinds, std::size_t n,
                    std::uint64_t* words);

// ---- Aggregation kernels ----------------------------------------------------
// Histogram binning: out[i] = floor(ints[i] / interval) * interval with the
// toward-negative-infinity adjustment the histogram aggregation applies
// ((v/interval)*interval, minus interval when v < 0 and v % interval != 0).
// Rows whose kind is not a number get out[i] = 0; callers skip them by
// re-checking kinds, so the fill value never leaks into a bucket.
// `interval` must be > 0 (enforced by Aggregation parsing).
void HistogramBins(const std::int64_t* ints, const std::uint8_t* kinds,
                   std::size_t n, std::int64_t interval, std::int64_t* out);

}  // namespace dio::backend::simd
