#include "backend/segments.h"

#include <cassert>
#include <set>
#include <string>
#include <utility>

namespace dio::backend {

std::size_t SegmentedColumns::num_sealed() const {
  std::size_t sealed = 0;
  for (const auto& segment : segments_) {
    if (segment->sealed) ++sealed;
  }
  return sealed;
}

std::size_t SegmentedColumns::num_fields() const {
  if (segments_.empty()) return 0;
  if (segments_.size() == 1) return segments_[0]->columns.num_fields();
  // Typed streams columnarize the same field set in every segment; mixed
  // schemaless streams can differ per block, so report the union.
  std::set<std::string, std::less<>> fields;
  for (const auto& segment : segments_) {
    segment->columns.ForEachField(
        [&fields](const std::string& field) { fields.insert(field); });
  }
  return fields.size();
}

std::uint64_t SegmentedColumns::cache_hits() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments_) total += segment->cache.hits();
  return total;
}

std::uint64_t SegmentedColumns::cache_misses() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments_) total += segment->cache.misses();
  return total;
}

std::uint64_t SegmentedColumns::cache_evictions() const {
  std::uint64_t total = 0;
  for (const auto& segment : segments_) total += segment->cache.evictions();
  return total;
}

ColumnSegment& SegmentedColumns::EnsureTail() {
  if (segments_.empty() || segments_.back()->sealed ||
      (segment_docs_ != 0 && segments_.back()->rows() >= segment_docs_)) {
    segments_.push_back(
        std::make_shared<ColumnSegment>(num_rows_, cache_entries_));
  }
  return *segments_.back();
}

void SegmentedColumns::NoteInPlaceGrowth() {
  num_rows_ = segments_.empty() ? 0 : segments_.back()->end();
  ++generation_;
}

void SegmentedColumns::Clear() {
  segments_.clear();
  num_rows_ = 0;
  ++generation_;
}

// ---- StagedSegmentBuild -----------------------------------------------------

StagedSegmentBuild::StagedSegmentBuild(const SegmentedColumns& base)
    : base_generation_(base.generation()),
      base_rows_(base.num_rows()),
      segment_docs_(base.segment_docs()),
      cache_entries_(base.cache_entries()),
      next_base_(base.num_rows()),
      staged_(base.segments_) {
  if (!staged_.empty() && !staged_.back()->sealed) {
    // Clone the growing tail so appends never touch the copy concurrent
    // readers are scanning; the clone carries the cache counters over.
    tail_ = std::make_shared<ColumnSegment>(*staged_.back(), cache_entries_);
    staged_.back() = tail_;
    first_touched_ = staged_.size() - 1;
  } else {
    first_touched_ = staged_.size();
  }
}

bool StagedSegmentBuild::PrepareRow() {
  ++staged_rows_;
  if (tail_ != nullptr &&
      (segment_docs_ == 0 || tail_->rows() < segment_docs_)) {
    return false;
  }
  if (tail_ != nullptr) tail_->sealed = true;
  const std::size_t base =
      tail_ == nullptr ? next_base_ : tail_->base + tail_->rows();
  tail_ = std::make_shared<ColumnSegment>(base, cache_entries_);
  staged_.push_back(tail_);
  return true;
}

void StagedSegmentBuild::Finish() {
  for (std::size_t i = first_touched_; i < staged_.size(); ++i) {
    staged_[i]->columns.FinishBatch();
    // A block that filled to the brim this refresh is sealed immediately so
    // the very next refresh opens a new tail and this block's cache starts
    // accumulating reusable bitmaps.
    if (segment_docs_ != 0 && staged_[i]->rows() >= segment_docs_) {
      staged_[i]->sealed = true;
    }
  }
}

void StagedSegmentBuild::Commit(SegmentedColumns* target) {
  // The store's ingest mutex serializes all mutators, so the base list the
  // build started from must still be current.
  assert(target->generation_ == base_generation_);
  assert(target->num_rows_ == base_rows_);
  (void)base_generation_;
  (void)base_rows_;
  target->segments_ = std::move(staged_);
  target->num_rows_ =
      target->segments_.empty() ? 0 : target->segments_.back()->end();
  ++target->generation_;
}

}  // namespace dio::backend
