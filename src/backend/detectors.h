// Automated I/O-misbehaviour detectors — the §V future-work direction
// ("build a collection of correlation algorithms that can quickly identify
// the inefficient behaviors observed in the aforementioned applications"),
// implemented on top of the store's query API.
//
// Each detector scans one tracing session and returns typed findings with
// the evidence (event ids / values) a user would otherwise dig out of the
// dashboards by hand:
//
//   * StaleOffsetDetector   — the §III-B data-loss pattern: a file is read
//     from a non-zero offset right after being (re)created, so leading
//     bytes are silently skipped or reads return 0 at EOF.
//   * ContentionDetector    — the §III-C pattern: time windows where
//     background threads' I/O coincides with a latency jump for foreground
//     threads.
//   * SmallIoDetector       — costly access patterns: files dominated by
//     tiny data syscalls.
//   * RandomAccessDetector  — files accessed with mostly non-sequential
//     offsets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/query_backend.h"
#include "common/status.h"

namespace dio::backend {

struct Finding {
  std::string detector;
  std::string severity;  // "info" | "warning" | "critical"
  std::string file_path; // empty when not file-specific
  std::string message;
  Json evidence = Json::MakeObject();
};

// -- data loss / stale offset (§III-B) ---------------------------------------

struct StaleOffsetOptions {
  // A first read on a fresh file generation at an offset >= this is flagged.
  std::int64_t min_suspicious_offset = 1;
};

// Detects reads that start beyond offset 0 on the FIRST read of a file
// generation (identified by its file tag): the reader skipped leading bytes
// that were never consumed — the Fluent Bit bug signature.
Expected<std::vector<Finding>> DetectStaleOffsets(
    QueryBackend* store, const std::string& index,
    const StaleOffsetOptions& options = {});

// -- background/foreground contention (§III-C) --------------------------------

struct ContentionOptions {
  std::int64_t window_ns = 250'000'000;
  // Thread-name prefixes considered background (e.g. compaction pools).
  std::vector<std::string> background_prefixes = {"rocksdb:low"};
  // Thread-name prefix considered foreground (clients).
  std::string foreground_prefix = "db_bench";
  // Flag windows where foreground p99 latency exceeds the run median by
  // this multiple while >= min_background_threads are active.
  double latency_factor = 1.5;
  int min_background_threads = 2;
};

Expected<std::vector<Finding>> DetectContention(
    QueryBackend* store, const std::string& index,
    const ContentionOptions& options = {});

// -- inefficient access patterns ----------------------------------------------

struct SmallIoOptions {
  std::uint64_t small_threshold_bytes = 4096;
  // Flag files where at least this fraction of data syscalls are small and
  // there are at least min_ops of them.
  double min_fraction = 0.8;
  std::int64_t min_ops = 64;
};

Expected<std::vector<Finding>> DetectSmallIo(
    QueryBackend* store, const std::string& index,
    const SmallIoOptions& options = {});

struct RandomAccessOptions {
  // Flag files whose non-sequential access fraction exceeds this.
  double min_random_fraction = 0.5;
  std::int64_t min_ops = 32;
};

Expected<std::vector<Finding>> DetectRandomAccess(
    QueryBackend* store, const std::string& index,
    const RandomAccessOptions& options = {});

// -- failing syscalls (dependability) -----------------------------------------

struct ErrorRateOptions {
  // Flag (syscall, errno) pairs with at least this many failures...
  std::int64_t min_failures = 8;
  // ...or any occurrence of these always-suspicious errnos.
  std::vector<int> critical_errnos = {28 /*ENOSPC*/, 5 /*EIO*/};
};

// Flags syscalls that repeatedly fail (ret < 0), grouped by syscall and
// errno, with the dominant process — surfacing dependability problems like
// a filesystem running out of space.
Expected<std::vector<Finding>> DetectSyscallErrors(
    QueryBackend* store, const std::string& index,
    const ErrorRateOptions& options = {});

// Runs every detector with default options and concatenates findings.
Expected<std::vector<Finding>> RunAllDetectors(QueryBackend* store,
                                               const std::string& index);

// One-line-per-finding report.
std::string RenderFindings(const std::vector<Finding>& findings);

}  // namespace dio::backend
