#include "backend/correlation.h"

namespace dio::backend {

Expected<CorrelationStats> FilePathCorrelator::Run(const std::string& index) {
  CorrelationStats stats;
  tag_to_path_.clear();

  // Step 1: harvest tag -> path from open-type events.
  SearchRequest open_request;
  open_request.query = Query::And({
      Query::Terms("syscall", {Json("open"), Json("openat"), Json("creat")}),
      Query::Exists("file_tag"),
      Query::Exists("path"),
  });
  open_request.size = std::numeric_limits<std::size_t>::max();
  auto open_events = store_->Search(index, open_request);
  if (!open_events.ok()) return open_events.status();
  for (const Hit& hit : open_events->hits) {
    const std::string tag = hit.source.GetString("file_tag");
    const std::string path = hit.source.GetString("path");
    if (!tag.empty() && !path.empty()) {
      tag_to_path_.emplace(tag, path);
    }
  }
  stats.tags_discovered = tag_to_path_.size();

  // Step 2: update every tagged event with the resolved path. Events that
  // already carry a file_path (a previous run, or an overlapping pass) are
  // skipped and must not count as updated.
  auto updated = store_->UpdateByQuery(
      index, Query::Exists("file_tag"), [&](Json& doc) {
        if (doc.Has("file_path")) return false;
        auto it = tag_to_path_.find(doc.GetString("file_tag"));
        if (it == tag_to_path_.end()) return false;
        doc.Set("file_path", it->second);
        return true;
      });
  if (!updated.ok()) return updated.status();
  stats.events_updated = *updated;

  // Step 3: count outcomes.
  auto resolved = store_->Count(
      index,
      Query::And({Query::Exists("file_tag"), Query::Exists("file_path")}));
  if (!resolved.ok()) return resolved.status();
  auto tagged = store_->Count(index, Query::Exists("file_tag"));
  if (!tagged.ok()) return tagged.status();
  stats.events_resolved = *resolved;
  stats.events_unresolved = *tagged - *resolved;
  return stats;
}

}  // namespace dio::backend
