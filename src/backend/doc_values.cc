#include "backend/doc_values.h"

#include <algorithm>
#include <limits>

#include "backend/simd_kernels.h"

namespace dio::backend {

// ---- DocValueColumn ---------------------------------------------------------

void DocValueColumn::PrefixRankRange(std::string_view prefix,
                                     std::uint32_t* lo,
                                     std::uint32_t* hi) const {
  // Dictionary entries starting with `prefix` form one contiguous rank
  // range: everything comparing < prefix first, then the prefixed block.
  const auto cmp = [this, prefix](std::uint32_t ord) {
    return std::string_view(dict[ord]).substr(0, prefix.size())
        .compare(prefix);
  };
  const auto first = std::partition_point(
      rank_to_ord.begin(), rank_to_ord.end(),
      [&cmp](std::uint32_t ord) { return cmp(ord) < 0; });
  const auto last = std::partition_point(
      first, rank_to_ord.end(),
      [&cmp](std::uint32_t ord) { return cmp(ord) == 0; });
  *lo = static_cast<std::uint32_t>(first - rank_to_ord.begin());
  *hi = static_cast<std::uint32_t>(last - rank_to_ord.begin());
}

// ---- ColumnSet --------------------------------------------------------------

namespace {

void PadColumn(DocValueColumn& col, std::size_t slots) {
  col.EnsureSlots(slots);
}

}  // namespace

void ColumnSet::DecodeMember(DocValueColumn& col, std::size_t pos,
                             const Json& value) {
  switch (value.type()) {
    case Json::Type::kInt:
      col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kInt);
      col.ints[pos] = value.as_int();
      col.dbls[pos] = value.as_double();
      break;
    case Json::Type::kDouble:
      col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kDouble);
      col.ints[pos] = value.as_int();
      col.dbls[pos] = value.as_double();
      break;
    case Json::Type::kString: {
      auto [it, inserted] = col.dict_lookup.try_emplace(
          value.as_string(), static_cast<std::uint32_t>(col.dict.size()));
      if (inserted) {
        col.dict.push_back(value.as_string());
        col.ranks_dirty = true;
      }
      col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kString);
      col.ints[pos] = it->second;
      break;
    }
    case Json::Type::kBool:
      col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kBool);
      col.ints[pos] = value.as_bool() ? 1 : 0;
      break;
    default:  // null / array / object: present, but only via JSON
      col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kOther);
      break;
  }
}

void ColumnSet::AppendDoc(const Json& doc) {
  const std::size_t pos = num_docs_++;
  if (!doc.is_object()) return;  // slot stays kMissing in every column
  for (const JsonMember& member : doc.as_object()) {
    DocValueColumn& col = columns_[member.first];
    PadColumn(col, pos + 1);
    DecodeMember(col, pos, member.second);
  }
}

void ColumnSet::ReplaceRow(std::size_t pos, const Json& doc) {
  for (auto& [field, col] : columns_) {
    PadColumn(col, num_docs_);
    col.kinds[pos] = static_cast<std::uint8_t>(ValueKind::kMissing);
    col.ints[pos] = 0;
    col.dbls[pos] = 0.0;
  }
  if (!doc.is_object()) return;
  for (const JsonMember& member : doc.as_object()) {
    DocValueColumn& col = columns_[member.first];
    PadColumn(col, num_docs_);
    DecodeMember(col, pos, member.second);
  }
}

void ColumnSet::FinishBatch() {
  for (auto& [field, col] : columns_) {
    PadColumn(col, num_docs_);
    if (!col.ranks_dirty) continue;
    col.rank_to_ord.resize(col.dict.size());
    for (std::uint32_t ord = 0; ord < col.rank_to_ord.size(); ++ord) {
      col.rank_to_ord[ord] = ord;
    }
    std::sort(col.rank_to_ord.begin(), col.rank_to_ord.end(),
              [&col](std::uint32_t a, std::uint32_t b) {
                return col.dict[a] < col.dict[b];
              });
    col.sorted_rank.resize(col.dict.size());
    for (std::uint32_t rank = 0; rank < col.rank_to_ord.size(); ++rank) {
      col.sorted_rank[col.rank_to_ord[rank]] = rank;
    }
    col.ranks_dirty = false;
  }
}

void ColumnSet::Clear() {
  columns_.clear();
  num_docs_ = 0;
}

const DocValueColumn* ColumnSet::Find(std::string_view field) const {
  auto it = columns_.find(field);
  return it == columns_.end() ? nullptr : &it->second;
}

// ---- FilterBitmap -----------------------------------------------------------

FilterBitmap::FilterBitmap(std::size_t bits, bool value)
    : bits_(bits), words_((bits + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value && bits_ % 64 != 0 && !words_.empty()) {
    words_.back() = (1ULL << (bits_ % 64)) - 1;
  }
}

void FilterBitmap::AndWith(const FilterBitmap& other) {
  if (simd::Enabled()) {
    simd::AndWords(words_.data(), other.words_.data(), words_.size());
    return;
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
}

void FilterBitmap::OrWith(const FilterBitmap& other) {
  if (simd::Enabled()) {
    simd::OrWords(words_.data(), other.words_.data(), words_.size());
    return;
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void FilterBitmap::Negate() {
  if (simd::Enabled()) {
    simd::NotWords(words_.data(), words_.size());
  } else {
    for (std::uint64_t& word : words_) word = ~word;
  }
  if (bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (bits_ % 64)) - 1;
  }
}

std::size_t FilterBitmap::CountSet() const {
  std::size_t count = 0;
  for (const std::uint64_t word : words_) {
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

// ---- FilterBitmapCache ------------------------------------------------------

std::shared_ptr<const FilterBitmap> FilterBitmapCache::Lookup(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.bitmap;
}

void FilterBitmapCache::Insert(const std::string& key, FilterBitmap bitmap) {
  if (capacity_ == 0) return;
  std::scoped_lock lock(mu_);
  if (entries_.size() >= capacity_ && entries_.find(key) == entries_.end()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++evictions_;
  }
  entries_[key] =
      Entry{std::make_shared<const FilterBitmap>(std::move(bitmap)), ++tick_};
}

void FilterBitmapCache::Clear() {
  std::scoped_lock lock(mu_);
  entries_.clear();
}

void FilterBitmapCache::CarryCountersFrom(const FilterBitmapCache& other) {
  std::scoped_lock lock(mu_, other.mu_);
  hits_ += other.hits_;
  misses_ += other.misses_;
  evictions_ += other.evictions_;
}

std::uint64_t FilterBitmapCache::hits() const {
  std::scoped_lock lock(mu_);
  return hits_;
}

std::uint64_t FilterBitmapCache::misses() const {
  std::scoped_lock lock(mu_);
  return misses_;
}

std::uint64_t FilterBitmapCache::evictions() const {
  std::scoped_lock lock(mu_);
  return evictions_;
}

// ---- CompiledQuery ----------------------------------------------------------

CompiledQuery::CompiledQuery(const Query& query, const ColumnSet& columns)
    : root_(Compile(query, columns)) {}

CompiledQuery::Node CompiledQuery::Compile(const Query& query,
                                           const ColumnSet& columns) {
  Node node;
  node.query = &query;
  switch (query.type()) {
    case Query::Type::kTerm:
    case Query::Type::kTerms: {
      node.col = columns.Find(query.field());
      node.values.reserve(query.values().size());
      for (const Json& value : query.values()) {
        TermValue tv;
        tv.raw = &value;
        switch (value.type()) {
          case Json::Type::kInt:
            tv.kind = ValueKind::kInt;
            tv.i = value.as_int();
            tv.d = value.as_double();
            break;
          case Json::Type::kDouble:
            tv.kind = ValueKind::kDouble;
            tv.d = value.as_double();
            break;
          case Json::Type::kString:
            tv.kind = ValueKind::kString;
            if (node.col != nullptr) {
              auto it = node.col->dict_lookup.find(value.as_string());
              if (it != node.col->dict_lookup.end()) {
                tv.ord = it->second;
                tv.ord_resolved = true;
              }
            }
            break;
          case Json::Type::kBool:
            tv.kind = ValueKind::kBool;
            tv.i = value.as_bool() ? 1 : 0;
            break;
          default:
            tv.kind = ValueKind::kOther;
            break;
        }
        node.values.push_back(tv);
      }
      break;
    }
    case Query::Type::kRange:
    case Query::Type::kExists:
      node.col = columns.Find(query.field());
      break;
    case Query::Type::kPrefix:
      node.col = columns.Find(query.field());
      if (node.col != nullptr) {
        node.col->PrefixRankRange(query.prefix(), &node.prefix_lo,
                                  &node.prefix_hi);
      }
      break;
    case Query::Type::kAnd:
    case Query::Type::kOr:
    case Query::Type::kNot:
      node.children.reserve(query.clauses().size());
      for (const Query& clause : query.clauses()) {
        node.children.push_back(Compile(clause, columns));
      }
      break;
    case Query::Type::kMatchAll:
      break;
  }
  return node;
}

bool CompiledQuery::Matches(std::size_t pos, const Json& doc) const {
  return MatchesNode(root_, pos, doc);
}

bool CompiledQuery::MatchesNode(const Node& node, std::size_t pos,
                                const Json& doc) {
  const Query& query = *node.query;
  switch (query.type()) {
    case Query::Type::kMatchAll:
      return true;
    case Query::Type::kTerm:
    case Query::Type::kTerms: {
      if (node.col == nullptr) return false;
      const ValueKind kind = node.col->kind(pos);
      if (kind == ValueKind::kMissing) return false;
      if (kind == ValueKind::kOther) {
        // Non-scalar value: defer to the JSON oracle's equality.
        const Json* value = doc.Find(query.field());
        if (value == nullptr) return false;
        for (const TermValue& tv : node.values) {
          if (*value == *tv.raw) return true;
        }
        return false;
      }
      for (const TermValue& tv : node.values) {
        switch (kind) {
          case ValueKind::kInt:
            // Same-type int terms compare exactly; int-vs-double compares
            // numerically — both exactly as Json::operator==.
            if (tv.kind == ValueKind::kInt
                    ? node.col->ints[pos] == tv.i
                    : (tv.kind == ValueKind::kDouble &&
                       node.col->dbls[pos] == tv.d)) {
              return true;
            }
            break;
          case ValueKind::kDouble:
            if ((tv.kind == ValueKind::kInt ||
                 tv.kind == ValueKind::kDouble) &&
                node.col->dbls[pos] == tv.d) {
              return true;
            }
            break;
          case ValueKind::kString:
            if (tv.kind == ValueKind::kString && tv.ord_resolved &&
                node.col->ints[pos] ==
                    static_cast<std::int64_t>(tv.ord)) {
              return true;
            }
            break;
          case ValueKind::kBool:
            if (tv.kind == ValueKind::kBool && node.col->ints[pos] == tv.i) {
              return true;
            }
            break;
          default:
            break;
        }
      }
      return false;
    }
    case Query::Type::kRange: {
      if (node.col == nullptr || !node.col->is_number(pos)) return false;
      const std::int64_t v = node.col->ints[pos];
      if (query.gte().has_value() && v < *query.gte()) return false;
      if (query.lte().has_value() && v > *query.lte()) return false;
      return true;
    }
    case Query::Type::kPrefix: {
      if (node.col == nullptr ||
          node.col->kind(pos) != ValueKind::kString) {
        return false;
      }
      const std::uint32_t rank =
          node.col->sorted_rank[static_cast<std::size_t>(node.col->ints[pos])];
      return rank >= node.prefix_lo && rank < node.prefix_hi;
    }
    case Query::Type::kExists:
      return node.col != nullptr &&
             node.col->kind(pos) != ValueKind::kMissing;
    case Query::Type::kAnd:
      for (const Node& child : node.children) {
        if (!MatchesNode(child, pos, doc)) return false;
      }
      return true;
    case Query::Type::kOr:
      for (const Node& child : node.children) {
        if (MatchesNode(child, pos, doc)) return true;
      }
      return node.children.empty();
    case Query::Type::kNot:
      return !MatchesNode(node.children.front(), pos, doc);
  }
  return false;
}

FilterBitmap CompiledQuery::Eval(std::span<const Json> docs,
                                 FilterBitmapCache* cache) const {
  return EvalNode(root_, docs, cache);
}

FilterBitmap CompiledQuery::EvalNode(const Node& node,
                                     std::span<const Json> docs,
                                     FilterBitmapCache* cache) {
  const std::size_t n = docs.size();
  switch (node.query->type()) {
    case Query::Type::kMatchAll:
      return FilterBitmap(n, true);
    case Query::Type::kAnd: {
      FilterBitmap out(n, true);
      for (const Node& child : node.children) {
        out.AndWith(EvalNode(child, docs, cache));
      }
      return out;
    }
    case Query::Type::kOr: {
      // An empty bool.should matches everything, mirroring Query::Matches
      // (the scan path replicates the oracle, inconsistencies included).
      if (node.children.empty()) return FilterBitmap(n, true);
      FilterBitmap out(n, false);
      for (const Node& child : node.children) {
        out.OrWith(EvalNode(child, docs, cache));
      }
      return out;
    }
    case Query::Type::kNot: {
      FilterBitmap out = EvalNode(node.children.front(), docs, cache);
      out.Negate();
      return out;
    }
    default: {
      // Leaf predicate: serve from the shard's bitmap cache when possible.
      std::string key;
      if (cache != nullptr) {
        key = node.query->ToString();
        if (auto hit = cache->Lookup(key)) return *hit;
      }
      FilterBitmap out(n, false);
      if (!EvalLeafKernel(node, n, &out)) {
        for (std::size_t pos = 0; pos < n; ++pos) {
          if (MatchesNode(node, pos, docs[pos])) out.Set(pos);
        }
      }
      if (cache != nullptr) cache->Insert(key, out);
      return out;
    }
  }
}

bool CompiledQuery::EvalLeafKernel(const Node& node, std::size_t n,
                                   FilterBitmap* out) {
  if (n == 0) return true;  // nothing to fill either way
  if (!simd::Enabled()) return false;
  const DocValueColumn* col = node.col;
  switch (node.query->type()) {
    case Query::Type::kRange: {
      // A missing column matches nothing: `out` is already all-zero.
      if (col == nullptr) return true;
      if (col->kinds.size() < n) return false;
      const std::int64_t lo =
          node.query->gte().value_or(std::numeric_limits<std::int64_t>::min());
      const std::int64_t hi =
          node.query->lte().value_or(std::numeric_limits<std::int64_t>::max());
      simd::RangeMaskInt64(col->ints.data(), col->kinds.data(), n, lo, hi,
                           out->words().data());
      return true;
    }
    case Query::Type::kExists: {
      if (col == nullptr) return true;
      if (col->kinds.size() < n) return false;
      simd::NonMissingMask(col->kinds.data(), n, out->words().data());
      return true;
    }
    case Query::Type::kTerm:
    case Query::Type::kTerms: {
      if (col == nullptr) return true;
      if (col->kinds.size() < n) return false;
      // Only string and bool term lists vectorize: both compare a single
      // int64 cell under a single kind byte, and neither can equal a kOther
      // slot under Json equality (null/array/object never equals a string
      // or bool), so skipping the per-row doc fallback is exact. Numeric
      // terms keep the scalar loop (int-vs-double cross-type equality reads
      // two arrays).
      for (const TermValue& tv : node.values) {
        if (tv.kind != ValueKind::kString && tv.kind != ValueKind::kBool) {
          return false;
        }
      }
      for (const TermValue& tv : node.values) {
        if (tv.kind == ValueKind::kString) {
          if (!tv.ord_resolved) continue;  // not in this dict: matches nothing
          simd::EqMaskInt64(col->ints.data(), col->kinds.data(), n,
                            static_cast<std::uint8_t>(ValueKind::kString),
                            static_cast<std::int64_t>(tv.ord),
                            out->words().data());
        } else {
          simd::EqMaskInt64(col->ints.data(), col->kinds.data(), n,
                            static_cast<std::uint8_t>(ValueKind::kBool), tv.i,
                            out->words().data());
        }
      }
      return true;
    }
    default:
      return false;  // kPrefix (rank lookup) stays scalar
  }
}

}  // namespace dio::backend
