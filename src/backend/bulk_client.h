// BulkClient: the tracer-side client for the backend (the go-elasticsearch
// bulk API stand-in, §II-E). Batches are queued and shipped by a sender
// thread after a configurable network latency, keeping indexing entirely off
// the traced application's critical path (§II "Asynchronous event handling").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/store.h"
#include "common/clock.h"
#include "tracer/sink.h"

namespace dio::backend {

struct BulkClientOptions {
  // Simulated one-way network latency to the backend server (the paper runs
  // the pipeline on separate machines).
  Nanos network_latency_ns = 200 * kMicrosecond;
  // Bounded send queue: when full, the *sender* blocks (backpressure is
  // absorbed by the tracer's ring buffers, not the application).
  std::size_t max_queued_batches = 1024;
  // Refresh the index after every N batches so data is searchable in
  // near real-time (0 = only on Flush).
  std::size_t refresh_every_batches = 8;
  // §II-E: "The file path correlation algorithm can be automatically
  // executed by the tracer or on-demand by users." When true, Flush() runs
  // the correlation algorithm after refreshing, so file_path is populated
  // without user intervention.
  bool auto_correlate = false;
};

class BulkClient final : public tracer::EventSink {
 public:
  BulkClient(ElasticStore* store, std::string index,
             BulkClientOptions options = {},
             Clock* clock = SteadyClock::Instance());
  ~BulkClient() override;

  BulkClient(const BulkClient&) = delete;
  BulkClient& operator=(const BulkClient&) = delete;

  void IndexBatch(std::vector<Json> documents) override;
  // Fast path from the tracer's consumer threads: binary events are queued
  // as-is and materialized into JSON documents on the sender thread, after
  // the simulated network hop — JSON allocation never runs on a drain loop.
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override;
  // Drains the queue, indexes everything, refreshes the index.
  void Flush() override;

  [[nodiscard]] std::uint64_t batches_sent() const {
    std::scoped_lock lock(mu_);
    return batches_sent_;
  }
  [[nodiscard]] const std::string& index() const { return index_; }

 private:
  // A queued batch: either pre-materialized documents or deferred binary
  // events (exactly one of the two is non-empty).
  struct Batch {
    std::vector<Json> documents;
    std::vector<tracer::Event> events;
    std::string session;
  };

  void SenderLoop(const std::stop_token& stop);
  void Enqueue(Batch batch);

  ElasticStore* store_;
  std::string index_;
  BulkClientOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Batch> queue_;
  std::uint64_t batches_sent_ = 0;
  bool sending_ = false;  // a batch is in flight to the store
  bool stopping_ = false;
  std::jthread sender_;
};

}  // namespace dio::backend
