// BulkClient: the terminal bulk-indexing sink for the backend (the
// go-elasticsearch bulk API stand-in, §II-E). Delivery is synchronous: one
// Submit = one simulated network hop + one store bulk request. Queueing,
// backpressure, retry, and fan-out all live ABOVE this sink in the
// transport layer (transport/pipeline.h) — wiring a session through a
// transport::Pipeline restores the paper's asynchronous shipping while
// keeping this client a dumb wire.
//
// The tracer::EventSink facade remains for direct (synchronous) use in
// small tools and tests; DioService and DioAdapter always go through a
// pipeline.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "backend/store.h"
#include "common/clock.h"
#include "common/config.h"
#include "tracer/sink.h"
#include "transport/transport.h"

namespace dio::backend {

struct BulkClientOptions {
  // Simulated one-way network latency to the backend server (the paper runs
  // the pipeline on separate machines).
  Nanos network_latency_ns = 200 * kMicrosecond;
  // Refresh the index after every N bulk requests so data is searchable in
  // near real-time (0 = only on Flush).
  std::size_t refresh_every_batches = 8;
  // §II-E: "The file path correlation algorithm can be automatically
  // executed by the tracer or on-demand by users." When true, Flush() runs
  // the correlation algorithm after refreshing, so file_path is populated
  // without user intervention.
  bool auto_correlate = false;

  // Reads the bulk-sink keys of the [transport] section
  // (network_latency_ns, refresh_every_batches, auto_correlate).
  static BulkClientOptions FromConfig(const Config& config);
};

class BulkClient final : public transport::Transport,
                         public tracer::EventSink {
 public:
  BulkClient(ElasticStore* store, std::string index,
             BulkClientOptions options = {},
             Clock* clock = SteadyClock::Instance());

  BulkClient(const BulkClient&) = delete;
  BulkClient& operator=(const BulkClient&) = delete;

  // transport::Transport (terminal stage): synchronous delivery.
  Status Submit(transport::EventBatch batch) override;
  void CollectStats(std::vector<transport::StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "bulk"; }

  // Shared by both interfaces: refreshes the index (and optionally runs
  // the correlation algorithm). Synchronous, so there is nothing to drain.
  void Flush() override;

  // tracer::EventSink facade for direct use without a pipeline.
  void IndexBatch(std::vector<Json> documents) override;
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override;

  [[nodiscard]] std::uint64_t batches_sent() const {
    std::scoped_lock lock(mu_);
    return stats_.batches_in;
  }
  [[nodiscard]] const std::string& index() const { return index_; }

 private:
  ElasticStore* store_;
  std::string index_;
  BulkClientOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  transport::StageStats stats_;
};

}  // namespace dio::backend
