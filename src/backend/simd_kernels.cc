#include "backend/simd_kernels.h"

#include <algorithm>

#include "backend/doc_values.h"

namespace dio::backend::simd {

namespace {

std::atomic<bool> g_enabled{true};

// The mask kernels hardcode the kind bytes so the inner loops compare plain
// integers; pin them to the enum so a ValueKind reorder cannot silently
// change kernel semantics.
constexpr auto kMissing = static_cast<std::uint8_t>(ValueKind::kMissing);
constexpr auto kInt = static_cast<std::uint8_t>(ValueKind::kInt);
constexpr auto kDouble = static_cast<std::uint8_t>(ValueKind::kDouble);
static_assert(kMissing == 0 && kInt == 1 && kDouble == 2);

}  // namespace

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

// ---- Bitmap word kernels ----------------------------------------------------
// 4× unrolled so the compiler emits one vector op per group instead of a
// scalar loop-carried chain; the tail (< 4 words) finishes scalar.

void AndWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    dst[w] &= src[w];
    dst[w + 1] &= src[w + 1];
    dst[w + 2] &= src[w + 2];
    dst[w + 3] &= src[w + 3];
  }
  for (; w < n; ++w) dst[w] &= src[w];
}

void OrWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    dst[w] |= src[w];
    dst[w + 1] |= src[w + 1];
    dst[w + 2] |= src[w + 2];
    dst[w + 3] |= src[w + 3];
  }
  for (; w < n; ++w) dst[w] |= src[w];
}

void AndNotWords(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    dst[w] &= ~src[w];
    dst[w + 1] &= ~src[w + 1];
    dst[w + 2] &= ~src[w + 2];
    dst[w + 3] &= ~src[w + 3];
  }
  for (; w < n; ++w) dst[w] &= ~src[w];
}

void NotWords(std::uint64_t* words, std::size_t n) {
  std::size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    words[w] = ~words[w];
    words[w + 1] = ~words[w + 1];
    words[w + 2] = ~words[w + 2];
    words[w + 3] = ~words[w + 3];
  }
  for (; w < n; ++w) words[w] = ~words[w];
}

// ---- Column predicate kernels -----------------------------------------------
// Shape shared by all three: 64 rows at a time, a branch-free inner compare
// loop accumulating match bits into one word, then a single OR into the
// output — the vectorizer turns the inner loop into packed compares + a
// movemask-style reduction, and the output write is 1/64th of the loads.

void RangeMaskInt64(const std::int64_t* ints, const std::uint8_t* kinds,
                    std::size_t n, std::int64_t lo, std::int64_t hi,
                    std::uint64_t* words) {
  std::size_t i = 0;
  for (std::size_t w = 0; i < n; ++w) {
    const std::size_t limit = std::min<std::size_t>(n - i, 64);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < limit; ++b, ++i) {
      const bool is_number = kinds[i] == kInt || kinds[i] == kDouble;
      const bool in_range = ints[i] >= lo && ints[i] <= hi;
      word |= static_cast<std::uint64_t>(is_number && in_range) << b;
    }
    words[w] |= word;
  }
}

void EqMaskInt64(const std::int64_t* ints, const std::uint8_t* kinds,
                 std::size_t n, std::uint8_t kind, std::int64_t value,
                 std::uint64_t* words) {
  std::size_t i = 0;
  for (std::size_t w = 0; i < n; ++w) {
    const std::size_t limit = std::min<std::size_t>(n - i, 64);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < limit; ++b, ++i) {
      word |= static_cast<std::uint64_t>(kinds[i] == kind &&
                                         ints[i] == value)
              << b;
    }
    words[w] |= word;
  }
}

void NonMissingMask(const std::uint8_t* kinds, std::size_t n,
                    std::uint64_t* words) {
  std::size_t i = 0;
  for (std::size_t w = 0; i < n; ++w) {
    const std::size_t limit = std::min<std::size_t>(n - i, 64);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < limit; ++b, ++i) {
      word |= static_cast<std::uint64_t>(kinds[i] != kMissing) << b;
    }
    words[w] |= word;
  }
}

// ---- Aggregation kernels ----------------------------------------------------

void HistogramBins(const std::int64_t* ints, const std::uint8_t* kinds,
                   std::size_t n, std::int64_t interval, std::int64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const bool is_number = kinds[i] == kInt || kinds[i] == kDouble;
    const std::int64_t v = is_number ? ints[i] : 0;
    // Truncating division, shifted down one bucket for negative values that
    // are not exactly on a boundary — floor-division bucketing, branch-free.
    std::int64_t bucket = v / interval * interval;
    bucket -= static_cast<std::int64_t>(v < 0 && v % interval != 0) * interval;
    out[i] = bucket;
  }
}

}  // namespace dio::backend::simd
