#include "backend/query.h"

namespace dio::backend {

Query Query::MatchAll() { return Query(Type::kMatchAll); }

Query Query::Term(std::string field, Json value) {
  Query q(Type::kTerm);
  q.field_ = std::move(field);
  q.values_.push_back(std::move(value));
  return q;
}

Query Query::Terms(std::string field, std::vector<Json> values) {
  Query q(Type::kTerms);
  q.field_ = std::move(field);
  q.values_ = std::move(values);
  return q;
}

Query Query::Range(std::string field, std::optional<std::int64_t> gte,
                   std::optional<std::int64_t> lte) {
  Query q(Type::kRange);
  q.field_ = std::move(field);
  q.gte_ = gte;
  q.lte_ = lte;
  return q;
}

Query Query::Prefix(std::string field, std::string prefix) {
  Query q(Type::kPrefix);
  q.field_ = std::move(field);
  q.prefix_ = std::move(prefix);
  return q;
}

Query Query::Exists(std::string field) {
  Query q(Type::kExists);
  q.field_ = std::move(field);
  return q;
}

Query Query::And(std::vector<Query> clauses) {
  Query q(Type::kAnd);
  q.clauses_ = std::move(clauses);
  return q;
}

Query Query::Or(std::vector<Query> clauses) {
  Query q(Type::kOr);
  q.clauses_ = std::move(clauses);
  return q;
}

Query Query::Not(Query clause) {
  Query q(Type::kNot);
  q.clauses_.push_back(std::move(clause));
  return q;
}

bool Query::Matches(const Json& doc) const {
  switch (type_) {
    case Type::kMatchAll:
      return true;
    case Type::kTerm: {
      const Json* value = doc.Find(field_);
      return value != nullptr && *value == values_.front();
    }
    case Type::kTerms: {
      const Json* value = doc.Find(field_);
      if (value == nullptr) return false;
      for (const Json& candidate : values_) {
        if (*value == candidate) return true;
      }
      return false;
    }
    case Type::kRange: {
      const Json* value = doc.Find(field_);
      if (value == nullptr || !value->is_number()) return false;
      const std::int64_t v = value->as_int();
      if (gte_.has_value() && v < *gte_) return false;
      if (lte_.has_value() && v > *lte_) return false;
      return true;
    }
    case Type::kPrefix: {
      const Json* value = doc.Find(field_);
      return value != nullptr && value->is_string() &&
             value->as_string().starts_with(prefix_);
    }
    case Type::kExists:
      return doc.Find(field_) != nullptr;
    case Type::kAnd:
      for (const Query& clause : clauses_) {
        if (!clause.Matches(doc)) return false;
      }
      return true;
    case Type::kOr:
      for (const Query& clause : clauses_) {
        if (clause.Matches(doc)) return true;
      }
      return clauses_.empty();
    case Type::kNot:
      return !clauses_.front().Matches(doc);
  }
  return false;
}

std::string Query::ToString() const {
  switch (type_) {
    case Type::kMatchAll:
      return "match_all";
    case Type::kTerm:
      return "term(" + field_ + "=" + values_.front().Dump() + ")";
    case Type::kTerms: {
      std::string out = "terms(" + field_ + " in [";
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i != 0) out += ",";
        out += values_[i].Dump();
      }
      return out + "])";
    }
    case Type::kRange: {
      std::string out = "range(" + field_;
      if (gte_.has_value()) out += " >=" + std::to_string(*gte_);
      if (lte_.has_value()) out += " <=" + std::to_string(*lte_);
      return out + ")";
    }
    case Type::kPrefix:
      return "prefix(" + field_ + "," + prefix_ + ")";
    case Type::kExists:
      return "exists(" + field_ + ")";
    case Type::kAnd:
    case Type::kOr:
    case Type::kNot: {
      std::string out = type_ == Type::kAnd ? "and(" :
                        type_ == Type::kOr ? "or(" : "not(";
      for (std::size_t i = 0; i < clauses_.size(); ++i) {
        if (i != 0) out += ",";
        out += clauses_[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

Expected<Query> Query::FromJson(const Json& dsl) {
  if (!dsl.is_object() || dsl.as_object().size() != 1) {
    return InvalidArgument("query must be an object with exactly one clause");
  }
  const auto& [kind, body] = dsl.as_object().front();

  if (kind == "match_all") return MatchAll();

  if (kind == "term" || kind == "terms" || kind == "prefix" ||
      kind == "range") {
    if (!body.is_object() || body.as_object().size() != 1) {
      return InvalidArgument(kind + " expects {\"field\": ...}");
    }
    const auto& [field, spec] = body.as_object().front();
    if (kind == "term") return Term(field, spec);
    if (kind == "terms") {
      if (!spec.is_array()) {
        return InvalidArgument("terms expects an array of values");
      }
      return Terms(field, spec.as_array());
    }
    if (kind == "prefix") {
      if (!spec.is_string()) {
        return InvalidArgument("prefix expects a string");
      }
      return Prefix(field, spec.as_string());
    }
    // range
    if (!spec.is_object()) {
      return InvalidArgument("range expects {\"gte\"/\"lte\": n}");
    }
    std::optional<std::int64_t> gte;
    std::optional<std::int64_t> lte;
    for (const JsonMember& bound : spec.as_object()) {
      if (!bound.second.is_number()) {
        return InvalidArgument("range bounds must be numeric");
      }
      if (bound.first == "gte") gte = bound.second.as_int();
      else if (bound.first == "lte") lte = bound.second.as_int();
      else if (bound.first == "gt") gte = bound.second.as_int() + 1;
      else if (bound.first == "lt") lte = bound.second.as_int() - 1;
      else return InvalidArgument("unknown range bound: " + bound.first);
    }
    return Range(field, gte, lte);
  }

  if (kind == "exists") {
    const Json* field = body.Find("field");
    if (field == nullptr || !field->is_string()) {
      return InvalidArgument("exists expects {\"field\": \"name\"}");
    }
    return Exists(field->as_string());
  }

  if (kind == "bool") {
    if (!body.is_object()) return InvalidArgument("bool expects an object");
    std::vector<Query> all;
    for (const JsonMember& section : body.as_object()) {
      if (!section.second.is_array()) {
        return InvalidArgument("bool." + section.first +
                               " must be an array of queries");
      }
      std::vector<Query> parsed;
      for (const Json& sub : section.second.as_array()) {
        auto q = FromJson(sub);
        if (!q.ok()) return q;
        parsed.push_back(std::move(q.value()));
      }
      if (section.first == "must") {
        for (Query& q : parsed) all.push_back(std::move(q));
      } else if (section.first == "should") {
        all.push_back(Or(std::move(parsed)));
      } else if (section.first == "must_not") {
        for (Query& q : parsed) all.push_back(Not(std::move(q)));
      } else {
        return InvalidArgument("unknown bool section: " + section.first);
      }
    }
    return And(std::move(all));
  }

  return InvalidArgument("unknown query kind: " + kind);
}

Expected<Query> Query::FromJsonText(std::string_view text) {
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(*parsed);
}

}  // namespace dio::backend
