// ElasticStore: an embedded document store standing in for Elasticsearch
// (§II-C). It reproduces the properties DIO depends on:
//   * schemaless JSON documents ("distinct fields corresponding to syscall
//     arguments"),
//   * bulk indexing with near-real-time visibility (documents become
//     searchable at the next refresh, like ES's refresh_interval),
//   * term/range/prefix/bool queries with per-field inverted + numeric
//     indexes,
//   * aggregations (terms, histograms, percentiles) with sub-aggregations,
//   * update-by-query, which the file-path correlation algorithm uses.
//
// Query execution has two engines:
//   * the serial JSON engine — per-document Query::Matches over raw Json,
//     sub-shards visited one by one. Simple, and kept as the parity oracle;
//   * the columnar engine (backend.doc_values, default on) — at Refresh each
//     sub-shard also materializes typed doc-value columns, and term / terms /
//     range / prefix / exists predicates, sort keys, and aggregations resolve
//     against those columns (or cached filter bitmaps) instead of Json::Find
//     per document, the way Lucene serves analytics from doc-values.
// With backend.query_threads > 0, sub-shards are evaluated in parallel on a
// shared pool and per-shard results merged in docid order; both engines
// return byte-identical results either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/aggregation.h"
#include "backend/doc_values.h"
#include "backend/query.h"
#include "backend/query_backend.h"
#include "backend/segments.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "tracer/wire.h"

namespace dio::backend {

// The request/result vocabulary (DocId, Hit, SortSpec, SearchRequest,
// SearchResult, IndexStats) lives in backend/query_backend.h, shared with
// the cluster router and every analysis consumer.

// Store-wide tuning knobs (the `[backend]` config section).
struct ElasticStoreOptions {
  std::size_t shards_per_index = 4;
  // Worker threads for per-sub-shard query fan-out. 0 = evaluate sub-shards
  // on the calling thread (no pool).
  std::size_t query_threads = 0;
  // Materialize doc-value columns at Refresh and serve queries from them.
  // Off = the serial JSON engine (the parity oracle).
  bool doc_values = true;
  // Rows per sealed column segment. Each sub-shard's columns are an ordered
  // list of immutable sealed blocks of exactly this many rows plus one
  // growing tail: Refresh builds only the tail's columns, off-lock, and
  // sealed blocks keep their filter-bitmap caches and dictionary ranks
  // across refreshes. 0 = legacy rebuild-everything mode (one block, grown
  // and invalidated wholesale under the exclusive lock — the bench baseline
  // and the sim's full-rebuild parity oracle).
  std::size_t segment_docs = 1 << 16;
  // Cached filter bitmaps per segment, evicted in LRU order. 0 disables
  // bitmap caching entirely (the drop-all-caches parity twin).
  std::size_t filter_cache_entries = FilterBitmapCache::kDefaultEntries;
  // Ingest BulkWire() batches straight into doc-value columns, skipping the
  // per-event JSON build/parse entirely (requires doc_values). Off = wire
  // batches are materialized to JSON and take the Bulk() route — the parity
  // oracle for the typed path.
  bool typed_ingest = true;
  // Route bitmap combination / range / term-list / histogram evaluation
  // through the vectorized kernels (backend/simd_kernels.h). Process-wide:
  // constructing a store applies this to the kernel switch. Off = the
  // original scalar loops (identical results, the parity fallback).
  bool simd_kernels = true;
  // Upper bound on from + size accepted by SearchRequest parsing (like ES's
  // index.max_result_window). Programmatic SearchRequests are not clamped.
  std::size_t max_result_window = 10'000;

  static ElasticStoreOptions FromConfig(const Config& config);
};

class ElasticStore : public QueryBackend {
 public:
  // Each index is split into `shards_per_index` sub-shards (documents are
  // assigned by docid % shards): bulk ingest lands on per-sub-shard lanes
  // with independent locks, so N concurrent Bulk() callers (the tracer's
  // per-CPU consumers) do not serialize on one mutex, and Refresh() indexes
  // the sub-shards in parallel. Query semantics and docid (ingestion) order
  // are identical to a single-shard store.
  explicit ElasticStore(std::size_t shards_per_index = kDefaultShards);
  explicit ElasticStore(const ElasticStoreOptions& options);

  static constexpr std::size_t kDefaultShards = 4;

  [[nodiscard]] const ElasticStoreOptions& options() const { return options_; }

  // Index management. Bulk() auto-creates missing indices (like ES).
  Status CreateIndex(const std::string& name);
  Status DeleteIndex(const std::string& name);
  [[nodiscard]] std::vector<std::string> ListIndices() const;
  [[nodiscard]] bool HasIndex(const std::string& name) const override;

  // Bulk ingestion: documents are buffered and become searchable at the
  // next Refresh() (near-real-time semantics).
  void Bulk(const std::string& index, std::vector<Json> documents);
  // Typed bulk ingestion: buffers binary wire records; at Refresh their
  // fields are appended straight into doc-value columns (no JSON build, no
  // postings). Queries over typed rows read the columns; row-oriented views
  // (hits, snapshots, update-by-query) are rebuilt on demand and are
  // byte-identical to the documents Bulk() would have produced from
  // WireEventToJson. Falls back to exactly that Bulk() route when
  // typed_ingest or doc_values is off.
  void BulkWire(const std::string& index, std::string_view session,
                std::vector<tracer::WireEvent> records);
  // Makes all buffered documents searchable.
  void Refresh(const std::string& index) override;
  void RefreshAll();

  [[nodiscard]] Expected<SearchResult> Search(
      const std::string& index, const SearchRequest& request) const override;
  // Parses an ES-style search body (clamped to options().max_result_window)
  // and runs it.
  [[nodiscard]] Expected<SearchResult> Search(const std::string& index,
                                              const Json& body) const;
  [[nodiscard]] Expected<std::size_t> Count(
      const std::string& index, const Query& query) const override;
  [[nodiscard]] Expected<AggResult> Aggregate(
      const std::string& index, const Query& query,
      const Aggregation& agg) const override;
  // Distributed-aggregation scatter half: the same matched set and
  // accumulation order as Aggregate, but returns the mergeable partial so a
  // cluster router can fold per-shard partials (Aggregation::MergePartial)
  // and finalize once, instead of re-gathering every matched document.
  [[nodiscard]] Expected<AggPartial> AggregatePartial(
      const std::string& index, const Query& query,
      const Aggregation& agg) const;

  // Applies `update` to every matching document. The callback returns
  // whether it modified the document; only modified documents are re-indexed
  // and counted. Returns the number of documents actually modified.
  Expected<std::size_t> UpdateByQuery(
      const std::string& index, const Query& query,
      const std::function<bool(Json&)>& update) override;

  [[nodiscard]] Expected<IndexStats> Stats(
      const std::string& index) const override;

  // Durable snapshots (post-mortem analysis across process restarts, §II):
  // writes one JSON document per line, prefixed by a header line.
  Status SaveIndex(const std::string& index, const std::string& file_path) const;
  // Loads a snapshot into a new index named by the snapshot header (or
  // `rename_to` if non-empty). Fails if the target index already exists.
  Expected<std::string> LoadIndex(const std::string& file_path,
                                  const std::string& rename_to = "");

 private:
  // One sub-shard of an index: owns the documents with
  // docid % num_shards == shard_index (stored at position docid / num_shards)
  // plus the term/numeric indexes over exactly those documents.
  struct SubShard {
    SubShard(std::size_t segment_docs, std::size_t cache_entries)
        : segments(segment_docs, cache_entries) {}

    std::size_t shard_index = 0;
    std::size_t stride = 1;  // num_shards of the owning index

    mutable std::shared_mutex mu;
    std::vector<Json> docs;  // position = docid / stride
    // term index: field -> canonical term -> posting list (global docids,
    // ascending). Terms are kept sorted so prefix queries walk just the
    // "s:<prefix>" range. Postings may be stale supersets after updates;
    // queries re-verify against the document.
    std::unordered_map<std::string,
                       std::map<std::string, std::vector<DocId>, std::less<>>>
        terms;
    // numeric index: field -> (value, global docid) sorted by value.
    std::unordered_map<std::string,
                       std::vector<std::pair<std::int64_t, DocId>>>
        numerics;
    bool numerics_dirty = false;

    // Columnar engine state (backend.doc_values): the sub-shard's ordered
    // segment list — sealed immutable blocks plus one growing tail, each
    // with its own scan-path bitmap cache. Covers the same positions as
    // `docs` (segment index = pos / segment_docs). Swapped/extended only
    // under refresh_mu unique; read under refresh_mu shared.
    SegmentedColumns segments;

    // Typed-ingest state (backend.typed_ingest): typed[pos] != 0 marks a row
    // whose fields live only in `columns` — docs[pos] is a null placeholder
    // and the term/numeric indexes never saw it, so while typed_rows > 0
    // queries must take the scan path (Candidates() would miss these rows).
    // An update-by-query that modifies a typed row converts it to a JSON row.
    std::vector<std::uint8_t> typed;
    std::size_t typed_rows = 0;

    [[nodiscard]] bool IsTyped(std::size_t pos) const {
      return pos < typed.size() && typed[pos] != 0;
    }

    [[nodiscard]] const Json& DocAt(DocId id) const {
      return docs[static_cast<std::size_t>(id) / stride];
    }
    [[nodiscard]] Json& DocAt(DocId id) {
      return docs[static_cast<std::size_t>(id) / stride];
    }
    [[nodiscard]] bool Owns(DocId id) const {
      return static_cast<std::size_t>(id) % stride == shard_index &&
             static_cast<std::size_t>(id) / stride < docs.size();
    }
  };

  // Bulked-but-unrefreshed documents, tagged with the bulk sequence number
  // that fixes their ingestion (docid) order. A batch holds either JSON
  // documents (Bulk) or binary wire records (BulkWire), never both.
  struct PendingBatch {
    std::uint64_t seq = 0;
    std::vector<Json> docs;
    std::vector<tracer::WireEvent> wire;
    std::string session;  // labels the wire records' documents
  };

  // Ingest lane: where Bulk() parks batches. One lane per sub-shard, each
  // with its own lock, chosen round-robin by sequence number so concurrent
  // bulk callers contend only 1/num_shards of the time.
  struct IngestLane {
    mutable std::mutex mu;
    std::vector<PendingBatch> batches;
  };

  struct Index {
    Index(std::size_t num_shards, std::size_t segment_docs,
          std::size_t cache_entries);

    std::vector<std::unique_ptr<SubShard>> shards;
    std::vector<std::unique_ptr<IngestLane>> lanes;
    std::atomic<std::uint64_t> bulk_seq{0};
    std::atomic<std::uint64_t> bulk_requests{0};
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> column_build_ns{0};
    std::atomic<std::uint64_t> refreshes{0};
    // Serializes mutators (Refresh, UpdateByQuery) end-to-end, so a staged
    // off-lock column build can never race another mutation of the segment
    // lists it snapshotted. Always acquired before refresh_mu.
    std::mutex ingest_mu;
    // Readers take it shared; mutators take it unique so a refresh becomes
    // visible to queries atomically across sub-shards. With segmented
    // columns, Refresh holds it only for the brief swap-in window.
    mutable std::shared_mutex refresh_mu;
    // Writer-preference gate for refresh_mu: std::shared_mutex (glibc
    // rwlocks) lets a continuous stream of readers barge ahead of a waiting
    // writer indefinitely, which turns the segmented refresh's
    // microsecond swap into an unbounded acquisition stall under a hot
    // dashboard. Readers spin-yield while a mutator is acquiring; the flag
    // is only set around the unique acquisition itself, so the uncontended
    // read path pays one relaxed atomic load.
    std::atomic<bool> refresh_waiting{false};
    void AwaitRefreshGate() const {
      while (refresh_waiting.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    // Unique acquisition with writer preference; mutators are already
    // serialized by ingest_mu, so only one flag owner exists at a time.
    [[nodiscard]] std::unique_lock<std::shared_mutex> LockForMutation() {
      refresh_waiting.store(true, std::memory_order_release);
      std::unique_lock lock(refresh_mu);
      refresh_waiting.store(false, std::memory_order_release);
      return lock;
    }
    std::uint64_t next_docid = 0;  // written under ingest_mu + refresh_mu
    // Exclusive-window durations of past refreshes (the pause concurrent
    // queries can observe), oldest first, capped at kPauseSamples.
    static constexpr std::size_t kPauseSamples = 4096;
    mutable std::mutex pause_mu;
    std::vector<std::uint64_t> refresh_pause_ns;

    [[nodiscard]] std::size_t num_shards() const { return shards.size(); }
    [[nodiscard]] const Json& DocAt(DocId id) const {
      return shards[static_cast<std::size_t>(id) % shards.size()]->DocAt(id);
    }
    [[nodiscard]] Json& DocAt(DocId id) {
      return shards[static_cast<std::size_t>(id) % shards.size()]->DocAt(id);
    }
    // Row-oriented view of any row: JSON rows copy the stored document,
    // typed rows rebuild it from the columns (byte-identical to what the
    // JSON route would have stored). Caller holds refresh_mu.
    [[nodiscard]] Json MaterializedDoc(DocId id) const;
  };

  static std::string TermKey(const Json& value);
  static void IndexDoc(SubShard& shard, DocId id, const Json& doc);
  static void SortNumericsIfDirty(SubShard& shard);
  // Candidate docids for the query via this sub-shard's indexes (superset
  // of matches), or nullopt when the query cannot be served by an index
  // (falls back to scanning). Caller verifies with Query::Matches.
  static std::optional<std::vector<DocId>> Candidates(const SubShard& shard,
                                                      const Query& query);
  // Serial JSON engine: verify candidates / scan with Query::Matches.
  static std::vector<DocId> MatchingDocs(const SubShard& shard,
                                         const Query& query);
  // Columnar engine: verify candidates / scan with a CompiledQuery over the
  // shard's doc-value columns (bitmaps cached for scan-path predicates).
  static std::vector<DocId> MatchingDocsColumnar(const SubShard& shard,
                                                 const Query& query);
  // All matches across sub-shards, ascending docid (= ingestion order),
  // fanned out on the query pool when configured. Caller must hold
  // refresh_mu (shared or unique).
  std::vector<DocId> MatchingDocs(const Index& index, const Query& query) const;
  // Runs fn(shard_index) for every sub-shard: shard 0 on the calling thread,
  // the rest on the query pool when configured (the calls must be
  // independent).
  void RunPerShard(std::size_t num_shards,
                   const std::function<void(std::size_t)>& fn) const;

  std::shared_ptr<Index> Find(const std::string& name);
  std::shared_ptr<const Index> Find(const std::string& name) const;
  std::shared_ptr<Index> FindOrCreate(const std::string& name);

  const ElasticStoreOptions options_;
  std::unique_ptr<ThreadPool> query_pool_;
  mutable std::shared_mutex indices_mu_;
  std::map<std::string, std::shared_ptr<Index>> indices_;
};

}  // namespace dio::backend
