// ElasticStore: an embedded document store standing in for Elasticsearch
// (§II-C). It reproduces the properties DIO depends on:
//   * schemaless JSON documents ("distinct fields corresponding to syscall
//     arguments"),
//   * bulk indexing with near-real-time visibility (documents become
//     searchable at the next refresh, like ES's refresh_interval),
//   * term/range/prefix/bool queries with per-field inverted + numeric
//     indexes,
//   * aggregations (terms, histograms, percentiles) with sub-aggregations,
//   * update-by-query, which the file-path correlation algorithm uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/aggregation.h"
#include "backend/query.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/status.h"

namespace dio::backend {

using DocId = std::uint64_t;

struct Hit {
  DocId id = 0;
  Json source;
};

struct SortSpec {
  std::string field;
  bool ascending = true;
};

struct SearchRequest {
  Query query = Query::MatchAll();
  std::vector<SortSpec> sort;  // empty = docid (ingestion) order
  std::size_t from = 0;
  std::size_t size = 10'000;

  // Parses an Elasticsearch-style search body:
  //   {"query": {...}, "sort": ["time_enter", {"ret": {"order": "desc"}}],
  //    "from": 0, "size": 100}
  static Expected<SearchRequest> FromJson(const Json& body);
  static Expected<SearchRequest> FromJsonText(std::string_view text);
};

struct SearchResult {
  std::vector<Hit> hits;
  std::size_t total = 0;  // matches before from/size paging
};

struct IndexStats {
  std::size_t doc_count = 0;       // searchable documents
  std::size_t pending_count = 0;   // bulked but not yet refreshed
  std::uint64_t bulk_requests = 0;
  std::uint64_t updates = 0;
};

class ElasticStore {
 public:
  ElasticStore() = default;

  // Index management. Bulk() auto-creates missing indices (like ES).
  Status CreateIndex(const std::string& name);
  Status DeleteIndex(const std::string& name);
  [[nodiscard]] std::vector<std::string> ListIndices() const;
  [[nodiscard]] bool HasIndex(const std::string& name) const;

  // Bulk ingestion: documents are buffered and become searchable at the
  // next Refresh() (near-real-time semantics).
  void Bulk(const std::string& index, std::vector<Json> documents);
  // Makes all buffered documents searchable.
  void Refresh(const std::string& index);
  void RefreshAll();

  [[nodiscard]] Expected<SearchResult> Search(const std::string& index,
                                              const SearchRequest& request) const;
  [[nodiscard]] Expected<std::size_t> Count(const std::string& index,
                                            const Query& query) const;
  [[nodiscard]] Expected<AggResult> Aggregate(const std::string& index,
                                              const Query& query,
                                              const Aggregation& agg) const;

  // Applies `update` to every matching document; returns #updated.
  Expected<std::size_t> UpdateByQuery(const std::string& index,
                                      const Query& query,
                                      const std::function<void(Json&)>& update);

  [[nodiscard]] Expected<IndexStats> Stats(const std::string& index) const;

  // Durable snapshots (post-mortem analysis across process restarts, §II):
  // writes one JSON document per line, prefixed by a header line.
  Status SaveIndex(const std::string& index, const std::string& file_path) const;
  // Loads a snapshot into a new index named by the snapshot header (or
  // `rename_to` if non-empty). Fails if the target index already exists.
  Expected<std::string> LoadIndex(const std::string& file_path,
                                  const std::string& rename_to = "");

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::vector<Json> docs;          // docid = position
    std::vector<Json> pending;       // bulked, not yet refreshed
    // term index: field -> canonical term -> posting list (docids,
    // ascending). Postings may be stale supersets after updates; queries
    // re-verify against the document.
    std::unordered_map<std::string,
                       std::unordered_map<std::string, std::vector<DocId>>>
        terms;
    // numeric index: field -> (value, docid) sorted by value.
    std::unordered_map<std::string,
                       std::vector<std::pair<std::int64_t, DocId>>>
        numerics;
    bool numerics_dirty = false;
    std::uint64_t bulk_requests = 0;
    std::uint64_t updates = 0;
  };

  static std::string TermKey(const Json& value);
  static void IndexDoc(Shard& shard, DocId id, const Json& doc);
  // Candidate docids for the query via indexes (superset of matches), or
  // nullopt when the query cannot be served by an index (falls back to
  // scanning). Caller verifies candidates with Query::Matches.
  static std::optional<std::vector<DocId>> Candidates(const Shard& shard,
                                                      const Query& query);
  static std::vector<DocId> MatchingDocs(const Shard& shard,
                                         const Query& query);

  std::shared_ptr<Shard> Find(const std::string& name);
  std::shared_ptr<const Shard> Find(const std::string& name) const;

  mutable std::shared_mutex indices_mu_;
  std::map<std::string, std::shared_ptr<Shard>> indices_;
};

}  // namespace dio::backend
