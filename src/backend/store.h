// ElasticStore: an embedded document store standing in for Elasticsearch
// (§II-C). It reproduces the properties DIO depends on:
//   * schemaless JSON documents ("distinct fields corresponding to syscall
//     arguments"),
//   * bulk indexing with near-real-time visibility (documents become
//     searchable at the next refresh, like ES's refresh_interval),
//   * term/range/prefix/bool queries with per-field inverted + numeric
//     indexes,
//   * aggregations (terms, histograms, percentiles) with sub-aggregations,
//   * update-by-query, which the file-path correlation algorithm uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/aggregation.h"
#include "backend/query.h"
#include "common/clock.h"
#include "common/json.h"
#include "common/status.h"

namespace dio::backend {

using DocId = std::uint64_t;

struct Hit {
  DocId id = 0;
  Json source;
};

struct SortSpec {
  std::string field;
  bool ascending = true;
};

struct SearchRequest {
  Query query = Query::MatchAll();
  std::vector<SortSpec> sort;  // empty = docid (ingestion) order
  std::size_t from = 0;
  std::size_t size = 10'000;

  // Parses an Elasticsearch-style search body:
  //   {"query": {...}, "sort": ["time_enter", {"ret": {"order": "desc"}}],
  //    "from": 0, "size": 100}
  static Expected<SearchRequest> FromJson(const Json& body);
  static Expected<SearchRequest> FromJsonText(std::string_view text);
};

struct SearchResult {
  std::vector<Hit> hits;
  std::size_t total = 0;  // matches before from/size paging
};

struct IndexStats {
  std::size_t doc_count = 0;       // searchable documents
  std::size_t pending_count = 0;   // bulked but not yet refreshed
  std::uint64_t bulk_requests = 0;
  std::uint64_t updates = 0;
};

class ElasticStore {
 public:
  // Each index is split into `shards_per_index` sub-shards (documents are
  // assigned by docid % shards): bulk ingest lands on per-sub-shard lanes
  // with independent locks, so N concurrent Bulk() callers (the tracer's
  // per-CPU consumers) do not serialize on one mutex, and Refresh() indexes
  // the sub-shards in parallel. Query semantics and docid (ingestion) order
  // are identical to a single-shard store.
  explicit ElasticStore(std::size_t shards_per_index = kDefaultShards);

  static constexpr std::size_t kDefaultShards = 4;

  // Index management. Bulk() auto-creates missing indices (like ES).
  Status CreateIndex(const std::string& name);
  Status DeleteIndex(const std::string& name);
  [[nodiscard]] std::vector<std::string> ListIndices() const;
  [[nodiscard]] bool HasIndex(const std::string& name) const;

  // Bulk ingestion: documents are buffered and become searchable at the
  // next Refresh() (near-real-time semantics).
  void Bulk(const std::string& index, std::vector<Json> documents);
  // Makes all buffered documents searchable.
  void Refresh(const std::string& index);
  void RefreshAll();

  [[nodiscard]] Expected<SearchResult> Search(const std::string& index,
                                              const SearchRequest& request) const;
  [[nodiscard]] Expected<std::size_t> Count(const std::string& index,
                                            const Query& query) const;
  [[nodiscard]] Expected<AggResult> Aggregate(const std::string& index,
                                              const Query& query,
                                              const Aggregation& agg) const;

  // Applies `update` to every matching document; returns #updated.
  Expected<std::size_t> UpdateByQuery(const std::string& index,
                                      const Query& query,
                                      const std::function<void(Json&)>& update);

  [[nodiscard]] Expected<IndexStats> Stats(const std::string& index) const;

  // Durable snapshots (post-mortem analysis across process restarts, §II):
  // writes one JSON document per line, prefixed by a header line.
  Status SaveIndex(const std::string& index, const std::string& file_path) const;
  // Loads a snapshot into a new index named by the snapshot header (or
  // `rename_to` if non-empty). Fails if the target index already exists.
  Expected<std::string> LoadIndex(const std::string& file_path,
                                  const std::string& rename_to = "");

 private:
  // One sub-shard of an index: owns the documents with
  // docid % num_shards == shard_index (stored at position docid / num_shards)
  // plus the term/numeric indexes over exactly those documents.
  struct SubShard {
    std::size_t shard_index = 0;
    std::size_t stride = 1;  // num_shards of the owning index

    mutable std::shared_mutex mu;
    std::vector<Json> docs;  // position = docid / stride
    // term index: field -> canonical term -> posting list (global docids,
    // ascending). Postings may be stale supersets after updates; queries
    // re-verify against the document.
    std::unordered_map<std::string,
                       std::unordered_map<std::string, std::vector<DocId>>>
        terms;
    // numeric index: field -> (value, global docid) sorted by value.
    std::unordered_map<std::string,
                       std::vector<std::pair<std::int64_t, DocId>>>
        numerics;
    bool numerics_dirty = false;

    [[nodiscard]] const Json& DocAt(DocId id) const {
      return docs[static_cast<std::size_t>(id) / stride];
    }
    [[nodiscard]] Json& DocAt(DocId id) {
      return docs[static_cast<std::size_t>(id) / stride];
    }
    [[nodiscard]] bool Owns(DocId id) const {
      return static_cast<std::size_t>(id) % stride == shard_index &&
             static_cast<std::size_t>(id) / stride < docs.size();
    }
  };

  // Bulked-but-unrefreshed documents, tagged with the bulk sequence number
  // that fixes their ingestion (docid) order.
  struct PendingBatch {
    std::uint64_t seq = 0;
    std::vector<Json> docs;
  };

  // Ingest lane: where Bulk() parks batches. One lane per sub-shard, each
  // with its own lock, chosen round-robin by sequence number so concurrent
  // bulk callers contend only 1/num_shards of the time.
  struct IngestLane {
    mutable std::mutex mu;
    std::vector<PendingBatch> batches;
  };

  struct Index {
    explicit Index(std::size_t num_shards);

    std::vector<std::unique_ptr<SubShard>> shards;
    std::vector<std::unique_ptr<IngestLane>> lanes;
    std::atomic<std::uint64_t> bulk_seq{0};
    std::atomic<std::uint64_t> bulk_requests{0};
    std::atomic<std::uint64_t> updates{0};
    // Readers take it shared; Refresh/UpdateByQuery take it unique, so a
    // refresh becomes visible to queries atomically across sub-shards.
    mutable std::shared_mutex refresh_mu;
    std::uint64_t next_docid = 0;  // guarded by refresh_mu (unique)

    [[nodiscard]] std::size_t num_shards() const { return shards.size(); }
    [[nodiscard]] const Json& DocAt(DocId id) const {
      return shards[static_cast<std::size_t>(id) % shards.size()]->DocAt(id);
    }
    [[nodiscard]] Json& DocAt(DocId id) {
      return shards[static_cast<std::size_t>(id) % shards.size()]->DocAt(id);
    }
  };

  static std::string TermKey(const Json& value);
  static void IndexDoc(SubShard& shard, DocId id, const Json& doc);
  static void SortNumericsIfDirty(SubShard& shard);
  // Candidate docids for the query via this sub-shard's indexes (superset
  // of matches), or nullopt when the query cannot be served by an index
  // (falls back to scanning). Caller verifies with Query::Matches.
  static std::optional<std::vector<DocId>> Candidates(const SubShard& shard,
                                                      const Query& query);
  static std::vector<DocId> MatchingDocs(const SubShard& shard,
                                         const Query& query);
  // All matches across sub-shards, ascending docid (= ingestion order).
  // Caller must hold refresh_mu (shared or unique).
  static std::vector<DocId> MatchingDocs(const Index& index,
                                         const Query& query);

  std::shared_ptr<Index> Find(const std::string& name);
  std::shared_ptr<const Index> Find(const std::string& name) const;
  std::shared_ptr<Index> FindOrCreate(const std::string& name);

  const std::size_t shards_per_index_;
  mutable std::shared_mutex indices_mu_;
  std::map<std::string, std::shared_ptr<Index>> indices_;
};

}  // namespace dio::backend
