#include "backend/aggregation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "backend/simd_kernels.h"

namespace dio::backend {

Aggregation Aggregation::Terms(std::string field, std::size_t size) {
  Aggregation agg(Kind::kTerms);
  agg.field_ = std::move(field);
  agg.size_ = size;
  return agg;
}

Aggregation Aggregation::Histogram(std::string field, std::int64_t interval) {
  Aggregation agg(Kind::kHistogram);
  agg.field_ = std::move(field);
  agg.interval_ = interval <= 0 ? 1 : interval;
  return agg;
}

Aggregation Aggregation::DateHistogram(std::string field,
                                       std::int64_t interval) {
  Aggregation agg = Histogram(std::move(field), interval);
  agg.kind_ = Kind::kDateHistogram;
  return agg;
}

Aggregation Aggregation::Stats(std::string field) {
  Aggregation agg(Kind::kStats);
  agg.field_ = std::move(field);
  return agg;
}

Aggregation Aggregation::Percentiles(std::string field,
                                     std::vector<double> percents) {
  Aggregation agg(Kind::kPercentiles);
  agg.field_ = std::move(field);
  agg.percents_ = std::move(percents);
  return agg;
}

Aggregation& Aggregation::SubAgg(std::string name, Aggregation agg) {
  subs_.emplace_back(std::move(name), std::move(agg));
  return *this;
}

Expected<Aggregation> Aggregation::FromJson(const Json& dsl) {
  if (!dsl.is_object() || dsl.as_object().empty()) {
    return InvalidArgument("aggregation must be a non-empty object");
  }
  std::optional<Aggregation> agg;
  const Json* subs = nullptr;
  for (const JsonMember& member : dsl.as_object()) {
    const std::string& kind = member.first;
    const Json& body = member.second;
    if (kind == "aggs" || kind == "aggregations") {
      subs = &body;
      continue;
    }
    if (agg.has_value()) {
      return InvalidArgument("aggregation has more than one kind");
    }
    const std::string field = body.GetString("field");
    if (field.empty()) {
      return InvalidArgument(kind + " needs a \"field\"");
    }
    if (kind == "terms") {
      agg = Terms(field, static_cast<std::size_t>(body.GetInt("size", 0)));
    } else if (kind == "histogram" || kind == "date_histogram") {
      const std::int64_t interval = body.GetInt("interval", 0);
      if (interval <= 0) {
        return InvalidArgument(kind + " needs a positive \"interval\"");
      }
      agg = kind == "histogram" ? Histogram(field, interval)
                                : DateHistogram(field, interval);
    } else if (kind == "stats") {
      agg = Stats(field);
    } else if (kind == "percentiles") {
      std::vector<double> percents;
      const Json* list = body.Find("percents");
      if (list != nullptr && list->is_array()) {
        for (const Json& p : list->as_array()) {
          if (p.is_number()) percents.push_back(p.as_double());
        }
      }
      if (percents.empty()) percents = {50.0, 95.0, 99.0};
      agg = Percentiles(field, std::move(percents));
    } else {
      return InvalidArgument("unknown aggregation kind: " + kind);
    }
  }
  if (!agg.has_value()) {
    return InvalidArgument("aggregation object has no kind");
  }
  if (subs != nullptr) {
    if (!subs->is_object()) {
      return InvalidArgument("aggs must be an object of named aggregations");
    }
    for (const JsonMember& named : subs->as_object()) {
      auto sub = FromJson(named.second);
      if (!sub.ok()) return sub;
      agg->SubAgg(named.first, std::move(sub.value()));
    }
  }
  return std::move(*agg);
}

Expected<Aggregation> Aggregation::FromJsonText(std::string_view text) {
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  return FromJson(*parsed);
}

namespace {

// Stable string key for grouping arbitrary JSON terms.
std::string GroupKey(const Json& value) {
  switch (value.type()) {
    case Json::Type::kString: return "s:" + value.as_string();
    case Json::Type::kInt: return "i:" + std::to_string(value.as_int());
    case Json::Type::kDouble: return "d:" + std::to_string(value.as_double());
    case Json::Type::kBool: return value.as_bool() ? "b:1" : "b:0";
    default: return "?:" + value.Dump();
  }
}

}  // namespace

AggResult Aggregation::Execute(const std::vector<const Json*>& docs) const {
  AggResult result;
  switch (kind_) {
    case Kind::kTerms: {
      struct Group {
        Json key;
        std::vector<const Json*> docs;
      };
      std::map<std::string, Group> groups;
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr) continue;
        Group& group = groups[GroupKey(*value)];
        if (group.docs.empty()) group.key = *value;
        group.docs.push_back(doc);
      }
      result.buckets.reserve(groups.size());
      for (auto& [key, group] : groups) {
        AggBucket bucket;
        bucket.key = group.key;
        bucket.doc_count = static_cast<std::int64_t>(group.docs.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.sub[sub_name] = sub_agg.Execute(group.docs);
        }
        result.buckets.push_back(std::move(bucket));
      }
      std::stable_sort(result.buckets.begin(), result.buckets.end(),
                       [](const AggBucket& a, const AggBucket& b) {
                         return a.doc_count > b.doc_count;
                       });
      if (size_ > 0 && result.buckets.size() > size_) {
        result.buckets.resize(size_);
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      struct Group {
        std::vector<const Json*> docs;
      };
      std::map<std::int64_t, Group> groups;
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr || !value->is_number()) continue;
        std::int64_t v = value->as_int();
        std::int64_t bucket_start = (v / interval_) * interval_;
        if (v < 0 && v % interval_ != 0) bucket_start -= interval_;
        groups[bucket_start].docs.push_back(doc);
      }
      for (auto& [start, group] : groups) {
        AggBucket bucket;
        bucket.key = Json(start);
        bucket.doc_count = static_cast<std::int64_t>(group.docs.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.sub[sub_name] = sub_agg.Execute(group.docs);
        }
        result.buckets.push_back(std::move(bucket));
      }
      break;
    }
    case Kind::kStats: {
      std::int64_t count = 0;
      double sum = 0, min = 0, max = 0;
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr || !value->is_number()) continue;
        const double v = value->as_double();
        if (count == 0) {
          min = max = v;
        } else {
          min = std::min(min, v);
          max = std::max(max, v);
        }
        sum += v;
        ++count;
      }
      result.metrics.Set("count", count);
      result.metrics.Set("min", min);
      result.metrics.Set("max", max);
      result.metrics.Set("sum", sum);
      result.metrics.Set("avg", count == 0 ? 0.0 : sum / count);
      break;
    }
    case Kind::kPercentiles: {
      std::vector<double> values;
      values.reserve(docs.size());
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value != nullptr && value->is_number()) {
          values.push_back(value->as_double());
        }
      }
      std::sort(values.begin(), values.end());
      Json out = Json::MakeObject();
      for (double p : percents_) {
        double v = 0.0;
        if (!values.empty()) {
          // Nearest-rank with linear interpolation.
          const double rank =
              (p / 100.0) * static_cast<double>(values.size() - 1);
          const auto lo = static_cast<std::size_t>(std::floor(rank));
          const auto hi = static_cast<std::size_t>(std::ceil(rank));
          const double frac = rank - std::floor(rank);
          v = values[lo] * (1.0 - frac) + values[hi] * frac;
        }
        out.Set(std::to_string(p), v);
      }
      result.metrics = std::move(out);
      break;
    }
  }
  return result;
}

AggResult Aggregation::ExecuteColumnar(const AggSource& source) const {
  std::vector<std::size_t> rows(source.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return ExecuteColumnar(source, rows);
}

// Mirrors Execute() branch for branch: identical group keys (GroupKey byte
// format), identical bucket ordering (std::map iteration + stable sort by
// count), identical accumulation order (rows are in docid order).
AggResult Aggregation::ExecuteColumnar(
    const AggSource& source, const std::vector<std::size_t>& rows) const {
  AggResult result;
  const ColumnSlice& col = source.Slice(field_);
  switch (kind_) {
    case Kind::kTerms: {
      struct Group {
        Json key;
        std::vector<std::size_t> rows;
      };
      std::map<std::string, Group> groups;
      std::string group_key;
      for (const std::size_t r : rows) {
        const ValueKind kind = col.kind(r);
        switch (kind) {
          case ValueKind::kMissing:
            continue;
          case ValueKind::kString:
            group_key = "s:";
            group_key += col.strs[r];
            break;
          case ValueKind::kInt:
            group_key = "i:" + std::to_string(col.ints[r]);
            break;
          case ValueKind::kDouble:
            group_key = "d:" + std::to_string(col.dbls[r]);
            break;
          case ValueKind::kBool:
            group_key = col.ints[r] != 0 ? "b:1" : "b:0";
            break;
          case ValueKind::kOther:
            group_key = "?:" + col.raws[r]->Dump();
            break;
        }
        Group& group = groups[group_key];
        if (group.rows.empty()) {
          switch (kind) {
            case ValueKind::kString: group.key = Json(col.strs[r]); break;
            case ValueKind::kInt: group.key = Json(col.ints[r]); break;
            case ValueKind::kDouble: group.key = Json(col.dbls[r]); break;
            case ValueKind::kBool: group.key = Json(col.ints[r] != 0); break;
            case ValueKind::kOther: group.key = *col.raws[r]; break;
            case ValueKind::kMissing: break;
          }
        }
        group.rows.push_back(r);
      }
      result.buckets.reserve(groups.size());
      for (auto& [key, group] : groups) {
        AggBucket bucket;
        bucket.key = group.key;
        bucket.doc_count = static_cast<std::int64_t>(group.rows.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.sub[sub_name] = sub_agg.ExecuteColumnar(source, group.rows);
        }
        result.buckets.push_back(std::move(bucket));
      }
      std::stable_sort(result.buckets.begin(), result.buckets.end(),
                       [](const AggBucket& a, const AggBucket& b) {
                         return a.doc_count > b.doc_count;
                       });
      if (size_ > 0 && result.buckets.size() > size_) {
        result.buckets.resize(size_);
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      std::map<std::int64_t, std::vector<std::size_t>> groups;
      if (simd::Enabled() && !rows.empty() &&
          rows.size() == col.kinds.size()) {
        // Full-range aggregation (the root-agg hot path): bin every row in
        // one flat vectorizable pass, then group. Non-number rows get a
        // placeholder bin; the kind re-check below keeps them out.
        std::vector<std::int64_t> bins(col.kinds.size());
        simd::HistogramBins(col.ints.data(), col.kinds.data(),
                            col.kinds.size(), interval_, bins.data());
        for (const std::size_t r : rows) {
          if (!col.is_number(r)) continue;
          groups[bins[r]].push_back(r);
        }
      } else {
        for (const std::size_t r : rows) {
          if (!col.is_number(r)) continue;
          const std::int64_t v = col.ints[r];
          std::int64_t bucket_start = (v / interval_) * interval_;
          if (v < 0 && v % interval_ != 0) bucket_start -= interval_;
          groups[bucket_start].push_back(r);
        }
      }
      for (auto& [start, group_rows] : groups) {
        AggBucket bucket;
        bucket.key = Json(start);
        bucket.doc_count = static_cast<std::int64_t>(group_rows.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.sub[sub_name] = sub_agg.ExecuteColumnar(source, group_rows);
        }
        result.buckets.push_back(std::move(bucket));
      }
      break;
    }
    case Kind::kStats: {
      std::int64_t count = 0;
      double sum = 0, min = 0, max = 0;
      for (const std::size_t r : rows) {
        if (!col.is_number(r)) continue;
        const double v = col.dbls[r];
        if (count == 0) {
          min = max = v;
        } else {
          min = std::min(min, v);
          max = std::max(max, v);
        }
        sum += v;
        ++count;
      }
      result.metrics.Set("count", count);
      result.metrics.Set("min", min);
      result.metrics.Set("max", max);
      result.metrics.Set("sum", sum);
      result.metrics.Set("avg", count == 0 ? 0.0 : sum / count);
      break;
    }
    case Kind::kPercentiles: {
      std::vector<double> values;
      values.reserve(rows.size());
      for (const std::size_t r : rows) {
        if (col.is_number(r)) values.push_back(col.dbls[r]);
      }
      std::sort(values.begin(), values.end());
      Json out = Json::MakeObject();
      for (double p : percents_) {
        double v = 0.0;
        if (!values.empty()) {
          // Nearest-rank with linear interpolation.
          const double rank =
              (p / 100.0) * static_cast<double>(values.size() - 1);
          const auto lo = static_cast<std::size_t>(std::floor(rank));
          const auto hi = static_cast<std::size_t>(std::ceil(rank));
          const double frac = rank - std::floor(rank);
          v = values[lo] * (1.0 - frac) + values[hi] * frac;
        }
        out.Set(std::to_string(p), v);
      }
      result.metrics = std::move(out);
      break;
    }
  }
  return result;
}

AggPartial Aggregation::ExecutePartial(
    const std::vector<const Json*>& docs) const {
  AggPartial partial;
  switch (kind_) {
    case Kind::kTerms: {
      struct Group {
        Json key;
        std::vector<const Json*> docs;
      };
      std::map<std::string, Group> groups;
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr) continue;
        Group& group = groups[GroupKey(*value)];
        if (group.docs.empty()) group.key = *value;
        group.docs.push_back(doc);
      }
      for (auto& [key, group] : groups) {
        AggPartial::Bucket bucket;
        bucket.key = std::move(group.key);
        bucket.doc_count = static_cast<std::int64_t>(group.docs.size());
        bucket.subs.reserve(subs_.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.subs.push_back(sub_agg.ExecutePartial(group.docs));
        }
        partial.terms.emplace(key, std::move(bucket));
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      std::map<std::int64_t, std::vector<const Json*>> groups;
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr || !value->is_number()) continue;
        std::int64_t v = value->as_int();
        std::int64_t bucket_start = (v / interval_) * interval_;
        if (v < 0 && v % interval_ != 0) bucket_start -= interval_;
        groups[bucket_start].push_back(doc);
      }
      for (auto& [start, group_docs] : groups) {
        AggPartial::Bucket bucket;
        bucket.doc_count = static_cast<std::int64_t>(group_docs.size());
        bucket.subs.reserve(subs_.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.subs.push_back(sub_agg.ExecutePartial(group_docs));
        }
        partial.histo.emplace(start, std::move(bucket));
      }
      break;
    }
    case Kind::kStats: {
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value == nullptr || !value->is_number()) continue;
        const double v = value->as_double();
        if (partial.count == 0) {
          partial.min = partial.max = v;
        } else {
          partial.min = std::min(partial.min, v);
          partial.max = std::max(partial.max, v);
        }
        partial.sum += v;
        ++partial.count;
      }
      break;
    }
    case Kind::kPercentiles: {
      partial.values.reserve(docs.size());
      for (const Json* doc : docs) {
        const Json* value = doc->Find(field_);
        if (value != nullptr && value->is_number()) {
          partial.values.push_back(value->as_double());
        }
      }
      std::sort(partial.values.begin(), partial.values.end());
      break;
    }
  }
  return partial;
}

AggPartial Aggregation::ExecuteColumnarPartial(const AggSource& source) const {
  std::vector<std::size_t> rows(source.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  return ExecuteColumnarPartial(source, rows);
}

AggPartial Aggregation::ExecuteColumnarPartial(
    const AggSource& source, const std::vector<std::size_t>& rows) const {
  AggPartial partial;
  const ColumnSlice& col = source.Slice(field_);
  switch (kind_) {
    case Kind::kTerms: {
      struct Group {
        Json key;
        std::vector<std::size_t> rows;
      };
      std::map<std::string, Group> groups;
      std::string group_key;
      for (const std::size_t r : rows) {
        const ValueKind kind = col.kind(r);
        switch (kind) {
          case ValueKind::kMissing:
            continue;
          case ValueKind::kString:
            group_key = "s:";
            group_key += col.strs[r];
            break;
          case ValueKind::kInt:
            group_key = "i:" + std::to_string(col.ints[r]);
            break;
          case ValueKind::kDouble:
            group_key = "d:" + std::to_string(col.dbls[r]);
            break;
          case ValueKind::kBool:
            group_key = col.ints[r] != 0 ? "b:1" : "b:0";
            break;
          case ValueKind::kOther:
            group_key = "?:" + col.raws[r]->Dump();
            break;
        }
        Group& group = groups[group_key];
        if (group.rows.empty()) {
          switch (kind) {
            case ValueKind::kString: group.key = Json(col.strs[r]); break;
            case ValueKind::kInt: group.key = Json(col.ints[r]); break;
            case ValueKind::kDouble: group.key = Json(col.dbls[r]); break;
            case ValueKind::kBool: group.key = Json(col.ints[r] != 0); break;
            case ValueKind::kOther: group.key = *col.raws[r]; break;
            case ValueKind::kMissing: break;
          }
        }
        group.rows.push_back(r);
      }
      for (auto& [key, group] : groups) {
        AggPartial::Bucket bucket;
        bucket.key = std::move(group.key);
        bucket.doc_count = static_cast<std::int64_t>(group.rows.size());
        bucket.subs.reserve(subs_.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.subs.push_back(
              sub_agg.ExecuteColumnarPartial(source, group.rows));
        }
        partial.terms.emplace(key, std::move(bucket));
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      std::map<std::int64_t, std::vector<std::size_t>> groups;
      if (simd::Enabled() && !rows.empty() &&
          rows.size() == col.kinds.size()) {
        std::vector<std::int64_t> bins(col.kinds.size());
        simd::HistogramBins(col.ints.data(), col.kinds.data(),
                            col.kinds.size(), interval_, bins.data());
        for (const std::size_t r : rows) {
          if (!col.is_number(r)) continue;
          groups[bins[r]].push_back(r);
        }
      } else {
        for (const std::size_t r : rows) {
          if (!col.is_number(r)) continue;
          const std::int64_t v = col.ints[r];
          std::int64_t bucket_start = (v / interval_) * interval_;
          if (v < 0 && v % interval_ != 0) bucket_start -= interval_;
          groups[bucket_start].push_back(r);
        }
      }
      for (auto& [start, group_rows] : groups) {
        AggPartial::Bucket bucket;
        bucket.doc_count = static_cast<std::int64_t>(group_rows.size());
        bucket.subs.reserve(subs_.size());
        for (const auto& [sub_name, sub_agg] : subs_) {
          bucket.subs.push_back(
              sub_agg.ExecuteColumnarPartial(source, group_rows));
        }
        partial.histo.emplace(start, std::move(bucket));
      }
      break;
    }
    case Kind::kStats: {
      for (const std::size_t r : rows) {
        if (!col.is_number(r)) continue;
        const double v = col.dbls[r];
        if (partial.count == 0) {
          partial.min = partial.max = v;
        } else {
          partial.min = std::min(partial.min, v);
          partial.max = std::max(partial.max, v);
        }
        partial.sum += v;
        ++partial.count;
      }
      break;
    }
    case Kind::kPercentiles: {
      partial.values.reserve(rows.size());
      for (const std::size_t r : rows) {
        if (col.is_number(r)) partial.values.push_back(col.dbls[r]);
      }
      std::sort(partial.values.begin(), partial.values.end());
      break;
    }
  }
  return partial;
}

void Aggregation::MergePartial(AggPartial& into, AggPartial&& from) const {
  switch (kind_) {
    case Kind::kTerms: {
      for (auto& [key, bucket] : from.terms) {
        auto it = into.terms.find(key);
        if (it == into.terms.end()) {
          // First shard to see this group names the bucket key. On data
          // where distinct Json values collide to one GroupKey (double
          // formatting), shard order can pick a different representative
          // than global doc order would — counts are unaffected.
          into.terms.emplace(key, std::move(bucket));
          continue;
        }
        it->second.doc_count += bucket.doc_count;
        for (std::size_t i = 0; i < subs_.size(); ++i) {
          subs_[i].second.MergePartial(it->second.subs[i],
                                       std::move(bucket.subs[i]));
        }
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      for (auto& [start, bucket] : from.histo) {
        auto it = into.histo.find(start);
        if (it == into.histo.end()) {
          into.histo.emplace(start, std::move(bucket));
          continue;
        }
        it->second.doc_count += bucket.doc_count;
        for (std::size_t i = 0; i < subs_.size(); ++i) {
          subs_[i].second.MergePartial(it->second.subs[i],
                                       std::move(bucket.subs[i]));
        }
      }
      break;
    }
    case Kind::kStats: {
      if (from.count == 0) break;
      if (into.count == 0) {
        into.min = from.min;
        into.max = from.max;
      } else {
        into.min = std::min(into.min, from.min);
        into.max = std::max(into.max, from.max);
      }
      into.sum += from.sum;
      into.count += from.count;
      break;
    }
    case Kind::kPercentiles: {
      const auto mid = static_cast<std::ptrdiff_t>(into.values.size());
      into.values.insert(into.values.end(), from.values.begin(),
                         from.values.end());
      std::inplace_merge(into.values.begin(), into.values.begin() + mid,
                         into.values.end());
      break;
    }
  }
}

AggResult Aggregation::FinalizePartial(AggPartial&& partial) const {
  AggResult result;
  switch (kind_) {
    case Kind::kTerms: {
      result.buckets.reserve(partial.terms.size());
      for (auto& [key, bucket] : partial.terms) {
        AggBucket out;
        out.key = std::move(bucket.key);
        out.doc_count = bucket.doc_count;
        for (std::size_t i = 0; i < subs_.size(); ++i) {
          out.sub[subs_[i].first] =
              subs_[i].second.FinalizePartial(std::move(bucket.subs[i]));
        }
        result.buckets.push_back(std::move(out));
      }
      std::stable_sort(result.buckets.begin(), result.buckets.end(),
                       [](const AggBucket& a, const AggBucket& b) {
                         return a.doc_count > b.doc_count;
                       });
      if (size_ > 0 && result.buckets.size() > size_) {
        result.buckets.resize(size_);
      }
      break;
    }
    case Kind::kHistogram:
    case Kind::kDateHistogram: {
      result.buckets.reserve(partial.histo.size());
      for (auto& [start, bucket] : partial.histo) {
        AggBucket out;
        out.key = Json(start);
        out.doc_count = bucket.doc_count;
        for (std::size_t i = 0; i < subs_.size(); ++i) {
          out.sub[subs_[i].first] =
              subs_[i].second.FinalizePartial(std::move(bucket.subs[i]));
        }
        result.buckets.push_back(std::move(out));
      }
      break;
    }
    case Kind::kStats: {
      result.metrics.Set("count", partial.count);
      result.metrics.Set("min", partial.min);
      result.metrics.Set("max", partial.max);
      result.metrics.Set("sum", partial.sum);
      result.metrics.Set(
          "avg", partial.count == 0 ? 0.0 : partial.sum / partial.count);
      break;
    }
    case Kind::kPercentiles: {
      const std::vector<double>& values = partial.values;  // already sorted
      Json out = Json::MakeObject();
      for (double p : percents_) {
        double v = 0.0;
        if (!values.empty()) {
          // Nearest-rank with linear interpolation.
          const double rank =
              (p / 100.0) * static_cast<double>(values.size() - 1);
          const auto lo = static_cast<std::size_t>(std::floor(rank));
          const auto hi = static_cast<std::size_t>(std::ceil(rank));
          const double frac = rank - std::floor(rank);
          v = values[lo] * (1.0 - frac) + values[hi] * frac;
        }
        out.Set(std::to_string(p), v);
      }
      result.metrics = std::move(out);
      break;
    }
  }
  return result;
}

}  // namespace dio::backend
