// File path correlation algorithm (§II-C).
//
// The tracer labels fd-handling syscalls with a file tag (dev|ino|first-
// access-ts) but only open-type syscalls carry the path argument. This
// algorithm — built purely on the store's query and update-by-query
// features, like the paper's Elasticsearch implementation — translates each
// event's file tag into the actual file path:
//
//   1. search events whose syscall is open/openat/creat, with a valid tag
//      and a path argument -> build tag-key -> path dictionary;
//   2. update-by-query every tagged event, setting "file_path".
//
// Events whose tag was never seen on an open (e.g. the open happened before
// tracing started, or the open event was discarded at the ring buffer) stay
// unresolved — exactly the ≤5% unreported-path effect of §III-D.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "backend/query_backend.h"
#include "common/status.h"

namespace dio::backend {

struct CorrelationStats {
  std::size_t tags_discovered = 0;   // distinct tag -> path mappings
  std::size_t events_updated = 0;    // events that gained a file_path THIS run
  std::size_t events_resolved = 0;   // tagged events with a path after the run
  std::size_t events_unresolved = 0; // tagged events left without a path

  [[nodiscard]] double unresolved_ratio() const {
    const std::size_t total = events_resolved + events_unresolved;
    return total == 0 ? 0.0
                      : static_cast<double>(events_unresolved) /
                            static_cast<double>(total);
  }
};

class FilePathCorrelator {
 public:
  explicit FilePathCorrelator(QueryBackend* store) : store_(store) {}

  // Runs the algorithm over one tracing session's index. Can be re-run
  // on-demand as more data arrives (§II-E: "automatically executed by the
  // tracer or on-demand by users").
  Expected<CorrelationStats> Run(const std::string& index);

  // The tag dictionary discovered by the last Run (for inspection/tests).
  [[nodiscard]] const std::map<std::string, std::string>& tag_to_path() const {
    return tag_to_path_;
  }

 private:
  QueryBackend* store_;
  std::map<std::string, std::string> tag_to_path_;
};

}  // namespace dio::backend
