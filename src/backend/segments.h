// Sealed-segment columnar layout for the ElasticStore (Lucene segment
// shape): each sub-shard's doc-value columns are an ordered list of
// immutable sealed blocks plus one growing tail. A refresh stages the new
// rows' columns entirely off-lock — sealed segments are shared by pointer,
// the old tail is cloned and appended into, blocks seal at exactly
// `segment_docs` rows — and the staged list is swapped in under the store's
// brief exclusive window. Because sealed segments never change, their
// cached filter bitmaps and string-dictionary ranks survive refreshes; a
// visibility change invalidates only the tail.
//
// `segment_docs == 0` is the legacy rebuild-everything mode: one segment
// that grows in place under the exclusive lock and drops its cache on every
// refresh. It stays as the bench baseline and the sim's parity oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "backend/doc_values.h"

namespace dio::backend {

// One block of a sub-shard's columns, covering shard-local row positions
// [base, base + columns.num_docs()). Sealed blocks hold exactly the shard's
// segment_docs rows and are immutable under refresh; only update-by-query
// may rewrite a sealed row in place (clearing just this block's cache).
struct ColumnSegment {
  ColumnSegment(std::size_t base_pos, std::size_t cache_entries)
      : base(base_pos), cache(cache_entries) {}
  // Tail clone for a staged refresh: copies rows and carries the traffic
  // counters over so cumulative cache stats never go backwards, but starts
  // with an empty cache (the tail's bitmaps die with the visibility change).
  ColumnSegment(const ColumnSegment& other, std::size_t cache_entries)
      : base(other.base), sealed(other.sealed), columns(other.columns),
        cache(cache_entries) {
    cache.CarryCountersFrom(other.cache);
  }

  std::size_t base = 0;
  bool sealed = false;
  ColumnSet columns;
  mutable FilterBitmapCache cache;

  [[nodiscard]] std::size_t rows() const { return columns.num_docs(); }
  [[nodiscard]] std::size_t end() const { return base + columns.num_docs(); }
};

// The ordered segment list of one sub-shard. Readers walk `segments()`
// under the store's shared refresh lock; every mutation happens under the
// exclusive lock (swap-in of a staged build, legacy in-place growth,
// update-by-query row rewrites).
class SegmentedColumns {
 public:
  SegmentedColumns(std::size_t segment_docs, std::size_t cache_entries)
      : segment_docs_(segment_docs), cache_entries_(cache_entries) {}

  [[nodiscard]] std::size_t segment_docs() const { return segment_docs_; }
  [[nodiscard]] std::size_t cache_entries() const { return cache_entries_; }
  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] const std::vector<std::shared_ptr<ColumnSegment>>& segments()
      const {
    return segments_;
  }
  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] std::size_t num_sealed() const;

  // Segment lookup for a shard-local row position. Sealed segments hold
  // exactly segment_docs rows, so this is pure arithmetic.
  [[nodiscard]] std::size_t SegmentIndexFor(std::size_t pos) const {
    return segment_docs_ == 0 ? 0 : pos / segment_docs_;
  }
  [[nodiscard]] std::size_t LocalPos(std::size_t pos) const {
    return segment_docs_ == 0 ? pos : pos % segment_docs_;
  }
  [[nodiscard]] ColumnSegment& SegmentFor(std::size_t pos) const {
    return *segments_[SegmentIndexFor(pos)];
  }

  // Union field count / summed cache traffic across segments (IndexStats).
  [[nodiscard]] std::size_t num_fields() const;
  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;
  [[nodiscard]] std::uint64_t cache_evictions() const;

  // Legacy in-place growth (segment_docs == 0) and update-by-query both
  // mutate under the store's exclusive lock: EnsureTail returns the single
  // growing segment (created on demand); NoteInPlaceGrowth republishes the
  // row count and bumps the generation after the caller appended rows.
  ColumnSegment& EnsureTail();
  void NoteInPlaceGrowth();

  void Clear();

 private:
  friend class StagedSegmentBuild;

  std::size_t segment_docs_;
  std::size_t cache_entries_;
  std::size_t num_rows_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::shared_ptr<ColumnSegment>> segments_;
};

// Off-lock staged refresh build for one sub-shard. Constructed against the
// shard's current segment list while queries keep running: sealed segments
// are adopted by pointer, the unsealed tail (if any) is cloned so the live
// copy is never touched. The caller then appends the new rows' columns —
// calling PrepareRow() before each row so blocks seal exactly at the
// segment_docs boundary — and finally Commit() swaps the staged list in
// under the store's exclusive window (O(segments) pointer moves, no column
// work). The store's ingest mutex serializes builders against every other
// mutator, so the base list cannot change between construction and Commit.
class StagedSegmentBuild {
 public:
  explicit StagedSegmentBuild(const SegmentedColumns& base);

  // Seals the tail if it is full and opens a fresh one; returns true when
  // the tail ColumnSet changed (appenders caching column pointers must
  // re-bind). Call once before every appended row.
  bool PrepareRow();
  // The ColumnSet the next row appends into. Valid after PrepareRow().
  [[nodiscard]] ColumnSet& tail() { return tail_->columns; }

  // FinishBatch on every staged segment that grew (pads columns, re-ranks
  // only dictionaries that changed — sealed blocks keep their ranks).
  void Finish();
  [[nodiscard]] std::size_t staged_rows() const { return staged_rows_; }

  // Publishes the staged list into `target` under the exclusive lock.
  void Commit(SegmentedColumns* target);

 private:
  std::uint64_t base_generation_;
  std::size_t base_rows_;
  std::size_t segment_docs_;
  std::size_t cache_entries_;
  std::size_t next_base_;
  std::size_t staged_rows_ = 0;
  std::size_t first_touched_;
  std::shared_ptr<ColumnSegment> tail_;
  std::vector<std::shared_ptr<ColumnSegment>> staged_;
};

}  // namespace dio::backend
