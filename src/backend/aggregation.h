// Aggregations over query results: the Elasticsearch subset DIO's dashboards
// use — terms (group by field), (date_)histogram (time bucketing),
// stats / percentiles (latency summaries) — with arbitrary-depth
// sub-aggregation (Fig. 4 is terms(comm) x date_histogram(time_enter)).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/doc_values.h"
#include "common/json.h"
#include "common/status.h"

namespace dio::backend {

class Aggregation;

struct AggBucket {
  Json key;                 // term value or numeric bucket start
  std::int64_t doc_count = 0;
  // Sub-aggregation results keyed by name.
  std::map<std::string, struct AggResult> sub;
};

struct AggResult {
  // Bucketed aggs fill `buckets`; metric aggs fill `metrics`.
  std::vector<AggBucket> buckets;
  Json metrics = Json::MakeObject();
};

// Mergeable intermediate state for distributed aggregation: each shard runs
// ExecutePartial / ExecuteColumnarPartial over its local matches, the
// partials merge in shard order, and FinalizePartial produces what Execute
// returns over the concatenated match set. Every combine step is exact for
// integer-valued fields (bucket counts, min/max, sorted percentile values);
// only the stats `sum` reassociates floating-point addition, which can
// drift by an ulp from single-pass execution on non-integer data.
struct AggPartial {
  struct Bucket {
    Json key;
    std::int64_t doc_count = 0;
    // One partial per sub-aggregation, aligned with Aggregation::subs().
    std::vector<AggPartial> subs;
  };
  std::map<std::string, Bucket> terms;   // kTerms: GroupKey -> bucket
  std::map<std::int64_t, Bucket> histo;  // k(Date)Histogram: start -> bucket
  std::int64_t count = 0;                // kStats
  double sum = 0, min = 0, max = 0;      // kStats
  std::vector<double> values;            // kPercentiles, kept sorted
};

class Aggregation {
 public:
  enum class Kind { kTerms, kHistogram, kDateHistogram, kStats, kPercentiles };

  // Top `size` terms by doc count (0 = all, sorted by count desc).
  static Aggregation Terms(std::string field, std::size_t size = 0);
  static Aggregation Histogram(std::string field, std::int64_t interval);
  // Identical math to Histogram; named for parity with the ES DSL.
  static Aggregation DateHistogram(std::string field, std::int64_t interval);
  static Aggregation Stats(std::string field);
  static Aggregation Percentiles(std::string field,
                                 std::vector<double> percents);

  // Attaches a named sub-aggregation (bucketed aggs only).
  Aggregation& SubAgg(std::string name, Aggregation agg);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::int64_t interval() const { return interval_; }
  [[nodiscard]] const std::vector<double>& percents() const {
    return percents_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Aggregation>>& subs()
      const {
    return subs_;
  }

  // Parses the Elasticsearch aggregation DSL subset:
  //   {"terms": {"field": "comm", "size": 5}, "aggs": {"<name>": {...}}}
  //   {"histogram": {"field": "ret", "interval": 100}, "aggs": {...}}
  //   {"date_histogram": {"field": "time_enter", "interval": 1000000}}
  //   {"stats": {"field": "duration_ns"}}
  //   {"percentiles": {"field": "duration_ns", "percents": [50, 99]}}
  static Expected<Aggregation> FromJson(const Json& dsl);
  static Expected<Aggregation> FromJsonText(std::string_view text);

  // Executes against a set of documents (pointers remain owned by caller).
  [[nodiscard]] AggResult Execute(
      const std::vector<const Json*>& docs) const;

  // Streaming columnar path: accumulates over the source's column slices
  // instead of per-doc Json. Returns exactly what Execute returns for the
  // same matched set, in the same bucket order (the slices are gathered in
  // docid order, which also keeps float summation order identical).
  [[nodiscard]] AggResult ExecuteColumnar(const AggSource& source) const;

  // Distributed scatter half: same grouping and accumulation order as
  // Execute / ExecuteColumnar, but returns the mergeable partial instead of
  // a finalized result. Terms truncation (`size`) and bucket ordering are
  // deferred to FinalizePartial so per-shard partials stay lossless.
  [[nodiscard]] AggPartial ExecutePartial(
      const std::vector<const Json*>& docs) const;
  [[nodiscard]] AggPartial ExecuteColumnarPartial(const AggSource& source) const;

  // Folds `from` into `into`, in caller-chosen (shard) order. Merging into a
  // default-constructed partial copies `from`.
  void MergePartial(AggPartial& into, AggPartial&& from) const;

  // Gather half: bucket ordering, terms truncation, and metric math exactly
  // as Execute performs them over the full match set.
  [[nodiscard]] AggResult FinalizePartial(AggPartial&& partial) const;

 private:
  explicit Aggregation(Kind kind) : kind_(kind) {}

  AggResult ExecuteColumnar(const AggSource& source,
                            const std::vector<std::size_t>& rows) const;

  AggPartial ExecuteColumnarPartial(const AggSource& source,
                                    const std::vector<std::size_t>& rows) const;

  Kind kind_;
  std::string field_;
  std::size_t size_ = 0;
  std::int64_t interval_ = 1;
  std::vector<double> percents_;
  std::vector<std::pair<std::string, Aggregation>> subs_;
};

}  // namespace dio::backend
