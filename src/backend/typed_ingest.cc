#include "backend/typed_ingest.h"

namespace dio::backend {

namespace {

// Indices into WireDocFields() / WireColumnAppender::cols_.
enum Field : std::size_t {
  kSession = 0,
  kSyscall,
  kCategory,
  kPid,
  kTid,
  kComm,
  kProcName,
  kTimeEnter,
  kTimeExit,
  kDurationNs,
  kRet,
  kCpu,
  kFd,
  kPath,
  kPath2,
  kXattrName,
  kCount,
  kArgOffset,
  kWhence,
  kFlags,
  kMode,
  kFileType,
  kFileOffset,
  kFileTag,
  kTagDev,
  kTagIno,
  kTagTs,
  kNumFields,
};

}  // namespace

const std::vector<std::string>& WireDocFields() {
  static const std::vector<std::string> kFields = {
      "session",    "syscall",     "category",  "pid",        "tid",
      "comm",       "proc_name",   "time_enter", "time_exit", "duration_ns",
      "ret",        "cpu",         "fd",        "path",       "path2",
      "xattr_name", "count",       "arg_offset", "whence",    "flags",
      "mode",       "file_type",   "file_offset", "file_tag", "tag_dev",
      "tag_ino",    "tag_ts"};
  return kFields;
}

WireColumnAppender::WireColumnAppender(ColumnSet* columns)
    : columns_(columns) {
  const std::vector<std::string>& fields = WireDocFields();
  cols_.reserve(fields.size());
  for (const std::string& field : fields) {
    // Eagerly creating every canonical column is benign: an all-kMissing
    // column behaves exactly like an absent one in every query path.
    cols_.push_back(&columns_->TypedColumn(field));
  }
}

void WireColumnAppender::SetInt(DocValueColumn* col, std::size_t pos,
                                std::int64_t v) {
  col->EnsureSlots(pos + 1);
  col->kinds[pos] = static_cast<std::uint8_t>(ValueKind::kInt);
  col->ints[pos] = v;
  // Json int members carry their double shadow for cross-type numeric
  // equality and sorting; mirror ColumnSet::DecodeMember.
  col->dbls[pos] = static_cast<double>(v);
}

void WireColumnAppender::SetString(DocValueColumn* col, std::size_t pos,
                                   std::string_view s) {
  col->EnsureSlots(pos + 1);
  scratch_.assign(s.data(), s.size());
  auto it = col->dict_lookup.find(scratch_);
  std::uint32_t ord;
  if (it == col->dict_lookup.end()) {
    ord = static_cast<std::uint32_t>(col->dict.size());
    col->dict.push_back(scratch_);
    col->dict_lookup.emplace(scratch_, ord);
    col->ranks_dirty = true;
  } else {
    ord = it->second;
  }
  col->kinds[pos] = static_cast<std::uint8_t>(ValueKind::kString);
  col->ints[pos] = static_cast<std::int64_t>(ord);
}

std::size_t WireColumnAppender::Append(const tracer::WireEvent& raw,
                                       std::string_view session) {
  const std::size_t pos = columns_->BeginTypedRow();
  const auto nr = static_cast<os::SyscallNr>(raw.nr);
  const os::SyscallDescriptor& desc = os::Describe(nr);

  // Unconditional fields — present in every wire document.
  SetString(cols_[kSession], pos, session);
  SetString(cols_[kSyscall], pos, desc.name);
  SetString(cols_[kCategory], pos, os::CategoryName(desc.category));
  SetInt(cols_[kPid], pos, raw.pid);
  SetInt(cols_[kTid], pos, raw.tid);
  SetString(cols_[kComm], pos, {raw.comm, raw.comm_len});
  SetString(cols_[kProcName], pos, {raw.proc_name, raw.proc_name_len});
  SetInt(cols_[kTimeEnter], pos, raw.time_enter);
  SetInt(cols_[kTimeExit], pos, raw.time_exit);
  SetInt(cols_[kDurationNs], pos, raw.time_exit - raw.time_enter);
  SetInt(cols_[kRet], pos, raw.ret);
  SetInt(cols_[kCpu], pos, raw.cpu);

  // Conditional fields — the exact WireEventToJson presence rules; a field
  // not written here stays kMissing, matching a document without the member.
  if (raw.fd >= 0 && desc.takes_fd) SetInt(cols_[kFd], pos, raw.fd);
  if (raw.path_len > 0) SetString(cols_[kPath], pos, {raw.path, raw.path_len});
  if (raw.path2_len > 0) {
    SetString(cols_[kPath2], pos, {raw.path2, raw.path2_len});
  }
  if (raw.xattr_len > 0) {
    SetString(cols_[kXattrName], pos, {raw.xattr_name, raw.xattr_len});
  }
  if (desc.data_related || raw.count > 0) {
    SetInt(cols_[kCount], pos, static_cast<std::int64_t>(raw.count));
  }
  if (raw.arg_offset >= 0) SetInt(cols_[kArgOffset], pos, raw.arg_offset);
  if (raw.whence >= 0) SetInt(cols_[kWhence], pos, raw.whence);
  if (raw.flags != 0) SetInt(cols_[kFlags], pos, raw.flags);
  if (raw.mode != 0) SetInt(cols_[kMode], pos, raw.mode);
  if (raw.file_type != static_cast<std::uint8_t>(os::FileType::kUnknown)) {
    SetString(cols_[kFileType], pos,
              os::FileTypeName(static_cast<os::FileType>(raw.file_type)));
  }
  if (raw.file_offset >= 0) SetInt(cols_[kFileOffset], pos, raw.file_offset);
  if (raw.tag_valid != 0) {
    tracer::FileTag tag;
    tag.valid = true;
    tag.dev = raw.tag_dev;
    tag.ino = raw.tag_ino;
    tag.first_access_ts = raw.tag_ts;
    SetString(cols_[kFileTag], pos, tag.ToKey());
    SetInt(cols_[kTagDev], pos, static_cast<std::int64_t>(raw.tag_dev));
    SetInt(cols_[kTagIno], pos, static_cast<std::int64_t>(raw.tag_ino));
    SetInt(cols_[kTagTs], pos, raw.tag_ts);
  }
  return pos;
}

Json MaterializeWireDoc(const ColumnSet& columns, std::size_t pos) {
  Json doc = Json::MakeObject();
  for (const std::string& field : WireDocFields()) {
    const DocValueColumn* col = columns.Find(field);
    if (col == nullptr || col->kinds.size() <= pos) continue;
    switch (col->kind(pos)) {
      case ValueKind::kInt:
        doc.Set(field, col->ints[pos]);
        break;
      case ValueKind::kString:
        doc.Set(field, std::string(col->str(pos)));
        break;
      case ValueKind::kDouble:
        doc.Set(field, col->dbls[pos]);
        break;
      case ValueKind::kBool:
        doc.Set(field, col->ints[pos] != 0);
        break;
      case ValueKind::kMissing:
      case ValueKind::kOther:  // never written by the typed appender
        break;
    }
  }
  return doc;
}

}  // namespace dio::backend
