#include "backend/bulk_client.h"

#include <utility>

#include "backend/correlation.h"

namespace dio::backend {

BulkClientOptions BulkClientOptions::FromConfig(const Config& config) {
  BulkClientOptions options;
  options.network_latency_ns = config.GetInt("transport.network_latency_ns",
                                             options.network_latency_ns);
  options.refresh_every_batches = static_cast<std::size_t>(
      config.GetInt("transport.refresh_every_batches",
                    static_cast<std::int64_t>(options.refresh_every_batches)));
  options.auto_correlate =
      config.GetBool("transport.auto_correlate", options.auto_correlate);
  return options;
}

BulkClient::BulkClient(ElasticStore* store, std::string index,
                       BulkClientOptions options, Clock* clock)
    : store_(store),
      index_(std::move(index)),
      options_(options),
      clock_(clock) {
  stats_.stage = "bulk";
}

Status BulkClient::Submit(transport::EventBatch batch) {
  if (batch.empty()) return Status::Ok();
  // Network hop to the backend server (virtual time under a ManualClock).
  clock_->SleepFor(options_.network_latency_ns);
  const std::size_t batch_events = batch.size();
  if (!batch.wire.empty()) {
    // Typed route: the wire records go to the store as-is; whether they
    // become columns directly or JSON documents is the store's
    // backend.typed_ingest decision. Any Event/document payload riding the
    // same batch still takes the JSON route below.
    store_->BulkWire(index_, batch.session, std::move(batch.wire));
    batch.wire.clear();
  }
  if (!batch.events.empty() || !batch.documents.empty()) {
    // Deferred materialization: binary events become JSON documents only
    // here, on the far side of the wire — never on a tracer drain loop.
    batch.Materialize();
    store_->Bulk(index_, std::move(batch.documents));
  }
  bool refresh = false;
  {
    std::scoped_lock lock(mu_);
    stats_.batches_in += 1;
    stats_.events_in += batch_events;
    stats_.batches_out += 1;
    stats_.events_out += batch_events;
    refresh = options_.refresh_every_batches > 0 &&
              stats_.batches_in % options_.refresh_every_batches == 0;
  }
  if (refresh) store_->Refresh(index_);
  return Status::Ok();
}

void BulkClient::Flush() {
  store_->Refresh(index_);
  if (options_.auto_correlate) {
    FilePathCorrelator correlator(store_);
    (void)correlator.Run(index_);
  }
}

void BulkClient::IndexBatch(std::vector<Json> documents) {
  if (documents.empty()) return;
  transport::EventBatch batch;
  batch.documents = std::move(documents);
  (void)Submit(std::move(batch));
}

void BulkClient::IndexEvents(std::string_view session,
                             std::vector<tracer::Event> events) {
  if (events.empty()) return;
  transport::EventBatch batch;
  batch.session = std::string(session);
  batch.events = std::move(events);
  (void)Submit(std::move(batch));
}

void BulkClient::CollectStats(
    std::vector<transport::StageStats>* out) const {
  std::scoped_lock lock(mu_);
  out->push_back(stats_);
}

}  // namespace dio::backend
