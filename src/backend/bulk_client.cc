#include "backend/bulk_client.h"

#include <chrono>

#include "backend/correlation.h"

namespace dio::backend {

BulkClient::BulkClient(ElasticStore* store, std::string index,
                       BulkClientOptions options, Clock* clock)
    : store_(store),
      index_(std::move(index)),
      options_(options),
      clock_(clock) {
  sender_ = std::jthread([this](std::stop_token st) { SenderLoop(st); });
}

BulkClient::~BulkClient() {
  Flush();
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // jthread requests stop and joins.
}

void BulkClient::IndexBatch(std::vector<Json> documents) {
  if (documents.empty()) return;
  Batch batch;
  batch.documents = std::move(documents);
  Enqueue(std::move(batch));
}

void BulkClient::IndexEvents(std::string_view session,
                             std::vector<tracer::Event> events) {
  if (events.empty()) return;
  Batch batch;
  batch.events = std::move(events);
  batch.session = std::string(session);
  Enqueue(std::move(batch));
}

void BulkClient::Enqueue(Batch batch) {
  std::unique_lock lock(mu_);
  queue_cv_.wait(lock, [this] {
    return queue_.size() < options_.max_queued_batches || stopping_;
  });
  if (stopping_) return;
  queue_.push_back(std::move(batch));
  queue_cv_.notify_all();
}

void BulkClient::Flush() {
  {
    std::unique_lock lock(mu_);
    drained_cv_.wait(lock, [this] { return queue_.empty() && !sending_; });
  }
  store_->Refresh(index_);
  if (options_.auto_correlate) {
    FilePathCorrelator correlator(store_);
    (void)correlator.Run(index_);
  }
}

void BulkClient::SenderLoop(const std::stop_token& stop) {
  while (true) {
    Batch batch;
    {
      std::unique_lock lock(mu_);
      queue_cv_.wait(lock, [this, &stop] {
        return !queue_.empty() || stop.stop_requested() || stopping_;
      });
      if (queue_.empty()) {
        if (stop.stop_requested() || stopping_) return;
        continue;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      sending_ = true;
      queue_cv_.notify_all();
    }
    // Network hop to the backend server.
    if (options_.network_latency_ns > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.network_latency_ns));
    }
    // Deferred materialization: binary events become JSON documents only
    // here, on the sender thread — the "backend side" of the wire.
    std::vector<Json> documents = std::move(batch.documents);
    if (!batch.events.empty()) {
      documents.reserve(documents.size() + batch.events.size());
      for (const tracer::Event& event : batch.events) {
        documents.push_back(event.ToJson(batch.session));
      }
    }
    store_->Bulk(index_, std::move(documents));
    bool refresh = false;
    {
      std::scoped_lock lock(mu_);
      ++batches_sent_;
      sending_ = false;
      refresh = options_.refresh_every_batches > 0 &&
                batches_sent_ % options_.refresh_every_batches == 0;
      if (queue_.empty()) drained_cv_.notify_all();
    }
    if (refresh) store_->Refresh(index_);
  }
}

}  // namespace dio::backend
