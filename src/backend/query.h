// Query AST for the document store — the subset of the Elasticsearch DSL
// that DIO's analysis pipeline relies on: term / terms / range / prefix /
// exists / match_all composed with bool (must / must_not / should).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

namespace dio::backend {

class Query {
 public:
  enum class Type {
    kMatchAll,
    kTerm,
    kTerms,
    kRange,
    kPrefix,
    kExists,
    kAnd,   // bool.must
    kOr,    // bool.should (minimum_should_match: 1)
    kNot,   // bool.must_not
  };

  static Query MatchAll();
  static Query Term(std::string field, Json value);
  static Query Terms(std::string field, std::vector<Json> values);
  // Numeric range; unset bounds are open.
  static Query Range(std::string field, std::optional<std::int64_t> gte,
                     std::optional<std::int64_t> lte);
  static Query Prefix(std::string field, std::string prefix);
  static Query Exists(std::string field);
  static Query And(std::vector<Query> clauses);
  static Query Or(std::vector<Query> clauses);
  static Query Not(Query clause);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] const std::vector<Json>& values() const { return values_; }
  [[nodiscard]] const std::optional<std::int64_t>& gte() const { return gte_; }
  [[nodiscard]] const std::optional<std::int64_t>& lte() const { return lte_; }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] const std::vector<Query>& clauses() const { return clauses_; }

  // Parses the Elasticsearch query DSL subset:
  //   {"match_all": {}}
  //   {"term":   {"field": <value>}}
  //   {"terms":  {"field": [<values>...]}}
  //   {"range":  {"field": {"gte": n, "lte": n}}}
  //   {"prefix": {"field": "p"}}
  //   {"exists": {"field": "name"}}
  //   {"bool":   {"must": [...], "should": [...], "must_not": [...]}}
  static Expected<Query> FromJson(const Json& dsl);
  static Expected<Query> FromJsonText(std::string_view text);

  // Evaluates the query against a document (authoritative check; index
  // lookups are an optimization that must agree with this).
  [[nodiscard]] bool Matches(const Json& doc) const;

  // Human-readable form for logging / debugging.
  [[nodiscard]] std::string ToString() const;

 private:
  explicit Query(Type type) : type_(type) {}

  Type type_ = Type::kMatchAll;
  std::string field_;
  std::vector<Json> values_;
  std::optional<std::int64_t> gte_;
  std::optional<std::int64_t> lte_;
  std::string prefix_;
  std::vector<Query> clauses_;
};

}  // namespace dio::backend
