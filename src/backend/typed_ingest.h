// Typed bulk ingest: WireEvent -> doc-value columns, no JSON middleman.
//
// The JSON route builds one Json tree per event (Event::ToJson), ships it
// through the pipeline, parses it back into postings + columns at Refresh,
// and keeps the tree alive as the row store. The typed route cuts all of
// that out: the tracer ships raw WireEvent records, and at Refresh a
// WireColumnAppender writes each field straight into the sub-shard's
// DocValueColumn cells — one dictionary intern or int64 store per field,
// zero allocations per event on the common path.
//
// The contract that makes this safe is *field-for-field equivalence with
// Event::ToJson*: the appender replicates its presence conditions (fd only
// when the syscall takes one, flags only when non-zero, ...) and value
// encodings exactly, so MaterializeWireDoc() can rebuild the byte-identical
// JSON document from the columns whenever a row-oriented view is needed
// (search hits, spool/save, update-by-query). Every wire-document field is a
// scalar, so the columns are a lossless encoding of the document.
// `backend.typed_ingest=false` keeps the JSON route as the parity oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "backend/doc_values.h"
#include "common/json.h"
#include "tracer/event.h"

namespace dio::backend {

// The wire-document fields, in Event::ToJson insertion order. This is the
// member order of every document either ingest route produces; materializing
// a typed row walks it so rebuilt documents serialize byte-identically.
const std::vector<std::string>& WireDocFields();

// Appends typed rows to one sub-shard's ColumnSet. Column pointers are
// resolved once at construction (std::map nodes don't move), so Append is
// pure array stores plus dictionary interning — call FinishBatch on the
// ColumnSet afterwards, as with AppendDoc.
class WireColumnAppender {
 public:
  explicit WireColumnAppender(ColumnSet* columns);

  // Claims the next slot and writes the record's fields. Mirrors
  // tracer::WireEventToJson field for field; returns the slot position.
  std::size_t Append(const tracer::WireEvent& raw, std::string_view session);

 private:
  void SetInt(DocValueColumn* col, std::size_t pos, std::int64_t v);
  void SetString(DocValueColumn* col, std::size_t pos, std::string_view s);

  ColumnSet* columns_;
  // One cached column per canonical field, in WireDocFields() order.
  std::vector<DocValueColumn*> cols_;
  std::string scratch_;  // dictionary-lookup key buffer (reused, no allocs)
};

// Rebuilds the JSON document of a typed row from the columns. For rows
// written by WireColumnAppender the result is byte-identical to the
// WireEventToJson document the JSON route would have indexed.
Json MaterializeWireDoc(const ColumnSet& columns, std::size_t pos);

}  // namespace dio::backend
