// Columnar doc-values for the ElasticStore query engine.
//
// At Refresh each SubShard materializes, next to its row-oriented `Json`
// documents, one typed column per field (Lucene doc-values shape): a kind
// byte per document slot plus parallel int64/double arrays and a string
// dictionary with lexicographic ranks. Query evaluation, sorting, and
// aggregation then read flat arrays instead of calling `Json::Find` per
// document per field — the difference between dashboard-rate analytics and
// a per-document tree walk.
//
// Three pieces live here:
//   * ColumnSet / DocValueColumn — the per-sub-shard column storage,
//     append-only in docid order (rebuilt wholesale after update-by-query).
//   * CompiledQuery — a Query tree resolved against one ColumnSet: column
//     pointers looked up once, string terms translated to dictionary
//     ordinals, prefix predicates to rank ranges. `Matches(pos)` is the
//     column-aware replica of `Query::Matches(doc)` and must agree with it
//     bit-for-bit (the serial JSON engine stays the parity oracle).
//   * FilterBitmap / FilterBitmapCache — dense per-shard match bitmaps for
//     scan-path predicates (exists / must_not / bool trees with no indexable
//     clause), cached per query text and invalidated on every visibility
//     change, in the spirit of Lucene's cached filter bitsets.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backend/query.h"
#include "common/json.h"

namespace dio::backend {

// Per-slot value kind. kOther covers the non-scalar shapes (null members,
// arrays, objects) that keep their JSON fallback; everything else is fully
// decoded into the columns.
enum class ValueKind : std::uint8_t {
  kMissing = 0,  // field absent from the document
  kInt,
  kDouble,
  kString,
  kBool,
  kOther,
};

struct DocValueColumn {
  // One entry per document slot (docid / stride), in slot order.
  std::vector<std::uint8_t> kinds;
  // kInt/kDouble: Json::as_int(); kString: dictionary ordinal; kBool: 0/1.
  std::vector<std::int64_t> ints;
  // Numbers only: Json::as_double() (drives term equality across numeric
  // types and sort comparisons, exactly like the JSON comparator).
  std::vector<double> dbls;

  // String dictionary. Ordinals are assigned in first-seen order so
  // incremental refresh never reshuffles existing slots; sorted_rank maps
  // ordinal -> lexicographic rank so a prefix predicate is an O(1) rank
  // range test per document.
  std::vector<std::string> dict;
  std::unordered_map<std::string, std::uint32_t> dict_lookup;
  std::vector<std::uint32_t> sorted_rank;  // ordinal -> rank
  std::vector<std::uint32_t> rank_to_ord;  // rank -> ordinal
  bool ranks_dirty = false;

  // Pads the parallel arrays with kMissing slots up to `slots` entries.
  void EnsureSlots(std::size_t slots) {
    if (kinds.size() >= slots) return;
    kinds.resize(slots, static_cast<std::uint8_t>(ValueKind::kMissing));
    ints.resize(slots, 0);
    dbls.resize(slots, 0.0);
  }

  [[nodiscard]] ValueKind kind(std::size_t pos) const {
    return static_cast<ValueKind>(kinds[pos]);
  }
  [[nodiscard]] bool is_number(std::size_t pos) const {
    return kind(pos) == ValueKind::kInt || kind(pos) == ValueKind::kDouble;
  }
  [[nodiscard]] std::string_view str(std::size_t pos) const {
    return dict[static_cast<std::size_t>(ints[pos])];
  }
  // Lexicographic rank range [lo, hi) of dictionary entries starting with
  // `prefix`.
  void PrefixRankRange(std::string_view prefix, std::uint32_t* lo,
                       std::uint32_t* hi) const;
};

class ColumnSet {
 public:
  // Appends one document slot (in docid order). Fields absent from this
  // document stay kMissing; fields first seen now are backfilled kMissing
  // for all earlier slots.
  void AppendDoc(const Json& doc);
  // Pads every column to the current slot count and rebuilds the
  // lexicographic ranks of dictionaries that grew. Call after a batch of
  // AppendDoc()s, before the columns become visible to queries.
  void FinishBatch();
  void Clear();

  // Typed-ingest append path (backend/typed_ingest.cc): claims the next
  // document slot without reading any Json. The appender then writes field
  // values directly into TypedColumn() cells; untouched columns are padded
  // kMissing by the next FinishBatch, exactly like a Json row that lacked
  // the field.
  std::size_t BeginTypedRow() { return num_docs_++; }
  // The named column, created empty on first use. References stay stable
  // across later insertions (std::map nodes don't move).
  DocValueColumn& TypedColumn(const std::string& field) {
    return columns_[field];
  }

  // Rewrites one existing slot from `doc` (update-by-query over a shard that
  // holds typed rows): every column's cell at `pos` is reset to kMissing,
  // then the document's members are re-decoded in place. Dictionaries only
  // grow; call FinishBatch afterwards to refresh ranks.
  void ReplaceRow(std::size_t pos, const Json& doc);

  [[nodiscard]] std::size_t num_docs() const { return num_docs_; }
  [[nodiscard]] std::size_t num_fields() const { return columns_.size(); }
  [[nodiscard]] const DocValueColumn* Find(std::string_view field) const;
  template <typename Fn>
  void ForEachField(Fn&& fn) const {
    for (const auto& [field, col] : columns_) fn(field);
  }

 private:
  void DecodeMember(DocValueColumn& col, std::size_t pos, const Json& value);

  std::map<std::string, DocValueColumn, std::less<>> columns_;
  std::size_t num_docs_ = 0;
};

// Dense bitmap over the document slots of one sub-shard.
class FilterBitmap {
 public:
  FilterBitmap() = default;
  FilterBitmap(std::size_t bits, bool value);

  [[nodiscard]] std::size_t bits() const { return bits_; }
  void Set(std::size_t pos) { words_[pos >> 6] |= 1ULL << (pos & 63); }
  [[nodiscard]] bool Test(std::size_t pos) const {
    return (words_[pos >> 6] >> (pos & 63)) & 1ULL;
  }

  void AndWith(const FilterBitmap& other);
  void OrWith(const FilterBitmap& other);
  void Negate();  // complement, with the tail bits past bits() kept zero

  // Raw word storage for the simd mask kernels (bits() bits, tail zero).
  [[nodiscard]] std::span<std::uint64_t> words() { return words_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

  [[nodiscard]] std::size_t CountSet() const;
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn((w << 6) + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

// Per-segment cache of scan-path predicate bitmaps, keyed by the
// predicate's ToString form. A cached bitmap covers exactly the rows of the
// segment it belongs to, so it stays valid for as long as those rows do:
// sealed segments keep their entries across refreshes, the growing tail's
// cache is replaced on every refresh, and update-by-query clears only the
// caches of segments whose rows it rewrote. Entries evict in LRU order once
// `capacity` is reached (capacity 0 disables caching entirely — the
// drop-all-caches parity twin). Hit/miss/eviction counts feed IndexStats.
class FilterBitmapCache {
 public:
  static constexpr std::size_t kDefaultEntries = 128;

  explicit FilterBitmapCache(std::size_t capacity = kDefaultEntries)
      : capacity_(capacity) {}

  [[nodiscard]] std::shared_ptr<const FilterBitmap> Lookup(
      const std::string& key) const;
  void Insert(const std::string& key, FilterBitmap bitmap);
  void Clear();
  // Adopts another cache's traffic counters. A refresh replaces the growing
  // tail's cache with a fresh one; carrying the old counters over keeps the
  // store's cumulative hit/miss stats from going backwards.
  void CarryCountersFrom(const FilterBitmapCache& other);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const FilterBitmap> bitmap;
    std::uint64_t last_used = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  mutable std::uint64_t tick_ = 0;
  mutable std::unordered_map<std::string, Entry> entries_;
};

// A Query resolved against one sub-shard's columns. The compiled tree owns
// no documents: `query` and `columns` must outlive it (both are pinned by
// the store's refresh lock for the duration of a request).
class CompiledQuery {
 public:
  CompiledQuery(const Query& query, const ColumnSet& columns);

  // Column-aware replica of query.Matches(doc): reads the columns for every
  // scalar value and falls back to `doc` only for kOther slots. Must return
  // exactly what the JSON oracle returns.
  [[nodiscard]] bool Matches(std::size_t pos, const Json& doc) const;

  // Scan-path evaluation: the match bitmap over all `docs` slots, built
  // from cached per-predicate bitmaps where possible. Equivalent to calling
  // Matches(pos, docs[pos]) for every slot.
  [[nodiscard]] FilterBitmap Eval(std::span<const Json> docs,
                                  FilterBitmapCache* cache) const;

 private:
  struct TermValue {
    ValueKind kind = ValueKind::kOther;
    std::int64_t i = 0;        // int value, or 0/1 for bools
    double d = 0.0;            // as_double() for numbers
    std::uint32_t ord = 0;     // dictionary ordinal for strings...
    bool ord_resolved = false;  // ...when the term exists in this shard
    const Json* raw = nullptr;  // the original query value (kOther fallback)
  };

  struct Node {
    const Query* query = nullptr;
    const DocValueColumn* col = nullptr;
    std::vector<TermValue> values;          // kTerm / kTerms
    std::uint32_t prefix_lo = 0;            // kPrefix rank range
    std::uint32_t prefix_hi = 0;
    std::vector<Node> children;

    [[nodiscard]] bool IsLeaf() const {
      const Query::Type t = query->type();
      return t != Query::Type::kAnd && t != Query::Type::kOr &&
             t != Query::Type::kNot;
    }
  };

  static Node Compile(const Query& query, const ColumnSet& columns);
  static bool MatchesNode(const Node& node, std::size_t pos, const Json& doc);
  static FilterBitmap EvalNode(const Node& node, std::span<const Json> docs,
                               FilterBitmapCache* cache);
  // Vectorized leaf evaluation (backend/simd_kernels.h): fills `out` for the
  // predicate shapes the kernels cover (numeric ranges, exists, string/bool
  // term lists) and returns true; returns false when the leaf needs the
  // scalar per-row loop (prefix ranks, numeric terms, kOther fallbacks).
  static bool EvalLeafKernel(const Node& node, std::size_t n,
                             FilterBitmap* out);

  Node root_;
};

// One field's values gathered for a matched result set, one entry per row in
// docid order. This is what the streaming columnar aggregation path consumes
// instead of calling Json::Find per document.
struct ColumnSlice {
  std::vector<std::uint8_t> kinds;       // ValueKind per row
  std::vector<std::int64_t> ints;        // kInt: value; kBool: 0/1
  std::vector<double> dbls;              // numbers: Json::as_double()
  std::vector<std::string_view> strs;    // kString: view into a shard dict
  std::vector<const Json*> raws;         // kOther: the member Json

  [[nodiscard]] ValueKind kind(std::size_t row) const {
    return static_cast<ValueKind>(kinds[row]);
  }
  [[nodiscard]] bool is_number(std::size_t row) const {
    return kind(row) == ValueKind::kInt || kind(row) == ValueKind::kDouble;
  }
};

// Columnar view of a matched result set, handed by the store to
// Aggregation::ExecuteColumnar. Slices are gathered lazily per field and
// cached for the lifetime of the source (one aggregation tree), so nested
// sub-aggregations over the same field gather once. Not thread-safe: one
// aggregation executes on one thread.
class AggSource {
 public:
  virtual ~AggSource() = default;
  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual const ColumnSlice& Slice(
      const std::string& field) const = 0;
};

}  // namespace dio::backend
