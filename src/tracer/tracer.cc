#include "tracer/tracer.h"

#include <algorithm>
#include <charconv>
#include <unordered_map>

#include "common/logging.h"

namespace dio::tracer {

namespace {

// (dev, ino) -> 64-bit map key. Device numbers are small; inode numbers in
// our substrate are dense and well below 2^40.
std::uint64_t TagKey(os::DeviceNum dev, os::InodeNum ino) {
  return (static_cast<std::uint64_t>(dev) << 40) ^ ino;
}

// Busy-wait standing in for modeled fixed instrumentation cost.
void SpinFor(Clock* clock, Nanos duration) {
  if (duration <= 0) return;
  const Nanos deadline = clock->NowNanos() + duration;
  while (clock->NowNanos() < deadline) {
  }
}

template <typename T>
std::vector<T> ParseIntList(const std::vector<std::string>& items) {
  std::vector<T> out;
  for (const std::string& item : items) {
    T value{};
    auto [ptr, ec] =
        std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec == std::errc() && ptr == item.data() + item.size()) {
      out.push_back(value);
    }
  }
  return out;
}

}  // namespace

Expected<TracerOptions> TracerOptions::FromConfig(const Config& config) {
  (void)WarnUnknownKeys(
      config, "tracer",
      {"session", "syscalls", "pids", "tids", "paths", "ring_bytes_per_cpu",
       "pending_map_entries", "batch_size", "flush_interval_ns",
       "poll_interval_ns", "consumer_threads", "enrich",
       "aggregate_in_kernel", "kernel_filtering", "hook_cost_ns"});
  TracerOptions options;
  options.session_name =
      config.GetString("tracer.session", options.session_name);
  options.syscalls = config.GetList("tracer.syscalls");
  for (const std::string& name : options.syscalls) {
    if (!os::SyscallFromName(name).has_value()) {
      return InvalidArgument("unknown syscall in config: " + name);
    }
  }
  options.pids = ParseIntList<os::Pid>(config.GetList("tracer.pids"));
  options.tids = ParseIntList<os::Tid>(config.GetList("tracer.tids"));
  options.paths = config.GetList("tracer.paths");
  options.ring_bytes_per_cpu = static_cast<std::size_t>(config.GetInt(
      "tracer.ring_bytes_per_cpu",
      static_cast<std::int64_t>(options.ring_bytes_per_cpu)));
  options.pending_map_entries = static_cast<std::size_t>(config.GetInt(
      "tracer.pending_map_entries",
      static_cast<std::int64_t>(options.pending_map_entries)));
  options.batch_size = static_cast<std::size_t>(config.GetInt(
      "tracer.batch_size", static_cast<std::int64_t>(options.batch_size)));
  options.flush_interval_ns =
      config.GetInt("tracer.flush_interval_ns", options.flush_interval_ns);
  options.poll_interval_ns =
      config.GetInt("tracer.poll_interval_ns", options.poll_interval_ns);
  options.consumer_threads = static_cast<std::size_t>(
      config.GetInt("tracer.consumer_threads",
                    static_cast<std::int64_t>(options.consumer_threads)));
  options.enrich = config.GetBool("tracer.enrich", options.enrich);
  options.aggregate_in_kernel = config.GetBool(
      "tracer.aggregate_in_kernel", options.aggregate_in_kernel);
  options.kernel_filtering =
      config.GetBool("tracer.kernel_filtering", options.kernel_filtering);
  options.hook_cost_ns =
      config.GetInt("tracer.hook_cost_ns", options.hook_cost_ns);
  return options;
}

DioTracer::DioTracer(os::Kernel* kernel, EventSink* sink,
                     TracerOptions options)
    : kernel_(kernel),
      sink_(sink),
      options_(std::move(options)),
      filters_([&] {
        FilterConfig fc;
        for (const std::string& name : options_.syscalls) {
          if (auto nr = os::SyscallFromName(name)) fc.syscalls.insert(*nr);
        }
        fc.pids.insert(options_.pids.begin(), options_.pids.end());
        fc.tids.insert(options_.tids.begin(), options_.tids.end());
        fc.path_prefixes = options_.paths;
        return fc;
      }()),
      pending_(options_.pending_map_entries),
      first_access_(options_.first_access_map_entries),
      fd_tags_(options_.first_access_map_entries),
      rings_(kernel->num_cpus(), options_.ring_bytes_per_cpu) {
  if (filters_.config().syscalls.empty()) {
    for (const os::SyscallDescriptor& desc : os::SyscallTable()) {
      enabled_.insert(desc.nr);
    }
  } else {
    enabled_ = filters_.config().syscalls;
  }
}

DioTracer::~DioTracer() { Stop(); }

Status DioTracer::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("tracer already started");
  }
  ebpf::BpfLoader loader(&kernel_->tracepoints());
  // "By default, DIO's tracer enables tracepoints for the full set of
  // supported syscalls. However, users can specify a list of syscalls to
  // observe, and the tracer will only activate tracepoints for those."
  for (os::SyscallNr nr : enabled_) {
    ebpf::ProgramSpec enter_spec;
    enter_spec.name = "dio_enter";
    enter_spec.type = ebpf::ProgramType::kTracepointSysEnter;
    enter_spec.syscall = nr;
    auto enter_link = loader.AttachSysEnter(
        enter_spec, [this](const os::SysEnterContext& ctx) { OnEnter(ctx); });
    if (!enter_link.ok()) return enter_link.status();
    links_.push_back(std::move(enter_link.value()));

    ebpf::ProgramSpec exit_spec;
    exit_spec.name = "dio_exit";
    exit_spec.type = ebpf::ProgramType::kTracepointSysExit;
    exit_spec.syscall = nr;
    auto exit_link = loader.AttachSysExit(
        exit_spec, [this](const os::SysExitContext& ctx) { OnExit(ctx); });
    if (!exit_link.ok()) return exit_link.status();
    links_.push_back(std::move(exit_link.value()));
  }
  const std::size_t num_workers = ResolveConsumerThreads();
  consumers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    consumers_.emplace_back([this, w, num_workers](std::stop_token st) {
      ConsumerLoop(st, w, num_workers);
    });
  }
  return Status::Ok();
}

std::size_t DioTracer::ResolveConsumerThreads() const {
  std::size_t n = options_.consumer_threads;
  if (n == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    n = std::min<std::size_t>(
        static_cast<std::size_t>(kernel_->num_cpus()), hw);
  }
  // More workers than rings would leave threads idle; fewer than one is
  // meaningless.
  return std::clamp<std::size_t>(
      n, 1, static_cast<std::size_t>(kernel_->num_cpus()));
}

void DioTracer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Deterministic drain order: detach first so no new events are produced,
  // join the consumers so every ring record has been decoded and emitted,
  // and only then flush the sink — for a transport pipeline that drains its
  // queues into the terminal sinks, so nothing in flight is abandoned.
  for (ebpf::BpfLink& link : links_) link.Detach();
  links_.clear();
  for (std::jthread& consumer : consumers_) consumer.request_stop();
  for (std::jthread& consumer : consumers_) {
    if (consumer.joinable()) consumer.join();
  }
  consumers_.clear();
  sink_->Flush();
}

bool DioTracer::PassesFilters(os::Pid pid, os::Tid tid,
                              std::string_view path) const {
  if (!filters_.MatchTask(pid, tid)) return false;
  if (filters_.has_path_filter() && !filters_.MatchPath(path)) return false;
  return true;
}

void DioTracer::OnEnter(const os::SysEnterContext& ctx) {
  enter_hits_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(kernel_->clock(), options_.hook_cost_ns / 2);

  const os::SyscallDescriptor& desc = os::Describe(ctx.nr);

  // Snapshot the fd's kernel state at entry: for data syscalls the offset
  // must be read *before* the kernel advances it.
  PendingEntry entry;
  entry.enter_ts = ctx.timestamp;
  entry.args = *ctx.args;
  entry.comm = std::string(ctx.comm);
  if (desc.takes_fd) {
    if (auto view = ctx.kernel->LookupFd(ctx.pid, ctx.args->fd)) {
      entry.fd_view = std::move(*view);
      entry.have_fd_view = true;
    }
  } else if (desc.takes_path) {
    if (auto view = ctx.kernel->ResolvePath(ctx.args->path)) {
      entry.path_view = *view;
      entry.have_path_view = true;
    }
  }

  if (options_.kernel_filtering) {
    std::string_view path = entry.have_fd_view
                                ? std::string_view(entry.fd_view.path)
                                : std::string_view(ctx.args->path);
    if (!PassesFilters(ctx.pid, ctx.tid, path)) {
      filtered_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  if (!options_.aggregate_in_kernel) {
    EmitEnterHalf(ctx, entry);
    return;
  }
  if (!pending_.Update(ctx.tid, std::move(entry))) {
    pending_overflow_.fetch_add(1, std::memory_order_relaxed);
  }
}

// Ablation A4 (aggregate_in_kernel = false): ship the raw enter record.
// Enrichment is limited to entry-time kernel state — open/creat tags (which
// need the returned fd) and close-time tag retirement are unavailable,
// which is part of why DIO aggregates in kernel space.
void DioTracer::EmitEnterHalf(const os::SysEnterContext& ctx,
                              const PendingEntry& entry) {
  Event event;
  event.phase = EventPhase::kEnter;
  event.nr = ctx.nr;
  event.pid = ctx.pid;
  event.tid = ctx.tid;
  event.comm = entry.comm;
  if (auto name = ctx.kernel->ProcessName(ctx.pid)) {
    event.proc_name = std::move(*name);
  }
  event.time_enter = entry.enter_ts;
  event.cpu = ctx.kernel->cpu_of(ctx.tid);
  event.fd = entry.args.fd;
  event.path = entry.args.path;
  event.path2 = entry.args.path2;
  event.xattr_name = entry.args.name;
  event.count = entry.args.count;
  event.arg_offset = entry.args.offset;
  event.whence = entry.args.whence;
  event.flags = entry.args.flags;
  event.mode = entry.args.mode;
  if (options_.enrich) {
    const os::SyscallDescriptor& desc = os::Describe(ctx.nr);
    if (desc.takes_fd && entry.have_fd_view) {
      event.file_type = entry.fd_view.type;
      if (desc.data_related) {
        event.file_offset = static_cast<std::int64_t>(entry.fd_view.offset);
      }
      const std::uint64_t key =
          TagKey(entry.fd_view.dev, entry.fd_view.ino);
      first_access_.Insert(key, entry.enter_ts);
      if (auto ts = first_access_.Lookup(key)) {
        event.tag.valid = true;
        event.tag.dev = entry.fd_view.dev;
        event.tag.ino = entry.fd_view.ino;
        event.tag.first_access_ts = *ts;
      }
    } else if (desc.takes_path && entry.have_path_view) {
      event.file_type = entry.path_view.type;
    }
  }
  std::vector<std::byte> wire;
  SerializeEvent(event, &wire);
  rings_.Output(event.cpu, wire);
}

void DioTracer::EmitExitHalf(const os::SysExitContext& ctx) {
  Event event;
  event.phase = EventPhase::kExit;
  event.nr = ctx.nr;
  event.pid = ctx.pid;
  event.tid = ctx.tid;
  event.time_exit = ctx.timestamp;
  event.ret = ctx.ret;
  event.cpu = ctx.kernel->cpu_of(ctx.tid);
  std::vector<std::byte> wire;
  SerializeEvent(event, &wire);
  rings_.Output(event.cpu, wire);
}

void DioTracer::Enrich(Event* event, const PendingEntry& entry,
                       const os::SysExitContext& ctx) {
  const os::SyscallDescriptor& desc = os::Describe(event->nr);

  // File type + file tag for fd-handling syscalls. open/openat/creat return
  // the fd, so their kernel state is read at exit via the return value; the
  // resolved tag is remembered per (pid, fd) so later syscalls on the fd —
  // including a close after the file was unlinked — report the tag of the
  // file generation the fd was opened against (Fig. 2a).
  const auto resolve_tag = [this](os::DeviceNum dev, os::InodeNum ino,
                                  Nanos enter_ts) {
    const std::uint64_t key = TagKey(dev, ino);
    // First-access timestamp: insert-if-absent, then read. Disambiguates
    // recycled inode numbers (§III-B).
    first_access_.Insert(key, enter_ts);
    FileTag tag;
    if (auto ts = first_access_.Lookup(key)) {
      tag.valid = true;
      tag.dev = dev;
      tag.ino = ino;
      tag.first_access_ts = *ts;
    }
    return tag;
  };
  const auto fd_key = [](os::Pid pid, os::Fd fd) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid))
            << 32) |
           static_cast<std::uint32_t>(fd);
  };

  if ((event->nr == os::SyscallNr::kOpen ||
       event->nr == os::SyscallNr::kOpenat ||
       event->nr == os::SyscallNr::kCreat) &&
      ctx.ret >= 0) {
    if (auto view =
            ctx.kernel->LookupFd(ctx.pid, static_cast<os::Fd>(ctx.ret))) {
      event->file_type = view->type;
      event->tag = resolve_tag(view->dev, view->ino, entry.enter_ts);
      fd_tags_.Update(fd_key(ctx.pid, static_cast<os::Fd>(ctx.ret)),
                      event->tag);
    }
  } else if (desc.takes_fd) {
    // Prefer the tag resolved at open time; fall back to kernel state for
    // fds opened before tracing started.
    if (auto tag = fd_tags_.Lookup(fd_key(ctx.pid, entry.args.fd))) {
      event->tag = *tag;
      event->file_type = entry.have_fd_view ? entry.fd_view.type
                                            : event->file_type;
    } else if (entry.have_fd_view) {
      event->file_type = entry.fd_view.type;
      event->tag = resolve_tag(entry.fd_view.dev, entry.fd_view.ino,
                               entry.enter_ts);
      fd_tags_.Update(fd_key(ctx.pid, entry.args.fd), event->tag);
    }
    if (event->nr == os::SyscallNr::kClose && ctx.ret == 0) {
      fd_tags_.Delete(fd_key(ctx.pid, entry.args.fd));
    }
  } else if (desc.takes_path && entry.have_path_view) {
    // Path-based syscalls get the file type but no tag (the paper tags
    // "syscalls handling file descriptors").
    event->file_type = entry.path_view.type;
  }

  // File offset for data-related syscalls (§II-B): the position being
  // accessed, even for syscalls that do not carry it as an argument.
  if (desc.data_related) {
    switch (event->nr) {
      case os::SyscallNr::kPread64:
      case os::SyscallNr::kPwrite64:
        event->file_offset = entry.args.offset;
        break;
      case os::SyscallNr::kLseek:
        // The resulting position.
        if (ctx.ret >= 0) event->file_offset = ctx.ret;
        break;
      case os::SyscallNr::kRead:
      case os::SyscallNr::kReadv:
      case os::SyscallNr::kWrite:
      case os::SyscallNr::kWritev:
        if (entry.have_fd_view) {
          event->file_offset =
              static_cast<std::int64_t>(entry.fd_view.offset);
        }
        break;
      default:
        break;
    }
  }

  // A successful unlink retires the (dev, ino) first-access entry so a
  // recycled inode number gets a fresh tag timestamp.
  if ((event->nr == os::SyscallNr::kUnlink ||
       event->nr == os::SyscallNr::kUnlinkat) &&
      ctx.ret == 0 && entry.have_path_view) {
    first_access_.Delete(TagKey(entry.path_view.dev, entry.path_view.ino));
  }
}

void DioTracer::OnExit(const os::SysExitContext& ctx) {
  exit_hits_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(kernel_->clock(), options_.hook_cost_ns - options_.hook_cost_ns / 2);

  if (!options_.aggregate_in_kernel) {
    // In raw mode the exit passes filters implicitly: if the enter was
    // filtered the user-space pairer drops the orphan exit record.
    if (options_.kernel_filtering &&
        !filters_.MatchTask(ctx.pid, ctx.tid)) {
      return;
    }
    EmitExitHalf(ctx);
    return;
  }
  auto entry = pending_.Take(ctx.tid);
  if (!entry.has_value()) {
    // Filtered at entry, or the pending map was full.
    unmatched_exit_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  Event event;
  event.nr = ctx.nr;
  event.pid = ctx.pid;
  event.tid = ctx.tid;
  event.comm = std::move(entry->comm);
  if (auto name = ctx.kernel->ProcessName(ctx.pid)) {
    event.proc_name = std::move(*name);
  }
  event.time_enter = entry->enter_ts;
  event.time_exit = ctx.timestamp;
  event.ret = ctx.ret;
  event.cpu = ctx.kernel->cpu_of(ctx.tid);
  event.fd = entry->args.fd;
  event.path = entry->args.path;
  event.path2 = entry->args.path2;
  event.xattr_name = entry->args.name;
  event.count = entry->args.count;
  event.arg_offset = entry->args.offset;
  event.whence = entry->args.whence;
  event.flags = entry->args.flags;
  event.mode = entry->args.mode;

  if (options_.enrich) Enrich(&event, *entry, ctx);

  std::vector<std::byte> wire;
  SerializeEvent(event, &wire);
  rings_.Output(event.cpu, wire);  // drop counting lives in the ring
}

void DioTracer::ConsumerLoop(const std::stop_token& stop, std::size_t worker,
                             std::size_t num_workers) {
  std::vector<Event> batch;
  batch.reserve(options_.batch_size);
  Nanos last_flush = kernel_->clock()->NowNanos();
  // Raw-mode pairing state: tid -> pending enter half. Safe per worker:
  // cpu_of(tid) is stable, so both halves of a syscall land on the same
  // ring and therefore on the same consumer stripe.
  std::unordered_map<os::Tid, Event> half_events;

  const auto handle = [&](std::span<const std::byte> bytes) {
    // `consumed` counts every record drained from a ring, including the
    // ones that fail to decode — stats() keeps
    // consumed == emitted + user_filtered + decode_errors (+ any raw-mode
    // halves still being paired).
    consumed_.fetch_add(1, std::memory_order_relaxed);
    auto event = DeserializeEvent(bytes);
    if (!event.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (event->phase == EventPhase::kEnter) {
      half_events[event->tid] = std::move(event.value());
      return;
    }
    if (event->phase == EventPhase::kExit) {
      auto it = half_events.find(event->tid);
      if (it == half_events.end() || it->second.nr != event->nr) {
        unmatched_exit_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Event merged = std::move(it->second);
      half_events.erase(it);
      merged.phase = EventPhase::kFull;
      merged.time_exit = event->time_exit;
      merged.ret = event->ret;
      event = std::move(merged);
    }
    if (!options_.kernel_filtering) {
      std::string_view path = event->path.empty() && event->tag.valid
                                  ? std::string_view()
                                  : std::string_view(event->path);
      if (!PassesFilters(event->pid, event->tid, path)) {
        user_filtered_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    batch.push_back(std::move(event.value()));
    if (batch.size() >= options_.batch_size) FlushBatch(&batch);
  };

  const int num_cpus = rings_.num_cpus();
  while (true) {
    // Drain this worker's stripe of rings; each ring is drained by exactly
    // one worker (SPSC), in zero-copy batches.
    std::size_t n = 0;
    for (int cpu = static_cast<int>(worker); cpu < num_cpus;
         cpu += static_cast<int>(num_workers)) {
      n += rings_.DrainRing(cpu, handle, 4096);
    }
    const Nanos now = kernel_->clock()->NowNanos();
    if (!batch.empty() && now - last_flush >= options_.flush_interval_ns) {
      FlushBatch(&batch);
      last_flush = now;
    }
    if (n == 0) {
      if (stop.stop_requested()) break;  // drained after detach
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.poll_interval_ns));
    }
  }
  if (!batch.empty()) FlushBatch(&batch);
}

void DioTracer::FlushBatch(std::vector<Event>* batch) {
  if (batch->empty()) return;
  emitted_.fetch_add(batch->size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  sink_->IndexEvents(options_.session_name, std::move(*batch));
  batch->clear();
  batch->reserve(options_.batch_size);
}

TracerStats DioTracer::stats() const {
  TracerStats s;
  s.enter_hits = enter_hits_.load(std::memory_order_relaxed);
  s.exit_hits = exit_hits_.load(std::memory_order_relaxed);
  s.filtered_out = filtered_out_.load(std::memory_order_relaxed);
  s.pending_overflow = pending_overflow_.load(std::memory_order_relaxed);
  s.unmatched_exit = unmatched_exit_.load(std::memory_order_relaxed);
  s.ring_pushed = rings_.TotalPushed();
  s.ring_dropped = rings_.TotalDropped();
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.user_filtered = user_filtered_.load(std::memory_order_relaxed);
  s.emitted = emitted_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dio::tracer
