#include "tracer/tracer.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <span>
#include <unordered_map>

#include "common/logging.h"
#include "tracer/keys.h"

namespace dio::tracer {

namespace {

// Busy-wait standing in for modeled fixed instrumentation cost.
void SpinFor(Clock* clock, Nanos duration) {
  if (duration <= 0) return;
  const Nanos deadline = clock->NowNanos() + duration;
  while (clock->NowNanos() < deadline) {
  }
}

template <typename T>
std::vector<T> ParseIntList(const std::vector<std::string>& items) {
  std::vector<T> out;
  for (const std::string& item : items) {
    T value{};
    auto [ptr, ec] =
        std::from_chars(item.data(), item.data() + item.size(), value);
    if (ec == std::errc() && ptr == item.data() + item.size()) {
      out.push_back(value);
    }
  }
  return out;
}

}  // namespace

Expected<TracerOptions> TracerOptions::FromConfig(const Config& config) {
  (void)WarnUnknownKeys(
      config, "tracer",
      {"session", "syscalls", "pids", "tids", "paths", "ring_bytes_per_cpu",
       "pending_map_entries", "first_access_map_entries", "batch_size",
       "flush_interval_ns", "poll_interval_ns", "consumer_threads", "enrich",
       "aggregate_in_kernel", "kernel_filtering", "hook_cost_ns",
       "path_cap"});
  TracerOptions options;
  options.session_name =
      config.GetString("tracer.session", options.session_name);
  options.syscalls = config.GetList("tracer.syscalls");
  for (const std::string& name : options.syscalls) {
    if (!os::SyscallFromName(name).has_value()) {
      return InvalidArgument("unknown syscall in config: " + name);
    }
  }
  options.pids = ParseIntList<os::Pid>(config.GetList("tracer.pids"));
  options.tids = ParseIntList<os::Tid>(config.GetList("tracer.tids"));
  options.paths = config.GetList("tracer.paths");
  options.ring_bytes_per_cpu = static_cast<std::size_t>(config.GetInt(
      "tracer.ring_bytes_per_cpu",
      static_cast<std::int64_t>(options.ring_bytes_per_cpu)));
  options.pending_map_entries = static_cast<std::size_t>(config.GetInt(
      "tracer.pending_map_entries",
      static_cast<std::int64_t>(options.pending_map_entries)));
  options.first_access_map_entries = static_cast<std::size_t>(config.GetInt(
      "tracer.first_access_map_entries",
      static_cast<std::int64_t>(options.first_access_map_entries)));
  options.batch_size = static_cast<std::size_t>(config.GetInt(
      "tracer.batch_size", static_cast<std::int64_t>(options.batch_size)));
  options.flush_interval_ns =
      config.GetInt("tracer.flush_interval_ns", options.flush_interval_ns);
  options.poll_interval_ns =
      config.GetInt("tracer.poll_interval_ns", options.poll_interval_ns);
  options.consumer_threads = static_cast<std::size_t>(
      config.GetInt("tracer.consumer_threads",
                    static_cast<std::int64_t>(options.consumer_threads)));
  options.enrich = config.GetBool("tracer.enrich", options.enrich);
  options.aggregate_in_kernel = config.GetBool(
      "tracer.aggregate_in_kernel", options.aggregate_in_kernel);
  options.kernel_filtering =
      config.GetBool("tracer.kernel_filtering", options.kernel_filtering);
  options.hook_cost_ns =
      config.GetInt("tracer.hook_cost_ns", options.hook_cost_ns);
  // The wire record's path buffers are fixed at kWirePathCap; the knob can
  // only tighten the capture, not widen it.
  options.path_cap = std::min<std::size_t>(
      static_cast<std::size_t>(config.GetInt(
          "tracer.path_cap", static_cast<std::int64_t>(options.path_cap))),
      kWirePathCap);
  return options;
}

DioTracer::DioTracer(os::Kernel* kernel, EventSink* sink,
                     TracerOptions options)
    : kernel_(kernel),
      sink_(sink),
      options_(std::move(options)),
      filters_([&] {
        FilterConfig fc;
        for (const std::string& name : options_.syscalls) {
          if (auto nr = os::SyscallFromName(name)) fc.syscalls.insert(*nr);
        }
        fc.pids.insert(options_.pids.begin(), options_.pids.end());
        fc.tids.insert(options_.tids.begin(), options_.tids.end());
        fc.path_prefixes = options_.paths;
        return fc;
      }()),
      pending_(options_.pending_map_entries),
      first_access_(options_.first_access_map_entries),
      fd_tags_(options_.first_access_map_entries),
      rings_(kernel->num_cpus(), options_.ring_bytes_per_cpu) {
  if (filters_.config().syscalls.empty()) {
    for (const os::SyscallDescriptor& desc : os::SyscallTable()) {
      enabled_.insert(desc.nr);
    }
  } else {
    enabled_ = filters_.config().syscalls;
  }
}

DioTracer::~DioTracer() { Stop(); }

Status DioTracer::Start() {
  if (started_.exchange(true)) {
    return FailedPrecondition("tracer already started");
  }
  ebpf::BpfLoader loader(&kernel_->tracepoints());
  // "By default, DIO's tracer enables tracepoints for the full set of
  // supported syscalls. However, users can specify a list of syscalls to
  // observe, and the tracer will only activate tracepoints for those."
  for (os::SyscallNr nr : enabled_) {
    ebpf::ProgramSpec enter_spec;
    enter_spec.name = "dio_enter";
    enter_spec.type = ebpf::ProgramType::kTracepointSysEnter;
    enter_spec.syscall = nr;
    auto enter_link = loader.AttachSysEnter(
        enter_spec, [this](const os::SysEnterContext& ctx) { OnEnter(ctx); });
    if (!enter_link.ok()) return enter_link.status();
    links_.push_back(std::move(enter_link.value()));

    ebpf::ProgramSpec exit_spec;
    exit_spec.name = "dio_exit";
    exit_spec.type = ebpf::ProgramType::kTracepointSysExit;
    exit_spec.syscall = nr;
    auto exit_link = loader.AttachSysExit(
        exit_spec, [this](const os::SysExitContext& ctx) { OnExit(ctx); });
    if (!exit_link.ok()) return exit_link.status();
    links_.push_back(std::move(exit_link.value()));
  }
  const std::size_t num_workers = ResolveConsumerThreads();
  if (options_.manual_consumers) {
    manual_states_.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      auto state = std::make_unique<ConsumerState>();
      state->batch.reserve(options_.batch_size);
      state->wire.reserve(options_.batch_size);
      state->last_flush = kernel_->clock()->NowNanos();
      manual_states_.push_back(std::move(state));
    }
    return Status::Ok();
  }
  consumers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    consumers_.emplace_back([this, w, num_workers](std::stop_token st) {
      ConsumerLoop(st, w, num_workers);
    });
  }
  return Status::Ok();
}

std::size_t DioTracer::ResolveConsumerThreads() const {
  std::size_t n = options_.consumer_threads;
  if (n == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    n = std::min<std::size_t>(
        static_cast<std::size_t>(kernel_->num_cpus()), hw);
  }
  // More workers than rings would leave threads idle; fewer than one is
  // meaningless.
  return std::clamp<std::size_t>(
      n, 1, static_cast<std::size_t>(kernel_->num_cpus()));
}

void DioTracer::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Deterministic drain order: detach first so no new events are produced,
  // join the consumers so every ring record has been decoded and emitted,
  // and only then flush the sink — for a transport pipeline that drains its
  // queues into the terminal sinks, so nothing in flight is abandoned.
  for (ebpf::BpfLink& link : links_) link.Detach();
  links_.clear();
  for (std::jthread& consumer : consumers_) consumer.request_stop();
  for (std::jthread& consumer : consumers_) {
    if (consumer.joinable()) consumer.join();
  }
  consumers_.clear();
  if (!manual_states_.empty()) {
    // Manual mode: serial final drain, rounds until no worker moves, then
    // flush every worker's tail batch — the same everything-drained
    // guarantee the joined threads provide.
    const std::size_t num_workers = manual_states_.size();
    bool moved = true;
    while (moved) {
      moved = false;
      for (std::size_t w = 0; w < num_workers; ++w) {
        if (DrainStripeOnce(manual_states_[w].get(), w, num_workers) > 0) {
          moved = true;
        }
      }
    }
    for (auto& state : manual_states_) {
      FlushBatch(state.get());
    }
    manual_states_.clear();
  }
  sink_->Flush();
}

bool DioTracer::PassesFilters(os::Pid pid, os::Tid tid,
                              std::string_view path) const {
  if (!filters_.MatchTask(pid, tid)) return false;
  if (filters_.has_path_filter() && !filters_.MatchPath(path)) return false;
  return true;
}

void DioTracer::OnEnter(const os::SysEnterContext& ctx) {
  enter_hits_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(kernel_->clock(), options_.hook_cost_ns / 2);

  // The kernel-side task filter runs before anything else: a filtered event
  // must cost neither kernel-state snapshots nor string copies.
  if (options_.kernel_filtering && !filters_.MatchTask(ctx.pid, ctx.tid)) {
    filtered_out_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const os::SyscallDescriptor& desc = os::Describe(ctx.nr);
  const os::SyscallArgs& args = *ctx.args;

  // Snapshot the fd's kernel state at entry: for data syscalls the offset
  // must be read *before* the kernel advances it. The dentry path is only
  // ever consumed by the kernel-side path filter below, so its copy into
  // the stack buffer is skipped entirely when no path filter will read it.
  os::FdSnapshot fd_state;
  os::PathView path_view;
  bool have_fd_view = false;
  bool have_path_view = false;
  char fd_path[kWirePathCap];
  const bool want_fd_path =
      options_.kernel_filtering && filters_.has_path_filter();
  if (desc.takes_fd) {
    have_fd_view = ctx.kernel->SnapshotFd(
        ctx.pid, args.fd,
        want_fd_path ? std::span<char>(fd_path) : std::span<char>(),
        &fd_state);
  } else if (desc.takes_path) {
    if (auto view = ctx.kernel->ResolvePath(args.path)) {
      path_view = *view;
      have_path_view = true;
    }
  }

  if (want_fd_path) {
    const std::string_view path =
        have_fd_view ? std::string_view(fd_path, fd_state.path_len)
                     : std::string_view(args.path);
    if (!filters_.MatchPath(path)) {
      filtered_out_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Only filter survivors pay the string copies into the inline buffers.
  // The fill runs directly against the map node (UpdateWith), so the entry
  // is written exactly once — never staged on the stack and copied in. A
  // recycled node keeps stale bytes, so every field is assigned here.
  const std::size_t path_cap = std::min(options_.path_cap, kWirePathCap);
  const auto fill = [&](PendingEntry& entry) {
    entry.enter_ts = ctx.timestamp;
    entry.fd = args.fd;
    entry.count = args.count;
    entry.arg_offset = args.offset;
    entry.whence = args.whence;
    entry.flags = args.flags;
    entry.mode = args.mode;
    entry.have_fd_view = have_fd_view;
    entry.have_path_view = have_path_view;
    entry.fd_state = fd_state;
    entry.path_view = path_view;
    entry.comm_len = WireEvent::FillString(entry.comm, kWireCommCap, ctx.comm,
                                           &entry.comm_trunc);
    entry.path_len = WireEvent::FillString(entry.path, path_cap, args.path,
                                           &entry.path_trunc);
    entry.path2_len = WireEvent::FillString(entry.path2, path_cap, args.path2,
                                            &entry.path2_trunc);
    entry.xattr_len = WireEvent::FillString(entry.xattr_name, kWireXattrCap,
                                            args.name, &entry.xattr_trunc);
  };

  if (!options_.aggregate_in_kernel) {
    PendingEntry entry;
    fill(entry);
    EmitEnterHalf(ctx, entry);
    return;
  }
  if (!pending_.UpdateWith(ctx.tid, fill)) {
    pending_overflow_.fetch_add(1, std::memory_order_relaxed);
  }
}

// Copies the entry's scalars and inline strings into the reserved record.
// Per-site header fields (phase, nr, pid/tid/cpu, exit-side values,
// proc_name, enrichment) are the caller's job — every remaining field must
// be assigned explicitly rather than inherited from ring memory.
void DioTracer::FillWireFromEntry(WireEvent* out, const PendingEntry& entry) {
  out->time_enter = entry.enter_ts;
  out->count = entry.count;
  out->arg_offset = entry.arg_offset;
  out->fd = entry.fd;
  out->whence = entry.whence;
  out->flags = entry.flags;
  out->mode = entry.mode;
  out->comm_len = entry.comm_len;
  out->comm_trunc = entry.comm_trunc;
  out->path_len = entry.path_len;
  out->path_trunc = entry.path_trunc;
  out->path2_len = entry.path2_len;
  out->path2_trunc = entry.path2_trunc;
  out->xattr_len = entry.xattr_len;
  out->xattr_trunc = entry.xattr_trunc;
  if (entry.comm_len > 0) std::memcpy(out->comm, entry.comm, entry.comm_len);
  if (entry.path_len > 0) std::memcpy(out->path, entry.path, entry.path_len);
  if (entry.path2_len > 0) {
    std::memcpy(out->path2, entry.path2, entry.path2_len);
  }
  if (entry.xattr_len > 0) {
    std::memcpy(out->xattr_name, entry.xattr_name, entry.xattr_len);
  }
}

void DioTracer::AccountTruncation(const WireEvent& wire) {
  if (wire.truncated_bytes() == 0) return;  // common case: nothing cut
  if (wire.comm_trunc != 0) {
    trunc_comm_.fetch_add(wire.comm_trunc, std::memory_order_relaxed);
  }
  if (wire.proc_name_trunc != 0) {
    trunc_proc_name_.fetch_add(wire.proc_name_trunc,
                               std::memory_order_relaxed);
  }
  if (wire.path_trunc != 0) {
    trunc_path_.fetch_add(wire.path_trunc, std::memory_order_relaxed);
  }
  if (wire.path2_trunc != 0) {
    trunc_path2_.fetch_add(wire.path2_trunc, std::memory_order_relaxed);
  }
  if (wire.xattr_trunc != 0) {
    trunc_xattr_.fetch_add(wire.xattr_trunc, std::memory_order_relaxed);
  }
}

// Ablation A4 (aggregate_in_kernel = false): ship the raw enter record.
// Enrichment is limited to entry-time kernel state — open/creat tags (which
// need the returned fd) and close-time tag retirement are unavailable,
// which is part of why DIO aggregates in kernel space.
void DioTracer::EmitEnterHalf(const os::SysEnterContext& ctx,
                              const PendingEntry& entry) {
  const int cpu = ctx.kernel->cpu_of(ctx.tid);
  auto reservation = rings_.Reserve(cpu, sizeof(WireEvent));
  if (!reservation.valid()) {
    // Same rule as the aggregate path: a lost record must not lose the
    // first-access map update, or tag timestamps depend on ring pressure.
    if (options_.enrich) {
      const os::SyscallDescriptor& desc = os::Describe(ctx.nr);
      if (desc.takes_fd && entry.have_fd_view) {
        first_access_.Insert(TagKey(entry.fd_state.dev, entry.fd_state.ino),
                             entry.enter_ts);
      }
    }
    return;
  }
  auto* wire = reinterpret_cast<WireEvent*>(reservation.data());
  FillWireFromEntry(wire, entry);
  wire->phase = static_cast<std::uint8_t>(EventPhase::kEnter);
  wire->nr = static_cast<std::uint8_t>(ctx.nr);
  wire->pid = ctx.pid;
  wire->tid = ctx.tid;
  wire->cpu = cpu;
  wire->time_exit = 0;
  wire->ret = 0;
  wire->file_offset = -1;
  wire->file_type = static_cast<std::uint8_t>(os::FileType::kUnknown);
  wire->tag_valid = 0;
  wire->tag_dev = 0;
  wire->tag_ino = 0;
  wire->tag_ts = 0;
  const std::size_t name_full = ctx.kernel->CopyProcessName(
      ctx.pid, std::span<char>(wire->proc_name, kWireCommCap));
  const std::size_t name_copied = std::min(name_full, kWireCommCap);
  wire->proc_name_len = static_cast<std::uint16_t>(name_copied);
  wire->proc_name_trunc = static_cast<std::uint16_t>(
      std::min<std::size_t>(name_full - name_copied, 0xFFFF));
  if (options_.enrich) {
    const os::SyscallDescriptor& desc = os::Describe(ctx.nr);
    if (desc.takes_fd && entry.have_fd_view) {
      wire->file_type = static_cast<std::uint8_t>(entry.fd_state.type);
      if (desc.data_related) {
        wire->file_offset = static_cast<std::int64_t>(entry.fd_state.offset);
      }
      const std::uint64_t key =
          TagKey(entry.fd_state.dev, entry.fd_state.ino);
      first_access_.Insert(key, entry.enter_ts);
      if (auto ts = first_access_.Lookup(key)) {
        wire->tag_valid = 1;
        wire->tag_dev = entry.fd_state.dev;
        wire->tag_ino = entry.fd_state.ino;
        wire->tag_ts = *ts;
      }
    } else if (desc.takes_path && entry.have_path_view) {
      wire->file_type = static_cast<std::uint8_t>(entry.path_view.type);
    }
  }
  AccountTruncation(*wire);
  rings_.Commit(cpu, reservation);
}

void DioTracer::EmitExitHalf(const os::SysExitContext& ctx) {
  const int cpu = ctx.kernel->cpu_of(ctx.tid);
  auto reservation = rings_.Reserve(cpu, sizeof(WireEvent));
  if (!reservation.valid()) return;
  auto* wire = reinterpret_cast<WireEvent*>(reservation.data());
  wire->phase = static_cast<std::uint8_t>(EventPhase::kExit);
  wire->nr = static_cast<std::uint8_t>(ctx.nr);
  wire->pid = ctx.pid;
  wire->tid = ctx.tid;
  wire->cpu = cpu;
  wire->time_enter = 0;
  wire->time_exit = ctx.timestamp;
  wire->ret = ctx.ret;
  wire->count = 0;
  wire->arg_offset = -1;
  wire->file_offset = -1;
  wire->fd = os::kNoFd;
  wire->whence = -1;
  wire->flags = 0;
  wire->mode = 0;
  wire->comm_len = 0;
  wire->proc_name_len = 0;
  wire->path_len = 0;
  wire->path2_len = 0;
  wire->xattr_len = 0;
  wire->comm_trunc = 0;
  wire->proc_name_trunc = 0;
  wire->path_trunc = 0;
  wire->path2_trunc = 0;
  wire->xattr_trunc = 0;
  wire->file_type = static_cast<std::uint8_t>(os::FileType::kUnknown);
  wire->tag_valid = 0;
  wire->tag_dev = 0;
  wire->tag_ino = 0;
  wire->tag_ts = 0;
  rings_.Commit(cpu, reservation);
}

void DioTracer::Enrich(WireEvent* out, const PendingEntry& entry,
                       const os::SysExitContext& ctx) {
  const auto nr = static_cast<os::SyscallNr>(out->nr);
  const os::SyscallDescriptor& desc = os::Describe(nr);

  // File type + file tag for fd-handling syscalls. open/openat/creat return
  // the fd, so their kernel state is read at exit via the return value; the
  // resolved tag is remembered per (pid, fd) so later syscalls on the fd —
  // including a close after the file was unlinked — report the tag of the
  // file generation the fd was opened against (Fig. 2a).
  const auto resolve_tag = [this](os::DeviceNum dev, os::InodeNum ino,
                                  Nanos enter_ts) {
    const std::uint64_t key = TagKey(dev, ino);
    // First-access timestamp: insert-if-absent, then read. Disambiguates
    // recycled inode numbers (§III-B).
    first_access_.Insert(key, enter_ts);
    FileTag tag;
    if (auto ts = first_access_.Lookup(key)) {
      tag.valid = true;
      tag.dev = dev;
      tag.ino = ino;
      tag.first_access_ts = *ts;
    }
    return tag;
  };
  const auto set_tag = [](WireEvent* w, const FileTag& tag) {
    w->tag_valid = tag.valid ? 1 : 0;
    w->tag_dev = tag.dev;
    w->tag_ino = tag.ino;
    w->tag_ts = tag.first_access_ts;
  };

  if ((nr == os::SyscallNr::kOpen || nr == os::SyscallNr::kOpenat ||
       nr == os::SyscallNr::kCreat) &&
      ctx.ret >= 0) {
    // Allocation-free read of the just-opened fd's state; the dentry path
    // is not needed here, so no buffer is passed.
    os::FdSnapshot opened;
    if (ctx.kernel->SnapshotFd(ctx.pid, static_cast<os::Fd>(ctx.ret),
                               std::span<char>(), &opened)) {
      out->file_type = static_cast<std::uint8_t>(opened.type);
      const FileTag tag =
          resolve_tag(opened.dev, opened.ino, entry.enter_ts);
      set_tag(out, tag);
      fd_tags_.Update(FdKey(ctx.pid, static_cast<os::Fd>(ctx.ret)), tag);
    }
  } else if (desc.takes_fd) {
    // Prefer the tag resolved at open time; fall back to kernel state for
    // fds opened before tracing started.
    if (auto tag = fd_tags_.Lookup(FdKey(ctx.pid, entry.fd))) {
      set_tag(out, *tag);
      if (entry.have_fd_view) {
        out->file_type = static_cast<std::uint8_t>(entry.fd_state.type);
      }
    } else if (entry.have_fd_view) {
      out->file_type = static_cast<std::uint8_t>(entry.fd_state.type);
      const FileTag tag = resolve_tag(entry.fd_state.dev,
                                      entry.fd_state.ino, entry.enter_ts);
      set_tag(out, tag);
      fd_tags_.Update(FdKey(ctx.pid, entry.fd), tag);
    }
    if (nr == os::SyscallNr::kClose && ctx.ret == 0) {
      fd_tags_.Delete(FdKey(ctx.pid, entry.fd));
    }
  } else if (desc.takes_path && entry.have_path_view) {
    // Path-based syscalls get the file type but no tag (the paper tags
    // "syscalls handling file descriptors").
    out->file_type = static_cast<std::uint8_t>(entry.path_view.type);
  }

  // File offset for data-related syscalls (§II-B): the position being
  // accessed, even for syscalls that do not carry it as an argument.
  if (desc.data_related) {
    switch (nr) {
      case os::SyscallNr::kPread64:
      case os::SyscallNr::kPwrite64:
        out->file_offset = entry.arg_offset;
        break;
      case os::SyscallNr::kLseek:
        // The resulting position.
        if (ctx.ret >= 0) out->file_offset = ctx.ret;
        break;
      case os::SyscallNr::kRead:
      case os::SyscallNr::kReadv:
      case os::SyscallNr::kWrite:
      case os::SyscallNr::kWritev:
        if (entry.have_fd_view) {
          out->file_offset =
              static_cast<std::int64_t>(entry.fd_state.offset);
        }
        break;
      default:
        break;
    }
  }

  // A successful unlink retires the (dev, ino) first-access entry so a
  // recycled inode number gets a fresh tag timestamp.
  if ((nr == os::SyscallNr::kUnlink || nr == os::SyscallNr::kUnlinkat) &&
      ctx.ret == 0 && entry.have_path_view) {
    first_access_.Delete(TagKey(entry.path_view.dev, entry.path_view.ino));
  }
}

void DioTracer::OnExit(const os::SysExitContext& ctx) {
  exit_hits_.fetch_add(1, std::memory_order_relaxed);
  SpinFor(kernel_->clock(), options_.hook_cost_ns - options_.hook_cost_ns / 2);

  if (!options_.aggregate_in_kernel) {
    // In raw mode the exit passes filters implicitly: if the enter was
    // filtered the user-space pairer drops the orphan exit record.
    if (options_.kernel_filtering &&
        !filters_.MatchTask(ctx.pid, ctx.tid)) {
      return;
    }
    EmitExitHalf(ctx);
    return;
  }
  // Pop the pending entry and consume it IN PLACE under its shard lock
  // (TakeWith) — the lookup_and_delete + inline processing a real exit hook
  // does, without copying the entry out of the map first. The callback only
  // takes locks the pending map never nests inside (ring internals,
  // fd-tag/first-access shards, the process registry), so the ordering is
  // acyclic. Aggregates entry+exit into ONE record, built in place inside
  // the ring reservation (bpf_ringbuf_reserve/submit) — the hook path's
  // only wire-event copy.
  const bool matched = pending_.TakeWith(ctx.tid, [&](
                                             const PendingEntry& entry) {
    const int cpu = ctx.kernel->cpu_of(ctx.tid);
    auto reservation = rings_.Reserve(cpu, sizeof(WireEvent));
    if (!reservation.valid()) {
      // Ring full: the record is lost (counted by the ring), but the map
      // state a real BPF program updates unconditionally — fd tags,
      // first-access timestamps, unlink retirement — must still advance.
      // Skipping it leaves a stale tag on the fd slot, and the next file
      // opened with the same fd number inherits the previous file's tag.
      if (options_.enrich) {
        WireEvent scratch{};
        scratch.nr = static_cast<std::uint8_t>(ctx.nr);
        Enrich(&scratch, entry, ctx);
      }
      return;
    }
    auto* wire = reinterpret_cast<WireEvent*>(reservation.data());
    FillWireFromEntry(wire, entry);
    wire->phase = static_cast<std::uint8_t>(EventPhase::kFull);
    wire->nr = static_cast<std::uint8_t>(ctx.nr);
    wire->pid = ctx.pid;
    wire->tid = ctx.tid;
    wire->cpu = cpu;
    wire->time_exit = ctx.timestamp;
    wire->ret = ctx.ret;
    wire->file_offset = -1;
    wire->file_type = static_cast<std::uint8_t>(os::FileType::kUnknown);
    wire->tag_valid = 0;
    wire->tag_dev = 0;
    wire->tag_ino = 0;
    wire->tag_ts = 0;
    const std::size_t name_full = ctx.kernel->CopyProcessName(
        ctx.pid, std::span<char>(wire->proc_name, kWireCommCap));
    const std::size_t name_copied = std::min(name_full, kWireCommCap);
    wire->proc_name_len = static_cast<std::uint16_t>(name_copied);
    wire->proc_name_trunc = static_cast<std::uint16_t>(
        std::min<std::size_t>(name_full - name_copied, 0xFFFF));

    if (options_.enrich) Enrich(wire, entry, ctx);

    AccountTruncation(*wire);
    rings_.Commit(cpu, reservation);
  });
  if (!matched) {
    // Filtered at entry, or the pending map was full.
    unmatched_exit_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DioTracer::HandleRecord(ConsumerState* state,
                             std::span<const std::byte> bytes) {
  // `consumed` counts every record drained from a ring, including the
  // ones that fail to decode — stats() keeps
  // consumed == emitted + user_filtered + decode_errors (+ any raw-mode
  // halves still being paired).
  consumed_.fetch_add(1, std::memory_order_relaxed);
  // Lazy decode: validate once, read fields straight out of ring memory,
  // and materialize an Event (string allocations) only for records that
  // survive user-space filtering. The view dies with this callback.
  auto decoded = WireEventView::FromBytes(bytes);
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const WireEventView& view = decoded.value();
  const auto phase = static_cast<EventPhase>(view.phase());
  if (phase == EventPhase::kEnter) {
    // Raw-mode pairing needs the half to outlive the callback.
    state->half_events[view.tid()] = MaterializeEvent(view);
    return;
  }
  if (phase == EventPhase::kExit) {
    auto it = state->half_events.find(view.tid());
    if (it == state->half_events.end() || it->second.nr != view.nr()) {
      unmatched_exit_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Event merged = std::move(it->second);
    state->half_events.erase(it);
    merged.phase = EventPhase::kFull;
    merged.time_exit = view.raw().time_exit;
    merged.ret = view.raw().ret;
    if (!options_.kernel_filtering) {
      const std::string_view path = merged.path.empty() && merged.tag.valid
                                        ? std::string_view()
                                        : std::string_view(merged.path);
      if (!PassesFilters(merged.pid, merged.tid, path)) {
        user_filtered_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    state->batch.push_back(std::move(merged));
  } else {
    if (!options_.kernel_filtering) {
      // Tagged events with an empty path are fd-based syscalls whose path
      // was never captured; they pass the path filter (as before).
      const std::string_view path =
          view.path().empty() && view.tag_valid() ? std::string_view()
                                                  : view.path();
      if (!PassesFilters(view.pid(), view.tid(), path)) {
        user_filtered_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Aggregate-mode survivor: copy the record off the ring verbatim and
    // ship it binary (typed ingest). No Event, no std::string, no Json on
    // this thread — materialization happens only if a JSON-consuming sink
    // (spool, oracle store route) asks for it downstream.
    state->wire.push_back(view.raw());
  }
  if (state->batch.size() + state->wire.size() >= options_.batch_size) {
    FlushBatch(state);
  }
}

std::size_t DioTracer::DrainStripeOnce(ConsumerState* state,
                                       std::size_t worker,
                                       std::size_t num_workers) {
  // Drain this worker's stripe of rings; each ring is drained by exactly
  // one worker (SPSC), in zero-copy batches.
  const auto handle = [this, state](std::span<const std::byte> bytes) {
    HandleRecord(state, bytes);
  };
  const int num_cpus = rings_.num_cpus();
  std::size_t n = 0;
  for (int cpu = static_cast<int>(worker); cpu < num_cpus;
       cpu += static_cast<int>(num_workers)) {
    n += rings_.DrainRing(cpu, handle, 4096);
  }
  const Nanos now = kernel_->clock()->NowNanos();
  if ((!state->batch.empty() || !state->wire.empty()) &&
      now - state->last_flush >= options_.flush_interval_ns) {
    FlushBatch(state);
    state->last_flush = now;
  }
  return n;
}

std::size_t DioTracer::PumpConsumer(std::size_t worker) {
  if (worker >= manual_states_.size()) return 0;
  return DrainStripeOnce(manual_states_[worker].get(), worker,
                         manual_states_.size());
}

void DioTracer::ConsumerLoop(const std::stop_token& stop, std::size_t worker,
                             std::size_t num_workers) {
  ConsumerState state;
  state.batch.reserve(options_.batch_size);
  state.wire.reserve(options_.batch_size);
  state.last_flush = kernel_->clock()->NowNanos();

  while (true) {
    const std::size_t n = DrainStripeOnce(&state, worker, num_workers);
    if (n == 0) {
      if (stop.stop_requested()) break;  // drained after detach
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options_.poll_interval_ns));
    }
  }
  FlushBatch(&state);
}

void DioTracer::FlushBatch(ConsumerState* state) {
  if (!state->wire.empty()) {
    emitted_.fetch_add(state->wire.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    sink_->IndexWire(options_.session_name, std::move(state->wire));
    state->wire.clear();
    state->wire.reserve(options_.batch_size);
  }
  if (!state->batch.empty()) {
    emitted_.fetch_add(state->batch.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    sink_->IndexEvents(options_.session_name, std::move(state->batch));
    state->batch.clear();
    state->batch.reserve(options_.batch_size);
  }
}

TracerStats DioTracer::stats() const {
  TracerStats s;
  s.enter_hits = enter_hits_.load(std::memory_order_relaxed);
  s.exit_hits = exit_hits_.load(std::memory_order_relaxed);
  s.filtered_out = filtered_out_.load(std::memory_order_relaxed);
  s.pending_overflow = pending_overflow_.load(std::memory_order_relaxed);
  s.unmatched_exit = unmatched_exit_.load(std::memory_order_relaxed);
  s.ring_pushed = rings_.TotalPushed();
  s.ring_dropped = rings_.TotalDropped();
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.user_filtered = user_filtered_.load(std::memory_order_relaxed);
  s.emitted = emitted_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.ring_discarded = rings_.TotalDiscarded();
  s.truncated_comm_bytes = trunc_comm_.load(std::memory_order_relaxed);
  s.truncated_proc_name_bytes =
      trunc_proc_name_.load(std::memory_order_relaxed);
  s.truncated_path_bytes = trunc_path_.load(std::memory_order_relaxed);
  s.truncated_path2_bytes = trunc_path2_.load(std::memory_order_relaxed);
  s.truncated_xattr_bytes = trunc_xattr_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dio::tracer
