// 64-bit packed map keys shared by the DIO tracer and the baseline tracers.
//
// Real eBPF hash maps key on fixed-size scalars, so composite identities are
// packed into one u64 instead of hashing structs. Both packings live here so
// the tracer, the sysdig baseline, and the tests agree on the bit layout.
#pragma once

#include <cstdint>

#include "oskernel/types.h"

namespace dio::tracer {

// (dev, ino) -> key for the first-access-timestamp map behind file tags
// (§II-B). Collision assumption, relied on by tag correlation: device
// numbers fit in 24 bits (ours are mount-time constants like 7340032 <
// 2^24) and inode numbers are allocated densely from a per-filesystem
// counter, staying far below 2^40 — so the XOR of `dev << 40` with the
// inode never collides across devices. A real deployment with sparse or
// hashed inode numbers would widen this to a 128-bit key.
inline std::uint64_t TagKey(os::DeviceNum dev, os::InodeNum ino) {
  return (static_cast<std::uint64_t>(dev) << 40) ^ ino;
}

// (pid, fd) -> key for per-process fd state maps (open-time tags, offset
// caches). Exact, not a hash: pid and fd are both 32-bit on Linux and here,
// so the concatenation is collision-free.
inline std::uint64_t FdKey(os::Pid pid, os::Fd fd) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pid)) << 32) |
         static_cast<std::uint32_t>(fd);
}

}  // namespace dio::tracer
