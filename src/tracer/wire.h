// Fixed-layout wire format for the kernel->user ring buffer handoff.
//
// A real eBPF program cannot build std::strings or variable-length records:
// it reserves a fixed-size chunk of ringbuf memory and stores fields into it
// (comm is char[TASK_COMM_LEN], paths go through bpf_probe_read_str into a
// bounded buffer). WireEvent mirrors that: one POD record per event, inline
// bounded string fields with explicit lengths, and per-field truncation
// counters so nothing is cut silently. Serialization is plain field stores
// into ring memory reserved in place (ByteRingBuffer::Reserve) — no
// intermediate buffer — and decoding is a zero-copy view (WireEventView)
// that materializes an Event only for records that survive user-space
// filtering. See DESIGN.md "Wire format".
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>

#include "common/status.h"
#include "oskernel/syscall_nr.h"
#include "oskernel/types.h"

namespace dio::tracer {

// Inline buffer capacities. comm is TASK_COMM_LEN; paths follow the same
// "bounded probe read" discipline real tracers use (DIO's eBPF programs cap
// path copies the same way). Overflow is truncated and counted, never UB.
inline constexpr std::size_t kWireCommCap = 16;
inline constexpr std::size_t kWirePathCap = 128;
inline constexpr std::size_t kWireXattrCap = 32;

// One syscall event as it crosses the ring. Fields are ordered by size
// (8 -> 4 -> 2 -> 1 -> char buffers) so the struct packs without internal
// padding; records are always exactly sizeof(WireEvent) bytes.
struct WireEvent {
  // 64-bit fields.
  std::int64_t time_enter = 0;
  std::int64_t time_exit = 0;
  std::int64_t ret = 0;
  std::uint64_t count = 0;
  std::int64_t arg_offset = -1;
  std::int64_t file_offset = -1;
  std::uint64_t tag_dev = 0;
  std::uint64_t tag_ino = 0;
  std::int64_t tag_ts = 0;
  // 32-bit fields.
  std::int32_t pid = os::kNoPid;
  std::int32_t tid = os::kNoTid;
  std::int32_t cpu = 0;
  std::int32_t fd = os::kNoFd;
  std::int32_t whence = -1;
  std::uint32_t flags = 0;
  std::uint32_t mode = 0;
  // 16-bit fields: inline-string lengths and per-field truncation counters
  // (bytes that did not fit the capacity; 0xFFFF saturates).
  std::uint16_t comm_len = 0;
  std::uint16_t proc_name_len = 0;
  std::uint16_t path_len = 0;
  std::uint16_t path2_len = 0;
  std::uint16_t xattr_len = 0;
  std::uint16_t comm_trunc = 0;
  std::uint16_t proc_name_trunc = 0;
  std::uint16_t path_trunc = 0;
  std::uint16_t path2_trunc = 0;
  std::uint16_t xattr_trunc = 0;
  // 8-bit fields.
  std::uint8_t phase = 0;      // EventPhase
  std::uint8_t nr = 0;         // os::SyscallNr
  std::uint8_t file_type = 0;  // os::FileType
  std::uint8_t tag_valid = 0;
  // Inline string storage (not NUL-terminated; lengths above).
  char comm[kWireCommCap];
  char proc_name[kWireCommCap];
  char path[kWirePathCap];
  char path2[kWirePathCap];
  char xattr_name[kWireXattrCap];

  // Copies `s` into the inline buffer `dst` of capacity `cap`; returns the
  // stored length and accumulates cut bytes into `*trunc` (saturating).
  static std::uint16_t FillString(char* dst, std::size_t cap,
                                  std::string_view s, std::uint16_t* trunc) {
    const std::size_t n = s.size() < cap ? s.size() : cap;
    if (n > 0) std::memcpy(dst, s.data(), n);
    const std::size_t cut = s.size() - n;
    if (cut > 0) {
      const std::uint32_t total = static_cast<std::uint32_t>(*trunc) +
                                  static_cast<std::uint32_t>(
                                      cut < 0xFFFF ? cut : 0xFFFF);
      *trunc = static_cast<std::uint16_t>(total < 0xFFFF ? total : 0xFFFF);
    }
    return static_cast<std::uint16_t>(n);
  }

  [[nodiscard]] std::uint32_t truncated_bytes() const {
    return static_cast<std::uint32_t>(comm_trunc) + proc_name_trunc +
           path_trunc + path2_trunc + xattr_trunc;
  }
};

static_assert(std::is_trivially_copyable_v<WireEvent>);
static_assert(alignof(WireEvent) == 8);
// Layout guard: 9*8 + 7*4 + 10*2 + 4*1 rounds to 124 of scalars (+4 tail
// pad with the 320 bytes of char buffers) = 448. A change here is a wire
// format change — update DESIGN.md "Wire format" alongside.
static_assert(sizeof(WireEvent) == 448);

// Zero-copy reader over a WireEvent record still sitting in ring memory (or
// any 8-byte-aligned buffer). Validates once at construction; accessors are
// plain field reads and string_views into the record. The view is only
// valid while the underlying bytes are (for ring spans: during the
// ConsumeBatch visitor call).
class WireEventView {
 public:
  // Validation: size, alignment, enum ranges, and string lengths within
  // caps. A short or corrupt record returns an error (the tracer counts it
  // as decode_errors) — never UB.
  static Expected<WireEventView> FromBytes(std::span<const std::byte> bytes) {
    if (bytes.size() < sizeof(WireEvent)) {
      return InvalidArgument("short event record");
    }
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(WireEvent) !=
        0) {
      return InvalidArgument("misaligned event record");
    }
    const auto* raw = reinterpret_cast<const WireEvent*>(bytes.data());
    if (raw->nr >= static_cast<std::uint8_t>(os::SyscallNr::kCount) ||
        raw->phase > 2 || raw->comm_len > kWireCommCap ||
        raw->proc_name_len > kWireCommCap || raw->path_len > kWirePathCap ||
        raw->path2_len > kWirePathCap || raw->xattr_len > kWireXattrCap) {
      return InvalidArgument("malformed event record");
    }
    return WireEventView(raw);
  }

  [[nodiscard]] const WireEvent& raw() const { return *raw_; }
  [[nodiscard]] std::uint8_t phase() const { return raw_->phase; }
  [[nodiscard]] os::SyscallNr nr() const {
    return static_cast<os::SyscallNr>(raw_->nr);
  }
  [[nodiscard]] os::Pid pid() const { return raw_->pid; }
  [[nodiscard]] os::Tid tid() const { return raw_->tid; }
  [[nodiscard]] bool tag_valid() const { return raw_->tag_valid != 0; }
  [[nodiscard]] std::string_view comm() const {
    return {raw_->comm, raw_->comm_len};
  }
  [[nodiscard]] std::string_view proc_name() const {
    return {raw_->proc_name, raw_->proc_name_len};
  }
  [[nodiscard]] std::string_view path() const {
    return {raw_->path, raw_->path_len};
  }
  [[nodiscard]] std::string_view path2() const {
    return {raw_->path2, raw_->path2_len};
  }
  [[nodiscard]] std::string_view xattr_name() const {
    return {raw_->xattr_name, raw_->xattr_len};
  }

 private:
  explicit WireEventView(const WireEvent* raw) : raw_(raw) {}
  const WireEvent* raw_;
};

}  // namespace dio::tracer
