// Where the tracer ships parsed events. The production implementation is
// the backend's bulk-indexing client (backend/bulk_client.h); tests use an
// in-memory sink.
#pragma once

#include <vector>

#include "common/json.h"

namespace dio::tracer {

class EventSink {
 public:
  virtual ~EventSink() = default;
  // Bulk ingestion of a batch of event documents (mirrors Elasticsearch's
  // _bulk API used by the paper's tracer).
  virtual void IndexBatch(std::vector<Json> documents) = 0;
  // Called at session end so the sink can flush/refresh.
  virtual void Flush() {}
};

}  // namespace dio::tracer
