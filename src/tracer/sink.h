// Where the tracer's consumer threads ship decoded events. In production
// this is the head of a transport::Pipeline (transport/pipeline.h): a
// bounded queue with an explicit backpressure policy, optionally retry and
// fan-out stages, and one or more terminal sinks (backend bulk client,
// NDJSON spool). Tests use in-memory sinks.
//
// Contract the transport layer relies on:
//  * IndexBatch/IndexEvents are called concurrently by N consumer threads.
//  * Flush() is the deterministic drain barrier: when it returns, every
//    previously submitted batch has been delivered or accounted as lost
//    downstream. DioTracer::Stop() calls it after the consumers join, so
//    teardown order is always consumers -> transport queues -> sinks.
#pragma once

#include <string_view>
#include <vector>

#include "common/json.h"
#include "tracer/event.h"

namespace dio::tracer {

class EventSink {
 public:
  virtual ~EventSink() = default;
  // Bulk ingestion of a batch of event documents (mirrors Elasticsearch's
  // _bulk API used by the paper's tracer).
  virtual void IndexBatch(std::vector<Json> documents) = 0;
  // Fast path: decoded binary events, NOT yet materialized as JSON. The
  // consumer threads call this so per-event Json allocation happens inside
  // the sink (for BulkClient: on the sender thread / at store ingest),
  // keeping the ring-drain loops lean. The default implementation converts
  // eagerly and forwards to IndexBatch, so simple sinks only implement that.
  virtual void IndexEvents(std::string_view session,
                           std::vector<Event> events) {
    std::vector<Json> documents;
    documents.reserve(events.size());
    for (const Event& event : events) {
      documents.push_back(event.ToJson(session));
    }
    IndexBatch(std::move(documents));
  }
  // Fastest path: owned copies of the fixed-layout wire records, exactly as
  // they crossed the ring (typed ingest). Sinks that understand the binary
  // form (transport::Pipeline -> backend::BulkClient -> ElasticStore's
  // typed-ingest route) forward it untouched; the default materializes to
  // Events and falls back to IndexEvents so simple sinks keep working.
  virtual void IndexWire(std::string_view session,
                         std::vector<WireEvent> records) {
    std::vector<Event> events;
    events.reserve(records.size());
    for (const WireEvent& record : records) {
      events.push_back(MaterializeEvent(record));
    }
    IndexEvents(session, std::move(events));
  }
  // Called at session end so the sink can flush/refresh.
  virtual void Flush() {}
};

}  // namespace dio::tracer
