// The DIO event: one record per syscall, aggregating the entry and exit
// tracepoints (§II-B "Collected information") plus kernel-context enrichment
// (file type, file offset, file tag).
//
// Events cross the kernel/user boundary in a compact binary form (through
// the per-CPU ring buffers) and are converted to JSON documents in
// user-space before being bulk-indexed at the backend — the same flow as the
// paper's tracer.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/status.h"
#include "oskernel/syscall_nr.h"
#include "oskernel/types.h"
#include "tracer/wire.h"

namespace dio::tracer {

// Unique identifier for the file behind an fd: device number, inode number,
// and the timestamp of the *first syscall that touched this (dev, ino)* —
// which disambiguates recycled inode numbers (§II-B).
struct FileTag {
  bool valid = false;
  os::DeviceNum dev = 0;
  os::InodeNum ino = 0;
  Nanos first_access_ts = 0;

  // "dev|ino|ts" — the canonical key the correlation algorithm joins on.
  [[nodiscard]] std::string ToKey() const;

  friend bool operator==(const FileTag&, const FileTag&) = default;
};

// Wire phase: DIO aggregates entry+exit into one record in kernel space
// (kFull). The ablation mode ships the halves separately (kEnter/kExit) and
// pairs them in user space — doubling ring traffic, which is the cost the
// paper's design avoids (§II-B, Table III "aggregate ... at kernel-space to
// reduce the data transferred to user-space").
enum class EventPhase : std::uint8_t { kFull = 0, kEnter = 1, kExit = 2 };

struct Event {
  EventPhase phase = EventPhase::kFull;
  os::SyscallNr nr = os::SyscallNr::kRead;
  os::Pid pid = os::kNoPid;
  os::Tid tid = os::kNoTid;
  std::string comm;       // thread comm (task name)
  std::string proc_name;  // process (group leader) name
  Nanos time_enter = 0;
  Nanos time_exit = 0;
  std::int64_t ret = 0;
  int cpu = 0;

  // Arguments (subset relevant per syscall; unset fields keep defaults).
  os::Fd fd = os::kNoFd;  // fd argument of fd-based syscalls
  std::string path;
  std::string path2;
  std::string xattr_name;
  std::uint64_t count = 0;
  std::int64_t arg_offset = -1;  // pread64/pwrite64 offset argument
  int whence = -1;
  std::uint32_t flags = 0;
  std::uint32_t mode = 0;

  // Enrichment (§II-B).
  os::FileType file_type = os::FileType::kUnknown;
  std::int64_t file_offset = -1;  // -1 = not applicable
  FileTag tag;

  [[nodiscard]] Nanos duration() const { return time_exit - time_enter; }

  // JSON document as indexed at the backend. `session` labels the tracing
  // execution (§II-F).
  [[nodiscard]] Json ToJson(std::string_view session) const;
};

// Binary wire codec for the kernel->user ring buffer handoff. Records are
// fixed-layout WireEvents (see wire.h): the hook path fills one directly
// inside ring memory reserved in place; the consumer reads it through a
// zero-copy WireEventView and materializes an Event (std::strings) only for
// records that survive filtering.
//
// Fills a wire record from an Event. String fields beyond the kWire*Cap
// bounds are truncated and counted in the record's *_trunc fields.
void FillWireEvent(WireEvent* out, const Event& event);
// Builds the Event (allocating its strings) from a validated view.
Event MaterializeEvent(const WireEventView& view);
// Same, from an owned record that already passed ring-decode validation
// (typed batches carry WireEvents by value past that point).
Event MaterializeEvent(const WireEvent& raw);
// Event::ToJson for an owned wire record without the intermediate Event
// (no std::string allocations for the bounded fields). Byte-identical to
// MaterializeEvent(raw).ToJson(session) — the JSON route's oracle form.
Json WireEventToJson(const WireEvent& raw, std::string_view session);

// Buffer-based shims over the fixed layout, for callers without a ring
// reservation (tests, benches, baselines).
void SerializeEvent(const Event& event, std::vector<std::byte>* out);
Expected<Event> DeserializeEvent(std::span<const std::byte> bytes);

}  // namespace dio::tracer
