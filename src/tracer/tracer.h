// DioTracer: the paper's tracer component (§II-B).
//
// Kernel side ("eBPF programs", attached to syscall tracepoints):
//   * sys_enter: apply kernel-side filters (PID/TID/path), snapshot the
//     arguments and the fd's kernel state (type/offset/dentry path), and
//     stash it in a bounded pending map keyed by TID.
//   * sys_exit: pop the pending entry, aggregate entry+exit into ONE event,
//     enrich it (file type, file offset, file tag = dev|ino|first-access-ts),
//     and reserve+commit it into the per-CPU ring buffer. Full ring => the
//     event is dropped and counted (§III-D).
//
// User side: N consumer threads (consumer_threads option) each own a
// disjoint stripe of the per-CPU rings and drain them in zero-copy batches,
// decode events, and ship them to the backend in batches ("buckets ... sent
// and indexed in batches", §II-B) — asynchronously, off the application's
// critical path. JSON materialization is deferred to the sink so the drain
// loops never allocate documents.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/config.h"
#include "common/status.h"
#include "ebpf/maps.h"
#include "ebpf/program.h"
#include "ebpf/ringbuf.h"
#include "oskernel/kernel.h"
#include "tracer/event.h"
#include "tracer/filters.h"
#include "tracer/sink.h"

namespace dio::tracer {

struct TracerOptions {
  // Labels this tracing execution; multiple sessions can coexist in one
  // backend (§II-F "deploy DIO as a service").
  std::string session_name = "dio-session";

  // Empty = all 42 supported syscalls; otherwise names like "openat".
  std::vector<std::string> syscalls;
  std::vector<os::Pid> pids;
  std::vector<os::Tid> tids;
  std::vector<std::string> paths;

  // Paper: 256 MiB per CPU core. Experiments here are scaled down; the
  // ab_ringsize bench sweeps this knob against the drop rate.
  std::size_t ring_bytes_per_cpu = 8u << 20;
  std::size_t pending_map_entries = 16384;
  std::size_t first_access_map_entries = 1u << 16;

  // Bulk emission ("buckets").
  std::size_t batch_size = 512;
  Nanos flush_interval_ns = 50 * kMillisecond;
  Nanos poll_interval_ns = kMillisecond;

  // User-space drain parallelism: number of consumer threads, each owning a
  // disjoint stripe of the per-CPU rings (SPSC per ring). 0 = auto:
  // min(num_cpus, hardware_concurrency). Values above num_cpus are clamped
  // (extra threads would have no ring to drain).
  std::size_t consumer_threads = 0;

  // Enrichment on/off (ablation; §II-B says Sysdig-style tracers skip it).
  bool enrich = true;
  // DIO's design: aggregate a syscall's entry and exit into ONE event in
  // kernel space (the pending map). When false (ablation A4), the raw enter
  // and exit records are shipped separately and paired by the user-space
  // consumer — twice the ring traffic, and open/close tag fidelity is lost
  // (tags can only be derived from entry-time state).
  bool aggregate_in_kernel = true;
  // When false, PID/TID/path filters run in user-space instead of in the
  // kernel hook — the ab_filters ablation.
  bool kernel_filtering = true;

  // Simulation seam (programmatic only, never read from config): no
  // consumer threads are spawned. The owner drives the drain loops
  // explicitly via PumpConsumer(worker), so a seeded cooperative scheduler
  // fully determines when each stripe of rings is drained. Stop() performs
  // a final serial drain, preserving the drains-everything guarantee.
  bool manual_consumers = false;

  // Modeled fixed in-kernel instrumentation cost per tracepoint hit, split
  // between entry and exit. Stands in for BPF program execution overhead we
  // cannot reproduce natively (see DESIGN.md calibration note). Zero by
  // default: the real map/copy/ring work is always performed and measured.
  Nanos hook_cost_ns = 0;

  // Soft cap on path bytes captured per event (<= kWirePathCap, the wire
  // buffer size). Lowering it trims the per-event copy cost for workloads
  // with deep paths — the same trade a real tracer makes when sizing its
  // bpf_probe_read_str bound. Cut bytes are counted in the truncation
  // stats either way.
  std::size_t path_cap = kWirePathCap;

  static Expected<TracerOptions> FromConfig(const Config& config);
};

struct TracerStats {
  std::uint64_t enter_hits = 0;       // enter tracepoint invocations
  std::uint64_t exit_hits = 0;        // exit tracepoint invocations
  std::uint64_t filtered_out = 0;     // rejected by kernel-side filters
  std::uint64_t pending_overflow = 0; // pending map full at entry
  std::uint64_t unmatched_exit = 0;   // exit without a pending entry
  std::uint64_t ring_pushed = 0;      // events committed to ring buffers
  std::uint64_t ring_dropped = 0;     // §III-D discards (ring full)
  std::uint64_t consumed = 0;         // decoded by the user-space consumer
  std::uint64_t user_filtered = 0;    // rejected by user-space filters
  std::uint64_t emitted = 0;          // documents shipped to the sink
  std::uint64_t batches = 0;          // bulk requests issued
  std::uint64_t decode_errors = 0;
  std::uint64_t ring_discarded = 0;   // reserved then abandoned (Discard)

  // Bytes cut by the fixed wire-format buffers (kWireCommCap etc.), per
  // field. Nothing is truncated silently: every cut byte of an emitted
  // record lands in exactly one of these counters.
  std::uint64_t truncated_comm_bytes = 0;
  std::uint64_t truncated_proc_name_bytes = 0;
  std::uint64_t truncated_path_bytes = 0;
  std::uint64_t truncated_path2_bytes = 0;
  std::uint64_t truncated_xattr_bytes = 0;

  [[nodiscard]] std::uint64_t truncated_bytes() const {
    return truncated_comm_bytes + truncated_proc_name_bytes +
           truncated_path_bytes + truncated_path2_bytes +
           truncated_xattr_bytes;
  }

  [[nodiscard]] double drop_ratio() const {
    const double total =
        static_cast<double>(ring_pushed) + static_cast<double>(ring_dropped);
    return total == 0 ? 0.0 : static_cast<double>(ring_dropped) / total;
  }
};

class DioTracer {
 public:
  DioTracer(os::Kernel* kernel, EventSink* sink, TracerOptions options);
  ~DioTracer();

  DioTracer(const DioTracer&) = delete;
  DioTracer& operator=(const DioTracer&) = delete;

  // Attaches the eBPF programs and starts the user-space consumer.
  Status Start();
  // Detaches, drains the rings, flushes the final batch. Idempotent.
  void Stop();

  [[nodiscard]] TracerStats stats() const;
  [[nodiscard]] const std::string& session() const {
    return options_.session_name;
  }
  [[nodiscard]] const TracerOptions& options() const { return options_; }

  // Manual mode (options.manual_consumers): runs one drain pass of worker
  // `worker`'s ring stripe on the calling thread — the body of one
  // ConsumerLoop iteration, minus the poll sleep. Returns the number of
  // ring records consumed. Valid after Start(), for workers in
  // [0, manual_workers()).
  std::size_t PumpConsumer(std::size_t worker);
  [[nodiscard]] std::size_t manual_workers() const {
    return manual_states_.size();
  }

 private:
  friend class DioTracerTestPeer;  // injects raw ring records in tests

  // Per-TID entry-hook snapshot, the value type of the pending map. Like a
  // real BPF map value it is a fixed-layout POD: syscall argument strings
  // live in inline bounded buffers (wire-format caps, truncation counted at
  // capture time), so stashing and popping an entry never touches the heap.
  // The fd's dentry path is deliberately NOT stored — it is only needed
  // transiently for the kernel-side path filter, and OnEnter reads it into
  // a stack buffer (see SnapshotFd).
  struct PendingEntry {
    Nanos enter_ts = 0;
    os::Fd fd = os::kNoFd;
    std::uint64_t count = 0;
    std::int64_t arg_offset = -1;
    int whence = -1;
    std::uint32_t flags = 0;
    std::uint32_t mode = 0;
    bool have_fd_view = false;
    bool have_path_view = false;
    os::FdSnapshot fd_state;
    os::PathView path_view;
    std::uint16_t comm_len = 0, comm_trunc = 0;
    std::uint16_t path_len = 0, path_trunc = 0;
    std::uint16_t path2_len = 0, path2_trunc = 0;
    std::uint16_t xattr_len = 0, xattr_trunc = 0;
    char comm[kWireCommCap];
    char path[kWirePathCap];
    char path2[kWirePathCap];
    char xattr_name[kWireXattrCap];
  };

  // Per-worker drain-loop state, stack-local in thread mode and owned by
  // the tracer in manual mode (so pumps can resume where the last left
  // off). `half_events` is the raw-mode pairing map: tid -> pending enter
  // half; safe per worker because cpu_of(tid) is stable, so both halves of
  // a syscall land on the same ring and therefore on the same stripe.
  // `batch` holds raw-mode (enter/exit-paired) events; `wire` holds
  // aggregate-mode records copied verbatim off the ring — typed ingest ships
  // them binary, so the consumer thread never allocates a Json or an Event
  // for them.
  struct ConsumerState {
    std::vector<Event> batch;
    std::vector<WireEvent> wire;
    Nanos last_flush = 0;
    std::unordered_map<os::Tid, Event> half_events;
  };

  void OnEnter(const os::SysEnterContext& ctx);
  void OnExit(const os::SysExitContext& ctx);
  void EmitEnterHalf(const os::SysEnterContext& ctx,
                     const PendingEntry& entry);
  void EmitExitHalf(const os::SysExitContext& ctx);
  // One of `num_workers` drain loops; worker w owns rings w, w+N, w+2N, …
  void ConsumerLoop(const std::stop_token& stop, std::size_t worker,
                    std::size_t num_workers);
  // One pass over worker `worker`'s stripe: drain each owned ring once,
  // then flush the local batch if the flush interval elapsed. Returns ring
  // records consumed.
  std::size_t DrainStripeOnce(ConsumerState* state, std::size_t worker,
                              std::size_t num_workers);
  // Decodes one drained ring record into `state` (shared by the thread and
  // manual drain paths).
  void HandleRecord(ConsumerState* state, std::span<const std::byte> bytes);
  // Ships the state's pending wire and event batches to the sink.
  void FlushBatch(ConsumerState* state);
  [[nodiscard]] std::size_t ResolveConsumerThreads() const;
  // Copies the entry's scalars and inline strings into the reserved wire
  // record (everything except the per-site header fields).
  static void FillWireFromEntry(WireEvent* out, const PendingEntry& entry);
  void Enrich(WireEvent* out, const PendingEntry& entry,
              const os::SysExitContext& ctx);
  // Folds a committed record's per-field truncation counters into the
  // tracer-wide stats.
  void AccountTruncation(const WireEvent& wire);
  [[nodiscard]] bool PassesFilters(os::Pid pid, os::Tid tid,
                                   std::string_view path) const;

  os::Kernel* kernel_;
  EventSink* sink_;
  TracerOptions options_;
  Filters filters_;
  std::set<os::SyscallNr> enabled_;

  ebpf::BpfHashMap<os::Tid, PendingEntry> pending_;
  // (dev, ino) -> first-access timestamp; retired on unlink so recycled
  // inode numbers get fresh tags.
  ebpf::BpfHashMap<std::uint64_t, Nanos> first_access_;
  // (pid, fd) -> tag resolved at open time; close-after-unlink therefore
  // still reports the original file's tag (as in the paper's Fig. 2a).
  ebpf::BpfHashMap<std::uint64_t, FileTag> fd_tags_;
  ebpf::PerCpuRingBuffer rings_;
  std::vector<ebpf::BpfLink> links_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::vector<std::jthread> consumers_;
  // Manual mode: per-worker drain state, allocated by Start().
  std::vector<std::unique_ptr<ConsumerState>> manual_states_;

  // Stats counters (relaxed atomics; aggregated in stats()).
  std::atomic<std::uint64_t> enter_hits_{0};
  std::atomic<std::uint64_t> exit_hits_{0};
  std::atomic<std::uint64_t> filtered_out_{0};
  std::atomic<std::uint64_t> pending_overflow_{0};
  std::atomic<std::uint64_t> unmatched_exit_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> user_filtered_{0};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> trunc_comm_{0};
  std::atomic<std::uint64_t> trunc_proc_name_{0};
  std::atomic<std::uint64_t> trunc_path_{0};
  std::atomic<std::uint64_t> trunc_path2_{0};
  std::atomic<std::uint64_t> trunc_xattr_{0};
};

}  // namespace dio::tracer
