#include "tracer/event.h"

#include <cstring>

namespace dio::tracer {

std::string FileTag::ToKey() const {
  std::string out = std::to_string(dev);
  out.push_back('|');
  out += std::to_string(ino);
  out.push_back('|');
  out += std::to_string(first_access_ts);
  return out;
}

void FillWireEvent(WireEvent* out, const Event& event) {
  out->time_enter = event.time_enter;
  out->time_exit = event.time_exit;
  out->ret = event.ret;
  out->count = event.count;
  out->arg_offset = event.arg_offset;
  out->file_offset = event.file_offset;
  out->tag_dev = event.tag.dev;
  out->tag_ino = event.tag.ino;
  out->tag_ts = event.tag.first_access_ts;
  out->pid = event.pid;
  out->tid = event.tid;
  out->cpu = event.cpu;
  out->fd = event.fd;
  out->whence = event.whence;
  out->flags = event.flags;
  out->mode = event.mode;
  out->comm_trunc = 0;
  out->proc_name_trunc = 0;
  out->path_trunc = 0;
  out->path2_trunc = 0;
  out->xattr_trunc = 0;
  out->comm_len = WireEvent::FillString(out->comm, kWireCommCap, event.comm,
                                        &out->comm_trunc);
  out->proc_name_len = WireEvent::FillString(
      out->proc_name, kWireCommCap, event.proc_name, &out->proc_name_trunc);
  out->path_len = WireEvent::FillString(out->path, kWirePathCap, event.path,
                                        &out->path_trunc);
  out->path2_len = WireEvent::FillString(out->path2, kWirePathCap,
                                         event.path2, &out->path2_trunc);
  out->xattr_len = WireEvent::FillString(out->xattr_name, kWireXattrCap,
                                         event.xattr_name, &out->xattr_trunc);
  out->phase = static_cast<std::uint8_t>(event.phase);
  out->nr = static_cast<std::uint8_t>(event.nr);
  out->file_type = static_cast<std::uint8_t>(event.file_type);
  out->tag_valid = event.tag.valid ? 1 : 0;
}

Event MaterializeEvent(const WireEventView& view) {
  return MaterializeEvent(view.raw());
}

Event MaterializeEvent(const WireEvent& raw) {
  Event event;
  event.phase = static_cast<EventPhase>(raw.phase);
  event.nr = static_cast<os::SyscallNr>(raw.nr);
  event.pid = raw.pid;
  event.tid = raw.tid;
  event.comm = std::string(raw.comm, raw.comm_len);
  event.proc_name = std::string(raw.proc_name, raw.proc_name_len);
  event.time_enter = raw.time_enter;
  event.time_exit = raw.time_exit;
  event.ret = raw.ret;
  event.cpu = raw.cpu;
  event.fd = raw.fd;
  event.path = std::string(raw.path, raw.path_len);
  event.path2 = std::string(raw.path2, raw.path2_len);
  event.xattr_name = std::string(raw.xattr_name, raw.xattr_len);
  event.count = raw.count;
  event.arg_offset = raw.arg_offset;
  event.whence = raw.whence;
  event.flags = raw.flags;
  event.mode = raw.mode;
  event.file_type = static_cast<os::FileType>(raw.file_type);
  event.file_offset = raw.file_offset;
  event.tag.valid = raw.tag_valid != 0;
  event.tag.dev = raw.tag_dev;
  event.tag.ino = raw.tag_ino;
  event.tag.first_access_ts = raw.tag_ts;
  return event;
}

Json WireEventToJson(const WireEvent& raw, std::string_view session) {
  const auto nr = static_cast<os::SyscallNr>(raw.nr);
  const os::SyscallDescriptor& desc = os::Describe(nr);
  Json doc = Json::MakeObject();
  doc.Set("session", std::string(session));
  doc.Set("syscall", std::string(desc.name));
  doc.Set("category", std::string(os::CategoryName(desc.category)));
  doc.Set("pid", static_cast<std::int64_t>(raw.pid));
  doc.Set("tid", static_cast<std::int64_t>(raw.tid));
  doc.Set("comm", std::string(raw.comm, raw.comm_len));
  doc.Set("proc_name", std::string(raw.proc_name, raw.proc_name_len));
  doc.Set("time_enter", raw.time_enter);
  doc.Set("time_exit", raw.time_exit);
  doc.Set("duration_ns", raw.time_exit - raw.time_enter);
  doc.Set("ret", raw.ret);
  doc.Set("cpu", static_cast<std::int64_t>(raw.cpu));
  if (raw.fd >= 0 && desc.takes_fd) {
    doc.Set("fd", static_cast<std::int64_t>(raw.fd));
  }
  if (raw.path_len > 0) doc.Set("path", std::string(raw.path, raw.path_len));
  if (raw.path2_len > 0) {
    doc.Set("path2", std::string(raw.path2, raw.path2_len));
  }
  if (raw.xattr_len > 0) {
    doc.Set("xattr_name", std::string(raw.xattr_name, raw.xattr_len));
  }
  if (desc.data_related || raw.count > 0) {
    doc.Set("count", static_cast<std::int64_t>(raw.count));
  }
  if (raw.arg_offset >= 0) doc.Set("arg_offset", raw.arg_offset);
  if (raw.whence >= 0) doc.Set("whence", static_cast<std::int64_t>(raw.whence));
  if (raw.flags != 0) doc.Set("flags", static_cast<std::int64_t>(raw.flags));
  if (raw.mode != 0) doc.Set("mode", static_cast<std::int64_t>(raw.mode));
  if (raw.file_type != static_cast<std::uint8_t>(os::FileType::kUnknown)) {
    doc.Set("file_type",
            std::string(os::FileTypeName(
                static_cast<os::FileType>(raw.file_type))));
  }
  if (raw.file_offset >= 0) doc.Set("file_offset", raw.file_offset);
  if (raw.tag_valid != 0) {
    FileTag tag;
    tag.valid = true;
    tag.dev = raw.tag_dev;
    tag.ino = raw.tag_ino;
    tag.first_access_ts = raw.tag_ts;
    doc.Set("file_tag", tag.ToKey());
    doc.Set("tag_dev", static_cast<std::int64_t>(raw.tag_dev));
    doc.Set("tag_ino", static_cast<std::int64_t>(raw.tag_ino));
    doc.Set("tag_ts", raw.tag_ts);
  }
  return doc;
}

void SerializeEvent(const Event& event, std::vector<std::byte>* out) {
  out->resize(sizeof(WireEvent));
  FillWireEvent(reinterpret_cast<WireEvent*>(out->data()), event);
}

Expected<Event> DeserializeEvent(std::span<const std::byte> bytes) {
  auto view = WireEventView::FromBytes(bytes);
  if (!view.ok()) return view.status();
  return MaterializeEvent(view.value());
}

Json Event::ToJson(std::string_view session) const {
  const os::SyscallDescriptor& desc = os::Describe(nr);
  Json doc = Json::MakeObject();
  doc.Set("session", std::string(session));
  doc.Set("syscall", std::string(desc.name));
  doc.Set("category", std::string(os::CategoryName(desc.category)));
  doc.Set("pid", static_cast<std::int64_t>(pid));
  doc.Set("tid", static_cast<std::int64_t>(tid));
  doc.Set("comm", comm);
  doc.Set("proc_name", proc_name);
  doc.Set("time_enter", time_enter);
  doc.Set("time_exit", time_exit);
  doc.Set("duration_ns", duration());
  doc.Set("ret", ret);
  doc.Set("cpu", cpu);
  if (fd >= 0 && desc.takes_fd) doc.Set("fd", static_cast<std::int64_t>(fd));
  if (!path.empty()) doc.Set("path", path);
  if (!path2.empty()) doc.Set("path2", path2);
  if (!xattr_name.empty()) doc.Set("xattr_name", xattr_name);
  if (desc.data_related || count > 0) {
    doc.Set("count", static_cast<std::int64_t>(count));
  }
  if (arg_offset >= 0) doc.Set("arg_offset", arg_offset);
  if (whence >= 0) doc.Set("whence", static_cast<std::int64_t>(whence));
  if (flags != 0) doc.Set("flags", static_cast<std::int64_t>(flags));
  if (mode != 0) doc.Set("mode", static_cast<std::int64_t>(mode));
  if (file_type != os::FileType::kUnknown) {
    doc.Set("file_type", std::string(os::FileTypeName(file_type)));
  }
  if (file_offset >= 0) doc.Set("file_offset", file_offset);
  if (tag.valid) {
    doc.Set("file_tag", tag.ToKey());
    doc.Set("tag_dev", static_cast<std::int64_t>(tag.dev));
    doc.Set("tag_ino", static_cast<std::int64_t>(tag.ino));
    doc.Set("tag_ts", tag.first_access_ts);
  }
  return doc;
}

}  // namespace dio::tracer
