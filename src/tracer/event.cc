#include "tracer/event.h"

#include <cstring>

namespace dio::tracer {

namespace {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_->size();
    out_->resize(at + sizeof(T));
    std::memcpy(out_->data() + at, &value, sizeof(T));
  }

  void PutString(const std::string& s) {
    Put<std::uint16_t>(static_cast<std::uint16_t>(
        std::min<std::size_t>(s.size(), 0xFFFF)));
    const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
    const std::size_t at = out_->size();
    out_->resize(at + n);
    std::memcpy(out_->data() + at, s.data(), n);
  }

 private:
  std::vector<std::byte>* out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  bool Get(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > bytes_.size()) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool GetString(std::string* s) {
    std::uint16_t len = 0;
    if (!Get(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string FileTag::ToKey() const {
  std::string out = std::to_string(dev);
  out.push_back('|');
  out += std::to_string(ino);
  out.push_back('|');
  out += std::to_string(first_access_ts);
  return out;
}

void SerializeEvent(const Event& event, std::vector<std::byte>* out) {
  out->clear();
  ByteWriter w(out);
  w.Put<std::uint8_t>(static_cast<std::uint8_t>(event.phase));
  w.Put<std::uint8_t>(static_cast<std::uint8_t>(event.nr));
  w.Put<std::int32_t>(event.pid);
  w.Put<std::int32_t>(event.tid);
  w.Put<std::int64_t>(event.time_enter);
  w.Put<std::int64_t>(event.time_exit);
  w.Put<std::int64_t>(event.ret);
  w.Put<std::int32_t>(event.cpu);
  w.Put<std::int32_t>(event.fd);
  w.Put<std::uint64_t>(event.count);
  w.Put<std::int64_t>(event.arg_offset);
  w.Put<std::int32_t>(event.whence);
  w.Put<std::uint32_t>(event.flags);
  w.Put<std::uint32_t>(event.mode);
  w.Put<std::uint8_t>(static_cast<std::uint8_t>(event.file_type));
  w.Put<std::int64_t>(event.file_offset);
  w.Put<std::uint8_t>(event.tag.valid ? 1 : 0);
  w.Put<std::uint64_t>(event.tag.dev);
  w.Put<std::uint64_t>(event.tag.ino);
  w.Put<std::int64_t>(event.tag.first_access_ts);
  w.PutString(event.comm);
  w.PutString(event.proc_name);
  w.PutString(event.path);
  w.PutString(event.path2);
  w.PutString(event.xattr_name);
}

Expected<Event> DeserializeEvent(std::span<const std::byte> bytes) {
  Event event;
  ByteReader r(bytes);
  std::uint8_t phase = 0;
  std::uint8_t nr = 0;
  std::uint8_t file_type = 0;
  std::uint8_t tag_valid = 0;
  const bool ok =
      r.Get(&phase) && r.Get(&nr) && r.Get(&event.pid) && r.Get(&event.tid) &&
      r.Get(&event.time_enter) && r.Get(&event.time_exit) &&
      r.Get(&event.ret) && r.Get(&event.cpu) && r.Get(&event.fd) &&
      r.Get(&event.count) &&
      r.Get(&event.arg_offset) && r.Get(&event.whence) &&
      r.Get(&event.flags) && r.Get(&event.mode) && r.Get(&file_type) &&
      r.Get(&event.file_offset) && r.Get(&tag_valid) &&
      r.Get(&event.tag.dev) && r.Get(&event.tag.ino) &&
      r.Get(&event.tag.first_access_ts) && r.GetString(&event.comm) &&
      r.GetString(&event.proc_name) && r.GetString(&event.path) &&
      r.GetString(&event.path2) && r.GetString(&event.xattr_name);
  if (!ok || nr >= static_cast<std::uint8_t>(os::SyscallNr::kCount) ||
      phase > static_cast<std::uint8_t>(EventPhase::kExit)) {
    return InvalidArgument("malformed event record");
  }
  event.phase = static_cast<EventPhase>(phase);
  event.nr = static_cast<os::SyscallNr>(nr);
  event.file_type = static_cast<os::FileType>(file_type);
  event.tag.valid = tag_valid != 0;
  return event;
}

Json Event::ToJson(std::string_view session) const {
  const os::SyscallDescriptor& desc = os::Describe(nr);
  Json doc = Json::MakeObject();
  doc.Set("session", std::string(session));
  doc.Set("syscall", std::string(desc.name));
  doc.Set("category", std::string(os::CategoryName(desc.category)));
  doc.Set("pid", static_cast<std::int64_t>(pid));
  doc.Set("tid", static_cast<std::int64_t>(tid));
  doc.Set("comm", comm);
  doc.Set("proc_name", proc_name);
  doc.Set("time_enter", time_enter);
  doc.Set("time_exit", time_exit);
  doc.Set("duration_ns", duration());
  doc.Set("ret", ret);
  doc.Set("cpu", cpu);
  if (fd >= 0 && desc.takes_fd) doc.Set("fd", static_cast<std::int64_t>(fd));
  if (!path.empty()) doc.Set("path", path);
  if (!path2.empty()) doc.Set("path2", path2);
  if (!xattr_name.empty()) doc.Set("xattr_name", xattr_name);
  if (desc.data_related || count > 0) {
    doc.Set("count", static_cast<std::int64_t>(count));
  }
  if (arg_offset >= 0) doc.Set("arg_offset", arg_offset);
  if (whence >= 0) doc.Set("whence", static_cast<std::int64_t>(whence));
  if (flags != 0) doc.Set("flags", static_cast<std::int64_t>(flags));
  if (mode != 0) doc.Set("mode", static_cast<std::int64_t>(mode));
  if (file_type != os::FileType::kUnknown) {
    doc.Set("file_type", std::string(os::FileTypeName(file_type)));
  }
  if (file_offset >= 0) doc.Set("file_offset", file_offset);
  if (tag.valid) {
    doc.Set("file_tag", tag.ToKey());
    doc.Set("tag_dev", static_cast<std::int64_t>(tag.dev));
    doc.Set("tag_ino", static_cast<std::int64_t>(tag.ino));
    doc.Set("tag_ts", tag.first_access_ts);
  }
  return doc;
}

}  // namespace dio::tracer
