// Kernel-side filters (§II-B): syscall type, PID/TID, and file/directory
// paths. Implementing these in the kernel reduces the data crossing to
// user-space, which the ablation bench `ab_filters` quantifies.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "oskernel/syscall_nr.h"
#include "oskernel/types.h"

namespace dio::tracer {

struct FilterConfig {
  // Empty = all 42 syscalls. (Syscall filtering is additionally enforced at
  // attach time: tracepoints for unselected syscalls are never enabled.)
  std::set<os::SyscallNr> syscalls;
  std::set<os::Pid> pids;
  std::set<os::Tid> tids;
  // Prefix-matched file/directory paths ("/tmp/logs" matches
  // "/tmp/logs/a.log").
  std::vector<std::string> path_prefixes;

  [[nodiscard]] bool empty() const {
    return syscalls.empty() && pids.empty() && tids.empty() &&
           path_prefixes.empty();
  }
};

class Filters {
 public:
  explicit Filters(FilterConfig config) : config_(std::move(config)) {}

  [[nodiscard]] bool MatchSyscall(os::SyscallNr nr) const {
    return config_.syscalls.empty() || config_.syscalls.contains(nr);
  }
  [[nodiscard]] bool MatchTask(os::Pid pid, os::Tid tid) const {
    if (!config_.pids.empty() && !config_.pids.contains(pid)) return false;
    if (!config_.tids.empty() && !config_.tids.contains(tid)) return false;
    return true;
  }
  // `path` is the event's target path (argument path or fd's dentry path).
  // With no path filter configured everything matches; with one configured,
  // events whose path is unknown are rejected (they cannot be proven to
  // target a watched file).
  [[nodiscard]] bool MatchPath(std::string_view path) const {
    if (config_.path_prefixes.empty()) return true;
    if (path.empty()) return false;
    for (const std::string& prefix : config_.path_prefixes) {
      if (path == prefix) return true;
      if (path.size() > prefix.size() && path.starts_with(prefix) &&
          (path[prefix.size()] == '/' || prefix.back() == '/')) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool has_path_filter() const {
    return !config_.path_prefixes.empty();
  }
  [[nodiscard]] const FilterConfig& config() const { return config_; }

 private:
  FilterConfig config_;
};

}  // namespace dio::tracer
