// Binary trace file format: the compact, versioned, CRC-framed capture of a
// tracer WireEvent stream (ROADMAP item 3; DiOS-style record/replay).
//
// Layout:
//
//   header (24 bytes)
//     magic[8]   "DIOTRACE"
//     u32 LE     version (kTraceVersion)
//     u32 LE     flags (reserved, 0)
//     u32 LE     reserved (0)
//     u32 LE     CRC-32 of the preceding 20 bytes
//   record*
//     u8         type (TraceRecordType)
//     u32 LE     payload length
//     bytes      payload
//     u32 LE     CRC-32 of [type, length, payload]
//
// Record payloads are varint/zigzag packed (LEB128). Dictionary records
// intern comm/proc_name/path/path2/xattr strings in first-use order (id 0 is
// the empty string, ids count up from 1), so an event record references
// strings by id and repeated paths cost two or three bytes. Event records
// delta-encode time_enter against the previous event record and carry the
// exit time as a duration, so monotonic nanosecond timestamps shrink to a
// few bytes. The encoding is fully deterministic: the same event sequence
// always produces the same bytes, which is what makes the round-trip
// property (record -> read -> re-record byte-identical) testable.
//
// A change to any of this is a trace FORMAT change: bump kTraceVersion and
// update DESIGN.md "Trace record/replay" alongside.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace dio::trace {

inline constexpr char kTraceMagic[8] = {'D', 'I', 'O', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderBytes = 24;
// Frame prelude: type byte + u32 payload length.
inline constexpr std::size_t kFramePreludeBytes = 5;
// Sanity bound on one record's payload; anything larger is corruption, not
// a legitimate record (an event packs into well under 1 KiB, a dictionary
// entry is bounded by the wire-format string caps).
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 16;

enum class TraceRecordType : std::uint8_t {
  kDict = 1,   // varint id, then the interned string bytes to payload end
  kEvent = 2,  // packed WireEvent (see reader/writer)
};

// CRC-32 (ISO 3309, polynomial 0xEDB88320 reflected) over a byte span —
// the frame checksum. Plain table-driven software implementation; the
// framing cost is measured by mb_replay, not assumed.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// ---- varint pack/unpack -----------------------------------------------
// LEB128 unsigned varints; signed values go through zigzag so small
// negative deltas stay small. Appenders grow `out`; readers advance `*pos`
// and return false on overrun (the caller reports corruption).

inline void PutVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

inline std::uint64_t ZigZag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t UnZigZag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

inline void PutZigZag(std::string* out, std::int64_t value) {
  PutVarint(out, ZigZag(value));
}

inline bool GetVarint(const std::string& buf, std::size_t* pos,
                      std::uint64_t* out) {
  std::uint64_t value = 0;
  int shift = 0;
  while (*pos < buf.size() && shift < 64) {
    const auto byte = static_cast<std::uint8_t>(buf[*pos]);
    ++*pos;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool GetZigZag(const std::string& buf, std::size_t* pos,
                      std::int64_t* out) {
  std::uint64_t raw = 0;
  if (!GetVarint(buf, pos, &raw)) return false;
  *out = UnZigZag(raw);
  return true;
}

// ---- fixed-width little-endian helpers --------------------------------

inline void PutU32(std::string* out, std::uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

inline std::uint32_t ReadU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24;
}

// The 24-byte header for the current version (flags 0), CRC included.
std::string EncodeTraceHeader();

}  // namespace dio::trace
