#include "trace/writer.h"

#include <utility>

namespace dio::trace {

Expected<std::unique_ptr<TraceWriter>> TraceWriter::Open(
    const std::string& path) {
  auto writer = std::unique_ptr<TraceWriter>(new TraceWriter(path));
  if (!writer->out_) {
    return InvalidArgument("cannot open trace file for write: " + path);
  }
  const std::string header = EncodeTraceHeader();
  writer->out_.write(header.data(),
                     static_cast<std::streamsize>(header.size()));
  if (!writer->out_) {
    return InvalidArgument("cannot write trace header: " + path);
  }
  writer->stats_.bytes = header.size();
  return writer;
}

TraceWriter::TraceWriter(std::string path)
    : path_(std::move(path)),
      out_(path_, std::ios::binary | std::ios::trunc) {}

std::uint32_t TraceWriter::InternLocked(std::string_view s) {
  if (s.empty()) return 0;
  auto it = dict_.find(std::string(s));
  if (it != dict_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(dict_.size() + 1);
  dict_.emplace(std::string(s), id);
  std::string payload;
  PutVarint(&payload, id);
  payload.append(s);
  WriteFrameLocked(TraceRecordType::kDict, payload);
  ++stats_.dict_entries;
  return id;
}

void TraceWriter::WriteFrameLocked(TraceRecordType type,
                                   const std::string& payload) {
  std::string frame;
  frame.reserve(kFramePreludeBytes + payload.size() + 4);
  frame.push_back(static_cast<char>(type));
  PutU32(&frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  PutU32(&frame, Crc32(frame.data(), frame.size()));
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (!out_) failed_ = true;
  stats_.bytes += frame.size();
}

Status TraceWriter::Append(const tracer::WireEvent& record) {
  std::scoped_lock lock(mu_);
  if (failed_) return Internal("trace writer failed: " + path_);

  // Dictionary entries for any new strings go first, so at decode time an
  // event record only ever references already-interned ids.
  const std::uint32_t comm_id =
      InternLocked({record.comm, record.comm_len});
  const std::uint32_t proc_name_id =
      InternLocked({record.proc_name, record.proc_name_len});
  const std::uint32_t path_id = InternLocked({record.path, record.path_len});
  const std::uint32_t path2_id =
      InternLocked({record.path2, record.path2_len});
  const std::uint32_t xattr_id =
      InternLocked({record.xattr_name, record.xattr_len});

  std::string& p = scratch_;
  p.clear();
  PutVarint(&p, record.nr);
  PutVarint(&p, record.phase);
  PutZigZag(&p, record.pid);
  PutZigZag(&p, record.tid);
  PutZigZag(&p, record.cpu);
  PutZigZag(&p, record.time_enter - prev_time_enter_);
  PutZigZag(&p, record.time_exit - record.time_enter);
  PutZigZag(&p, record.ret);
  PutVarint(&p, record.count);
  PutZigZag(&p, record.arg_offset);
  PutZigZag(&p, record.file_offset);
  PutZigZag(&p, record.fd);
  PutZigZag(&p, record.whence);
  PutVarint(&p, record.flags);
  PutVarint(&p, record.mode);
  PutVarint(&p, record.file_type);
  PutVarint(&p, comm_id);
  PutVarint(&p, proc_name_id);
  PutVarint(&p, path_id);
  PutVarint(&p, path2_id);
  PutVarint(&p, xattr_id);
  PutVarint(&p, record.tag_valid ? 1 : 0);
  if (record.tag_valid) {
    PutVarint(&p, record.tag_dev);
    PutVarint(&p, record.tag_ino);
    PutZigZag(&p, record.tag_ts - record.time_enter);
  }
  // Truncation counters are almost always zero; a presence bitmap keeps the
  // common case to one byte while still round-tripping them exactly.
  std::uint64_t trunc_bits = 0;
  const std::uint16_t trunc[] = {record.comm_trunc, record.proc_name_trunc,
                                 record.path_trunc, record.path2_trunc,
                                 record.xattr_trunc};
  for (std::size_t i = 0; i < 5; ++i) {
    if (trunc[i] != 0) trunc_bits |= 1ull << i;
  }
  PutVarint(&p, trunc_bits);
  for (std::size_t i = 0; i < 5; ++i) {
    if (trunc[i] != 0) PutVarint(&p, trunc[i]);
  }

  WriteFrameLocked(TraceRecordType::kEvent, p);
  if (failed_) return Internal("trace write failed: " + path_);
  prev_time_enter_ = record.time_enter;
  ++stats_.events;
  return Status::Ok();
}

Status TraceWriter::Append(const tracer::Event& event) {
  tracer::WireEvent record;
  tracer::FillWireEvent(&record, event);
  return Append(record);
}

Status TraceWriter::Flush() {
  std::scoped_lock lock(mu_);
  out_.flush();
  if (!out_) {
    failed_ = true;
    return Internal("trace flush failed: " + path_);
  }
  return Status::Ok();
}

TraceWriterStats TraceWriter::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

// ---- TraceRecordSink ----------------------------------------------------

Expected<std::unique_ptr<TraceRecordSink>> TraceRecordSink::Open(
    const std::string& path) {
  if (path.empty()) {
    return InvalidArgument(
        "trace sink requires a path (transport.trace_path)");
  }
  auto writer = TraceWriter::Open(path);
  if (!writer.ok()) return writer.status();
  return std::unique_ptr<TraceRecordSink>(
      new TraceRecordSink(std::move(*writer)));
}

TraceRecordSink::TraceRecordSink(std::unique_ptr<TraceWriter> writer)
    : writer_(std::move(writer)) {
  stats_.stage = "trace";
}

Status TraceRecordSink::Submit(transport::EventBatch batch) {
  std::scoped_lock lock(mu_);
  stats_.batches_in += 1;
  stats_.events_in += batch.size();
  std::uint64_t recorded = 0;
  for (const tracer::Event& event : batch.events) {
    if (Status s = writer_->Append(event); !s.ok()) return s;
    ++recorded;
  }
  for (const tracer::WireEvent& record : batch.wire) {
    if (Status s = writer_->Append(record); !s.ok()) return s;
    ++recorded;
  }
  // JSON-only documents cannot be mapped back to the wire layout; counted
  // as dropped so the stage ledger still balances.
  stats_.dropped_events += batch.documents.size();
  if (!batch.documents.empty()) stats_.dropped_batches += recorded == 0;
  stats_.batches_out += recorded > 0 || batch.documents.empty();
  stats_.events_out += recorded;
  return Status::Ok();
}

void TraceRecordSink::Flush() { (void)writer_->Flush(); }

void TraceRecordSink::CollectStats(
    std::vector<transport::StageStats>* out) const {
  std::scoped_lock lock(mu_);
  out->push_back(stats_);
}

}  // namespace dio::trace
