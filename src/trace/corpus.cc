#include "trace/corpus.h"

#include "common/clock.h"
#include "common/random.h"
#include "oskernel/syscall_nr.h"
#include "oskernel/types.h"
#include "trace/writer.h"
#include "tracer/event.h"

namespace dio::trace {

namespace {

// Builds one class's stream: owns the virtual clock, the fd allocator, and
// the per-class identity (pid/comm), so the class generators below read as
// the workload they imitate.
class StreamBuilder {
 public:
  StreamBuilder(std::size_t ops, std::uint64_t seed, std::int32_t pid,
                std::string_view comm)
      : ops_(ops), rng_(seed), pid_(pid), comm_(comm) {}

  [[nodiscard]] bool Full() const { return events_.size() >= ops_; }
  std::vector<tracer::WireEvent>&& Take() { return std::move(events_); }

  std::int32_t NextFd() { return next_fd_++; }

  // Emits one completed syscall record and advances the clock by a seeded
  // gap (20-28us, ~40k syscalls/s), so the stream has a realistic,
  // deterministic cadence: hot enough to stress replay pacing, with enough
  // inter-arrival headroom that an N-way amplified replay is pacing-bound
  // rather than backend-ingest-bound.
  tracer::WireEvent& Emit(os::SyscallNr nr, std::int64_t ret) {
    tracer::WireEvent e{};
    e.nr = static_cast<std::uint8_t>(nr);
    e.phase = static_cast<std::uint8_t>(tracer::EventPhase::kFull);
    e.pid = pid_;
    e.tid = pid_;
    e.cpu = static_cast<std::int32_t>(events_.size() % 4);
    e.time_enter = now_;
    e.time_exit = now_ + 500 + static_cast<Nanos>(rng_.Uniform(500));
    e.ret = ret;
    e.comm_len = tracer::WireEvent::FillString(
        e.comm, tracer::kWireCommCap, comm_, &e.comm_trunc);
    e.proc_name_len = tracer::WireEvent::FillString(
        e.proc_name, tracer::kWireCommCap, comm_, &e.proc_name_trunc);
    now_ +=
        20 * kMicrosecond + static_cast<Nanos>(rng_.Uniform(8 * kMicrosecond));
    events_.push_back(e);
    return events_.back();
  }

  void SetPath(tracer::WireEvent& e, std::string_view path) {
    e.path_len = tracer::WireEvent::FillString(e.path, tracer::kWirePathCap,
                                               path, &e.path_trunc);
  }
  void SetPath2(tracer::WireEvent& e, std::string_view path) {
    e.path2_len = tracer::WireEvent::FillString(
        e.path2, tracer::kWirePathCap, path, &e.path2_trunc);
  }

  void Mkdir(const std::string& path) {
    auto& e = Emit(os::SyscallNr::kMkdir, 0);
    e.mode = 0755;
    SetPath(e, path);
  }

  // Open with O_CREAT; records the fd as ret and tags the file identity so
  // correlation-dependent consumers see a complete record.
  std::int32_t OpenCreate(const std::string& path, std::uint32_t extra_flags) {
    const std::int32_t fd = NextFd();
    auto& e = Emit(os::SyscallNr::kOpenat, fd);
    e.flags = os::openflag::kReadWrite | os::openflag::kCreate | extra_flags;
    e.mode = 0644;
    e.tag_valid = 1;
    e.tag_dev = 1;
    e.tag_ino = static_cast<std::uint64_t>(fd) + 1000;
    e.tag_ts = e.time_enter;
    e.file_type = static_cast<std::uint8_t>(os::FileType::kRegular);
    SetPath(e, path);
    return fd;
  }

  std::int32_t OpenRead(const std::string& path) {
    const std::int32_t fd = NextFd();
    auto& e = Emit(os::SyscallNr::kOpenat, fd);
    e.flags = os::openflag::kReadOnly;
    e.tag_valid = 1;
    e.tag_dev = 1;
    e.tag_ino = static_cast<std::uint64_t>(fd) + 1000;
    e.tag_ts = e.time_enter;
    e.file_type = static_cast<std::uint8_t>(os::FileType::kRegular);
    SetPath(e, path);
    return fd;
  }

  void Write(std::int32_t fd, std::uint64_t count, std::int64_t offset) {
    auto& e = Emit(os::SyscallNr::kWrite, static_cast<std::int64_t>(count));
    e.fd = fd;
    e.count = count;
    e.file_offset = offset;
  }

  void Pwrite(std::int32_t fd, std::uint64_t count, std::int64_t offset) {
    auto& e = Emit(os::SyscallNr::kPwrite64, static_cast<std::int64_t>(count));
    e.fd = fd;
    e.count = count;
    e.arg_offset = offset;
    e.file_offset = offset;
  }

  // ret 0 models reads at EOF (the tail-follow idle poll).
  void Read(std::int32_t fd, std::uint64_t count, std::int64_t offset,
            std::int64_t ret) {
    auto& e = Emit(os::SyscallNr::kRead, ret);
    e.fd = fd;
    e.count = count;
    e.file_offset = offset;
  }

  void Pread(std::int32_t fd, std::uint64_t count, std::int64_t offset) {
    auto& e = Emit(os::SyscallNr::kPread64, static_cast<std::int64_t>(count));
    e.fd = fd;
    e.count = count;
    e.arg_offset = offset;
    e.file_offset = offset;
  }

  void Fsync(std::int32_t fd) { Emit(os::SyscallNr::kFsync, 0).fd = fd; }
  void Fdatasync(std::int32_t fd) {
    Emit(os::SyscallNr::kFdatasync, 0).fd = fd;
  }
  void Close(std::int32_t fd) { Emit(os::SyscallNr::kClose, 0).fd = fd; }

  void Lseek(std::int32_t fd, std::int64_t offset, int whence,
             std::int64_t ret) {
    auto& e = Emit(os::SyscallNr::kLseek, ret);
    e.fd = fd;
    e.arg_offset = offset;
    e.whence = whence;
  }

  void Stat(const std::string& path, std::int64_t ret = 0) {
    SetPath(Emit(os::SyscallNr::kStat, ret), path);
  }

  void Rename(const std::string& from, const std::string& to) {
    auto& e = Emit(os::SyscallNr::kRename, 0);
    SetPath(e, from);
    SetPath2(e, to);
  }

  std::uint64_t Uniform(std::uint64_t bound) { return rng_.Uniform(bound); }

 private:
  std::size_t ops_;
  Random rng_;
  std::int32_t pid_;
  std::string comm_;
  Nanos now_ = kSecond;
  std::int32_t next_fd_ = 3;
  std::vector<tracer::WireEvent> events_;
};

// LSM engine: WAL group-commit appends with periodic fsync, memtable flushes
// into SSTs (sequential writes then rename into place), and point reads.
std::vector<tracer::WireEvent> GenRocksDb(std::size_t ops,
                                          std::uint64_t seed) {
  StreamBuilder b(ops, seed, 1200, "db_bench");
  b.Mkdir("/data");
  b.Mkdir("/data/db");
  int generation = 0;
  while (!b.Full()) {
    const std::string wal =
        "/data/db/wal-" + std::to_string(generation) + ".log";
    const std::int32_t wal_fd = b.OpenCreate(wal, os::openflag::kAppend);
    std::int64_t wal_off = 0;
    for (int i = 0; i < 24 && !b.Full(); ++i) {
      const std::uint64_t n = 512 + b.Uniform(3584);
      b.Write(wal_fd, n, wal_off);
      wal_off += static_cast<std::int64_t>(n);
      if (i % 8 == 7) b.Fsync(wal_fd);
    }
    if (!b.Full()) {
      const std::string tmp =
          "/data/db/sst-" + std::to_string(generation) + ".tmp";
      const std::int32_t sst_fd = b.OpenCreate(tmp, 0);
      std::int64_t sst_off = 0;
      for (int i = 0; i < 8 && !b.Full(); ++i) {
        b.Write(sst_fd, 32768, sst_off);
        sst_off += 32768;
      }
      b.Fsync(sst_fd);
      b.Close(sst_fd);
      b.Rename(tmp, "/data/db/sst-" + std::to_string(generation) + ".sst");
    }
    const std::int32_t read_fd =
        b.OpenRead("/data/db/sst-" + std::to_string(generation) + ".sst");
    for (int i = 0; i < 6 && !b.Full(); ++i) {
      b.Pread(read_fd, 4096, static_cast<std::int64_t>(b.Uniform(8)) * 4096);
    }
    b.Close(read_fd);
    b.Close(wal_fd);
    ++generation;
  }
  return b.Take();
}

// Log shipper tailing rotating files: stat poll, open, chunked reads to
// EOF, position-db pwrite, close — the Fluent-Bit tail-input signature.
std::vector<tracer::WireEvent> GenFluentBit(std::size_t ops,
                                            std::uint64_t seed) {
  StreamBuilder b(ops, seed, 2300, "fluent-bit");
  b.Mkdir("/data");
  b.Mkdir("/data/logs");
  const std::int32_t pos_fd = b.OpenCreate("/data/logs/tail.db", 0);
  int cycle = 0;
  while (!b.Full()) {
    const std::string log =
        "/data/logs/app-" + std::to_string(cycle % 4) + ".log";
    b.Stat(log, cycle < 4 ? -2 : 0);  // first pass: file not there yet
    const std::int32_t fd = b.OpenCreate(log, os::openflag::kAppend);
    b.Lseek(fd, 0, os::kSeekEnd, 0);
    std::int64_t off = 0;
    const int chunks = 3 + static_cast<int>(b.Uniform(5));
    for (int i = 0; i < chunks && !b.Full(); ++i) {
      b.Read(fd, 16384, off, 16384);
      off += 16384;
    }
    b.Read(fd, 16384, off, 0);  // EOF probe
    b.Pwrite(pos_fd, 64, 64 * (cycle % 4));
    b.Close(fd);
    ++cycle;
  }
  return b.Take();
}

// Durability-first WAL: tiny appends, each followed by fdatasync, with
// rotation renames — the worst-case sync-per-record pattern.
std::vector<tracer::WireEvent> GenWalFsync(std::size_t ops,
                                           std::uint64_t seed) {
  StreamBuilder b(ops, seed, 3400, "wal-writer");
  b.Mkdir("/data");
  b.Mkdir("/data/wal");
  int generation = 0;
  while (!b.Full()) {
    const std::string wal =
        "/data/wal/seg-" + std::to_string(generation) + ".wal";
    const std::int32_t fd = b.OpenCreate(wal, os::openflag::kAppend);
    std::int64_t off = 0;
    for (int i = 0; i < 56 && !b.Full(); ++i) {
      const std::uint64_t n = 128 + b.Uniform(256);
      b.Write(fd, n, off);
      off += static_cast<std::int64_t>(n);
      b.Fdatasync(fd);
    }
    b.Close(fd);
    b.Rename(wal, wal + ".done");
    ++generation;
  }
  return b.Take();
}

// Append-only segment store: large sequential writes, fsync every 16, roll
// to a fresh segment when full — the Kafka-style log-segment pattern.
std::vector<tracer::WireEvent> GenLogSegment(std::size_t ops,
                                             std::uint64_t seed) {
  StreamBuilder b(ops, seed, 4500, "segment-store");
  b.Mkdir("/data");
  b.Mkdir("/data/segments");
  int segment = 0;
  while (!b.Full()) {
    const std::string path =
        "/data/segments/" + std::to_string(segment) + ".seg";
    const std::int32_t fd = b.OpenCreate(path, 0);
    std::int64_t off = 0;
    for (int i = 0; i < 48 && !b.Full(); ++i) {
      b.Write(fd, 8192, off);
      off += 8192;
      if (i % 16 == 15) b.Fsync(fd);
    }
    b.Fsync(fd);
    b.Close(fd);
    ++segment;
  }
  return b.Take();
}

}  // namespace

std::string_view CorpusClassName(CorpusClass cls) {
  switch (cls) {
    case CorpusClass::kRocksDb: return "rocksdb";
    case CorpusClass::kFluentBit: return "fluentbit";
    case CorpusClass::kWalFsync: return "walfsync";
    case CorpusClass::kLogSegment: return "logsegment";
  }
  return "unknown";
}

Expected<CorpusClass> CorpusClassFromName(std::string_view name) {
  for (const CorpusClass cls : kAllCorpusClasses) {
    if (CorpusClassName(cls) == name) return cls;
  }
  return InvalidArgument("unknown corpus class: " + std::string(name) +
                         " (expected rocksdb|fluentbit|walfsync|logsegment)");
}

std::vector<tracer::WireEvent> GenerateCorpusEvents(CorpusClass cls,
                                                    std::size_t ops,
                                                    std::uint64_t seed) {
  std::vector<tracer::WireEvent> events;
  switch (cls) {
    case CorpusClass::kRocksDb: events = GenRocksDb(ops, seed); break;
    case CorpusClass::kFluentBit: events = GenFluentBit(ops, seed); break;
    case CorpusClass::kWalFsync: events = GenWalFsync(ops, seed); break;
    case CorpusClass::kLogSegment: events = GenLogSegment(ops, seed); break;
  }
  // The generators stop at natural pattern boundaries (a trailing close or
  // rename may overshoot); trim to the exact requested length.
  if (events.size() > ops) events.resize(ops);
  return events;
}

Status WriteCorpusTrace(const std::string& path, CorpusClass cls,
                        std::size_t ops, std::uint64_t seed) {
  auto writer = TraceWriter::Open(path);
  if (!writer.ok()) return writer.status();
  for (const tracer::WireEvent& event :
       GenerateCorpusEvents(cls, ops, seed)) {
    DIO_RETURN_IF_ERROR((*writer)->Append(event));
  }
  return (*writer)->Flush();
}

}  // namespace dio::trace
