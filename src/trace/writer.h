// Trace recorder: taps the tracer's WireEvent stream and writes the compact
// CRC-framed binary trace file described in trace/format.h.
//
// Three entry points, one file format:
//   * TraceWriter        — the encoder itself (Append one wire record).
//   * TraceRecordSink    — a transport::Transport terminal, so any session's
//                          shipping chain can record by listing "trace" in
//                          transport.sinks (DioService resolves it, like
//                          "bulk"); the binary tap of the NDJSON spool.
//   * RecordingEventSink — a tracer::EventSink tee: records the stream and
//                          forwards it untouched to a downstream sink, for
//                          capturing a live run while it still indexes.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "trace/format.h"
#include "tracer/event.h"
#include "tracer/sink.h"
#include "transport/transport.h"

namespace dio::trace {

struct TraceWriterStats {
  std::uint64_t events = 0;        // event records written
  std::uint64_t dict_entries = 0;  // interned strings emitted
  std::uint64_t bytes = 0;         // file size, header included
};

class TraceWriter {
 public:
  // Creates/truncates `path` and writes the header.
  static Expected<std::unique_ptr<TraceWriter>> Open(const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Appends one event record (plus any dictionary records its strings need
  // first). Thread-safe; the record order is the append order.
  Status Append(const tracer::WireEvent& record);
  Status Append(const tracer::Event& event);

  // Pushes buffered bytes to the OS. The format needs no footer, so a
  // flushed trace is valid up to the last whole record — a torn tail is
  // exactly what the reader's tolerant mode (trace/reader.h) skips.
  Status Flush();

  [[nodiscard]] TraceWriterStats stats() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit TraceWriter(std::string path);

  // Returns the dictionary id for `s` (0 = empty), emitting the dict record
  // on first use. Caller holds mu_.
  std::uint32_t InternLocked(std::string_view s);
  void WriteFrameLocked(TraceRecordType type, const std::string& payload);

  std::string path_;
  mutable std::mutex mu_;
  std::ofstream out_;
  bool failed_ = false;
  std::unordered_map<std::string, std::uint32_t> dict_;
  std::int64_t prev_time_enter_ = 0;
  TraceWriterStats stats_;
  std::string scratch_;  // reused payload buffer
};

// Transport terminal sink: records every batch's events to a trace file.
// Wire records are written verbatim; deferred Events are converted through
// the same FillWireEvent the hook path uses. Pre-materialized JSON documents
// cannot be mapped back onto the fixed wire layout losslessly, so they are
// counted as dropped (the stage ledger in == out + dropped still balances) —
// recording is a wire-level tap, and every production route ships binary.
class TraceRecordSink final : public transport::Transport {
 public:
  static Expected<std::unique_ptr<TraceRecordSink>> Open(
      const std::string& path);

  Status Submit(transport::EventBatch batch) override;
  void Flush() override;
  void CollectStats(std::vector<transport::StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "trace"; }

  [[nodiscard]] TraceWriter* writer() { return writer_.get(); }

 private:
  explicit TraceRecordSink(std::unique_ptr<TraceWriter> writer);

  std::unique_ptr<TraceWriter> writer_;
  mutable std::mutex mu_;
  transport::StageStats stats_;
};

// EventSink tee: Append to the trace, then forward to `downstream`
// untouched. The recorded stream is exactly what the downstream indexed, so
// a replay of the file is the run's twin.
class RecordingEventSink final : public tracer::EventSink {
 public:
  RecordingEventSink(TraceWriter* writer, tracer::EventSink* downstream)
      : writer_(writer), downstream_(downstream) {}

  void IndexBatch(std::vector<Json> documents) override {
    // JSON-only batches bypass the wire tap (see TraceRecordSink).
    downstream_->IndexBatch(std::move(documents));
  }
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override {
    for (const tracer::Event& event : events) (void)writer_->Append(event);
    downstream_->IndexEvents(session, std::move(events));
  }
  void IndexWire(std::string_view session,
                 std::vector<tracer::WireEvent> records) override {
    for (const tracer::WireEvent& record : records) {
      (void)writer_->Append(record);
    }
    downstream_->IndexWire(session, std::move(records));
  }
  void Flush() override {
    (void)writer_->Flush();
    downstream_->Flush();
  }

 private:
  TraceWriter* writer_;
  tracer::EventSink* downstream_;
};

}  // namespace dio::trace
