// Replay driver: re-issues a recorded trace against the pipeline at virtual
// speed with N-way load amplification ("fanout").
//
// Two replay targets share the clone/remap machinery:
//
//   * INJECT mode (ReplayDriver + an EventSink such as StoreIngestSink) —
//     the remapped wire stream is pushed straight into an indexing sink.
//     This is the byte-exact path: the same trace + seed + fanout always
//     produces the same injected records, so backend digests are comparable
//     across runs, speeds, and fanout decompositions.
//   * SYSCALL mode (SyscallIssuer) — each wire record is re-issued as a real
//     syscall against an os::Kernel so the replayed load exercises the whole
//     oskernel + tracer stack (the sim and the dio-replay CLI use this).
//
// Clone remap contract (documented in DESIGN.md "Trace record/replay"):
// clone c shifts pids/tids by c * kClonePidStride and all timestamps by
// CloneTimeOffset(seed, c) — a pure function of (seed, clone), never of the
// fanout count. Clone 0 is the identity in time, so a fanout-1 replay is the
// recorded run itself, and a fanout-N replay is bit-for-bit the union of N
// independent fanout-1 replays launched with clone_base = 0..N-1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "backend/store.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/status.h"
#include "oskernel/kernel.h"
#include "trace/reader.h"
#include "tracer/sink.h"
#include "tracer/wire.h"

namespace dio::trace {

// Pid/tid shift between adjacent clones; comfortably above any pid the
// oskernel or a recorded host trace hands out.
inline constexpr std::int32_t kClonePidStride = 1'000'000;

struct ReplayOptions {
  // Virtual speedup: inter-event gaps are divided by `speed` before pacing
  // (1 = recorded cadence, 1000 = 1000x compressed). Pacing runs through
  // `clock`, so a ManualClock makes any speed instantaneous-but-accounted.
  double speed = 1.0;
  // Number of clones of the recorded workload replayed together.
  int fanout = 1;
  // Global index of the first clone; clone c of any run equals clone c of
  // any other run with the same trace + seed (the fanout-parity property).
  int clone_base = 0;
  // Seed for the per-clone time jitter. Same seed -> same schedule.
  std::uint64_t seed = 1;
  // Events per IndexWire call into the sink.
  std::size_t batch_size = 256;
  // false: single-threaded k-way merge of the clone streams in remapped
  // time order — the deterministic schedule the parity tests digest.
  // true: one thread per clone, each pacing independently — the throughput
  // configuration mb_replay measures (per-clone streams stay deterministic;
  // only the interleaving across clones is scheduler-dependent).
  bool threaded = false;
  // Tolerate a torn final record in the trace (see TraceReadOptions).
  bool allow_truncated_tail = false;
  // Session name stamped on injected batches.
  std::string session = "replay";
  // Pacing clock; nullptr = SteadyClock::Instance().
  Clock* clock = nullptr;

  // Parses the `replay.*` section of a config file (replay.speed,
  // replay.fanout, replay.clone_base, replay.seed, replay.batch_size,
  // replay.threaded, replay.allow_truncated_tail, replay.session).
  static Expected<ReplayOptions> FromConfig(const Config& config);

  Status Validate() const;
};

struct ReplayReport {
  std::uint64_t events_read = 0;      // events decoded from the trace
  std::uint64_t events_injected = 0;  // events delivered to the sink
  std::uint64_t batches = 0;
  int clones = 0;
  bool truncated_tail = false;
  // FNV-1a digest of the injected schedule: in merge mode the exact global
  // order (clone id folded in), in threaded mode the XOR of per-clone
  // stream digests (order across clones is not part of the contract there).
  std::uint64_t schedule_digest = 0;
  Nanos virtual_span = 0;  // remapped last time_enter - first, all clones
  Nanos wall_elapsed = 0;  // clock time the replay took
  double requested_speed = 1.0;
  // virtual_span / wall_elapsed: how much recorded time was replayed per
  // unit of wall time (the achieved-vs-requested number mb_replay reports).
  double achieved_speed = 0.0;
};

// Deterministic per-clone time shift: 0 for clone 0 (the recorded run
// itself), otherwise a seed-derived jitter in [stride, stride + 1ms) with
// stride = clone * 1ms, so clone streams are offset but interleave.
Nanos CloneTimeOffset(std::uint64_t seed, int clone);

// Applies the clone remap in place: pid/tid shifted by
// clone * kClonePidStride, time_enter/time_exit/tag_ts shifted by `offset`.
void RemapForClone(tracer::WireEvent* event, int clone, Nanos offset);

// Folds one wire record into an FNV-1a digest. Hashes field-by-field (never
// raw struct bytes — padding is unspecified), so equal records always hash
// equal.
std::uint64_t HashWireEvent(std::uint64_t digest,
                            const tracer::WireEvent& event);

class ReplayDriver {
 public:
  // `sink` receives the remapped stream; it must be thread-safe when
  // options.threaded is set.
  ReplayDriver(ReplayOptions options, tracer::EventSink* sink);

  // Decodes `trace_path` and replays it.
  Expected<ReplayReport> ReplayFile(const std::string& trace_path);

  // Replays an already-decoded event stream (the bench path: decode once,
  // replay many configurations).
  Expected<ReplayReport> Replay(const std::vector<tracer::WireEvent>& events);

 private:
  ReplayReport RunMerged(const std::vector<tracer::WireEvent>& events,
                         Clock* clock);
  ReplayReport RunThreaded(const std::vector<tracer::WireEvent>& events,
                           Clock* clock);

  ReplayOptions options_;
  tracer::EventSink* sink_;
};

// EventSink that lands wire batches in an ElasticStore index (the inject
// target for parity tests and mb_replay). Thread-safe to the extent the
// store is.
class StoreIngestSink final : public tracer::EventSink {
 public:
  StoreIngestSink(backend::ElasticStore* store, std::string index)
      : store_(store), index_(std::move(index)) {}

  void IndexBatch(std::vector<Json> documents) override;
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override;
  void IndexWire(std::string_view session,
                 std::vector<tracer::WireEvent> records) override;
  void Flush() override;

 private:
  backend::ElasticStore* store_;
  std::string index_;
};

// Canonical digest of an index's visible documents: every document is
// dumped to its canonical JSON text, the dumps are sorted, and the sorted
// byte stream is FNV-1a hashed. Two indices hold byte-identical document
// sets iff their digests match, independent of ingest order — the
// "byte-identical backend digest" the replay determinism contract promises.
Expected<std::uint64_t> BackendQueryDigest(const backend::ElasticStore& store,
                                           const std::string& index);

struct IssueStats {
  std::uint64_t issued = 0;        // syscalls re-executed
  std::uint64_t skipped = 0;       // unmappable fd / unsupported syscall
  std::uint64_t ret_matches = 0;   // replay ret agreed with recorded ret
  std::uint64_t ret_mismatches = 0;
};

// Re-issues wire records as syscalls. Replay-side fds are tracked per
// (pid, recorded fd) — an open's recorded return value keys later reads,
// writes and closes, exactly like service::TraceReplayer does for store
// documents. Single-threaded; use one issuer per clone.
class SyscallIssuer {
 public:
  // Rewrites recorded paths into the replay namespace (e.g. prefixing a
  // per-clone root). Identity when empty.
  using PathMapper = std::function<std::string(const std::string&)>;

  // With bind_tasks, each distinct traced pid gets its own kernel
  // process/thread and every issue runs under a ScopedTask for it; without,
  // syscalls run on whatever task the caller has bound (the sim does its
  // own task management). skip_namespace_ops drops mkdir/rmdir/rename/
  // unlink records (counted as skipped): under the deterministic sim every
  // inode must be allocated before tracing starts, so namespace mutations —
  // which would allocate or free inodes mid-run in schedule-dependent
  // order — are replayed only by the CLI's syscall mode, not the sim.
  SyscallIssuer(os::Kernel* kernel, PathMapper mapper = {},
                bool bind_tasks = true, bool skip_namespace_ops = false);

  // Executes one recorded event. kEnter-phase records carry no result and
  // are counted as skipped; kFull/kExit records are issued.
  void Issue(const tracer::WireEvent& event);

  [[nodiscard]] const IssueStats& stats() const { return stats_; }

 private:
  struct ReplayTask {
    os::Pid pid;
    os::Tid tid;
  };
  ReplayTask& TaskFor(std::int32_t traced_pid, const std::string& proc_name);

  os::Kernel* kernel_;
  PathMapper mapper_;
  bool bind_tasks_;
  bool skip_namespace_ops_;
  IssueStats stats_;
  std::map<std::int32_t, ReplayTask> tasks_;
  std::map<std::pair<std::int32_t, std::int32_t>, os::Fd> fd_map_;
};

// Predicts how many of `events` a SyscallIssuer would actually execute,
// assuming every replayed open succeeds (true whenever the replay target
// pre-creates the mapped files, as the sim does). Pure function of the
// stream — the sim uses it to fix its op-accounting invariant before any
// run happens.
std::uint64_t CountIssuableEvents(const std::vector<tracer::WireEvent>& events,
                                  bool skip_namespace_ops);

}  // namespace dio::trace
