// Trace reader: streaming decoder for the binary trace format
// (trace/format.h), with tail semantics mirroring service::LoadSpool:
//
//  * A TORN final record — EOF hit inside a frame, the leftover of a crash
//    mid-flush — is skipped and counted in tolerant mode
//    (allow_truncated_tail), and is an error in strict mode. A torn header
//    (zero-byte or short file) is the degenerate case of the same rule.
//  * CORRUPTION anywhere — CRC mismatch, bad magic/version, unknown record
//    type, malformed payload, dangling dictionary reference — is an error
//    in BOTH modes. Every error message carries the 1-based record index
//    and the exact byte offset of the failing frame, so a corrupt capture
//    is diagnosable without a hex dump.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/format.h"
#include "tracer/wire.h"

namespace dio::trace {

struct TraceReadOptions {
  // Tolerate a torn FINAL record (or torn header): reading stops there and
  // the truncation is reported in TraceReadStats. Corruption anywhere else
  // still fails the read. Mirrors SpoolLoadOptions::allow_truncated_tail.
  bool allow_truncated_tail = false;
};

struct TraceReadStats {
  std::uint64_t events = 0;        // event records decoded
  std::uint64_t dict_entries = 0;  // dictionary records decoded
  std::uint64_t bytes = 0;         // bytes consumed, header included
  // Torn final records tolerated (0 or 1: a file has one tail).
  std::uint64_t torn_tail_records = 0;
  [[nodiscard]] bool truncated_tail() const { return torn_tail_records > 0; }
};

class TraceReader {
 public:
  // Opens `path` and validates the header (magic, version, CRC).
  static Expected<std::unique_ptr<TraceReader>> Open(
      const std::string& path, TraceReadOptions options = {});

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  // Decodes the next event record into `*out` (a fully reconstructed wire
  // record: strings resolved from the dictionary, timestamps un-deltaed).
  // Returns false at end of trace. Dictionary records are consumed
  // internally. A non-OK status reports corruption (both modes) or a torn
  // tail (strict mode).
  Expected<bool> Next(tracer::WireEvent* out);

  [[nodiscard]] const TraceReadStats& stats() const { return stats_; }

 private:
  TraceReader(std::ifstream in, TraceReadOptions options);

  Status CorruptAt(std::uint64_t offset, const std::string& what) const;

  std::ifstream in_;
  TraceReadOptions options_;
  TraceReadStats stats_;
  std::vector<std::string> dict_{""};  // id 0 = empty string
  std::int64_t prev_time_enter_ = 0;
  std::uint64_t record_index_ = 0;  // 1-based index of the current frame
  bool done_ = false;
  std::string frame_;  // reused frame buffer
};

// Convenience: decodes the whole file. `stats` (optional) receives the read
// accounting either way.
Expected<std::vector<tracer::WireEvent>> ReadTraceFile(
    const std::string& path, TraceReadOptions options = {},
    TraceReadStats* stats = nullptr);

}  // namespace dio::trace
