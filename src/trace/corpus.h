// Golden-trace corpus generator: deterministic synthetic WireEvent streams
// for four application classes the paper profiles, used to build the
// committed fixtures under tests/trace/data/ (via `dio-replay record`), to
// seed mb_replay, and to drive the replay parity tests.
//
// Every stream is a pure function of (class, ops, seed): timestamps advance
// by a seeded jitter, fds/paths/pids are allocated deterministically, and
// the op mix follows the class's signature I/O pattern. Streams are
// well-formed for syscall replay too: directories are created first, every
// fd that is read/written was opened earlier in the stream, and recorded
// returns are self-consistent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tracer/wire.h"

namespace dio::trace {

enum class CorpusClass {
  kRocksDb,     // LSM engine: WAL append+fsync, SST write bursts, compaction
  kFluentBit,   // log shipper: tail reads, stat polls, position-db pwrites
  kWalFsync,    // fsync-heavy WAL: small write + fdatasync pairs, rotation
  kLogSegment,  // segment store: sequential appends, periodic fsync, roll
};

inline constexpr CorpusClass kAllCorpusClasses[] = {
    CorpusClass::kRocksDb, CorpusClass::kFluentBit, CorpusClass::kWalFsync,
    CorpusClass::kLogSegment};

// Names used by the CLI (--class=) and the fixture filenames:
// "rocksdb", "fluentbit", "walfsync", "logsegment".
std::string_view CorpusClassName(CorpusClass cls);
Expected<CorpusClass> CorpusClassFromName(std::string_view name);

// Generates exactly `ops` events.
std::vector<tracer::WireEvent> GenerateCorpusEvents(CorpusClass cls,
                                                    std::size_t ops,
                                                    std::uint64_t seed);

// Records a generated stream to `path` in the binary trace format.
Status WriteCorpusTrace(const std::string& path, CorpusClass cls,
                        std::size_t ops, std::uint64_t seed);

}  // namespace dio::trace
