// dio-replay: record/inspect/replay binary syscall traces.
//
//   dio-replay record --class=CLASS --out=FILE [--ops=N] [--seed=S]
//       Generates a golden-corpus trace (rocksdb | fluentbit | walfsync |
//       logsegment) — the tool that produced the fixtures under
//       tests/trace/data/.
//
//   dio-replay info --in=FILE [--tolerant]
//       Prints the trace's event/dictionary/byte counts and stream digest.
//
//   dio-replay replay --in=FILE [--speed=X] [--fanout=N] [--clone-base=K]
//                     [--seed=S] [--threaded] [--tolerant]
//                     [--mode=inject|syscall] [--index=NAME]
//       inject (default): replays the remapped stream into an in-process
//       ElasticStore and prints the replay report plus the backend query
//       digest (the determinism contract's observable).
//       syscall: re-issues the trace against a fresh os::Kernel per clone
//       (fd remap + per-clone /data roots) and prints issue stats.
//
// Exit status: 0 on success, 1 on replay/trace errors, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "backend/store.h"
#include "common/clock.h"
#include "oskernel/kernel.h"
#include "trace/corpus.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/writer.h"

namespace {

bool ParseFlag(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (arg.substr(0, name.size()) != name) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *value = arg.substr(1);
  return true;
}

std::uint64_t ParseCount(std::string_view text, const char* flag) {
  char* end = nullptr;
  const std::string owned(text);
  const std::uint64_t value = std::strtoull(owned.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || owned.empty()) {
    std::fprintf(stderr, "dio-replay: bad value for %s: '%s'\n", flag,
                 owned.c_str());
    std::exit(2);
  }
  return value;
}

double ParseDouble(std::string_view text, const char* flag) {
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end == nullptr || *end != '\0' || owned.empty() || value <= 0) {
    std::fprintf(stderr, "dio-replay: bad value for %s: '%s'\n", flag,
                 owned.c_str());
    std::exit(2);
  }
  return value;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dio-replay record --class=CLASS --out=FILE [--ops=N] "
      "[--seed=S]\n"
      "       dio-replay info --in=FILE [--tolerant]\n"
      "       dio-replay replay --in=FILE [--speed=X] [--fanout=N]\n"
      "                  [--clone-base=K] [--seed=S] [--threaded]\n"
      "                  [--tolerant] [--mode=inject|syscall] "
      "[--index=NAME]\n");
  return 2;
}

int RunRecord(const std::string& cls_name, const std::string& out,
              std::size_t ops, std::uint64_t seed) {
  auto cls = dio::trace::CorpusClassFromName(cls_name);
  if (!cls.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n", cls.status().message().c_str());
    return 2;
  }
  if (dio::Status s = dio::trace::WriteCorpusTrace(out, *cls, ops, seed);
      !s.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n", s.message().c_str());
    return 1;
  }
  dio::trace::TraceReadStats stats;
  auto events = dio::trace::ReadTraceFile(out, {}, &stats);
  if (!events.ok()) {
    std::fprintf(stderr, "dio-replay: verify failed: %s\n",
                 events.status().message().c_str());
    return 1;
  }
  std::printf("recorded class=%s ops=%zu seed=%llu -> %s "
              "(events=%llu dict=%llu bytes=%llu)\n",
              cls_name.c_str(), ops, static_cast<unsigned long long>(seed),
              out.c_str(), static_cast<unsigned long long>(stats.events),
              static_cast<unsigned long long>(stats.dict_entries),
              static_cast<unsigned long long>(stats.bytes));
  return 0;
}

int RunInfo(const std::string& in, bool tolerant) {
  dio::trace::TraceReadOptions options;
  options.allow_truncated_tail = tolerant;
  dio::trace::TraceReadStats stats;
  auto events = dio::trace::ReadTraceFile(in, options, &stats);
  if (!events.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n",
                 events.status().message().c_str());
    return 1;
  }
  std::uint64_t digest = 14695981039346656037ull;
  for (const auto& event : *events) {
    digest = dio::trace::HashWireEvent(digest, event);
  }
  std::printf("%s: events=%llu dict=%llu bytes=%llu truncated_tail=%d "
              "stream_digest=%016llx\n",
              in.c_str(), static_cast<unsigned long long>(stats.events),
              static_cast<unsigned long long>(stats.dict_entries),
              static_cast<unsigned long long>(stats.bytes),
              stats.truncated_tail() ? 1 : 0,
              static_cast<unsigned long long>(digest));
  return 0;
}

int RunReplayInject(const std::string& in,
                    const dio::trace::ReplayOptions& options,
                    const std::string& index) {
  dio::backend::ElasticStore store;
  dio::trace::StoreIngestSink sink(&store, index);
  dio::trace::ReplayDriver driver(options, &sink);
  auto report = driver.ReplayFile(in);
  if (!report.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  auto digest = dio::trace::BackendQueryDigest(store, index);
  if (!digest.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n",
                 digest.status().message().c_str());
    return 1;
  }
  std::printf(
      "replayed %s: events=%llu injected=%llu clones=%d batches=%llu\n"
      "  speed requested=%.1fx achieved=%.1fx virtual_span=%lldns "
      "wall=%lldns\n"
      "  schedule_digest=%016llx backend_digest=%016llx "
      "truncated_tail=%d\n",
      in.c_str(), static_cast<unsigned long long>(report->events_read),
      static_cast<unsigned long long>(report->events_injected),
      report->clones, static_cast<unsigned long long>(report->batches),
      report->requested_speed, report->achieved_speed,
      static_cast<long long>(report->virtual_span),
      static_cast<long long>(report->wall_elapsed),
      static_cast<unsigned long long>(report->schedule_digest),
      static_cast<unsigned long long>(*digest),
      report->truncated_tail ? 1 : 0);
  return 0;
}

int RunReplaySyscall(const std::string& in,
                     const dio::trace::ReplayOptions& options) {
  dio::trace::TraceReadOptions read_options;
  read_options.allow_truncated_tail = options.allow_truncated_tail;
  auto events = dio::trace::ReadTraceFile(in, read_options);
  if (!events.ok()) {
    std::fprintf(stderr, "dio-replay: %s\n",
                 events.status().message().c_str());
    return 1;
  }
  dio::trace::IssueStats total;
  for (int i = 0; i < options.fanout; ++i) {
    const int clone = options.clone_base + i;
    dio::os::Kernel kernel;
    auto device = kernel.MountDevice("/data", 7340032, [] {
      dio::os::BlockDeviceOptions device_options;
      device_options.real_sleep = false;
      return device_options;
    }());
    if (!device.ok()) {
      std::fprintf(stderr, "dio-replay: %s\n",
                   device.status().message().c_str());
      return 1;
    }
    dio::trace::SyscallIssuer issuer(&kernel);
    for (const auto& event : *events) {
      auto copy = event;
      dio::trace::RemapForClone(
          &copy, clone, dio::trace::CloneTimeOffset(options.seed, clone));
      issuer.Issue(copy);
    }
    total.issued += issuer.stats().issued;
    total.skipped += issuer.stats().skipped;
    total.ret_matches += issuer.stats().ret_matches;
    total.ret_mismatches += issuer.stats().ret_mismatches;
  }
  std::printf("re-issued %s: clones=%d issued=%llu skipped=%llu "
              "ret_match=%llu ret_mismatch=%llu\n",
              in.c_str(), options.fanout,
              static_cast<unsigned long long>(total.issued),
              static_cast<unsigned long long>(total.skipped),
              static_cast<unsigned long long>(total.ret_matches),
              static_cast<unsigned long long>(total.ret_mismatches));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];

  std::string cls_name;
  std::string in;
  std::string out;
  std::string mode = "inject";
  std::string index = "dio-replay";
  std::size_t ops = 2000;
  bool tolerant = false;
  dio::trace::ReplayOptions options;

  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (ParseFlag(arg, "--class", &value)) {
      cls_name = std::string(value);
    } else if (ParseFlag(arg, "--in", &value)) {
      in = std::string(value);
    } else if (ParseFlag(arg, "--out", &value)) {
      out = std::string(value);
    } else if (ParseFlag(arg, "--ops", &value)) {
      ops = static_cast<std::size_t>(ParseCount(value, "--ops"));
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = ParseCount(value, "--seed");
    } else if (ParseFlag(arg, "--speed", &value)) {
      options.speed = ParseDouble(value, "--speed");
    } else if (ParseFlag(arg, "--fanout", &value)) {
      options.fanout = static_cast<int>(ParseCount(value, "--fanout"));
    } else if (ParseFlag(arg, "--clone-base", &value)) {
      options.clone_base =
          static_cast<int>(ParseCount(value, "--clone-base"));
    } else if (ParseFlag(arg, "--mode", &value)) {
      mode = std::string(value);
    } else if (ParseFlag(arg, "--index", &value)) {
      index = std::string(value);
    } else if (arg == "--threaded") {
      options.threaded = true;
    } else if (arg == "--tolerant") {
      tolerant = true;
    } else {
      std::fprintf(stderr, "dio-replay: unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  options.allow_truncated_tail = tolerant;

  if (command == "record") {
    if (cls_name.empty() || out.empty()) return Usage();
    return RunRecord(cls_name, out, ops, options.seed);
  }
  if (command == "info") {
    if (in.empty()) return Usage();
    return RunInfo(in, tolerant);
  }
  if (command == "replay") {
    if (in.empty()) return Usage();
    if (dio::Status s = options.Validate(); !s.ok()) {
      std::fprintf(stderr, "dio-replay: %s\n", s.message().c_str());
      return 2;
    }
    if (mode == "inject") return RunReplayInject(in, options, index);
    if (mode == "syscall") return RunReplaySyscall(in, options);
    std::fprintf(stderr, "dio-replay: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  return Usage();
}
