#include "trace/format.h"

#include <array>

namespace dio::trace {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeTraceHeader() {
  std::string header(kTraceMagic, sizeof(kTraceMagic));
  PutU32(&header, kTraceVersion);
  PutU32(&header, 0);  // flags
  PutU32(&header, 0);  // reserved
  PutU32(&header, Crc32(header.data(), header.size()));
  return header;
}

}  // namespace dio::trace
