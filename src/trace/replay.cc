#include "trace/replay.h"

#include <algorithm>
#include <limits>
#include <set>
#include <thread>

#include "common/random.h"

namespace dio::trace {

namespace {

// Pacing granularity: inter-event gaps accumulate until the scaled sleep is
// worth taking, so a microsecond-cadence trace does not turn into thousands
// of sub-scheduler-quantum nanosleeps. ManualClock accounting is unaffected
// (the remainder is slept at stream end, so total slept == span / speed).
constexpr Nanos kPacingQuantum = kMillisecond;

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest = (digest ^ (value & 0xFF)) * kFnvPrime;
    value >>= 8;
  }
  return digest;
}

std::uint64_t FnvMixBytes(std::uint64_t digest, const char* data,
                          std::size_t size) {
  digest = FnvMix(digest, size);
  for (std::size_t i = 0; i < size; ++i) {
    digest = (digest ^ static_cast<std::uint8_t>(data[i])) * kFnvPrime;
  }
  return digest;
}

// Per-clone stream pacer: scales recorded virtual time by 1/speed and
// sleeps toward the absolute wall deadline `start + virtual_elapsed/speed`.
// Deadline (not delta) pacing matters on a real clock: nanosleep overshoots
// by scheduler latency, and summing per-gap sleeps would compound that
// overshoot into wall time — sleeping to the deadline self-corrects, so a
// replay that is already behind schedule never sleeps at all. Sleeps under
// kPacingQuantum are deferred (a microsecond-cadence trace must not become
// thousands of sub-quantum nanosleeps); Drain settles the stream end
// exactly, so on a ManualClock total accounted time == span / speed.
class Pacer {
 public:
  Pacer(Clock* clock, double speed)
      : clock_(clock), speed_(speed), start_(clock->NowNanos()) {}

  void Advance(Nanos virtual_delta) {
    if (virtual_delta > 0) virtual_elapsed_ += virtual_delta;
    const Nanos behind = Deadline() - clock_->NowNanos();
    if (behind >= kPacingQuantum) clock_->SleepFor(behind);
  }

  void Drain() {
    const Nanos behind = Deadline() - clock_->NowNanos();
    if (behind > 0) clock_->SleepFor(behind);
  }

 private:
  [[nodiscard]] Nanos Deadline() const {
    return start_ + static_cast<Nanos>(
                        static_cast<double>(virtual_elapsed_) / speed_);
  }

  Clock* clock_;
  double speed_;
  Nanos start_;
  Nanos virtual_elapsed_ = 0;
};

}  // namespace

Nanos CloneTimeOffset(std::uint64_t seed, int clone) {
  if (clone == 0) return 0;
  Random rng(seed ^ (0x9E3779B97F4A7C15ull *
                     static_cast<std::uint64_t>(clone)));
  return static_cast<Nanos>(clone) * kMillisecond +
         static_cast<Nanos>(rng.Uniform(kMillisecond));
}

void RemapForClone(tracer::WireEvent* event, int clone, Nanos offset) {
  event->pid += clone * kClonePidStride;
  event->tid += clone * kClonePidStride;
  event->time_enter += offset;
  event->time_exit += offset;
  if (event->tag_valid != 0) event->tag_ts += offset;
}

std::uint64_t HashWireEvent(std::uint64_t digest,
                            const tracer::WireEvent& event) {
  digest = FnvMix(digest, event.nr);
  digest = FnvMix(digest, event.phase);
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.pid));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.tid));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.cpu));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.time_enter));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.time_exit));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.ret));
  digest = FnvMix(digest, event.count);
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.arg_offset));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.file_offset));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.fd));
  digest = FnvMix(digest, static_cast<std::uint64_t>(event.whence));
  digest = FnvMix(digest, event.flags);
  digest = FnvMix(digest, event.mode);
  digest = FnvMix(digest, event.file_type);
  digest = FnvMix(digest, event.tag_valid);
  if (event.tag_valid != 0) {
    digest = FnvMix(digest, event.tag_dev);
    digest = FnvMix(digest, event.tag_ino);
    digest = FnvMix(digest, static_cast<std::uint64_t>(event.tag_ts));
  }
  digest = FnvMixBytes(digest, event.comm, event.comm_len);
  digest = FnvMixBytes(digest, event.proc_name, event.proc_name_len);
  digest = FnvMixBytes(digest, event.path, event.path_len);
  digest = FnvMixBytes(digest, event.path2, event.path2_len);
  digest = FnvMixBytes(digest, event.xattr_name, event.xattr_len);
  return digest;
}

Expected<ReplayOptions> ReplayOptions::FromConfig(const Config& config) {
  (void)WarnUnknownKeys(config, "replay",
                        {"speed", "fanout", "clone_base", "seed",
                         "batch_size", "threaded", "allow_truncated_tail",
                         "session"});
  ReplayOptions options;
  options.speed = config.GetDouble("replay.speed", options.speed);
  options.fanout = static_cast<int>(
      config.GetInt("replay.fanout", options.fanout));
  options.clone_base = static_cast<int>(
      config.GetInt("replay.clone_base", options.clone_base));
  options.seed = static_cast<std::uint64_t>(
      config.GetInt("replay.seed", static_cast<std::int64_t>(options.seed)));
  options.batch_size = static_cast<std::size_t>(config.GetInt(
      "replay.batch_size", static_cast<std::int64_t>(options.batch_size)));
  options.threaded = config.GetBool("replay.threaded", options.threaded);
  options.allow_truncated_tail = config.GetBool(
      "replay.allow_truncated_tail", options.allow_truncated_tail);
  options.session = config.GetString("replay.session", options.session);
  DIO_RETURN_IF_ERROR(options.Validate());
  return options;
}

Status ReplayOptions::Validate() const {
  if (speed <= 0.0) return InvalidArgument("replay.speed must be > 0");
  if (fanout < 1) return InvalidArgument("replay.fanout must be >= 1");
  if (clone_base < 0) {
    return InvalidArgument("replay.clone_base must be >= 0");
  }
  if (batch_size < 1) {
    return InvalidArgument("replay.batch_size must be >= 1");
  }
  return Status::Ok();
}

ReplayDriver::ReplayDriver(ReplayOptions options, tracer::EventSink* sink)
    : options_(std::move(options)), sink_(sink) {}

Expected<ReplayReport> ReplayDriver::ReplayFile(
    const std::string& trace_path) {
  TraceReadOptions read_options;
  read_options.allow_truncated_tail = options_.allow_truncated_tail;
  TraceReadStats read_stats;
  auto events = ReadTraceFile(trace_path, read_options, &read_stats);
  if (!events.ok()) return events.status();
  auto report = Replay(*events);
  if (report.ok()) report->truncated_tail = read_stats.truncated_tail();
  return report;
}

Expected<ReplayReport> ReplayDriver::Replay(
    const std::vector<tracer::WireEvent>& events) {
  DIO_RETURN_IF_ERROR(options_.Validate());
  Clock* clock =
      options_.clock != nullptr ? options_.clock : SteadyClock::Instance();
  ReplayReport report = options_.threaded ? RunThreaded(events, clock)
                                          : RunMerged(events, clock);
  report.events_read = events.size();
  report.clones = options_.fanout;
  report.requested_speed = options_.speed;
  if (report.wall_elapsed > 0) {
    report.achieved_speed = static_cast<double>(report.virtual_span) /
                            static_cast<double>(report.wall_elapsed);
  }
  return report;
}

ReplayReport ReplayDriver::RunMerged(
    const std::vector<tracer::WireEvent>& events, Clock* clock) {
  ReplayReport report;
  report.schedule_digest = kFnvBasis;
  if (events.empty()) return report;

  const int fanout = options_.fanout;
  std::vector<Nanos> offsets(static_cast<std::size_t>(fanout));
  std::vector<std::size_t> next(static_cast<std::size_t>(fanout), 0);
  for (int i = 0; i < fanout; ++i) {
    offsets[static_cast<std::size_t>(i)] =
        CloneTimeOffset(options_.seed, options_.clone_base + i);
  }

  const Nanos wall_start = clock->NowNanos();
  Pacer pacer(clock, options_.speed);
  std::vector<tracer::WireEvent> batch;
  batch.reserve(options_.batch_size);
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    sink_->IndexWire(options_.session, std::move(batch));
    batch = {};
    batch.reserve(options_.batch_size);
    ++report.batches;
  };

  Nanos first_enter = 0;
  Nanos prev_enter = 0;
  bool any = false;
  for (;;) {
    // Smallest remapped time_enter wins; ties break toward the lower clone
    // index, so the merged order is a pure function of (trace, seed).
    int best = -1;
    Nanos best_enter = 0;
    for (int i = 0; i < fanout; ++i) {
      const std::size_t at = next[static_cast<std::size_t>(i)];
      if (at >= events.size()) continue;
      const Nanos enter = events[at].time_enter +
                          offsets[static_cast<std::size_t>(i)];
      if (best < 0 || enter < best_enter) {
        best = i;
        best_enter = enter;
      }
    }
    if (best < 0) break;

    tracer::WireEvent e = events[next[static_cast<std::size_t>(best)]++];
    RemapForClone(&e, options_.clone_base + best,
                  offsets[static_cast<std::size_t>(best)]);
    if (!any) {
      first_enter = e.time_enter;
      any = true;
    } else {
      pacer.Advance(e.time_enter - prev_enter);
    }
    prev_enter = e.time_enter;
    report.schedule_digest = HashWireEvent(report.schedule_digest, e);
    batch.push_back(e);
    ++report.events_injected;
    if (batch.size() >= options_.batch_size) flush_batch();
  }
  pacer.Drain();
  flush_batch();
  sink_->Flush();
  report.virtual_span = any ? prev_enter - first_enter : 0;
  report.wall_elapsed = std::max<Nanos>(clock->NowNanos() - wall_start, 1);
  return report;
}

ReplayReport ReplayDriver::RunThreaded(
    const std::vector<tracer::WireEvent>& events, Clock* clock) {
  ReplayReport report;
  report.schedule_digest = 0;
  if (events.empty()) {
    report.schedule_digest = kFnvBasis;
    return report;
  }

  const int fanout = options_.fanout;
  struct CloneResult {
    std::uint64_t digest = kFnvBasis;
    std::uint64_t injected = 0;
    std::uint64_t batches = 0;
    Nanos first_enter = 0;
    Nanos last_enter = 0;
  };
  std::vector<CloneResult> results(static_cast<std::size_t>(fanout));

  const Nanos wall_start = clock->NowNanos();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(fanout));
  for (int i = 0; i < fanout; ++i) {
    threads.emplace_back([&, i] {
      CloneResult& result = results[static_cast<std::size_t>(i)];
      const int clone = options_.clone_base + i;
      const Nanos offset = CloneTimeOffset(options_.seed, clone);
      Pacer pacer(clock, options_.speed);
      std::vector<tracer::WireEvent> batch;
      batch.reserve(options_.batch_size);
      Nanos prev_enter = 0;
      for (std::size_t at = 0; at < events.size(); ++at) {
        tracer::WireEvent e = events[at];
        RemapForClone(&e, clone, offset);
        if (at == 0) {
          result.first_enter = e.time_enter;
        } else {
          pacer.Advance(e.time_enter - prev_enter);
        }
        prev_enter = e.time_enter;
        result.digest = HashWireEvent(result.digest, e);
        batch.push_back(e);
        ++result.injected;
        if (batch.size() >= options_.batch_size) {
          sink_->IndexWire(options_.session, std::move(batch));
          batch = {};
          batch.reserve(options_.batch_size);
          ++result.batches;
        }
      }
      pacer.Drain();
      if (!batch.empty()) {
        sink_->IndexWire(options_.session, std::move(batch));
        ++result.batches;
      }
      result.last_enter = prev_enter;
    });
  }
  for (std::thread& t : threads) t.join();
  sink_->Flush();

  Nanos min_first = results[0].first_enter;
  Nanos max_last = results[0].last_enter;
  for (const CloneResult& result : results) {
    // XOR combine: per-clone stream digests are deterministic; the combined
    // value is independent of which clone's batches landed first.
    report.schedule_digest ^= result.digest;
    report.events_injected += result.injected;
    report.batches += result.batches;
    min_first = std::min(min_first, result.first_enter);
    max_last = std::max(max_last, result.last_enter);
  }
  report.virtual_span = max_last - min_first;
  report.wall_elapsed = std::max<Nanos>(clock->NowNanos() - wall_start, 1);
  return report;
}

// ---- StoreIngestSink ----------------------------------------------------

void StoreIngestSink::IndexBatch(std::vector<Json> documents) {
  store_->Bulk(index_, std::move(documents));
}

void StoreIngestSink::IndexEvents(std::string_view session,
                                  std::vector<tracer::Event> events) {
  std::vector<Json> documents;
  documents.reserve(events.size());
  for (const tracer::Event& event : events) {
    documents.push_back(event.ToJson(session));
  }
  store_->Bulk(index_, std::move(documents));
}

void StoreIngestSink::IndexWire(std::string_view session,
                                std::vector<tracer::WireEvent> records) {
  store_->BulkWire(index_, session, std::move(records));
}

void StoreIngestSink::Flush() { store_->Refresh(index_); }

Expected<std::uint64_t> BackendQueryDigest(const backend::ElasticStore& store,
                                           const std::string& index) {
  backend::SearchRequest request;
  request.query = backend::Query::MatchAll();
  request.size = std::numeric_limits<std::size_t>::max();
  auto result = store.Search(index, request);
  if (!result.ok()) return result.status();
  std::vector<std::string> dumps;
  dumps.reserve(result->hits.size());
  for (const backend::Hit& hit : result->hits) {
    dumps.push_back(hit.source.Dump());
  }
  std::sort(dumps.begin(), dumps.end());
  std::uint64_t digest = kFnvBasis;
  for (const std::string& dump : dumps) {
    digest = FnvMixBytes(digest, dump.data(), dump.size());
  }
  return digest;
}

// ---- SyscallIssuer ------------------------------------------------------

namespace {

bool IsNamespaceOp(os::SyscallNr nr) {
  switch (nr) {
    case os::SyscallNr::kMkdir:
    case os::SyscallNr::kMkdirat:
    case os::SyscallNr::kRmdir:
    case os::SyscallNr::kRename:
    case os::SyscallNr::kRenameat:
    case os::SyscallNr::kRenameat2:
    case os::SyscallNr::kUnlink:
    case os::SyscallNr::kUnlinkat:
      return true;
    default:
      return false;
  }
}

}  // namespace

SyscallIssuer::SyscallIssuer(os::Kernel* kernel, PathMapper mapper,
                             bool bind_tasks, bool skip_namespace_ops)
    : kernel_(kernel),
      mapper_(std::move(mapper)),
      bind_tasks_(bind_tasks),
      skip_namespace_ops_(skip_namespace_ops) {}

SyscallIssuer::ReplayTask& SyscallIssuer::TaskFor(
    std::int32_t traced_pid, const std::string& proc_name) {
  auto it = tasks_.find(traced_pid);
  if (it != tasks_.end()) return it->second;
  ReplayTask task;
  const std::string name =
      proc_name.empty() ? "replay-" + std::to_string(traced_pid) : proc_name;
  task.pid = kernel_->CreateProcess(name);
  task.tid = kernel_->SpawnThread(task.pid, name);
  return tasks_.emplace(traced_pid, task).first->second;
}

void SyscallIssuer::Issue(const tracer::WireEvent& event) {
  // Enter-phase records carry no result to re-issue against.
  if (event.phase == static_cast<std::uint8_t>(tracer::EventPhase::kEnter)) {
    ++stats_.skipped;
    return;
  }
  const auto nr = static_cast<os::SyscallNr>(event.nr);
  if (skip_namespace_ops_ && IsNamespaceOp(nr)) {
    ++stats_.skipped;
    return;
  }
  const std::string recorded_path(event.path, event.path_len);
  const std::string recorded_path2(event.path2, event.path2_len);
  const std::string path =
      mapper_ ? mapper_(recorded_path) : recorded_path;
  const std::string path2 =
      mapper_ ? mapper_(recorded_path2) : recorded_path2;
  const std::int64_t recorded_ret = event.ret;
  const std::uint64_t count = event.count;
  const std::int32_t traced_pid = event.pid;
  const std::int32_t traced_fd = event.fd;

  std::unique_ptr<os::ScopedTask> bound;
  if (bind_tasks_) {
    ReplayTask& task =
        TaskFor(traced_pid, std::string(event.proc_name, event.proc_name_len));
    bound = std::make_unique<os::ScopedTask>(*kernel_, task.pid, task.tid);
  }
  os::Kernel& k = *kernel_;

  const auto mapped_fd = [&]() -> os::Fd {
    auto it = fd_map_.find({traced_pid, traced_fd});
    return it == fd_map_.end() ? os::kNoFd : it->second;
  };

  std::int64_t ret = 0;
  bool compare_ret = true;
  switch (nr) {
    case os::SyscallNr::kOpen:
    case os::SyscallNr::kOpenat:
    case os::SyscallNr::kCreat: {
      if (nr == os::SyscallNr::kCreat) {
        ret = k.sys_creat(path, event.mode != 0 ? event.mode : 0644);
      } else {
        ret = k.sys_openat(os::kAtFdCwd, path, event.flags,
                           event.mode != 0 ? event.mode : 0644);
      }
      if (ret >= 0 && recorded_ret >= 0) {
        fd_map_[{traced_pid, static_cast<std::int32_t>(recorded_ret)}] =
            static_cast<os::Fd>(ret);
      }
      // fd numbering may legitimately differ; success/failure must agree.
      if ((ret >= 0) == (recorded_ret >= 0)) ++stats_.ret_matches;
      else ++stats_.ret_mismatches;
      compare_ret = false;
      break;
    }
    case os::SyscallNr::kClose: {
      const os::Fd fd = mapped_fd();
      if (fd == os::kNoFd) {
        ++stats_.skipped;
        return;
      }
      fd_map_.erase({traced_pid, traced_fd});
      ret = k.sys_close(fd);
      break;
    }
    case os::SyscallNr::kRead:
    case os::SyscallNr::kWrite:
    case os::SyscallNr::kPread64:
    case os::SyscallNr::kPwrite64:
    case os::SyscallNr::kReadv:
    case os::SyscallNr::kWritev: {
      const os::Fd fd = mapped_fd();
      if (fd == os::kNoFd) {
        ++stats_.skipped;
        return;
      }
      const std::int64_t offset = event.arg_offset;
      std::string buf;
      switch (nr) {
        case os::SyscallNr::kRead:
          ret = k.sys_read(fd, &buf, count);
          break;
        case os::SyscallNr::kReadv: {
          const std::uint64_t lens[] = {count};
          ret = k.sys_readv(fd, &buf, lens);
          break;
        }
        case os::SyscallNr::kPread64:
          ret = k.sys_pread64(fd, &buf, count, offset);
          break;
        case os::SyscallNr::kWrite:
          ret = k.sys_write(fd, std::string(count, 'r'));
          break;
        case os::SyscallNr::kWritev: {
          const std::string chunk(count, 'r');
          const std::string_view iov[] = {chunk};
          ret = k.sys_writev(fd, iov);
          break;
        }
        default:  // kPwrite64
          ret = k.sys_pwrite64(fd, std::string(count, 'r'), offset);
          break;
      }
      break;
    }
    case os::SyscallNr::kLseek: {
      const os::Fd fd = mapped_fd();
      if (fd == os::kNoFd) {
        ++stats_.skipped;
        return;
      }
      ret = k.sys_lseek(fd, event.arg_offset,
                        static_cast<int>(event.whence));
      break;
    }
    case os::SyscallNr::kFsync:
    case os::SyscallNr::kFdatasync: {
      const os::Fd fd = mapped_fd();
      if (fd == os::kNoFd) {
        ++stats_.skipped;
        return;
      }
      ret = nr == os::SyscallNr::kFsync ? k.sys_fsync(fd)
                                        : k.sys_fdatasync(fd);
      break;
    }
    case os::SyscallNr::kFtruncate: {
      const os::Fd fd = mapped_fd();
      if (fd == os::kNoFd) {
        ++stats_.skipped;
        return;
      }
      ret = k.sys_ftruncate(fd, count);
      break;
    }
    case os::SyscallNr::kUnlink:
    case os::SyscallNr::kUnlinkat:
      ret = k.sys_unlink(path);
      break;
    case os::SyscallNr::kMkdir:
    case os::SyscallNr::kMkdirat:
      ret = k.sys_mkdir(path, event.mode != 0 ? event.mode : 0755);
      break;
    case os::SyscallNr::kRmdir:
      ret = k.sys_rmdir(path);
      break;
    case os::SyscallNr::kRename:
    case os::SyscallNr::kRenameat:
    case os::SyscallNr::kRenameat2:
      ret = k.sys_rename(path, path2);
      break;
    case os::SyscallNr::kStat: {
      os::StatBuf st;
      ret = k.sys_stat(path, &st);
      break;
    }
    case os::SyscallNr::kLstat: {
      os::StatBuf st;
      ret = k.sys_lstat(path, &st);
      break;
    }
    case os::SyscallNr::kTruncate:
      ret = k.sys_truncate(path, count);
      break;
    default:
      ++stats_.skipped;
      return;
  }

  ++stats_.issued;
  if (compare_ret) {
    if (ret == recorded_ret) ++stats_.ret_matches;
    else ++stats_.ret_mismatches;
  }
}

std::uint64_t CountIssuableEvents(const std::vector<tracer::WireEvent>& events,
                                  bool skip_namespace_ops) {
  // Mirrors SyscallIssuer's skip logic, with replayed opens assumed to
  // succeed (so the fd map evolves exactly as in a pre-created replay).
  std::set<std::pair<std::int32_t, std::int32_t>> fds;
  std::uint64_t issuable = 0;
  for (const tracer::WireEvent& event : events) {
    if (event.phase ==
        static_cast<std::uint8_t>(tracer::EventPhase::kEnter)) {
      continue;
    }
    const auto nr = static_cast<os::SyscallNr>(event.nr);
    if (skip_namespace_ops && IsNamespaceOp(nr)) continue;
    switch (nr) {
      case os::SyscallNr::kOpen:
      case os::SyscallNr::kOpenat:
      case os::SyscallNr::kCreat:
        if (event.ret >= 0) {
          fds.insert({event.pid, static_cast<std::int32_t>(event.ret)});
        }
        ++issuable;
        break;
      case os::SyscallNr::kClose:
        if (fds.erase({event.pid, event.fd}) == 0) continue;
        ++issuable;
        break;
      case os::SyscallNr::kRead:
      case os::SyscallNr::kWrite:
      case os::SyscallNr::kPread64:
      case os::SyscallNr::kPwrite64:
      case os::SyscallNr::kReadv:
      case os::SyscallNr::kWritev:
      case os::SyscallNr::kLseek:
      case os::SyscallNr::kFsync:
      case os::SyscallNr::kFdatasync:
      case os::SyscallNr::kFtruncate:
        if (fds.count({event.pid, event.fd}) == 0) continue;
        ++issuable;
        break;
      case os::SyscallNr::kUnlink:
      case os::SyscallNr::kUnlinkat:
      case os::SyscallNr::kMkdir:
      case os::SyscallNr::kMkdirat:
      case os::SyscallNr::kRmdir:
      case os::SyscallNr::kRename:
      case os::SyscallNr::kRenameat:
      case os::SyscallNr::kRenameat2:
      case os::SyscallNr::kStat:
      case os::SyscallNr::kLstat:
      case os::SyscallNr::kTruncate:
        ++issuable;
        break;
      default:
        continue;
    }
  }
  return issuable;
}

}  // namespace dio::trace
