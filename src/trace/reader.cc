#include "trace/reader.h"

#include <cstring>
#include <utility>

namespace dio::trace {

namespace {

// Reads up to `want` bytes; returns the count actually read (short at EOF).
std::size_t ReadSome(std::ifstream& in, char* dst, std::size_t want) {
  in.read(dst, static_cast<std::streamsize>(want));
  return static_cast<std::size_t>(in.gcount());
}

}  // namespace

Expected<std::unique_ptr<TraceReader>> TraceReader::Open(
    const std::string& path, TraceReadOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("trace file not found: " + path);
  auto reader =
      std::unique_ptr<TraceReader>(new TraceReader(std::move(in), options));

  char header[kTraceHeaderBytes];
  const std::size_t got = ReadSome(reader->in_, header, sizeof(header));
  reader->stats_.bytes = got;
  if (got < kTraceHeaderBytes) {
    // Short (or empty) file: the header itself is the torn record.
    if (options.allow_truncated_tail) {
      reader->stats_.torn_tail_records = 1;
      reader->done_ = true;
      return reader;
    }
    return InvalidArgument("trace header torn at offset 0: " +
                           std::to_string(got) + " of " +
                           std::to_string(kTraceHeaderBytes) + " bytes");
  }
  if (std::memcmp(header, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return InvalidArgument("not a DIO trace file (bad magic at offset 0)");
  }
  const std::uint32_t version = ReadU32(header + 8);
  if (version != kTraceVersion) {
    return InvalidArgument("unsupported trace version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kTraceVersion) + ")");
  }
  const std::uint32_t crc = ReadU32(header + kTraceHeaderBytes - 4);
  if (crc != Crc32(header, kTraceHeaderBytes - 4)) {
    return InvalidArgument("trace header crc mismatch at offset 0");
  }
  return reader;
}

TraceReader::TraceReader(std::ifstream in, TraceReadOptions options)
    : in_(std::move(in)), options_(options) {}

Status TraceReader::CorruptAt(std::uint64_t offset,
                              const std::string& what) const {
  return InvalidArgument("trace record " + std::to_string(record_index_) +
                         " at offset " + std::to_string(offset) + ": " +
                         what);
}

Expected<bool> TraceReader::Next(tracer::WireEvent* out) {
  while (!done_) {
    const std::uint64_t offset = stats_.bytes;
    ++record_index_;

    char prelude[kFramePreludeBytes];
    const std::size_t got_prelude = ReadSome(in_, prelude, sizeof(prelude));
    if (got_prelude == 0) {
      // Clean end: EOF exactly on a record boundary.
      done_ = true;
      return false;
    }
    stats_.bytes += got_prelude;
    if (got_prelude < kFramePreludeBytes) {
      if (options_.allow_truncated_tail) {
        stats_.torn_tail_records = 1;
        done_ = true;
        return false;
      }
      return CorruptAt(offset, "torn frame prelude (" +
                                   std::to_string(got_prelude) + " of " +
                                   std::to_string(kFramePreludeBytes) +
                                   " bytes)");
    }

    const auto type = static_cast<std::uint8_t>(prelude[0]);
    const std::uint32_t payload_len = ReadU32(prelude + 1);
    if (payload_len > kMaxRecordPayload) {
      return CorruptAt(offset, "implausible payload length " +
                                   std::to_string(payload_len));
    }

    frame_.assign(prelude, kFramePreludeBytes);
    frame_.resize(kFramePreludeBytes + payload_len + 4);
    const std::size_t want = payload_len + 4;
    const std::size_t got_body =
        ReadSome(in_, frame_.data() + kFramePreludeBytes, want);
    stats_.bytes += got_body;
    if (got_body < want) {
      // EOF mid-record: the torn tail a crash mid-flush leaves behind.
      if (options_.allow_truncated_tail) {
        stats_.torn_tail_records = 1;
        done_ = true;
        return false;
      }
      return CorruptAt(offset,
                       "torn record body (" + std::to_string(got_body) +
                           " of " + std::to_string(want) + " bytes)");
    }

    const std::uint32_t stored_crc =
        ReadU32(frame_.data() + kFramePreludeBytes + payload_len);
    const std::uint32_t actual_crc =
        Crc32(frame_.data(), kFramePreludeBytes + payload_len);
    if (stored_crc != actual_crc) {
      return CorruptAt(offset, "crc mismatch");
    }

    const std::string payload =
        frame_.substr(kFramePreludeBytes, payload_len);
    std::size_t pos = 0;

    if (type == static_cast<std::uint8_t>(TraceRecordType::kDict)) {
      std::uint64_t id = 0;
      if (!GetVarint(payload, &pos, &id)) {
        return CorruptAt(offset, "malformed dictionary id");
      }
      // Ids are assigned densely in first-use order; anything else means
      // the file was not produced by this writer.
      if (id != dict_.size()) {
        return CorruptAt(offset, "non-sequential dictionary id " +
                                     std::to_string(id));
      }
      dict_.push_back(payload.substr(pos));
      ++stats_.dict_entries;
      continue;  // dictionary records are internal; keep scanning
    }

    if (type != static_cast<std::uint8_t>(TraceRecordType::kEvent)) {
      return CorruptAt(offset,
                       "unknown record type " + std::to_string(type));
    }

    tracer::WireEvent e{};
    std::uint64_t u = 0;
    std::int64_t s = 0;
    const auto get_u = [&](std::uint64_t* dst) {
      if (!GetVarint(payload, &pos, &u)) return false;
      *dst = u;
      return true;
    };
    const auto get_s = [&](std::int64_t* dst) {
      if (!GetZigZag(payload, &pos, &s)) return false;
      *dst = s;
      return true;
    };
    std::uint64_t nr = 0, phase = 0, flags = 0, mode = 0, file_type = 0;
    std::int64_t pid = 0, tid = 0, cpu = 0, fd = 0, whence = 0;
    std::int64_t d_enter = 0, duration = 0;
    std::uint64_t ids[5] = {0, 0, 0, 0, 0};
    std::uint64_t tag_valid = 0;
    bool ok = get_u(&nr) && get_u(&phase) && get_s(&pid) && get_s(&tid) &&
              get_s(&cpu) && get_s(&d_enter) && get_s(&duration) &&
              get_s(&e.ret) && get_u(&e.count) && get_s(&e.arg_offset) &&
              get_s(&e.file_offset) && get_s(&fd) && get_s(&whence) &&
              get_u(&flags) && get_u(&mode) && get_u(&file_type);
    for (std::size_t i = 0; ok && i < 5; ++i) ok = get_u(&ids[i]);
    ok = ok && get_u(&tag_valid);
    if (ok && tag_valid != 0) {
      std::int64_t d_tag = 0;
      ok = get_u(&e.tag_dev) && get_u(&e.tag_ino) && get_s(&d_tag);
      if (ok) {
        e.tag_valid = 1;
        e.tag_ts = prev_time_enter_ + d_enter + d_tag;
      }
    }
    std::uint64_t trunc_bits = 0;
    std::uint16_t* trunc[5] = {&e.comm_trunc, &e.proc_name_trunc,
                               &e.path_trunc, &e.path2_trunc, &e.xattr_trunc};
    ok = ok && get_u(&trunc_bits);
    for (std::size_t i = 0; ok && i < 5; ++i) {
      if ((trunc_bits & (1ull << i)) == 0) continue;
      std::uint64_t value = 0;
      ok = get_u(&value) && value <= 0xFFFF;
      if (ok) *trunc[i] = static_cast<std::uint16_t>(value);
    }
    if (!ok || pos != payload.size()) {
      return CorruptAt(offset, "malformed event payload");
    }

    e.nr = static_cast<std::uint8_t>(nr);
    e.phase = static_cast<std::uint8_t>(phase);
    e.pid = static_cast<std::int32_t>(pid);
    e.tid = static_cast<std::int32_t>(tid);
    e.cpu = static_cast<std::int32_t>(cpu);
    e.fd = static_cast<std::int32_t>(fd);
    e.whence = static_cast<std::int32_t>(whence);
    e.flags = static_cast<std::uint32_t>(flags);
    e.mode = static_cast<std::uint32_t>(mode);
    e.file_type = static_cast<std::uint8_t>(file_type);
    e.time_enter = prev_time_enter_ + d_enter;
    e.time_exit = e.time_enter + duration;

    struct StringSlot {
      char* dst;
      std::size_t cap;
      std::uint16_t* len;
    };
    const StringSlot slots[5] = {
        {e.comm, tracer::kWireCommCap, &e.comm_len},
        {e.proc_name, tracer::kWireCommCap, &e.proc_name_len},
        {e.path, tracer::kWirePathCap, &e.path_len},
        {e.path2, tracer::kWirePathCap, &e.path2_len},
        {e.xattr_name, tracer::kWireXattrCap, &e.xattr_len},
    };
    for (std::size_t i = 0; i < 5; ++i) {
      const std::uint64_t id = ids[i];
      if (id >= dict_.size()) {
        return CorruptAt(offset, "dangling dictionary reference " +
                                     std::to_string(id));
      }
      const std::string& str = dict_[id];
      if (str.size() > slots[i].cap) {
        return CorruptAt(offset, "interned string exceeds wire capacity");
      }
      if (!str.empty()) std::memcpy(slots[i].dst, str.data(), str.size());
      *slots[i].len = static_cast<std::uint16_t>(str.size());
    }

    prev_time_enter_ = e.time_enter;
    ++stats_.events;
    *out = e;
    return true;
  }
  return false;
}

Expected<std::vector<tracer::WireEvent>> ReadTraceFile(
    const std::string& path, TraceReadOptions options,
    TraceReadStats* stats) {
  auto reader = TraceReader::Open(path, options);
  if (!reader.ok()) return reader.status();
  std::vector<tracer::WireEvent> events;
  tracer::WireEvent e{};
  for (;;) {
    auto more = (*reader)->Next(&e);
    if (!more.ok()) {
      if (stats != nullptr) *stats = (*reader)->stats();
      return more.status();
    }
    if (!*more) break;
    events.push_back(e);
  }
  if (stats != nullptr) *stats = (*reader)->stats();
  return events;
}

}  // namespace dio::trace
