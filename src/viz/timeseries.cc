#include "viz/timeseries.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/string_util.h"

namespace dio::viz {

std::vector<Series> SeriesFromTermsHistogram(const backend::AggResult& result,
                                             const std::string& sub_name) {
  std::vector<Series> out;
  for (const backend::AggBucket& term_bucket : result.buckets) {
    Series series;
    series.name = term_bucket.key.is_string()
                      ? term_bucket.key.as_string()
                      : term_bucket.key.Dump();
    auto sub_it = term_bucket.sub.find(sub_name);
    if (sub_it != term_bucket.sub.end()) {
      for (const backend::AggBucket& time_bucket : sub_it->second.buckets) {
        series.points.push_back(SeriesPoint{
            time_bucket.key.as_int(),
            static_cast<double>(time_bucket.doc_count)});
      }
    }
    out.push_back(std::move(series));
  }
  // Stable name order for deterministic rendering.
  std::sort(out.begin(), out.end(),
            [](const Series& a, const Series& b) { return a.name < b.name; });
  return out;
}

std::string ChartRenderer::LineChart(const Series& series, int height,
                                     const std::string& y_label) {
  if (series.points.empty()) return "(no data)\n";
  double max_v = 0;
  for (const SeriesPoint& p : series.points) max_v = std::max(max_v, p.value);
  if (max_v <= 0) max_v = 1;

  const std::size_t width = series.points.size();
  std::string out;
  out += series.name + "  (max " + FormatFixed(max_v, 2) +
         (y_label.empty() ? "" : " " + y_label) + ")\n";
  for (int row = height; row >= 1; --row) {
    const double threshold = max_v * row / height;
    const double prev_threshold = max_v * (row - 1) / height;
    std::string line = "|";
    for (std::size_t i = 0; i < width; ++i) {
      const double v = series.points[i].value;
      if (v >= threshold) {
        line += "#";
      } else if (v > prev_threshold) {
        line += (v - prev_threshold) > (threshold - prev_threshold) / 2 ? ":"
                                                                        : ".";
      } else {
        line += " ";
      }
    }
    out += line + "\n";
  }
  out += "+";
  out.append(width, '-');
  out += "> time\n";
  return out;
}

std::string ChartRenderer::IntensityGrid(
    const std::vector<Series>& series_list, int max_buckets) {
  if (series_list.empty()) return "(no data)\n";
  // Collect the global time axis.
  std::set<std::int64_t> times;
  double max_v = 0;
  for (const Series& series : series_list) {
    for (const SeriesPoint& p : series.points) {
      times.insert(p.t);
      max_v = std::max(max_v, p.value);
    }
  }
  if (max_v <= 0) max_v = 1;
  std::vector<std::int64_t> axis(times.begin(), times.end());
  // Downsample to max_buckets columns by striding.
  std::size_t stride = 1;
  if (max_buckets > 0 && axis.size() > static_cast<std::size_t>(max_buckets)) {
    stride = (axis.size() + max_buckets - 1) /
             static_cast<std::size_t>(max_buckets);
  }

  std::size_t name_width = 0;
  for (const Series& series : series_list) {
    name_width = std::max(name_width, series.name.size());
  }

  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
  constexpr int kNumLevels = 10;

  std::string out;
  for (const Series& series : series_list) {
    std::map<std::int64_t, double> by_time;
    for (const SeriesPoint& p : series.points) by_time[p.t] += p.value;
    std::string line = series.name;
    line.append(name_width - series.name.size(), ' ');
    line += " |";
    for (std::size_t i = 0; i < axis.size(); i += stride) {
      double sum = 0;
      for (std::size_t j = i; j < std::min(i + stride, axis.size()); ++j) {
        auto it = by_time.find(axis[j]);
        if (it != by_time.end()) sum += it->second;
      }
      const double avg = sum / static_cast<double>(stride);
      const int level = std::min(
          kNumLevels - 1,
          static_cast<int>(std::ceil(avg / max_v * (kNumLevels - 1))));
      line += kLevels[level];
    }
    line += "|";
    out += line + "\n";
  }
  out += "scale: ' '=0 ";
  out += "'@'=" + FormatFixed(max_v, 0) + " (per bucket)\n";
  return out;
}

std::string ChartRenderer::SeriesCsv(const std::vector<Series>& series_list) {
  std::set<std::int64_t> times;
  for (const Series& series : series_list) {
    for (const SeriesPoint& p : series.points) times.insert(p.t);
  }
  std::string out = "time";
  for (const Series& series : series_list) out += "," + series.name;
  out += "\n";
  for (std::int64_t t : times) {
    out += std::to_string(t);
    for (const Series& series : series_list) {
      double v = 0;
      for (const SeriesPoint& p : series.points) {
        if (p.t == t) {
          v = p.value;
          break;
        }
      }
      out += "," + FormatFixed(v, 6);
    }
    out += "\n";
  }
  return out;
}



std::string BarChart(const std::vector<CategoryCount>& categories,
                     int max_width) {
  if (categories.empty()) return "(no data)\n";
  double max_v = 0;
  std::size_t label_width = 0;
  for (const CategoryCount& c : categories) {
    max_v = std::max(max_v, c.value);
    label_width = std::max(label_width, c.label.size());
  }
  if (max_v <= 0) max_v = 1;
  std::string out;
  for (const CategoryCount& c : categories) {
    out += c.label;
    out.append(label_width - c.label.size(), ' ');
    out += " |";
    const int bar = static_cast<int>(
        std::round(c.value / max_v * max_width));
    out.append(static_cast<std::size_t>(bar), '#');
    out += " " + FormatFixed(c.value, c.value < 10 ? 1 : 0) + "\n";
  }
  return out;
}

std::string ShareBreakdown(const std::vector<CategoryCount>& categories) {
  double total = 0;
  for (const CategoryCount& c : categories) total += c.value;
  if (total <= 0) return "(no data)\n";
  std::string out;
  for (const CategoryCount& c : categories) {
    out += FormatFixed(c.value / total * 100.0, 1) + "%  " + c.label +
           " (" + FormatFixed(c.value, 0) + ")\n";
  }
  return out;
}

std::vector<CategoryCount> CategoriesFromTerms(
    const backend::AggResult& result) {
  std::vector<CategoryCount> out;
  out.reserve(result.buckets.size());
  for (const backend::AggBucket& bucket : result.buckets) {
    CategoryCount category;
    category.label = bucket.key.is_string() ? bucket.key.as_string()
                                            : bucket.key.Dump();
    category.value = static_cast<double>(bucket.doc_count);
    out.push_back(std::move(category));
  }
  return out;
}
}  // namespace dio::viz
