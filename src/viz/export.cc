#include "viz/export.h"

#include <filesystem>
#include <fstream>

namespace dio::viz {

Status WriteTextFile(const std::string& path, const std::string& contents) {
  // Artifacts land in directories like out/ that may not exist yet.
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) return Unavailable("cannot create directory: " + parent.string());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Unavailable("cannot open for writing: " + path);
  out << contents;
  out.close();
  if (!out) return Unavailable("write failed: " + path);
  return Status::Ok();
}

}  // namespace dio::viz
