#include "viz/export.h"

#include <fstream>

namespace dio::viz {

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Unavailable("cannot open for writing: " + path);
  out << contents;
  out.close();
  if (!out) return Unavailable("write failed: " + path);
  return Status::Ok();
}

}  // namespace dio::viz
