// Time-series visualizations: single-series ASCII line charts (Fig. 3's
// p99-over-time) and multi-series intensity grids (Fig. 4's syscalls-over-
// time per thread name).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "backend/aggregation.h"

namespace dio::viz {

struct SeriesPoint {
  std::int64_t t = 0;  // bucket start (ns since run start)
  double value = 0.0;
};

struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

// Builds one series per terms bucket from a terms x date_histogram
// aggregation result (the Fig. 4 shape). `sub_name` is the name given to
// the date_histogram sub-aggregation.
std::vector<Series> SeriesFromTermsHistogram(const backend::AggResult& result,
                                             const std::string& sub_name);

class ChartRenderer {
 public:
  // Vertical-bar line chart: one column per bucket, `height` rows.
  // `y_label` annotates the max value.
  static std::string LineChart(const Series& series, int height = 12,
                               const std::string& y_label = "");

  // Multi-series grid: one row per series, one cell per time bucket, cell
  // intensity from ' ' .. '█' scaled to the global max (Fig. 4's visual).
  static std::string IntensityGrid(const std::vector<Series>& series_list,
                                   int max_buckets = 120);

  // CSV with one row per time bucket and one column per series.
  static std::string SeriesCsv(const std::vector<Series>& series_list);
};

// Categorical value -> count renderers (the paper's visualizer also offers
// histograms and pie charts; these are the terminal equivalents).
struct CategoryCount {
  std::string label;
  double value = 0;
};

// Horizontal bar chart, one row per category, bars scaled to max.
std::string BarChart(const std::vector<CategoryCount>& categories,
                     int max_width = 50);

// Share-of-total breakdown ("pie chart" in text form): label, value, percent.
std::string ShareBreakdown(const std::vector<CategoryCount>& categories);

// Convenience: build categories from a terms aggregation result.
std::vector<CategoryCount> CategoriesFromTerms(
    const backend::AggResult& result);

}  // namespace dio::viz
