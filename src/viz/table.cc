#include "viz/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace dio::viz {

void TableView::AddRow(const Json& doc) {
  std::vector<std::string> row;
  row.reserve(columns_.size());
  for (const Column& column : columns_) {
    row.push_back(column.cell(doc));
  }
  rows_.push_back(std::move(row));
}

void TableView::AddRows(const std::vector<backend::Hit>& hits) {
  for (const backend::Hit& hit : hits) AddRow(hit.source);
}

std::string TableView::Render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  for (const Column& column : columns_) headers.push_back(column.header);
  emit_row(headers);

  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule;
  out.push_back('\n');

  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TableView::RenderCsv() const {
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) out.push_back(',');
    out += escape(columns_[c].header);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out.push_back(',');
      out += escape(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

Column TableView::TimestampColumn(std::string header, std::string field) {
  return Column{std::move(header), [field = std::move(field)](const Json& doc) {
                  const Json* value = doc.Find(field);
                  if (value == nullptr || !value->is_number()) return std::string();
                  return WithThousandsSeparators(value->as_int());
                }};
}

Column TableView::TextColumn(std::string header, std::string field) {
  return Column{std::move(header), [field = std::move(field)](const Json& doc) {
                  return doc.GetString(field);
                }};
}

Column TableView::IntColumn(std::string header, std::string field) {
  return Column{std::move(header), [field = std::move(field)](const Json& doc) {
                  const Json* value = doc.Find(field);
                  if (value == nullptr || !value->is_number()) return std::string();
                  return std::to_string(value->as_int());
                }};
}

Column TableView::FileTagColumn(std::string header) {
  return Column{std::move(header), [](const Json& doc) {
                  if (!doc.Has("tag_dev")) return std::string();
                  return std::to_string(doc.GetInt("tag_dev")) + " " +
                         std::to_string(doc.GetInt("tag_ino")) + " " +
                         std::to_string(doc.GetInt("tag_ts"));
                }};
}

Column TableView::OffsetColumn(std::string header) {
  return Column{std::move(header), [](const Json& doc) {
                  const Json* value = doc.Find("file_offset");
                  if (value == nullptr || !value->is_number()) return std::string();
                  return std::to_string(value->as_int());
                }};
}

}  // namespace dio::viz
