// Self-contained HTML report builder — the stand-in for Kibana's web
// dashboards (§II-D). Produces a single .html file with styled tables,
// inline-SVG time-series charts, and detector findings, so a tracing
// session's analysis can be shared as one artifact.
#pragma once

#include <string>
#include <vector>

#include "backend/detectors.h"
#include "viz/table.h"
#include "viz/timeseries.h"

namespace dio::viz {

class HtmlReport {
 public:
  explicit HtmlReport(std::string title);

  // Sections are rendered in insertion order.
  void AddHeading(const std::string& text);
  void AddParagraph(const std::string& text);
  void AddTable(const std::string& caption, const TableView& table);
  // Multi-series line chart as inline SVG.
  void AddLineChart(const std::string& caption,
                    const std::vector<Series>& series_list, int width = 900,
                    int height = 260);
  void AddFindings(const std::string& caption,
                   const std::vector<backend::Finding>& findings);

  // Complete HTML document.
  [[nodiscard]] std::string Build() const;

 private:
  static std::string Escape(const std::string& text);

  std::string title_;
  std::vector<std::string> sections_;
};

}  // namespace dio::viz
