// Tabular visualization (the Fig. 2 view): column definitions with
// per-column formatters over backend hits, rendered as aligned ASCII.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "backend/store.h"
#include "common/json.h"

namespace dio::viz {

struct Column {
  std::string header;
  // Produces the cell text for one document.
  std::function<std::string(const Json&)> cell;
};

class TableView {
 public:
  TableView() = default;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }
  void AddRow(const Json& doc);
  void AddRows(const std::vector<backend::Hit>& hits);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  // Aligned ASCII rendering with a header rule.
  [[nodiscard]] std::string Render() const;
  // Comma-separated (quoted where needed) for export.
  [[nodiscard]] std::string RenderCsv() const;

  // ---- stock formatters -----------------------------------------------
  // Integer field with thousands separators (paper-style timestamps).
  static Column TimestampColumn(std::string header, std::string field);
  static Column TextColumn(std::string header, std::string field);
  static Column IntColumn(std::string header, std::string field);
  // "dev ino ts" rendering of the file tag, blank when absent.
  static Column FileTagColumn(std::string header = "file_tag");
  // file_offset, blank when the syscall has none.
  static Column OffsetColumn(std::string header = "offset");

 private:
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dio::viz
