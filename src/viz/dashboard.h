// Predefined dashboards (§II-D): the stock visualizations DIO ships with,
// each one a query + aggregation + renderer over a tracing session's index.
// Users compose their own from the same pieces (see examples/custom_analysis).
#pragma once

#include <string>

#include "backend/correlation.h"
#include "backend/query_backend.h"
#include "common/status.h"
#include "viz/table.h"
#include "viz/timeseries.h"

namespace dio::viz {

class Dashboards {
 public:
  Dashboards(backend::QueryBackend* store, std::string index)
      : store_(store), index_(std::move(index)) {}

  // Fig. 2-style table: time, proc_name, syscall, ret, file_tag, offset —
  // every traced event in time order (optionally filtered).
  Expected<TableView> SyscallTable(
      const backend::Query& filter = backend::Query::MatchAll(),
      std::size_t limit = 1000) const;

  // Fig. 4-style: syscalls over time, aggregated by thread name.
  Expected<std::string> ThreadTimeline(std::int64_t interval_ns,
                                       int max_buckets = 100) const;
  Expected<std::vector<Series>> ThreadTimelineSeries(
      std::int64_t interval_ns) const;

  // Summary: events per syscall and per category, with latency stats.
  Expected<TableView> SyscallSummary() const;

  // Latency percentiles per time window for one thread-name group (used to
  // cross-check Fig. 3 against traced data).
  Expected<Series> LatencySeries(const std::string& comm_prefix,
                                 std::int64_t interval_ns,
                                 double percentile = 99.0) const;

  // Heatmap of syscall latency over time: one row per log-scaled duration
  // band, one column per time window, intensity = event count (a Kibana
  // heatmap staple).
  Expected<std::string> LatencyHeatmap(std::int64_t interval_ns,
                                       int max_buckets = 100) const;

  // Event share per syscall as a bar chart + percentage breakdown.
  Expected<std::string> SyscallShare() const;

 private:
  backend::QueryBackend* store_;
  std::string index_;
};

}  // namespace dio::viz
