#include "viz/html_report.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace dio::viz {

namespace {

// Categorical palette (colorblind-safe-ish).
const char* kPalette[] = {"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
                          "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
                          "#9c6b4e", "#9498a0"};
constexpr int kPaletteSize = 10;

}  // namespace

HtmlReport::HtmlReport(std::string title) : title_(std::move(title)) {}

std::string HtmlReport::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void HtmlReport::AddHeading(const std::string& text) {
  sections_.push_back("<h2>" + Escape(text) + "</h2>");
}

void HtmlReport::AddParagraph(const std::string& text) {
  sections_.push_back("<p>" + Escape(text) + "</p>");
}

void HtmlReport::AddTable(const std::string& caption, const TableView& table) {
  std::string html = "<figure><figcaption>" + Escape(caption) +
                     "</figcaption><table><thead><tr>";
  // Reconstruct headers from the CSV's first line.
  const std::string csv = table.RenderCsv();
  const std::size_t header_end = csv.find('\n');
  for (const std::string& header :
       Split(csv.substr(0, header_end), ',')) {
    html += "<th>" + Escape(header) + "</th>";
  }
  html += "</tr></thead><tbody>";
  for (const auto& row : table.rows()) {
    html += "<tr>";
    for (const std::string& cell : row) {
      html += "<td>" + Escape(cell) + "</td>";
    }
    html += "</tr>";
  }
  html += "</tbody></table></figure>";
  sections_.push_back(std::move(html));
}

void HtmlReport::AddLineChart(const std::string& caption,
                              const std::vector<Series>& series_list,
                              int width, int height) {
  // Data bounds.
  double min_t = 0;
  double max_t = 1;
  double max_v = 1;
  bool first = true;
  for (const Series& series : series_list) {
    for (const SeriesPoint& p : series.points) {
      if (first) {
        min_t = max_t = static_cast<double>(p.t);
        first = false;
      }
      min_t = std::min(min_t, static_cast<double>(p.t));
      max_t = std::max(max_t, static_cast<double>(p.t));
      max_v = std::max(max_v, p.value);
    }
  }
  if (max_t <= min_t) max_t = min_t + 1;

  constexpr int kMarginLeft = 60;
  constexpr int kMarginBottom = 24;
  constexpr int kMarginTop = 8;
  const double plot_w = width - kMarginLeft - 10;
  const double plot_h = height - kMarginBottom - kMarginTop;
  const auto x_of = [&](double t) {
    return kMarginLeft + (t - min_t) / (max_t - min_t) * plot_w;
  };
  const auto y_of = [&](double v) {
    return kMarginTop + (1.0 - v / max_v) * plot_h;
  };

  std::string svg = "<figure><figcaption>" + Escape(caption) +
                    "</figcaption><svg viewBox=\"0 0 " +
                    std::to_string(width) + " " + std::to_string(height) +
                    "\" width=\"" + std::to_string(width) + "\">";
  // Axes + y gridlines.
  for (int i = 0; i <= 4; ++i) {
    const double v = max_v * i / 4;
    const double y = y_of(v);
    svg += "<line x1=\"" + std::to_string(kMarginLeft) + "\" y1=\"" +
           FormatFixed(y, 1) + "\" x2=\"" + std::to_string(width - 10) +
           "\" y2=\"" + FormatFixed(y, 1) +
           "\" stroke=\"#ddd\" stroke-width=\"1\"/>";
    svg += "<text x=\"" + std::to_string(kMarginLeft - 6) + "\" y=\"" +
           FormatFixed(y + 4, 1) +
           "\" text-anchor=\"end\" font-size=\"11\" fill=\"#555\">" +
           FormatFixed(v, v < 10 ? 1 : 0) + "</text>";
  }
  // Series.
  int color = 0;
  std::string legend;
  for (const Series& series : series_list) {
    const char* stroke = kPalette[color % kPaletteSize];
    std::string points;
    for (const SeriesPoint& p : series.points) {
      points += FormatFixed(x_of(static_cast<double>(p.t)), 1) + "," +
                FormatFixed(y_of(p.value), 1) + " ";
    }
    svg += "<polyline fill=\"none\" stroke=\"";
    svg += stroke;
    svg += "\" stroke-width=\"1.6\" points=\"" + points + "\"/>";
    legend += "<span style=\"color:";
    legend += stroke;
    legend += "\">&#9644; " + Escape(series.name) + "</span> ";
    ++color;
  }
  svg += "</svg><div class=\"legend\">" + legend + "</div></figure>";
  sections_.push_back(std::move(svg));
}

void HtmlReport::AddFindings(const std::string& caption,
                             const std::vector<backend::Finding>& findings) {
  std::string html = "<figure><figcaption>" + Escape(caption) +
                     "</figcaption><ul class=\"findings\">";
  if (findings.empty()) html += "<li class=\"info\">no findings</li>";
  for (const backend::Finding& finding : findings) {
    html += "<li class=\"" + Escape(finding.severity) + "\"><b>[" +
            Escape(finding.severity) + "] " + Escape(finding.detector) +
            "</b> ";
    if (!finding.file_path.empty()) {
      html += "<code>" + Escape(finding.file_path) + "</code> ";
    }
    html += Escape(finding.message) + "</li>";
  }
  html += "</ul></figure>";
  sections_.push_back(std::move(html));
}

std::string HtmlReport::Build() const {
  std::string html =
      "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" +
      Escape(title_) +
      "</title><style>"
      "body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;"
      "max-width:980px;color:#1a1a1a}"
      "h1{font-size:22px} h2{font-size:17px;margin-top:28px}"
      "table{border-collapse:collapse;font-size:12.5px;width:100%}"
      "th,td{border:1px solid #ddd;padding:3px 8px;text-align:left;"
      "font-variant-numeric:tabular-nums}"
      "th{background:#f4f4f4}"
      "figure{margin:12px 0} figcaption{font-weight:600;margin-bottom:6px}"
      ".legend{font-size:12px;margin-top:4px}"
      "ul.findings{padding-left:18px}"
      "li.critical{color:#b30000} li.warning{color:#8a6d00}"
      "li.info{color:#333}"
      "code{background:#f4f4f4;padding:0 3px}"
      "</style></head><body><h1>" +
      Escape(title_) + "</h1>";
  for (const std::string& section : sections_) html += section;
  html += "</body></html>";
  return html;
}

}  // namespace dio::viz
