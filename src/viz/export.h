// Artifact export: writes rendered views and raw series to files so every
// bench/figure harness leaves reproducible .txt/.csv outputs next to its
// stdout report.
#pragma once

#include <string>

#include "common/status.h"

namespace dio::viz {

Status WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace dio::viz
