#include "viz/dashboard.h"

#include <limits>
#include <map>

#include "common/string_util.h"

namespace dio::viz {

Expected<TableView> Dashboards::SyscallTable(const backend::Query& filter,
                                             std::size_t limit) const {
  backend::SearchRequest request;
  request.query = filter;
  request.sort = {{"time_enter", true}};
  request.size = limit;
  auto result = store_->Search(index_, request);
  if (!result.ok()) return result.status();

  TableView table;
  table.AddColumn(TableView::TimestampColumn("time", "time_enter"));
  table.AddColumn(TableView::TextColumn("proc_name", "comm"));
  table.AddColumn(TableView::TextColumn("syscall", "syscall"));
  table.AddColumn(TableView::IntColumn("ret_val", "ret"));
  table.AddColumn(TableView::FileTagColumn("file_tag (dev_no inode_no timestamp)"));
  table.AddColumn(TableView::OffsetColumn("offset"));
  table.AddColumn(TableView::TextColumn("file_path", "file_path"));
  table.AddRows(result->hits);
  return table;
}

Expected<std::vector<Series>> Dashboards::ThreadTimelineSeries(
    std::int64_t interval_ns) const {
  auto agg = backend::Aggregation::Terms("comm").SubAgg(
      "over_time",
      backend::Aggregation::DateHistogram("time_enter", interval_ns));
  auto result =
      store_->Aggregate(index_, backend::Query::MatchAll(), agg);
  if (!result.ok()) return result.status();
  return SeriesFromTermsHistogram(*result, "over_time");
}

Expected<std::string> Dashboards::ThreadTimeline(std::int64_t interval_ns,
                                                 int max_buckets) const {
  auto series = ThreadTimelineSeries(interval_ns);
  if (!series.ok()) return series.status();
  return ChartRenderer::IntensityGrid(*series, max_buckets);
}

Expected<TableView> Dashboards::SyscallSummary() const {
  auto agg = backend::Aggregation::Terms("syscall")
                 .SubAgg("latency", backend::Aggregation::Stats("duration_ns"));
  auto result = store_->Aggregate(index_, backend::Query::MatchAll(), agg);
  if (!result.ok()) return result.status();

  TableView table;
  table.AddColumn(TableView::TextColumn("syscall", "syscall"));
  table.AddColumn(TableView::IntColumn("events", "events"));
  table.AddColumn(TableView::TextColumn("avg_latency_us", "avg_us"));
  table.AddColumn(TableView::TextColumn("max_latency_us", "max_us"));
  for (const backend::AggBucket& bucket : result->buckets) {
    Json row = Json::MakeObject();
    row.Set("syscall", bucket.key);
    row.Set("events", bucket.doc_count);
    auto latency_it = bucket.sub.find("latency");
    if (latency_it != bucket.sub.end()) {
      const Json& metrics = latency_it->second.metrics;
      row.Set("avg_us",
              FormatFixed(metrics.GetDouble("avg") / 1000.0, 1));
      row.Set("max_us",
              FormatFixed(metrics.GetDouble("max") / 1000.0, 1));
    }
    table.AddRow(row);
  }
  return table;
}

Expected<Series> Dashboards::LatencySeries(const std::string& comm_prefix,
                                           std::int64_t interval_ns,
                                           double percentile) const {
  auto agg = backend::Aggregation::DateHistogram("time_enter", interval_ns)
                 .SubAgg("lat", backend::Aggregation::Percentiles(
                                    "duration_ns", {percentile}));
  auto result = store_->Aggregate(
      index_, backend::Query::Prefix("comm", comm_prefix), agg);
  if (!result.ok()) return result.status();

  Series series;
  series.name = comm_prefix + " p" + FormatFixed(percentile, 0) + " (ns)";
  for (const backend::AggBucket& bucket : result->buckets) {
    auto lat_it = bucket.sub.find("lat");
    if (lat_it == bucket.sub.end()) continue;
    const Json& metrics = lat_it->second.metrics;
    double value = 0;
    if (!metrics.as_object().empty()) {
      value = metrics.as_object().front().second.as_double();
    }
    series.points.push_back(SeriesPoint{bucket.key.as_int(), value});
  }
  return series;
}

Expected<std::string> Dashboards::LatencyHeatmap(std::int64_t interval_ns,
                                                 int max_buckets) const {
  // Pull every event's (time, duration) and bucket durations into decade
  // bands: <1us, 1-10us, ..., >=1s.
  backend::SearchRequest request;
  request.query = backend::Query::Exists("duration_ns");
  request.size = std::numeric_limits<std::size_t>::max();
  auto events = store_->Search(index_, request);
  if (!events.ok()) return events.status();

  static const char* kBands[] = {"<1us",      "1-10us",   "10-100us",
                                 "100us-1ms", "1-10ms",   "10-100ms",
                                 ">=100ms"};
  constexpr int kNumBands = 7;
  std::map<int, Series> bands;
  for (const backend::Hit& hit : events->hits) {
    const std::int64_t duration = hit.source.GetInt("duration_ns");
    int band = 0;
    std::int64_t bound = 1000;
    while (band < kNumBands - 1 && duration >= bound) {
      ++band;
      bound *= 10;
    }
    const std::int64_t window =
        hit.source.GetInt("time_enter") / interval_ns * interval_ns;
    Series& series = bands[band];
    series.name = kBands[band];
    bool found = false;
    for (SeriesPoint& p : series.points) {
      if (p.t == window) {
        p.value += 1;
        found = true;
        break;
      }
    }
    if (!found) series.points.push_back({window, 1.0});
  }
  std::vector<Series> rows;
  for (int band = kNumBands - 1; band >= 0; --band) {
    auto it = bands.find(band);
    if (it != bands.end()) rows.push_back(it->second);
  }
  if (rows.empty()) return std::string("(no data)\n");
  return ChartRenderer::IntensityGrid(rows, max_buckets);
}

Expected<std::string> Dashboards::SyscallShare() const {
  auto agg = store_->Aggregate(index_, backend::Query::MatchAll(),
                               backend::Aggregation::Terms("syscall"));
  if (!agg.ok()) return agg.status();
  const auto categories = CategoriesFromTerms(*agg);
  return BarChart(categories) + "\n" + ShareBreakdown(categories);
}

}  // namespace dio::viz
