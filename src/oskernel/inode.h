// Inode and inode table for one simulated filesystem.
//
// Inode numbers are recycled lowest-free-first, like ext4's bitmap allocator.
// This recycling is what makes the Fluent Bit data-loss scenario (§III-B)
// reproducible: a deleted file's inode number is handed to the next file
// created, so a position database keyed by (name, inode) resolves to stale
// state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "oskernel/types.h"

namespace dio::os {

struct Inode {
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint32_t mode = 0;
  std::uint64_t nlink = 0;

  // Regular file payload. Directories use `entries`; symlinks use `target`.
  std::string data;
  std::map<std::string, InodeNum> entries;
  std::string symlink_target;

  // Extended attributes (name -> value).
  std::map<std::string, std::string> xattrs;

  Nanos atime_ns = 0;
  Nanos mtime_ns = 0;
  Nanos ctime_ns = 0;

  // Number of open file descriptions referencing this inode. An inode whose
  // nlink dropped to zero is only freed when the last fd closes (POSIX
  // deferred deletion) — required for the inode-recycling scenario.
  std::uint32_t open_refs = 0;

  [[nodiscard]] std::uint64_t size() const {
    return type == FileType::kDirectory ? entries.size() : data.size();
  }
};

class InodeTable {
 public:
  // Inode numbers start at `first_ino` (filesystems reserve low numbers;
  // we default to 2 so the root directory takes ino 2, like ext4).
  explicit InodeTable(InodeNum first_ino = 2);

  InodeTable(const InodeTable&) = delete;
  InodeTable& operator=(const InodeTable&) = delete;

  // Allocates the lowest free inode number.
  Inode* Allocate(FileType type, Nanos now);

  // Releases an inode number back to the free pool. The inode must exist.
  void Free(InodeNum ino);

  [[nodiscard]] Inode* Get(InodeNum ino);
  [[nodiscard]] const Inode* Get(InodeNum ino) const;

  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

 private:
  InodeNum next_never_used_;
  std::set<InodeNum> free_list_;  // recycled numbers, lowest-first
  std::map<InodeNum, std::unique_ptr<Inode>> live_;
};

}  // namespace dio::os
