// Virtual filesystem: mounts, path resolution, directories, regular file
// data, xattrs, and POSIX deferred inode deletion.
//
// All operations return errno-style results (0 / positive on success,
// negative errno on failure) because the syscall layer forwards them
// directly as syscall return values — the signal DIO traces.
//
// Concurrency: one mutex guards all VFS metadata and data. Device service
// time is charged by the *syscall layer* outside this lock, so the disk —
// not the VFS lock — is the contended resource in experiments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "oskernel/disk.h"
#include "oskernel/inode.h"
#include "oskernel/types.h"

namespace dio::os {

// Result of resolving a path for open(2).
struct OpenResolution {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint64_t size = 0;
  bool created = false;
  BlockDevice* device = nullptr;
};

class Vfs {
 public:
  explicit Vfs(Clock* clock);

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // Mount a filesystem backed by `device` (may be nullptr for a RAM-backed
  // fs) at `prefix` ("/" or "/mnt/data"). Longest-prefix wins at resolution.
  // The root mount "/" is created by the constructor on a null device.
  // `capacity_bytes` bounds the total file data on the mount (0 = unbounded);
  // writes that would exceed it fail with -ENOSPC, and deletions free space —
  // the failure-injection hook for dependability experiments.
  dio::Status AddMount(std::string prefix, DeviceNum dev, BlockDevice* device,
                       std::uint64_t capacity_bytes = 0);

  // Data bytes currently stored on a mount (regular file payloads).
  [[nodiscard]] std::uint64_t UsedBytes(DeviceNum dev) const;

  // ---- open/close support -------------------------------------------------
  // Resolves (and with kCreate, creates) the file for open(); bumps the
  // inode's open_refs on success.
  int ResolveForOpen(std::string_view path, std::uint32_t flags,
                     std::uint32_t mode, OpenResolution* out);
  // Drops an open reference; frees the inode if it is orphaned (nlink == 0).
  void ReleaseOpenRef(DeviceNum dev, InodeNum ino);

  // ---- data ---------------------------------------------------------------
  // Reads up to `count` bytes at `offset` into `out`. Returns bytes read.
  std::int64_t Read(DeviceNum dev, InodeNum ino, std::uint64_t offset,
                    std::uint64_t count, std::string* out);
  // Writes at `offset` (or at EOF if `append`); returns bytes written and
  // stores the offset actually used in `*offset_used`.
  std::int64_t Write(DeviceNum dev, InodeNum ino, std::uint64_t offset,
                     std::string_view data, bool append,
                     std::uint64_t* offset_used);
  int TruncateInode(DeviceNum dev, InodeNum ino, std::uint64_t size);
  int TruncatePath(std::string_view path, std::uint64_t size,
                   PathView* resolved = nullptr);

  // ---- metadata -----------------------------------------------------------
  int StatPath(std::string_view path, bool follow_symlink, StatBuf* out);
  int StatInode(DeviceNum dev, InodeNum ino, StatBuf* out);
  int Unlink(std::string_view path);
  int Rename(std::string_view from, std::string_view to);

  // ---- directories / nodes ------------------------------------------------
  int Mkdir(std::string_view path, std::uint32_t mode);
  int Rmdir(std::string_view path);
  int Mknod(std::string_view path, std::uint32_t mode);
  // Test/setup helper (symlink(2) is not in the traced set, so this is not a
  // syscall): creates a symbolic link at `path` pointing to `target`.
  int CreateSymlink(std::string_view path, std::string target);

  // ---- extended attributes ------------------------------------------------
  int SetXattrPath(std::string_view path, bool follow, std::string_view name,
                   std::string_view value);
  int GetXattrPath(std::string_view path, bool follow, std::string_view name,
                   std::string* value);
  int RemoveXattrPath(std::string_view path, bool follow,
                      std::string_view name);
  int ListXattrPath(std::string_view path, bool follow,
                    std::vector<std::string>* names);
  int SetXattrInode(DeviceNum dev, InodeNum ino, std::string_view name,
                    std::string_view value);
  int GetXattrInode(DeviceNum dev, InodeNum ino, std::string_view name,
                    std::string* value);
  int RemoveXattrInode(DeviceNum dev, InodeNum ino, std::string_view name);
  int ListXattrInode(DeviceNum dev, InodeNum ino,
                     std::vector<std::string>* names);

  // ---- views for tracer enrichment ----------------------------------------
  [[nodiscard]] std::optional<PathView> ResolvePathView(
      std::string_view path) const;
  [[nodiscard]] BlockDevice* DeviceOf(DeviceNum dev) const;
  [[nodiscard]] std::optional<FileType> TypeOf(DeviceNum dev,
                                               InodeNum ino) const;

  // Directory listing (for tests and tooling; readdir is not in the set).
  [[nodiscard]] std::vector<std::string> ListDir(std::string_view path) const;

 private:
  struct MountFs {
    std::string prefix;
    DeviceNum dev;
    BlockDevice* device;
    InodeTable inodes;
    InodeNum root;
    std::uint64_t capacity_bytes;  // 0 = unbounded
    std::uint64_t used_bytes = 0;  // regular-file payload bytes

    MountFs(std::string p, DeviceNum d, BlockDevice* dv, std::uint64_t cap)
        : prefix(std::move(p)), dev(d), device(dv), inodes(2), root(0),
          capacity_bytes(cap) {}
  };

  struct Located {
    MountFs* mount = nullptr;
    Inode* inode = nullptr;
  };
  struct ParentLocated {
    MountFs* mount = nullptr;
    Inode* parent = nullptr;
    std::string leaf;
  };

  // All private helpers assume mu_ is held.
  [[nodiscard]] MountFs* MountFor(std::string_view path,
                                  std::string_view* remainder) const;
  int LocatePath(std::string_view path, bool follow_final_symlink,
                 Located* out, int depth = 0) const;
  int LocateParent(std::string_view path, ParentLocated* out) const;
  [[nodiscard]] MountFs* MountByDev(DeviceNum dev) const;
  void MaybeFreeInode(MountFs* fs, Inode* inode);

  static dio::Status NormalizePath(std::string_view path,
                                   std::string* normalized);

  Clock* clock_;
  mutable std::mutex mu_;
  // Sorted by prefix length descending for longest-prefix matching.
  std::vector<std::unique_ptr<MountFs>> mounts_;
};

}  // namespace dio::os
