#include "oskernel/process.h"

#include <algorithm>
#include <cstring>

namespace dio::os {

Pid ProcessManager::CreateProcess(std::string name, Pid parent) {
  std::scoped_lock lock(mu_);
  const Pid pid = next_pid_++;
  Process proc;
  proc.pid = pid;
  proc.parent = parent;
  proc.name = std::move(name);
  processes_[pid] = std::move(proc);
  return pid;
}

Tid ProcessManager::CreateThread(Pid pid, std::string comm) {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) return kNoTid;
  const Tid tid = next_tid_++;
  Thread thread;
  thread.tid = tid;
  thread.pid = pid;
  thread.comm = comm.empty() ? it->second.name : std::move(comm);
  threads_[tid] = std::move(thread);
  return tid;
}

void ProcessManager::ExitThread(Tid tid) {
  std::scoped_lock lock(mu_);
  threads_.erase(tid);
}

void ProcessManager::ExitProcess(Pid pid) {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return;
  it->second.alive = false;
  it->second.fds.clear();
  for (auto thread_it = threads_.begin(); thread_it != threads_.end();) {
    if (thread_it->second.pid == pid) {
      thread_it = threads_.erase(thread_it);
    } else {
      ++thread_it;
    }
  }
}

std::optional<Thread> ProcessManager::GetThread(Tid tid) const {
  std::scoped_lock lock(mu_);
  auto it = threads_.find(tid);
  if (it == threads_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> ProcessManager::ProcessName(Pid pid) const {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return std::nullopt;
  return it->second.name;
}

std::size_t ProcessManager::CopyProcessName(Pid pid,
                                            std::span<char> buf) const {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return 0;
  const std::string& name = it->second.name;
  const std::size_t n = std::min(name.size(), buf.size());
  if (n > 0) std::memcpy(buf.data(), name.data(), n);
  return name.size();
}

std::vector<Pid> ProcessManager::LivePids() const {
  std::scoped_lock lock(mu_);
  std::vector<Pid> out;
  for (const auto& [pid, proc] : processes_) {
    if (proc.alive) out.push_back(pid);
  }
  return out;
}

std::vector<Tid> ProcessManager::ThreadsOf(Pid pid) const {
  std::scoped_lock lock(mu_);
  std::vector<Tid> out;
  for (const auto& [tid, thread] : threads_) {
    if (thread.pid == pid) out.push_back(tid);
  }
  return out;
}

Fd ProcessManager::AllocateFd(Pid pid,
                              std::shared_ptr<OpenFileDescription> ofd) {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) return kNoFd;
  Process& proc = it->second;
  // Lowest-free allocation starting at 3 (0/1/2 are std streams).
  Fd fd = 3;
  for (const auto& [used_fd, unused] : proc.fds) {
    if (used_fd != fd) break;
    ++fd;
  }
  proc.fds[fd] = std::move(ofd);
  return fd;
}

std::shared_ptr<OpenFileDescription> ProcessManager::LookupFd(Pid pid,
                                                              Fd fd) const {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return nullptr;
  auto fd_it = it->second.fds.find(fd);
  return fd_it == it->second.fds.end() ? nullptr : fd_it->second;
}

bool ProcessManager::SnapshotFd(Pid pid, Fd fd, std::span<char> path_buf,
                                FdSnapshot* out) const {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return false;
  auto fd_it = it->second.fds.find(fd);
  if (fd_it == it->second.fds.end()) return false;
  const OpenFileDescription& ofd = *fd_it->second;
  out->dev = ofd.dev;
  out->ino = ofd.ino;
  out->type = ofd.type;
  out->offset = ofd.offset.load(std::memory_order_relaxed);
  const std::size_t n = std::min(ofd.path.size(), path_buf.size());
  if (n > 0) std::memcpy(path_buf.data(), ofd.path.data(), n);
  out->path_len = static_cast<std::uint16_t>(n);
  out->path_trunc = static_cast<std::uint16_t>(
      std::min<std::size_t>(ofd.path.size() - n, 0xFFFF));
  return true;
}

std::shared_ptr<OpenFileDescription> ProcessManager::ReleaseFd(Pid pid, Fd fd) {
  std::scoped_lock lock(mu_);
  auto it = processes_.find(pid);
  if (it == processes_.end()) return nullptr;
  auto fd_it = it->second.fds.find(fd);
  if (fd_it == it->second.fds.end()) return nullptr;
  std::shared_ptr<OpenFileDescription> ofd = std::move(fd_it->second);
  it->second.fds.erase(fd_it);
  return ofd;
}

std::vector<std::shared_ptr<OpenFileDescription>> ProcessManager::AllFds(
    Pid pid) const {
  std::scoped_lock lock(mu_);
  std::vector<std::shared_ptr<OpenFileDescription>> out;
  auto it = processes_.find(pid);
  if (it == processes_.end()) return out;
  out.reserve(it->second.fds.size());
  for (const auto& [fd, ofd] : it->second.fds) out.push_back(ofd);
  return out;
}

}  // namespace dio::os
