// Process / thread registry and per-process file descriptor tables.
//
// Threads carry a comm name (like Linux task->comm): Fig. 2 distinguishes
// "app" / "fluent-bit" / "flb-pipeline" and Fig. 4 aggregates by
// "db_bench" / "rocksdb:lowX" / "rocksdb:high0" — all thread comms.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "oskernel/types.h"

namespace dio::os {

// One open(2) result. The offset is atomic because a description may be
// shared across threads (e.g. an LSM WAL fd appended to by many writers).
struct OpenFileDescription {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint32_t flags = 0;
  std::atomic<std::uint64_t> offset{0};
  std::string path;       // path used at open time (dentry name)
  Nanos opened_at = 0;
  std::atomic<std::uint64_t> dirty_bytes{0};  // written since last fsync
  class BlockDevice* device = nullptr;  // backing device, cached at open
};

struct Thread {
  Tid tid = kNoTid;
  Pid pid = kNoPid;
  std::string comm;
};

struct Process {
  Pid pid = kNoPid;
  Pid parent = kNoPid;
  std::string name;
  bool alive = true;
  // fd -> open file description. Lowest-free fd allocation starting at 3.
  std::map<Fd, std::shared_ptr<OpenFileDescription>> fds;
  Fd next_fd_hint = 3;
};

class ProcessManager {
 public:
  explicit ProcessManager(Clock* clock) : clock_(clock) {}

  Pid CreateProcess(std::string name, Pid parent = kNoPid);
  // The first thread of a process shares the process name unless overridden.
  Tid CreateThread(Pid pid, std::string comm);
  void ExitThread(Tid tid);
  void ExitProcess(Pid pid);

  [[nodiscard]] std::optional<Thread> GetThread(Tid tid) const;
  [[nodiscard]] std::optional<std::string> ProcessName(Pid pid) const;
  // Allocation-free ProcessName for the tracer hook path: copies
  // min(name length, buf.size()) bytes into `buf` and returns the FULL name
  // length (snprintf-style, so callers can count truncation), 0 if the pid
  // is unknown.
  std::size_t CopyProcessName(Pid pid, std::span<char> buf) const;
  [[nodiscard]] std::vector<Pid> LivePids() const;
  [[nodiscard]] std::vector<Tid> ThreadsOf(Pid pid) const;

  // Fd table operations (called by the kernel with its own locking; these
  // take the registry lock themselves).
  Fd AllocateFd(Pid pid, std::shared_ptr<OpenFileDescription> ofd);
  [[nodiscard]] std::shared_ptr<OpenFileDescription> LookupFd(Pid pid,
                                                              Fd fd) const;
  // Allocation-free fd snapshot for the tracer hook path: reads the fd's
  // scalar state and copies min(dentry path length, path_buf.size()) bytes
  // into `path_buf` under a single registry lock, without the shared_ptr
  // refcount round-trip LookupFd pays. Returns false if the fd is not open.
  bool SnapshotFd(Pid pid, Fd fd, std::span<char> path_buf,
                  FdSnapshot* out) const;
  // Removes and returns the description, or nullptr if the fd was not open.
  std::shared_ptr<OpenFileDescription> ReleaseFd(Pid pid, Fd fd);
  [[nodiscard]] std::vector<std::shared_ptr<OpenFileDescription>> AllFds(
      Pid pid) const;

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  Pid next_pid_ = 1000;
  Tid next_tid_ = 1000;
  std::map<Pid, Process> processes_;
  std::map<Tid, Thread> threads_;
};

// Identity of the thread currently executing a syscall, bound via
// ScopedThread (thread_local, like `current` in the kernel).
struct CurrentTask {
  Pid pid = kNoPid;
  Tid tid = kNoTid;
  const char* comm = nullptr;  // owned by the binding
};

}  // namespace dio::os
