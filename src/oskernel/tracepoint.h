// Syscall tracepoints (sys_enter / sys_exit), mirroring the Linux tracing
// infrastructure DIO attaches to (§II-B).
//
// Handlers ("eBPF programs") are invoked synchronously on the calling
// thread, exactly like real tracepoint-attached BPF programs — this is the
// only synchronous part of DIO's pipeline, and it is what the overhead
// experiments (Table II) measure.
//
// Dispatch is lock-free on the hot path: the handler list per tracepoint is
// an immutable snapshot swapped atomically on attach/detach.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/clock.h"
#include "oskernel/syscall_nr.h"
#include "oskernel/types.h"

namespace dio::os {

// Typed view of a syscall's arguments, filled by the syscall layer. Raw
// argument words are also provided (as an eBPF program would read them from
// pt_regs); the string fields stand in for dereferencing user pointers.
struct SyscallArgs {
  std::array<std::uint64_t, 6> raw{};
  Fd fd = kNoFd;
  std::string path;    // primary path argument, already absolute
  std::string path2;   // rename destination
  std::string name;    // xattr name
  std::uint64_t count = 0;   // byte count for data syscalls
  std::int64_t offset = -1;  // explicit offset argument (pread64/pwrite64)
  int whence = -1;           // lseek
  std::uint32_t flags = 0;
  std::uint32_t mode = 0;
};

// What the "kernel" exposes to tracepoint handlers for enrichment — the
// stand-in for eBPF reading task_struct / files_struct / inode.
class KernelView {
 public:
  virtual ~KernelView() = default;
  [[nodiscard]] virtual std::optional<FdView> LookupFd(Pid pid, Fd fd) const = 0;
  [[nodiscard]] virtual std::optional<PathView> ResolvePath(
      std::string_view path) const = 0;
  [[nodiscard]] virtual std::optional<std::string> ProcessName(
      Pid pid) const = 0;
  [[nodiscard]] virtual int cpu_of(Tid tid) const = 0;

  // Allocation-free variants for tracer hook paths (a BPF program reads
  // kernel structs into stack buffers; it cannot allocate). The default
  // implementations fall back to the allocating calls so alternative
  // KernelView implementations keep working unchanged; the kernel's own
  // view overrides them with genuinely allocation-free reads.
  //
  // Snapshots fd state into `*out`, copying the dentry path into `path_buf`
  // (truncation recorded in out->path_trunc, à la bpf_probe_read_str's
  // bounded copy). Returns false if the fd is not open.
  virtual bool SnapshotFd(Pid pid, Fd fd, std::span<char> path_buf,
                          FdSnapshot* out) const {
    const std::optional<FdView> view = LookupFd(pid, fd);
    if (!view.has_value()) return false;
    out->dev = view->dev;
    out->ino = view->ino;
    out->type = view->type;
    out->offset = view->offset;
    const std::size_t n = std::min(view->path.size(), path_buf.size());
    if (n > 0) std::memcpy(path_buf.data(), view->path.data(), n);
    out->path_len = static_cast<std::uint16_t>(n);
    out->path_trunc = static_cast<std::uint16_t>(
        std::min<std::size_t>(view->path.size() - n, 0xFFFF));
    return true;
  }
  // Copies min(name length, buf.size()) bytes of the process (group leader)
  // name into `buf` and returns the FULL name length (snprintf-style, so
  // callers can count truncation); 0 if the pid is unknown.
  virtual std::size_t CopyProcessName(Pid pid, std::span<char> buf) const {
    const std::optional<std::string> name = ProcessName(pid);
    if (!name.has_value()) return 0;
    const std::size_t n = std::min(name->size(), buf.size());
    if (n > 0) std::memcpy(buf.data(), name->data(), n);
    return name->size();
  }
};

struct SysEnterContext {
  SyscallNr nr;
  Pid pid;
  Tid tid;
  std::string_view comm;
  Nanos timestamp;
  const SyscallArgs* args;
  KernelView* kernel;
};

struct SysExitContext {
  SyscallNr nr;
  Pid pid;
  Tid tid;
  std::string_view comm;
  Nanos timestamp;
  std::int64_t ret;
  const SyscallArgs* args;  // same object the enter hook saw
  KernelView* kernel;
};

using SysEnterHandler = std::function<void(const SysEnterContext&)>;
using SysExitHandler = std::function<void(const SysExitContext&)>;

// Opaque attachment handle; detach via TracepointRegistry::Detach.
using AttachId = std::uint64_t;

class TracepointRegistry {
 public:
  TracepointRegistry() = default;
  ~TracepointRegistry();

  TracepointRegistry(const TracepointRegistry&) = delete;
  TracepointRegistry& operator=(const TracepointRegistry&) = delete;

  AttachId AttachEnter(SyscallNr nr, SysEnterHandler handler);
  AttachId AttachExit(SyscallNr nr, SysExitHandler handler);
  // Attach/Detach wait for every in-flight handler invocation to finish
  // before returning (the synchronize_rcu() grace period real BPF
  // attach/detach performs), so a replaced handler list can be reclaimed
  // safely. Handlers must therefore never call Attach/Detach themselves.
  void Detach(AttachId id);
  void DetachAll();

  // Hot path: called by the syscall layer.
  void FireEnter(const SysEnterContext& ctx) const;
  void FireExit(const SysExitContext& ctx) const;

  // True if any handler is attached to this syscall's tracepoints (lets the
  // syscall layer skip context assembly entirely when untraced).
  [[nodiscard]] bool HasEnter(SyscallNr nr) const;
  [[nodiscard]] bool HasExit(SyscallNr nr) const;

 private:
  template <typename Handler>
  struct Entry {
    AttachId id;
    Handler handler;
  };
  template <typename Handler>
  using HandlerList = std::vector<Entry<Handler>>;
  template <typename Handler>
  using SlotArray =
      std::array<std::atomic<const HandlerList<Handler>*>, kNumSyscalls>;

  // RCU-style grace period: waits until no handler dispatch is in flight.
  // Dekker-style pairing with DispatchGuard: the slot store, the dispatch
  // counter increment, and this load are all seq_cst, so a reader that the
  // grace period missed is guaranteed to observe the new slot value.
  void Synchronize() const;

  template <typename Handler>
  void AppendLocked(SlotArray<Handler>& slots,
                    std::vector<const HandlerList<Handler>*>& retired,
                    SyscallNr nr, AttachId id, Handler handler);
  template <typename Handler>
  bool RemoveLocked(SlotArray<Handler>& slots,
                    std::vector<const HandlerList<Handler>*>& retired,
                    AttachId id);
  // Waits out the grace period and frees every retired snapshot. Requires
  // mutation_mu_ held (readers never take it, so this cannot deadlock).
  void ReclaimLocked();

  // Immutable snapshots: readers (FireEnter/FireExit/HasEnter/HasExit) load
  // the raw pointer under a DispatchGuard; writers swap wholesale under
  // mutation_mu_ and reclaim the old list after the grace period.
  mutable std::atomic<std::uint64_t> active_dispatches_{0};
  mutable std::mutex mutation_mu_;
  std::uint64_t next_id_ = 1;
  SlotArray<SysEnterHandler> enter_{};
  SlotArray<SysExitHandler> exit_{};
  std::vector<const HandlerList<SysEnterHandler>*> retired_enter_;
  std::vector<const HandlerList<SysExitHandler>*> retired_exit_;
};

}  // namespace dio::os
