#include "oskernel/types.h"

namespace dio::os {

std::string_view FileTypeName(FileType type) {
  switch (type) {
    case FileType::kUnknown: return "unknown";
    case FileType::kRegular: return "regular";
    case FileType::kDirectory: return "directory";
    case FileType::kSymlink: return "symlink";
    case FileType::kPipe: return "pipe";
    case FileType::kSocket: return "socket";
    case FileType::kBlockDevice: return "block-device";
    case FileType::kCharDevice: return "char-device";
  }
  return "unknown";
}

FileType FileTypeFromMode(std::uint32_t mode) {
  switch (mode & filemode::kTypeMask) {
    case filemode::kRegular: return FileType::kRegular;
    case filemode::kDirectory: return FileType::kDirectory;
    case filemode::kCharDevice: return FileType::kCharDevice;
    case filemode::kBlockDevice: return FileType::kBlockDevice;
    case filemode::kFifo: return FileType::kPipe;
    case filemode::kSocket: return FileType::kSocket;
    case filemode::kSymlink: return FileType::kSymlink;
    default: return FileType::kRegular;  // mknod with no type bits
  }
}

std::uint32_t ModeFromFileType(FileType type) {
  switch (type) {
    case FileType::kRegular: return filemode::kRegular;
    case FileType::kDirectory: return filemode::kDirectory;
    case FileType::kCharDevice: return filemode::kCharDevice;
    case FileType::kBlockDevice: return filemode::kBlockDevice;
    case FileType::kPipe: return filemode::kFifo;
    case FileType::kSocket: return filemode::kSocket;
    case FileType::kSymlink: return filemode::kSymlink;
    case FileType::kUnknown: return 0;
  }
  return 0;
}

}  // namespace dio::os
