// The 42 storage-related syscalls supported by DIO (paper Table I), grouped
// into the four categories the paper names: data, metadata, extended
// attributes, and directory management.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace dio::os {

enum class SyscallNr : std::uint8_t {
  // -- data --
  kRead = 0,
  kPread64,
  kReadv,
  kWrite,
  kPwrite64,
  kWritev,
  kLseek,
  kTruncate,
  kFtruncate,
  kFsync,
  kFdatasync,
  // -- metadata --
  kCreat,
  kOpen,
  kOpenat,
  kClose,
  kRename,
  kRenameat,
  kRenameat2,
  kUnlink,
  kUnlinkat,
  kStat,
  kLstat,
  kFstat,
  kFstatfs,
  kNewfstatat,
  // -- extended attributes --
  kGetxattr,
  kLgetxattr,
  kFgetxattr,
  kSetxattr,
  kLsetxattr,
  kFsetxattr,
  kRemovexattr,
  kLremovexattr,
  kFremovexattr,
  kListxattr,
  kLlistxattr,
  kFlistxattr,
  // -- directory management --
  kMknod,
  kMknodat,
  kMkdir,
  kMkdirat,
  kRmdir,

  kCount,
};

constexpr std::size_t kNumSyscalls = static_cast<std::size_t>(SyscallNr::kCount);
static_assert(kNumSyscalls == 42, "the paper's Table I lists 42 syscalls");

enum class SyscallCategory : std::uint8_t {
  kData,
  kMetadata,
  kExtendedAttributes,
  kDirectoryManagement,
};

struct SyscallDescriptor {
  SyscallNr nr;
  std::string_view name;
  SyscallCategory category;
  bool takes_fd;      // first argument is a file descriptor
  bool takes_path;    // references a path argument
  bool data_related;  // moves file data / offsets (offset enrichment applies)
};

// Descriptor table indexed by SyscallNr.
const std::array<SyscallDescriptor, kNumSyscalls>& SyscallTable();

const SyscallDescriptor& Describe(SyscallNr nr);
std::string_view SyscallName(SyscallNr nr);
std::string_view CategoryName(SyscallCategory category);

// Reverse lookup by name ("openat" -> kOpenat).
std::optional<SyscallNr> SyscallFromName(std::string_view name);

}  // namespace dio::os
