#include "oskernel/vfs.h"

#include <algorithm>

#include "common/string_util.h"

namespace dio::os {

namespace {
constexpr int kMaxSymlinkDepth = 8;
constexpr std::size_t kMaxNameLen = 255;
}  // namespace

Vfs::Vfs(Clock* clock) : clock_(clock) {
  // Root mount on device 1 (RAM-backed, no block device, unbounded).
  auto root = std::make_unique<MountFs>("/", 1, nullptr, 0);
  Inode* root_inode = root->inodes.Allocate(FileType::kDirectory,
                                            clock_->NowNanos());
  root->root = root_inode->ino;
  mounts_.push_back(std::move(root));
}

dio::Status Vfs::AddMount(std::string prefix, DeviceNum dev,
                          BlockDevice* device,
                          std::uint64_t capacity_bytes) {
  std::string normalized;
  DIO_RETURN_IF_ERROR(NormalizePath(prefix, &normalized));
  std::scoped_lock lock(mu_);
  for (const auto& mount : mounts_) {
    if (mount->prefix == normalized) {
      return dio::AlreadyExists("mount point in use: " + normalized);
    }
    if (mount->dev == dev) {
      return dio::AlreadyExists("device number in use: " +
                                std::to_string(dev));
    }
  }
  auto fs = std::make_unique<MountFs>(normalized, dev, device,
                                      capacity_bytes);
  Inode* root_inode = fs->inodes.Allocate(FileType::kDirectory,
                                          clock_->NowNanos());
  fs->root = root_inode->ino;
  mounts_.push_back(std::move(fs));
  // Longest prefix first.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const auto& a, const auto& b) {
              return a->prefix.size() > b->prefix.size();
            });
  return dio::Status::Ok();
}

dio::Status Vfs::NormalizePath(std::string_view path, std::string* normalized) {
  if (path.empty() || path.front() != '/') {
    return dio::InvalidArgument("path must be absolute");
  }
  std::string out = "/";
  for (const std::string& part : Split(path.substr(1), '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      return dio::InvalidArgument("'..' is not supported");
    }
    if (part.size() > kMaxNameLen) {
      return dio::InvalidArgument("path component too long");
    }
    if (out.back() != '/') out.push_back('/');
    out += part;
  }
  *normalized = std::move(out);
  return dio::Status::Ok();
}

Vfs::MountFs* Vfs::MountFor(std::string_view path,
                            std::string_view* remainder) const {
  for (const auto& mount : mounts_) {
    const std::string& prefix = mount->prefix;
    if (prefix == "/") {
      *remainder = path.substr(1);
      return mount.get();
    }
    if (path == prefix) {
      *remainder = "";
      return mount.get();
    }
    if (path.size() > prefix.size() && path.starts_with(prefix) &&
        path[prefix.size()] == '/') {
      *remainder = path.substr(prefix.size() + 1);
      return mount.get();
    }
  }
  return nullptr;  // unreachable: "/" always matches
}

Vfs::MountFs* Vfs::MountByDev(DeviceNum dev) const {
  for (const auto& mount : mounts_) {
    if (mount->dev == dev) return mount.get();
  }
  return nullptr;
}

int Vfs::LocatePath(std::string_view path, bool follow_final_symlink,
                    Located* out, int depth) const {
  if (depth > kMaxSymlinkDepth) return -err::kEINVAL;
  std::string normalized;
  if (!NormalizePath(path, &normalized).ok()) return -err::kEINVAL;
  std::string_view remainder;
  MountFs* fs = MountFor(normalized, &remainder);
  Inode* node = fs->inodes.Get(fs->root);
  if (remainder.empty()) {
    out->mount = fs;
    out->inode = node;
    return 0;
  }
  std::vector<std::string> parts = Split(remainder, '/');
  std::string walked = fs->prefix;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (node->type != FileType::kDirectory) return -err::kENOTDIR;
    auto it = node->entries.find(parts[i]);
    if (it == node->entries.end()) return -err::kENOENT;
    Inode* child = fs->inodes.Get(it->second);
    if (child == nullptr) return -err::kENOENT;
    const bool is_final = (i + 1 == parts.size());
    if (child->type == FileType::kSymlink &&
        (!is_final || follow_final_symlink)) {
      // Absolute symlink targets only; re-resolve target + remaining parts.
      std::string target = child->symlink_target;
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        target += "/" + parts[j];
      }
      return LocatePath(target, follow_final_symlink, out, depth + 1);
    }
    node = child;
    if (walked.back() != '/') walked.push_back('/');
    walked += parts[i];
  }
  out->mount = fs;
  out->inode = node;
  return 0;
}

int Vfs::LocateParent(std::string_view path, ParentLocated* out) const {
  std::string normalized;
  if (!NormalizePath(path, &normalized).ok()) return -err::kEINVAL;
  if (normalized == "/") return -err::kEINVAL;
  const std::size_t slash = normalized.find_last_of('/');
  std::string parent_path = slash == 0 ? "/" : normalized.substr(0, slash);
  std::string leaf = normalized.substr(slash + 1);
  // The leaf may live in a mount rooted deeper than the parent path; make
  // sure the parent resolves within the same mount as the full path.
  std::string_view remainder;
  MountFs* fs = MountFor(normalized, &remainder);
  if (remainder.empty()) return -err::kEINVAL;  // path IS a mount root
  Located parent_loc;
  const int rc = LocatePath(parent_path, /*follow_final_symlink=*/true,
                            &parent_loc);
  if (rc != 0) return rc;
  if (parent_loc.mount != fs) return -err::kEINVAL;
  if (parent_loc.inode->type != FileType::kDirectory) return -err::kENOTDIR;
  out->mount = parent_loc.mount;
  out->parent = parent_loc.inode;
  out->leaf = std::move(leaf);
  return 0;
}

void Vfs::MaybeFreeInode(MountFs* fs, Inode* inode) {
  if (inode->nlink == 0 && inode->open_refs == 0) {
    if (inode->type == FileType::kRegular) {
      fs->used_bytes -= inode->data.size();
    }
    fs->inodes.Free(inode->ino);
  }
}

int Vfs::ResolveForOpen(std::string_view path, std::uint32_t flags,
                        std::uint32_t mode, OpenResolution* out) {
  (void)mode;
  std::scoped_lock lock(mu_);
  Located loc;
  int rc = LocatePath(path, /*follow_final_symlink=*/true, &loc);
  Inode* inode = nullptr;
  MountFs* fs = nullptr;
  bool created = false;

  if (rc == 0) {
    if ((flags & openflag::kCreate) && (flags & openflag::kExclusive)) {
      return -err::kEEXIST;
    }
    fs = loc.mount;
    inode = loc.inode;
  } else if (rc == -err::kENOENT && (flags & openflag::kCreate)) {
    ParentLocated parent;
    rc = LocateParent(path, &parent);
    if (rc != 0) return rc;
    if (parent.parent->entries.contains(parent.leaf)) {
      // Raced name (cannot happen under the lock) or symlink leaf.
      return -err::kEEXIST;
    }
    fs = parent.mount;
    inode = fs->inodes.Allocate(FileType::kRegular, clock_->NowNanos());
    parent.parent->entries[parent.leaf] = inode->ino;
    parent.parent->mtime_ns = clock_->NowNanos();
    created = true;
  } else {
    return rc;
  }

  if (inode->type == FileType::kDirectory) {
    if ((flags & openflag::kAccessMask) != openflag::kReadOnly) {
      return -err::kEISDIR;
    }
  } else if (flags & openflag::kDirectory) {
    return -err::kENOTDIR;
  }

  if ((flags & openflag::kTruncate) && inode->type == FileType::kRegular) {
    fs->used_bytes -= inode->data.size();
    inode->data.clear();
    inode->mtime_ns = clock_->NowNanos();
  }

  ++inode->open_refs;
  out->dev = fs->dev;
  out->ino = inode->ino;
  out->type = inode->type;
  out->size = inode->size();
  out->created = created;
  out->device = fs->device;
  return 0;
}

void Vfs::ReleaseOpenRef(DeviceNum dev, InodeNum ino) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return;
  if (inode->open_refs > 0) --inode->open_refs;
  MaybeFreeInode(fs, inode);
}

std::int64_t Vfs::Read(DeviceNum dev, InodeNum ino, std::uint64_t offset,
                       std::uint64_t count, std::string* out) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  if (inode->type == FileType::kDirectory) return -err::kEISDIR;
  if (inode->type != FileType::kRegular) return -err::kEINVAL;
  inode->atime_ns = clock_->NowNanos();
  if (offset >= inode->data.size()) {
    out->clear();
    return 0;
  }
  const std::uint64_t available = inode->data.size() - offset;
  const std::uint64_t n = std::min(count, available);
  out->assign(inode->data, offset, n);
  return static_cast<std::int64_t>(n);
}

std::int64_t Vfs::Write(DeviceNum dev, InodeNum ino, std::uint64_t offset,
                        std::string_view data, bool append,
                        std::uint64_t* offset_used) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  if (inode->type == FileType::kDirectory) return -err::kEISDIR;
  if (inode->type != FileType::kRegular) return -err::kEINVAL;
  const std::uint64_t at = append ? inode->data.size() : offset;
  if (at + data.size() > inode->data.size()) {
    const std::uint64_t growth = at + data.size() - inode->data.size();
    if (fs->capacity_bytes != 0 &&
        fs->used_bytes + growth > fs->capacity_bytes) {
      return -err::kENOSPC;
    }
    fs->used_bytes += growth;
    inode->data.resize(at + data.size());
  }
  inode->data.replace(at, data.size(), data);
  inode->mtime_ns = clock_->NowNanos();
  if (offset_used != nullptr) *offset_used = at;
  return static_cast<std::int64_t>(data.size());
}

int Vfs::TruncateInode(DeviceNum dev, InodeNum ino, std::uint64_t size) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  if (inode->type != FileType::kRegular) return -err::kEINVAL;
  if (size > inode->data.size()) {
    const std::uint64_t growth = size - inode->data.size();
    if (fs->capacity_bytes != 0 &&
        fs->used_bytes + growth > fs->capacity_bytes) {
      return -err::kENOSPC;
    }
    fs->used_bytes += growth;
  } else {
    fs->used_bytes -= inode->data.size() - size;
  }
  inode->data.resize(size);
  inode->mtime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::TruncatePath(std::string_view path, std::uint64_t size,
                      PathView* resolved) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, /*follow_final_symlink=*/true, &loc);
  if (rc != 0) return rc;
  if (loc.inode->type != FileType::kRegular) {
    return loc.inode->type == FileType::kDirectory ? -err::kEISDIR
                                                   : -err::kEINVAL;
  }
  if (size > loc.inode->data.size()) {
    const std::uint64_t growth = size - loc.inode->data.size();
    if (loc.mount->capacity_bytes != 0 &&
        loc.mount->used_bytes + growth > loc.mount->capacity_bytes) {
      return -err::kENOSPC;
    }
    loc.mount->used_bytes += growth;
  } else {
    loc.mount->used_bytes -= loc.inode->data.size() - size;
  }
  loc.inode->data.resize(size);
  loc.inode->mtime_ns = clock_->NowNanos();
  if (resolved != nullptr) {
    resolved->dev = loc.mount->dev;
    resolved->ino = loc.inode->ino;
    resolved->type = loc.inode->type;
  }
  return 0;
}

int Vfs::StatPath(std::string_view path, bool follow_symlink, StatBuf* out) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, follow_symlink, &loc);
  if (rc != 0) return rc;
  out->dev = loc.mount->dev;
  out->ino = loc.inode->ino;
  out->type = loc.inode->type;
  out->mode = loc.inode->mode;
  out->nlink = loc.inode->nlink;
  out->size = loc.inode->size();
  out->atime_ns = loc.inode->atime_ns;
  out->mtime_ns = loc.inode->mtime_ns;
  out->ctime_ns = loc.inode->ctime_ns;
  return 0;
}

int Vfs::StatInode(DeviceNum dev, InodeNum ino, StatBuf* out) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  out->dev = fs->dev;
  out->ino = inode->ino;
  out->type = inode->type;
  out->mode = inode->mode;
  out->nlink = inode->nlink;
  out->size = inode->size();
  out->atime_ns = inode->atime_ns;
  out->mtime_ns = inode->mtime_ns;
  out->ctime_ns = inode->ctime_ns;
  return 0;
}

int Vfs::Unlink(std::string_view path) {
  std::scoped_lock lock(mu_);
  ParentLocated parent;
  int rc = LocateParent(path, &parent);
  if (rc != 0) return rc;
  auto it = parent.parent->entries.find(parent.leaf);
  if (it == parent.parent->entries.end()) return -err::kENOENT;
  Inode* inode = parent.mount->inodes.Get(it->second);
  if (inode == nullptr) return -err::kENOENT;
  if (inode->type == FileType::kDirectory) return -err::kEISDIR;
  parent.parent->entries.erase(it);
  parent.parent->mtime_ns = clock_->NowNanos();
  if (inode->nlink > 0) --inode->nlink;
  inode->ctime_ns = clock_->NowNanos();
  MaybeFreeInode(parent.mount, inode);
  return 0;
}

int Vfs::Rename(std::string_view from, std::string_view to) {
  std::scoped_lock lock(mu_);
  ParentLocated src;
  int rc = LocateParent(from, &src);
  if (rc != 0) return rc;
  auto src_it = src.parent->entries.find(src.leaf);
  if (src_it == src.parent->entries.end()) return -err::kENOENT;

  ParentLocated dst;
  rc = LocateParent(to, &dst);
  if (rc != 0) return rc;
  if (src.mount != dst.mount) return -err::kEINVAL;  // EXDEV in real life

  Inode* moving = src.mount->inodes.Get(src_it->second);
  if (moving == nullptr) return -err::kENOENT;

  // If the destination exists, POSIX replaces it (file over file).
  auto dst_it = dst.parent->entries.find(dst.leaf);
  if (dst_it != dst.parent->entries.end()) {
    if (dst_it->second == src_it->second) return 0;  // same file
    Inode* victim = dst.mount->inodes.Get(dst_it->second);
    if (victim != nullptr) {
      if (victim->type == FileType::kDirectory) return -err::kEISDIR;
      if (victim->nlink > 0) --victim->nlink;
      MaybeFreeInode(dst.mount, victim);
    }
    dst.parent->entries.erase(dst_it);
  }

  const InodeNum ino = src_it->second;
  src.parent->entries.erase(src_it);
  dst.parent->entries[dst.leaf] = ino;
  const Nanos now = clock_->NowNanos();
  src.parent->mtime_ns = now;
  dst.parent->mtime_ns = now;
  moving->ctime_ns = now;
  return 0;
}

int Vfs::Mkdir(std::string_view path, std::uint32_t mode) {
  (void)mode;
  std::scoped_lock lock(mu_);
  Located existing;
  if (LocatePath(path, /*follow_final_symlink=*/false, &existing) == 0) {
    return -err::kEEXIST;  // includes mount roots
  }
  ParentLocated parent;
  const int rc = LocateParent(path, &parent);
  if (rc != 0) return rc;
  if (parent.parent->entries.contains(parent.leaf)) return -err::kEEXIST;
  Inode* dir = parent.mount->inodes.Allocate(FileType::kDirectory,
                                             clock_->NowNanos());
  parent.parent->entries[parent.leaf] = dir->ino;
  ++parent.parent->nlink;  // ".." link from the new directory
  parent.parent->mtime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::Rmdir(std::string_view path) {
  std::scoped_lock lock(mu_);
  ParentLocated parent;
  const int rc = LocateParent(path, &parent);
  if (rc != 0) return rc;
  auto it = parent.parent->entries.find(parent.leaf);
  if (it == parent.parent->entries.end()) return -err::kENOENT;
  Inode* dir = parent.mount->inodes.Get(it->second);
  if (dir == nullptr) return -err::kENOENT;
  if (dir->type != FileType::kDirectory) return -err::kENOTDIR;
  if (!dir->entries.empty()) return -err::kENOTEMPTY;
  parent.parent->entries.erase(it);
  if (parent.parent->nlink > 2) --parent.parent->nlink;
  parent.parent->mtime_ns = clock_->NowNanos();
  dir->nlink = 0;
  MaybeFreeInode(parent.mount, dir);
  return 0;
}

int Vfs::Mknod(std::string_view path, std::uint32_t mode) {
  std::scoped_lock lock(mu_);
  ParentLocated parent;
  const int rc = LocateParent(path, &parent);
  if (rc != 0) return rc;
  if (parent.parent->entries.contains(parent.leaf)) return -err::kEEXIST;
  const FileType type = FileTypeFromMode(mode);
  if (type == FileType::kDirectory || type == FileType::kSymlink) {
    return -err::kEINVAL;
  }
  Inode* node = parent.mount->inodes.Allocate(type, clock_->NowNanos());
  node->mode = mode;
  parent.parent->entries[parent.leaf] = node->ino;
  parent.parent->mtime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::CreateSymlink(std::string_view path, std::string target) {
  std::scoped_lock lock(mu_);
  ParentLocated parent;
  const int rc = LocateParent(path, &parent);
  if (rc != 0) return rc;
  if (parent.parent->entries.contains(parent.leaf)) return -err::kEEXIST;
  Inode* link = parent.mount->inodes.Allocate(FileType::kSymlink,
                                              clock_->NowNanos());
  link->symlink_target = std::move(target);
  parent.parent->entries[parent.leaf] = link->ino;
  parent.parent->mtime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::SetXattrPath(std::string_view path, bool follow,
                      std::string_view name, std::string_view value) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, follow, &loc);
  if (rc != 0) return rc;
  loc.inode->xattrs[std::string(name)] = std::string(value);
  loc.inode->ctime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::GetXattrPath(std::string_view path, bool follow,
                      std::string_view name, std::string* value) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, follow, &loc);
  if (rc != 0) return rc;
  auto it = loc.inode->xattrs.find(std::string(name));
  if (it == loc.inode->xattrs.end()) return -err::kENODATA;
  *value = it->second;
  return static_cast<int>(it->second.size());
}

int Vfs::RemoveXattrPath(std::string_view path, bool follow,
                         std::string_view name) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, follow, &loc);
  if (rc != 0) return rc;
  if (loc.inode->xattrs.erase(std::string(name)) == 0) return -err::kENODATA;
  loc.inode->ctime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::ListXattrPath(std::string_view path, bool follow,
                       std::vector<std::string>* names) {
  std::scoped_lock lock(mu_);
  Located loc;
  const int rc = LocatePath(path, follow, &loc);
  if (rc != 0) return rc;
  names->clear();
  for (const auto& [name, value] : loc.inode->xattrs) names->push_back(name);
  return static_cast<int>(names->size());
}

int Vfs::SetXattrInode(DeviceNum dev, InodeNum ino, std::string_view name,
                       std::string_view value) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  inode->xattrs[std::string(name)] = std::string(value);
  inode->ctime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::GetXattrInode(DeviceNum dev, InodeNum ino, std::string_view name,
                       std::string* value) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  auto it = inode->xattrs.find(std::string(name));
  if (it == inode->xattrs.end()) return -err::kENODATA;
  *value = it->second;
  return static_cast<int>(it->second.size());
}

int Vfs::RemoveXattrInode(DeviceNum dev, InodeNum ino, std::string_view name) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  if (inode->xattrs.erase(std::string(name)) == 0) return -err::kENODATA;
  inode->ctime_ns = clock_->NowNanos();
  return 0;
}

int Vfs::ListXattrInode(DeviceNum dev, InodeNum ino,
                        std::vector<std::string>* names) {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return -err::kEBADF;
  Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return -err::kEBADF;
  names->clear();
  for (const auto& [name, value] : inode->xattrs) names->push_back(name);
  return static_cast<int>(names->size());
}

std::uint64_t Vfs::UsedBytes(DeviceNum dev) const {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  return fs == nullptr ? 0 : fs->used_bytes;
}

std::optional<PathView> Vfs::ResolvePathView(std::string_view path) const {
  std::scoped_lock lock(mu_);
  Located loc;
  if (LocatePath(path, /*follow_final_symlink=*/true, &loc) != 0) {
    return std::nullopt;
  }
  PathView view;
  view.dev = loc.mount->dev;
  view.ino = loc.inode->ino;
  view.type = loc.inode->type;
  return view;
}

BlockDevice* Vfs::DeviceOf(DeviceNum dev) const {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  return fs == nullptr ? nullptr : fs->device;
}

std::optional<FileType> Vfs::TypeOf(DeviceNum dev, InodeNum ino) const {
  std::scoped_lock lock(mu_);
  MountFs* fs = MountByDev(dev);
  if (fs == nullptr) return std::nullopt;
  const Inode* inode = fs->inodes.Get(ino);
  if (inode == nullptr) return std::nullopt;
  return inode->type;
}

std::vector<std::string> Vfs::ListDir(std::string_view path) const {
  std::scoped_lock lock(mu_);
  Located loc;
  if (LocatePath(path, /*follow_final_symlink=*/true, &loc) != 0) return {};
  if (loc.inode->type != FileType::kDirectory) return {};
  std::vector<std::string> out;
  out.reserve(loc.inode->entries.size());
  for (const auto& [name, ino] : loc.inode->entries) out.push_back(name);
  return out;
}

}  // namespace dio::os
