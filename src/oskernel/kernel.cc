#include "oskernel/kernel.h"

#include <algorithm>
#include <numeric>

namespace dio::os {

namespace {

// Identity of the task bound to this OS thread (the kernel's `current`).
struct BoundTask {
  Pid pid = kNoPid;
  Tid tid = kNoTid;
  std::string comm;
};
thread_local BoundTask t_task;

}  // namespace

// KernelView implementation: what eBPF programs may read from kernel
// structures (task_struct, files_struct, struct file, struct inode).
class KernelViewImpl final : public KernelView {
 public:
  explicit KernelViewImpl(Kernel* kernel) : kernel_(kernel) {}

  [[nodiscard]] std::optional<FdView> LookupFd(Pid pid, Fd fd) const override {
    auto ofd = kernel_->procs_.LookupFd(pid, fd);
    if (ofd == nullptr) return std::nullopt;
    FdView view;
    view.dev = ofd->dev;
    view.ino = ofd->ino;
    view.type = ofd->type;
    view.offset = ofd->offset.load(std::memory_order_relaxed);
    view.path = ofd->path;
    return view;
  }

  [[nodiscard]] std::optional<PathView> ResolvePath(
      std::string_view path) const override {
    return kernel_->vfs_.ResolvePathView(path);
  }

  [[nodiscard]] std::optional<std::string> ProcessName(
      Pid pid) const override {
    return kernel_->procs_.ProcessName(pid);
  }

  [[nodiscard]] int cpu_of(Tid tid) const override {
    const int cpus = kernel_->options_.num_cpus;
    return static_cast<int>(tid % cpus);
  }

  // Allocation-free hook-path read: ProcessManager copies the fd state and
  // dentry-path bytes out under a single registry lock, with no shared_ptr
  // refcount round-trip.
  bool SnapshotFd(Pid pid, Fd fd, std::span<char> path_buf,
                  FdSnapshot* out) const override {
    return kernel_->procs_.SnapshotFd(pid, fd, path_buf, out);
  }

  std::size_t CopyProcessName(Pid pid, std::span<char> buf) const override {
    return kernel_->procs_.CopyProcessName(pid, buf);
  }

 private:
  Kernel* kernel_;
};

// Fires sys_enter on construction and sys_exit via Finish(). Cheap when no
// tracer is attached (two relaxed loads).
class Kernel::ScopedSyscall {
 public:
  ScopedSyscall(Kernel* kernel, SyscallNr nr, SyscallArgs* args)
      : kernel_(kernel), nr_(nr), args_(args) {
    kernel_->syscall_counts_[static_cast<std::size_t>(nr)].fetch_add(
        1, std::memory_order_relaxed);
    if (kernel_->tracepoints_.HasEnter(nr_)) {
      SysEnterContext ctx{nr_,
                          t_task.pid,
                          t_task.tid,
                          t_task.comm,
                          kernel_->clock_->NowNanos(),
                          args_,
                          kernel_->view_.get()};
      kernel_->tracepoints_.FireEnter(ctx);
    }
  }

  std::int64_t Finish(std::int64_t ret) {
    if (kernel_->tracepoints_.HasExit(nr_)) {
      SysExitContext ctx{nr_,
                         t_task.pid,
                         t_task.tid,
                         t_task.comm,
                         kernel_->clock_->NowNanos(),
                         ret,
                         args_,
                         kernel_->view_.get()};
      kernel_->tracepoints_.FireExit(ctx);
    }
    return ret;
  }

 private:
  Kernel* kernel_;
  SyscallNr nr_;
  SyscallArgs* args_;
};

Kernel::Kernel(KernelOptions options, Clock* clock)
    : options_(options),
      clock_(clock),
      procs_(clock),
      vfs_(clock),
      view_(std::make_unique<KernelViewImpl>(this)) {}

Kernel::~Kernel() = default;

Expected<BlockDevice*> Kernel::MountDevice(std::string prefix, DeviceNum dev,
                                           BlockDeviceOptions options,
                                           std::uint64_t capacity_bytes) {
  auto device = std::make_unique<BlockDevice>(std::move(options), clock_);
  BlockDevice* raw = device.get();
  dio::Status status =
      vfs_.AddMount(std::move(prefix), dev, raw, capacity_bytes);
  if (!status.ok()) return status;
  devices_.push_back(std::move(device));
  return raw;
}

Pid Kernel::CreateProcess(std::string name, Pid parent) {
  return procs_.CreateProcess(std::move(name), parent);
}

Tid Kernel::SpawnThread(Pid pid, std::string comm) {
  return procs_.CreateThread(pid, std::move(comm));
}

void Kernel::ExitProcess(Pid pid) {
  // Close every open fd first so orphaned inodes are freed (POSIX).
  for (const auto& ofd : procs_.AllFds(pid)) {
    vfs_.ReleaseOpenRef(ofd->dev, ofd->ino);
  }
  procs_.ExitProcess(pid);
}

void Kernel::BindCurrentThread(Pid pid, Tid tid) {
  t_task.pid = pid;
  t_task.tid = tid;
  auto thread = procs_.GetThread(tid);
  t_task.comm = thread ? thread->comm : "unbound";
}

void Kernel::UnbindCurrentThread() {
  t_task.pid = kNoPid;
  t_task.tid = kNoTid;
  t_task.comm.clear();
}

bool Kernel::CurrentThreadBound() { return t_task.tid != kNoTid; }
Tid Kernel::CurrentTid() { return t_task.tid; }
Pid Kernel::CurrentPid() { return t_task.pid; }

std::uint64_t Kernel::TotalSyscalls() const {
  std::uint64_t total = 0;
  for (const auto& count : syscall_counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- open / close ----------------------------------------------------------

std::int64_t Kernel::DoOpen(SyscallNr nr, const std::string& path,
                            std::uint32_t flags, std::uint32_t mode) {
  SyscallArgs args;
  args.path = path;
  args.flags = flags;
  args.mode = mode;
  args.raw = {0, flags, mode, 0, 0, 0};
  ScopedSyscall scope(this, nr, &args);

  OpenResolution res;
  const int rc = vfs_.ResolveForOpen(path, flags, mode, &res);
  if (rc != 0) return scope.Finish(rc);

  auto ofd = std::make_shared<OpenFileDescription>();
  ofd->dev = res.dev;
  ofd->ino = res.ino;
  ofd->type = res.type;
  ofd->flags = flags;
  ofd->path = path;
  ofd->opened_at = clock_->NowNanos();
  ofd->device = res.device;
  const Fd fd = procs_.AllocateFd(t_task.pid, std::move(ofd));
  if (fd == kNoFd) {
    vfs_.ReleaseOpenRef(res.dev, res.ino);
    return scope.Finish(-err::kEMFILE);
  }
  return scope.Finish(fd);
}

std::int64_t Kernel::sys_creat(const std::string& path, std::uint32_t mode) {
  return DoOpen(SyscallNr::kCreat, path,
                openflag::kWriteOnly | openflag::kCreate | openflag::kTruncate,
                mode);
}

std::int64_t Kernel::sys_open(const std::string& path, std::uint32_t flags,
                              std::uint32_t mode) {
  return DoOpen(SyscallNr::kOpen, path, flags, mode);
}

std::int64_t Kernel::sys_openat(Fd dirfd, const std::string& path,
                                std::uint32_t flags, std::uint32_t mode) {
  (void)dirfd;  // absolute paths only; dirfd is conventionally AT_FDCWD
  return DoOpen(SyscallNr::kOpenat, path, flags, mode);
}

std::int64_t Kernel::sys_close(Fd fd) {
  SyscallArgs args;
  args.fd = fd;
  args.raw = {static_cast<std::uint64_t>(fd), 0, 0, 0, 0, 0};
  ScopedSyscall scope(this, SyscallNr::kClose, &args);
  auto ofd = procs_.ReleaseFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  vfs_.ReleaseOpenRef(ofd->dev, ofd->ino);
  return scope.Finish(0);
}

// ---- data ------------------------------------------------------------------

std::int64_t Kernel::DoRead(SyscallNr nr, Fd fd, std::string* buf,
                            std::uint64_t count, std::int64_t explicit_offset) {
  SyscallArgs args;
  args.fd = fd;
  args.count = count;
  args.offset = explicit_offset;
  args.raw = {static_cast<std::uint64_t>(fd), 0, count,
              static_cast<std::uint64_t>(explicit_offset), 0, 0};
  ScopedSyscall scope(this, nr, &args);

  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  if (ofd->type == FileType::kDirectory) return scope.Finish(-err::kEISDIR);
  if (explicit_offset >= 0 && ofd->type != FileType::kRegular) {
    return scope.Finish(-err::kESPIPE);
  }

  const std::uint64_t offset =
      explicit_offset >= 0 ? static_cast<std::uint64_t>(explicit_offset)
                           : ofd->offset.load(std::memory_order_relaxed);
  const std::int64_t n = vfs_.Read(ofd->dev, ofd->ino, offset, count, buf);
  if (n < 0) return scope.Finish(n);
  if (explicit_offset < 0) {
    ofd->offset.store(offset + static_cast<std::uint64_t>(n),
                      std::memory_order_relaxed);
  }
  if (ofd->device != nullptr && n > 0) {
    ofd->device->Read(static_cast<std::uint64_t>(n));
  }
  return scope.Finish(n);
}

std::int64_t Kernel::sys_read(Fd fd, std::string* buf, std::uint64_t count) {
  return DoRead(SyscallNr::kRead, fd, buf, count, -1);
}

std::int64_t Kernel::sys_pread64(Fd fd, std::string* buf, std::uint64_t count,
                                 std::int64_t offset) {
  if (offset < 0) {
    SyscallArgs args;
    args.fd = fd;
    args.count = count;
    args.offset = offset;
    ScopedSyscall scope(this, SyscallNr::kPread64, &args);
    return scope.Finish(-err::kEINVAL);
  }
  return DoRead(SyscallNr::kPread64, fd, buf, count, offset);
}

std::int64_t Kernel::sys_readv(Fd fd, std::string* buf,
                               std::span<const std::uint64_t> iov_lens) {
  const std::uint64_t total =
      std::accumulate(iov_lens.begin(), iov_lens.end(), std::uint64_t{0});
  return DoRead(SyscallNr::kReadv, fd, buf, total, -1);
}

std::int64_t Kernel::DoWrite(SyscallNr nr, Fd fd, std::string_view data,
                             std::int64_t explicit_offset) {
  SyscallArgs args;
  args.fd = fd;
  args.count = data.size();
  args.offset = explicit_offset;
  args.raw = {static_cast<std::uint64_t>(fd), 0, data.size(),
              static_cast<std::uint64_t>(explicit_offset), 0, 0};
  ScopedSyscall scope(this, nr, &args);

  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  if ((ofd->flags & openflag::kAccessMask) == openflag::kReadOnly) {
    return scope.Finish(-err::kEBADF);
  }
  if (explicit_offset >= 0 && ofd->type != FileType::kRegular) {
    return scope.Finish(-err::kESPIPE);
  }

  const bool append =
      explicit_offset < 0 && (ofd->flags & openflag::kAppend) != 0;
  const std::uint64_t offset =
      explicit_offset >= 0 ? static_cast<std::uint64_t>(explicit_offset)
                           : ofd->offset.load(std::memory_order_relaxed);
  std::uint64_t offset_used = offset;
  const std::int64_t n =
      vfs_.Write(ofd->dev, ofd->ino, offset, data, append, &offset_used);
  if (n < 0) return scope.Finish(n);
  if (explicit_offset < 0) {
    ofd->offset.store(offset_used + static_cast<std::uint64_t>(n),
                      std::memory_order_relaxed);
  }
  ofd->dirty_bytes.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
  if (ofd->device != nullptr && n > 0) {
    ofd->device->Write(static_cast<std::uint64_t>(n));
  }
  return scope.Finish(n);
}

std::int64_t Kernel::sys_write(Fd fd, std::string_view data) {
  return DoWrite(SyscallNr::kWrite, fd, data, -1);
}

std::int64_t Kernel::sys_pwrite64(Fd fd, std::string_view data,
                                  std::int64_t offset) {
  if (offset < 0) {
    SyscallArgs args;
    args.fd = fd;
    args.count = data.size();
    args.offset = offset;
    ScopedSyscall scope(this, SyscallNr::kPwrite64, &args);
    return scope.Finish(-err::kEINVAL);
  }
  return DoWrite(SyscallNr::kPwrite64, fd, data, offset);
}

std::int64_t Kernel::sys_writev(Fd fd,
                                std::span<const std::string_view> iov) {
  std::string joined;
  std::size_t total = 0;
  for (std::string_view piece : iov) total += piece.size();
  joined.reserve(total);
  for (std::string_view piece : iov) joined += piece;
  return DoWrite(SyscallNr::kWritev, fd, joined, -1);
}

std::int64_t Kernel::sys_lseek(Fd fd, std::int64_t offset, int whence) {
  SyscallArgs args;
  args.fd = fd;
  args.offset = offset;
  args.whence = whence;
  args.raw = {static_cast<std::uint64_t>(fd),
              static_cast<std::uint64_t>(offset),
              static_cast<std::uint64_t>(whence), 0, 0, 0};
  ScopedSyscall scope(this, SyscallNr::kLseek, &args);

  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  if (ofd->type == FileType::kPipe || ofd->type == FileType::kSocket) {
    return scope.Finish(-err::kESPIPE);
  }

  std::int64_t base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<std::int64_t>(
          ofd->offset.load(std::memory_order_relaxed));
      break;
    case kSeekEnd: {
      StatBuf st;
      const int rc = vfs_.StatInode(ofd->dev, ofd->ino, &st);
      if (rc != 0) return scope.Finish(rc);
      base = static_cast<std::int64_t>(st.size);
      break;
    }
    default:
      return scope.Finish(-err::kEINVAL);
  }
  const std::int64_t target = base + offset;
  if (target < 0) return scope.Finish(-err::kEINVAL);
  ofd->offset.store(static_cast<std::uint64_t>(target),
                    std::memory_order_relaxed);
  return scope.Finish(target);
}

std::int64_t Kernel::sys_truncate(const std::string& path,
                                  std::uint64_t size) {
  SyscallArgs args;
  args.path = path;
  args.count = size;
  ScopedSyscall scope(this, SyscallNr::kTruncate, &args);
  return scope.Finish(vfs_.TruncatePath(path, size));
}

std::int64_t Kernel::sys_ftruncate(Fd fd, std::uint64_t size) {
  SyscallArgs args;
  args.fd = fd;
  args.count = size;
  ScopedSyscall scope(this, SyscallNr::kFtruncate, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.TruncateInode(ofd->dev, ofd->ino, size));
}

std::int64_t Kernel::DoSync(SyscallNr nr, Fd fd) {
  SyscallArgs args;
  args.fd = fd;
  ScopedSyscall scope(this, nr, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  ofd->dirty_bytes.store(0, std::memory_order_relaxed);
  if (ofd->device != nullptr) {
    // Writes are charged at write() time (write-through); fsync pays the
    // device flush latency.
    ofd->device->Flush(0);
  }
  return scope.Finish(0);
}

std::int64_t Kernel::sys_fsync(Fd fd) { return DoSync(SyscallNr::kFsync, fd); }
std::int64_t Kernel::sys_fdatasync(Fd fd) {
  return DoSync(SyscallNr::kFdatasync, fd);
}

// ---- metadata ----------------------------------------------------------

std::int64_t Kernel::DoRename(SyscallNr nr, Fd olddirfd,
                              const std::string& from, Fd newdirfd,
                              const std::string& to, std::uint32_t flags) {
  (void)olddirfd;
  (void)newdirfd;
  SyscallArgs args;
  args.path = from;
  args.path2 = to;
  args.flags = flags;
  ScopedSyscall scope(this, nr, &args);
  return scope.Finish(vfs_.Rename(from, to));
}

std::int64_t Kernel::sys_rename(const std::string& from,
                                const std::string& to) {
  return DoRename(SyscallNr::kRename, kAtFdCwd, from, kAtFdCwd, to, 0);
}

std::int64_t Kernel::sys_renameat(Fd olddirfd, const std::string& from,
                                  Fd newdirfd, const std::string& to) {
  return DoRename(SyscallNr::kRenameat, olddirfd, from, newdirfd, to, 0);
}

std::int64_t Kernel::sys_renameat2(Fd olddirfd, const std::string& from,
                                   Fd newdirfd, const std::string& to,
                                   std::uint32_t flags) {
  return DoRename(SyscallNr::kRenameat2, olddirfd, from, newdirfd, to, flags);
}

std::int64_t Kernel::sys_unlink(const std::string& path) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kUnlink, &args);
  return scope.Finish(vfs_.Unlink(path));
}

std::int64_t Kernel::sys_unlinkat(Fd dirfd, const std::string& path,
                                  std::uint32_t flags) {
  (void)dirfd;
  SyscallArgs args;
  args.path = path;
  args.flags = flags;
  ScopedSyscall scope(this, SyscallNr::kUnlinkat, &args);
  if (flags & kAtRemovedir) return scope.Finish(vfs_.Rmdir(path));
  return scope.Finish(vfs_.Unlink(path));
}

std::int64_t Kernel::sys_stat(const std::string& path, StatBuf* out) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kStat, &args);
  return scope.Finish(vfs_.StatPath(path, /*follow_symlink=*/true, out));
}

std::int64_t Kernel::sys_lstat(const std::string& path, StatBuf* out) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kLstat, &args);
  return scope.Finish(vfs_.StatPath(path, /*follow_symlink=*/false, out));
}

std::int64_t Kernel::sys_fstat(Fd fd, StatBuf* out) {
  SyscallArgs args;
  args.fd = fd;
  ScopedSyscall scope(this, SyscallNr::kFstat, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.StatInode(ofd->dev, ofd->ino, out));
}

std::int64_t Kernel::sys_fstatfs(Fd fd, StatFsBuf* out) {
  SyscallArgs args;
  args.fd = fd;
  ScopedSyscall scope(this, SyscallNr::kFstatfs, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  // Fabricated filesystem geometry (250 GiB volume, mostly free).
  out->block_size = 4096;
  out->blocks = (250ULL << 30) / 4096;
  out->blocks_free = out->blocks * 9 / 10;
  out->files = 1 << 20;
  return scope.Finish(0);
}

std::int64_t Kernel::sys_newfstatat(Fd dirfd, const std::string& path,
                                    StatBuf* out, std::uint32_t flags) {
  (void)dirfd;
  SyscallArgs args;
  args.path = path;
  args.flags = flags;
  ScopedSyscall scope(this, SyscallNr::kNewfstatat, &args);
  const bool follow = (flags & kAtSymlinkNofollow) == 0;
  return scope.Finish(vfs_.StatPath(path, follow, out));
}

// ---- extended attributes -------------------------------------------------

std::int64_t Kernel::sys_setxattr(const std::string& path,
                                  const std::string& name,
                                  std::string_view value) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  args.count = value.size();
  ScopedSyscall scope(this, SyscallNr::kSetxattr, &args);
  return scope.Finish(vfs_.SetXattrPath(path, true, name, value));
}

std::int64_t Kernel::sys_lsetxattr(const std::string& path,
                                   const std::string& name,
                                   std::string_view value) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  args.count = value.size();
  ScopedSyscall scope(this, SyscallNr::kLsetxattr, &args);
  return scope.Finish(vfs_.SetXattrPath(path, false, name, value));
}

std::int64_t Kernel::sys_fsetxattr(Fd fd, const std::string& name,
                                   std::string_view value) {
  SyscallArgs args;
  args.fd = fd;
  args.name = name;
  args.count = value.size();
  ScopedSyscall scope(this, SyscallNr::kFsetxattr, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.SetXattrInode(ofd->dev, ofd->ino, name, value));
}

std::int64_t Kernel::sys_getxattr(const std::string& path,
                                  const std::string& name,
                                  std::string* value) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kGetxattr, &args);
  return scope.Finish(vfs_.GetXattrPath(path, true, name, value));
}

std::int64_t Kernel::sys_lgetxattr(const std::string& path,
                                   const std::string& name,
                                   std::string* value) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kLgetxattr, &args);
  return scope.Finish(vfs_.GetXattrPath(path, false, name, value));
}

std::int64_t Kernel::sys_fgetxattr(Fd fd, const std::string& name,
                                   std::string* value) {
  SyscallArgs args;
  args.fd = fd;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kFgetxattr, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.GetXattrInode(ofd->dev, ofd->ino, name, value));
}

std::int64_t Kernel::sys_removexattr(const std::string& path,
                                     const std::string& name) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kRemovexattr, &args);
  return scope.Finish(vfs_.RemoveXattrPath(path, true, name));
}

std::int64_t Kernel::sys_lremovexattr(const std::string& path,
                                      const std::string& name) {
  SyscallArgs args;
  args.path = path;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kLremovexattr, &args);
  return scope.Finish(vfs_.RemoveXattrPath(path, false, name));
}

std::int64_t Kernel::sys_fremovexattr(Fd fd, const std::string& name) {
  SyscallArgs args;
  args.fd = fd;
  args.name = name;
  ScopedSyscall scope(this, SyscallNr::kFremovexattr, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.RemoveXattrInode(ofd->dev, ofd->ino, name));
}

std::int64_t Kernel::sys_listxattr(const std::string& path,
                                   std::vector<std::string>* names) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kListxattr, &args);
  return scope.Finish(vfs_.ListXattrPath(path, true, names));
}

std::int64_t Kernel::sys_llistxattr(const std::string& path,
                                    std::vector<std::string>* names) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kLlistxattr, &args);
  return scope.Finish(vfs_.ListXattrPath(path, false, names));
}

std::int64_t Kernel::sys_flistxattr(Fd fd, std::vector<std::string>* names) {
  SyscallArgs args;
  args.fd = fd;
  ScopedSyscall scope(this, SyscallNr::kFlistxattr, &args);
  auto ofd = procs_.LookupFd(t_task.pid, fd);
  if (ofd == nullptr) return scope.Finish(-err::kEBADF);
  return scope.Finish(vfs_.ListXattrInode(ofd->dev, ofd->ino, names));
}

// ---- directory management -------------------------------------------------

std::int64_t Kernel::DoMknod(SyscallNr nr, Fd dirfd, const std::string& path,
                             std::uint32_t mode) {
  (void)dirfd;
  SyscallArgs args;
  args.path = path;
  args.mode = mode;
  ScopedSyscall scope(this, nr, &args);
  return scope.Finish(vfs_.Mknod(path, mode));
}

std::int64_t Kernel::sys_mknod(const std::string& path, std::uint32_t mode) {
  return DoMknod(SyscallNr::kMknod, kAtFdCwd, path, mode);
}

std::int64_t Kernel::sys_mknodat(Fd dirfd, const std::string& path,
                                 std::uint32_t mode) {
  return DoMknod(SyscallNr::kMknodat, dirfd, path, mode);
}

std::int64_t Kernel::DoMkdir(SyscallNr nr, Fd dirfd, const std::string& path,
                             std::uint32_t mode) {
  (void)dirfd;
  SyscallArgs args;
  args.path = path;
  args.mode = mode;
  ScopedSyscall scope(this, nr, &args);
  return scope.Finish(vfs_.Mkdir(path, mode));
}

std::int64_t Kernel::sys_mkdir(const std::string& path, std::uint32_t mode) {
  return DoMkdir(SyscallNr::kMkdir, kAtFdCwd, path, mode);
}

std::int64_t Kernel::sys_mkdirat(Fd dirfd, const std::string& path,
                                 std::uint32_t mode) {
  return DoMkdir(SyscallNr::kMkdirat, dirfd, path, mode);
}

std::int64_t Kernel::sys_rmdir(const std::string& path) {
  SyscallArgs args;
  args.path = path;
  ScopedSyscall scope(this, SyscallNr::kRmdir, &args);
  return scope.Finish(vfs_.Rmdir(path));
}

}  // namespace dio::os
