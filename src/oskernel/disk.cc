#include "oskernel/disk.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace dio::os {

BlockDevice::BlockDevice(BlockDeviceOptions options, Clock* clock)
    : options_(std::move(options)),
      clock_(clock),
      ns_per_byte_(static_cast<double>(kSecond) /
                   options_.bandwidth_bytes_per_sec) {}

Nanos BlockDevice::Read(std::uint64_t bytes) {
  return Access(bytes, 0, /*is_write=*/false, /*is_flush=*/false);
}

Nanos BlockDevice::Write(std::uint64_t bytes) {
  return Access(bytes, 0, /*is_write=*/true, /*is_flush=*/false);
}

Nanos BlockDevice::Flush(std::uint64_t dirty_bytes) {
  return Access(dirty_bytes, options_.flush_latency_ns, /*is_write=*/true,
                /*is_flush=*/true);
}

Nanos BlockDevice::Access(std::uint64_t bytes, Nanos extra_latency,
                          bool is_write, bool is_flush) {
  const Nanos service =
      options_.base_latency_ns + extra_latency +
      static_cast<Nanos>(static_cast<double>(bytes) * ns_per_byte_);
  const Nanos now = clock_->NowNanos();

  Nanos start;
  {
    std::scoped_lock lock(mu_);
    start = std::max(now, next_free_ns_);
    next_free_ns_ = start + service;
    if (is_flush) {
      ++stats_.flushes;
      stats_.bytes_written += bytes;
    } else if (is_write) {
      ++stats_.writes;
      stats_.bytes_written += bytes;
    } else {
      ++stats_.reads;
      stats_.bytes_read += bytes;
    }
    stats_.busy_ns += service;
    stats_.queue_wait_ns += start - now;
  }

  const Nanos completion = start + service;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (options_.real_sleep) {
    // Sleep until the modelled completion time. Coarse sleeps for long waits,
    // then settle with a short spin for sub-30us precision.
    Nanos remaining = completion - clock_->NowNanos();
    while (remaining > 30 * kMicrosecond) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(remaining - 20 * kMicrosecond));
      remaining = completion - clock_->NowNanos();
    }
    while (clock_->NowNanos() < completion) {
      std::this_thread::yield();
    }
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return completion - now;
}

BlockDeviceStats BlockDevice::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace dio::os
