// Block device with a shared-bandwidth queueing model.
//
// Every data access occupies the device for `base_latency + bytes/bandwidth`
// and accesses are serialized FIFO (single dispatch queue). Callers block
// until their access completes, so concurrent I/O from many threads queues
// up and produces *real* contention — the mechanism behind the RocksDB tail
// latency spikes of §III-C (compaction threads competing with client reads
// for shared disk bandwidth).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"

namespace dio::os {

struct BlockDeviceOptions {
  std::string name = "nvme0";
  // Sequential bandwidth. Default roughly a mid-range NVMe scaled for
  // seconds-long experiments.
  double bandwidth_bytes_per_sec = 800.0 * 1024 * 1024;
  // Fixed per-access latency (submission + completion).
  Nanos base_latency_ns = 5 * kMicrosecond;
  // Fsync adds a flush cost on top of base latency.
  Nanos flush_latency_ns = 50 * kMicrosecond;
  // When true the caller actually sleeps until the access completes; when
  // false only the accounting is done (useful for fast unit tests).
  bool real_sleep = true;
};

struct BlockDeviceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  Nanos busy_ns = 0;        // total device occupancy
  Nanos queue_wait_ns = 0;  // total time requests waited before dispatch
};

class BlockDevice {
 public:
  explicit BlockDevice(BlockDeviceOptions options, Clock* clock);

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  // Blocks the caller for queueing + service time. Returns the latency the
  // caller observed (queue wait + service), in nanoseconds.
  Nanos Read(std::uint64_t bytes);
  Nanos Write(std::uint64_t bytes);
  Nanos Flush(std::uint64_t dirty_bytes);

  [[nodiscard]] BlockDeviceStats stats() const;
  [[nodiscard]] const BlockDeviceOptions& options() const { return options_; }

  // Instantaneous queue depth estimate (requests dispatched but not complete).
  [[nodiscard]] int inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  Nanos Access(std::uint64_t bytes, Nanos extra_latency, bool is_write,
               bool is_flush);

  BlockDeviceOptions options_;
  Clock* clock_;
  double ns_per_byte_;

  mutable std::mutex mu_;
  Nanos next_free_ns_ = 0;  // device timeline: when the queue drains
  BlockDeviceStats stats_;
  std::atomic<int> inflight_{0};
};

}  // namespace dio::os
