// Kernel facade: the syscall ABI applications program against.
//
// Every syscall (i) binds to the calling thread's task identity, (ii) fires
// the sys_enter tracepoint, (iii) executes against the VFS — charging block
// device service time for data operations, which makes disk contention real —
// and (iv) fires sys_exit with the errno-style return value. This is the
// exact observation surface DIO's eBPF tracer attaches to (§II-B).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "oskernel/disk.h"
#include "oskernel/process.h"
#include "oskernel/syscall_nr.h"
#include "oskernel/tracepoint.h"
#include "oskernel/types.h"
#include "oskernel/vfs.h"

namespace dio::os {

// fstatfs(2) result (subset).
struct StatFsBuf {
  std::uint64_t block_size = 4096;
  std::uint64_t blocks = 0;
  std::uint64_t blocks_free = 0;
  std::uint64_t files = 0;
};

// newfstatat / unlinkat flags.
constexpr std::uint32_t kAtSymlinkNofollow = 0x100;
constexpr std::uint32_t kAtRemovedir = 0x200;

struct KernelOptions {
  int num_cpus = 4;  // the paper's tracer machine has a 4-core CPU
};

class Kernel {
 public:
  explicit Kernel(KernelOptions options = {},
                  Clock* clock = SteadyClock::Instance());
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- topology -----------------------------------------------------------
  [[nodiscard]] Clock* clock() const { return clock_; }
  [[nodiscard]] int num_cpus() const { return options_.num_cpus; }
  [[nodiscard]] Vfs& vfs() { return vfs_; }
  [[nodiscard]] ProcessManager& processes() { return procs_; }
  [[nodiscard]] TracepointRegistry& tracepoints() { return tracepoints_; }
  [[nodiscard]] KernelView& view() { return *view_; }

  // Creates a block device owned by the kernel and mounts a filesystem
  // backed by it. `capacity_bytes` bounds file data on the mount
  // (0 = unbounded); exceeding it makes writes fail with -ENOSPC.
  Expected<BlockDevice*> MountDevice(std::string prefix, DeviceNum dev,
                                     BlockDeviceOptions options,
                                     std::uint64_t capacity_bytes = 0);

  // ---- task management ----------------------------------------------------
  Pid CreateProcess(std::string name, Pid parent = kNoPid);
  Tid SpawnThread(Pid pid, std::string comm);
  void ExitProcess(Pid pid);

  // Binds the calling OS thread to task (pid, tid). Syscalls from this
  // thread are attributed to that task. Must be balanced with Unbind.
  void BindCurrentThread(Pid pid, Tid tid);
  void UnbindCurrentThread();
  [[nodiscard]] static bool CurrentThreadBound();
  [[nodiscard]] static Tid CurrentTid();
  [[nodiscard]] static Pid CurrentPid();

  // ---- syscalls: data -----------------------------------------------------
  std::int64_t sys_read(Fd fd, std::string* buf, std::uint64_t count);
  std::int64_t sys_pread64(Fd fd, std::string* buf, std::uint64_t count,
                           std::int64_t offset);
  std::int64_t sys_readv(Fd fd, std::string* buf,
                         std::span<const std::uint64_t> iov_lens);
  std::int64_t sys_write(Fd fd, std::string_view data);
  std::int64_t sys_pwrite64(Fd fd, std::string_view data, std::int64_t offset);
  std::int64_t sys_writev(Fd fd, std::span<const std::string_view> iov);
  std::int64_t sys_lseek(Fd fd, std::int64_t offset, int whence);
  std::int64_t sys_truncate(const std::string& path, std::uint64_t size);
  std::int64_t sys_ftruncate(Fd fd, std::uint64_t size);
  std::int64_t sys_fsync(Fd fd);
  std::int64_t sys_fdatasync(Fd fd);

  // ---- syscalls: metadata -------------------------------------------------
  std::int64_t sys_creat(const std::string& path, std::uint32_t mode);
  std::int64_t sys_open(const std::string& path, std::uint32_t flags,
                        std::uint32_t mode = 0644);
  std::int64_t sys_openat(Fd dirfd, const std::string& path,
                          std::uint32_t flags, std::uint32_t mode = 0644);
  std::int64_t sys_close(Fd fd);
  std::int64_t sys_rename(const std::string& from, const std::string& to);
  std::int64_t sys_renameat(Fd olddirfd, const std::string& from, Fd newdirfd,
                            const std::string& to);
  std::int64_t sys_renameat2(Fd olddirfd, const std::string& from, Fd newdirfd,
                             const std::string& to, std::uint32_t flags);
  std::int64_t sys_unlink(const std::string& path);
  std::int64_t sys_unlinkat(Fd dirfd, const std::string& path,
                            std::uint32_t flags);
  std::int64_t sys_stat(const std::string& path, StatBuf* out);
  std::int64_t sys_lstat(const std::string& path, StatBuf* out);
  std::int64_t sys_fstat(Fd fd, StatBuf* out);
  std::int64_t sys_fstatfs(Fd fd, StatFsBuf* out);
  std::int64_t sys_newfstatat(Fd dirfd, const std::string& path, StatBuf* out,
                              std::uint32_t flags);

  // ---- syscalls: extended attributes --------------------------------------
  std::int64_t sys_setxattr(const std::string& path, const std::string& name,
                            std::string_view value);
  std::int64_t sys_lsetxattr(const std::string& path, const std::string& name,
                             std::string_view value);
  std::int64_t sys_fsetxattr(Fd fd, const std::string& name,
                             std::string_view value);
  std::int64_t sys_getxattr(const std::string& path, const std::string& name,
                            std::string* value);
  std::int64_t sys_lgetxattr(const std::string& path, const std::string& name,
                             std::string* value);
  std::int64_t sys_fgetxattr(Fd fd, const std::string& name,
                             std::string* value);
  std::int64_t sys_removexattr(const std::string& path,
                               const std::string& name);
  std::int64_t sys_lremovexattr(const std::string& path,
                                const std::string& name);
  std::int64_t sys_fremovexattr(Fd fd, const std::string& name);
  std::int64_t sys_listxattr(const std::string& path,
                             std::vector<std::string>* names);
  std::int64_t sys_llistxattr(const std::string& path,
                              std::vector<std::string>* names);
  std::int64_t sys_flistxattr(Fd fd, std::vector<std::string>* names);

  // ---- syscalls: directory management -------------------------------------
  std::int64_t sys_mknod(const std::string& path, std::uint32_t mode);
  std::int64_t sys_mknodat(Fd dirfd, const std::string& path,
                           std::uint32_t mode);
  std::int64_t sys_mkdir(const std::string& path, std::uint32_t mode);
  std::int64_t sys_mkdirat(Fd dirfd, const std::string& path,
                           std::uint32_t mode);
  std::int64_t sys_rmdir(const std::string& path);

  // ---- instrumentation ----------------------------------------------------
  [[nodiscard]] std::uint64_t SyscallCount(SyscallNr nr) const {
    return syscall_counts_[static_cast<std::size_t>(nr)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t TotalSyscalls() const;

 private:
  friend class KernelViewImpl;
  class ScopedSyscall;

  std::int64_t DoOpen(SyscallNr nr, const std::string& path,
                      std::uint32_t flags, std::uint32_t mode);
  std::int64_t DoRead(SyscallNr nr, Fd fd, std::string* buf,
                      std::uint64_t count, std::int64_t explicit_offset);
  std::int64_t DoWrite(SyscallNr nr, Fd fd, std::string_view data,
                       std::int64_t explicit_offset);
  std::int64_t DoSync(SyscallNr nr, Fd fd);
  std::int64_t DoRename(SyscallNr nr, Fd olddirfd, const std::string& from,
                        Fd newdirfd, const std::string& to,
                        std::uint32_t flags);
  std::int64_t DoMknod(SyscallNr nr, Fd dirfd, const std::string& path,
                       std::uint32_t mode);
  std::int64_t DoMkdir(SyscallNr nr, Fd dirfd, const std::string& path,
                       std::uint32_t mode);

  KernelOptions options_;
  Clock* clock_;
  ProcessManager procs_;
  Vfs vfs_;
  TracepointRegistry tracepoints_;
  std::unique_ptr<KernelView> view_;
  std::vector<std::unique_ptr<BlockDevice>> devices_;
  std::array<std::atomic<std::uint64_t>, kNumSyscalls> syscall_counts_{};
};

// RAII task binding for an OS thread running simulated-application code.
// Nestable: restores the previous binding (if any) on destruction.
class ScopedTask {
 public:
  ScopedTask(Kernel& kernel, Pid pid, Tid tid)
      : kernel_(kernel),
        prev_pid_(Kernel::CurrentPid()),
        prev_tid_(Kernel::CurrentTid()) {
    kernel_.BindCurrentThread(pid, tid);
  }
  ~ScopedTask() {
    if (prev_tid_ != kNoTid) {
      kernel_.BindCurrentThread(prev_pid_, prev_tid_);
    } else {
      kernel_.UnbindCurrentThread();
    }
  }
  ScopedTask(const ScopedTask&) = delete;
  ScopedTask& operator=(const ScopedTask&) = delete;

 private:
  Kernel& kernel_;
  Pid prev_pid_;
  Tid prev_tid_;
};

}  // namespace dio::os
