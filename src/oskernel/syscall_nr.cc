#include "oskernel/syscall_nr.h"

namespace dio::os {

namespace {

constexpr std::array<SyscallDescriptor, kNumSyscalls> kTable = {{
    // nr, name, category, takes_fd, takes_path, data_related
    {SyscallNr::kRead, "read", SyscallCategory::kData, true, false, true},
    {SyscallNr::kPread64, "pread64", SyscallCategory::kData, true, false, true},
    {SyscallNr::kReadv, "readv", SyscallCategory::kData, true, false, true},
    {SyscallNr::kWrite, "write", SyscallCategory::kData, true, false, true},
    {SyscallNr::kPwrite64, "pwrite64", SyscallCategory::kData, true, false, true},
    {SyscallNr::kWritev, "writev", SyscallCategory::kData, true, false, true},
    {SyscallNr::kLseek, "lseek", SyscallCategory::kData, true, false, true},
    {SyscallNr::kTruncate, "truncate", SyscallCategory::kData, false, true, true},
    {SyscallNr::kFtruncate, "ftruncate", SyscallCategory::kData, true, false, true},
    {SyscallNr::kFsync, "fsync", SyscallCategory::kData, true, false, false},
    {SyscallNr::kFdatasync, "fdatasync", SyscallCategory::kData, true, false, false},

    {SyscallNr::kCreat, "creat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kOpen, "open", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kOpenat, "openat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kClose, "close", SyscallCategory::kMetadata, true, false, false},
    {SyscallNr::kRename, "rename", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kRenameat, "renameat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kRenameat2, "renameat2", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kUnlink, "unlink", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kUnlinkat, "unlinkat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kStat, "stat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kLstat, "lstat", SyscallCategory::kMetadata, false, true, false},
    {SyscallNr::kFstat, "fstat", SyscallCategory::kMetadata, true, false, false},
    {SyscallNr::kFstatfs, "fstatfs", SyscallCategory::kMetadata, true, false, false},
    {SyscallNr::kNewfstatat, "newfstatat", SyscallCategory::kMetadata, false, true, false},

    {SyscallNr::kGetxattr, "getxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kLgetxattr, "lgetxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kFgetxattr, "fgetxattr", SyscallCategory::kExtendedAttributes, true, false, false},
    {SyscallNr::kSetxattr, "setxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kLsetxattr, "lsetxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kFsetxattr, "fsetxattr", SyscallCategory::kExtendedAttributes, true, false, false},
    {SyscallNr::kRemovexattr, "removexattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kLremovexattr, "lremovexattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kFremovexattr, "fremovexattr", SyscallCategory::kExtendedAttributes, true, false, false},
    {SyscallNr::kListxattr, "listxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kLlistxattr, "llistxattr", SyscallCategory::kExtendedAttributes, false, true, false},
    {SyscallNr::kFlistxattr, "flistxattr", SyscallCategory::kExtendedAttributes, true, false, false},

    {SyscallNr::kMknod, "mknod", SyscallCategory::kDirectoryManagement, false, true, false},
    {SyscallNr::kMknodat, "mknodat", SyscallCategory::kDirectoryManagement, false, true, false},
    {SyscallNr::kMkdir, "mkdir", SyscallCategory::kDirectoryManagement, false, true, false},
    {SyscallNr::kMkdirat, "mkdirat", SyscallCategory::kDirectoryManagement, false, true, false},
    {SyscallNr::kRmdir, "rmdir", SyscallCategory::kDirectoryManagement, false, true, false},
}};

}  // namespace

const std::array<SyscallDescriptor, kNumSyscalls>& SyscallTable() {
  return kTable;
}

const SyscallDescriptor& Describe(SyscallNr nr) {
  return kTable[static_cast<std::size_t>(nr)];
}

std::string_view SyscallName(SyscallNr nr) { return Describe(nr).name; }

std::string_view CategoryName(SyscallCategory category) {
  switch (category) {
    case SyscallCategory::kData: return "data";
    case SyscallCategory::kMetadata: return "metadata";
    case SyscallCategory::kExtendedAttributes: return "extended-attributes";
    case SyscallCategory::kDirectoryManagement: return "directory-management";
  }
  return "?";
}

std::optional<SyscallNr> SyscallFromName(std::string_view name) {
  for (const SyscallDescriptor& d : kTable) {
    if (d.name == name) return d.nr;
  }
  return std::nullopt;
}

}  // namespace dio::os
