// Core identifier and flag types for the simulated OS substrate.
//
// The substrate mirrors the Linux syscall ABI closely enough that DIO's
// tracer observes the same signal a real eBPF tracer would: syscall numbers,
// argument words, errno-style return values, PIDs/TIDs/comms, and kernel
// structures (inodes, open file descriptions, per-fd offsets).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dio::os {

using Pid = std::int32_t;
using Tid = std::int32_t;
using Fd = std::int32_t;
using InodeNum = std::uint64_t;
using DeviceNum = std::uint64_t;

constexpr Pid kNoPid = -1;
constexpr Tid kNoTid = -1;
constexpr Fd kNoFd = -1;

// File types, matching the set DIO differentiates (§II-B): regular files,
// directories, sockets, block/char devices, pipes, symbolic links, other.
enum class FileType : std::uint8_t {
  kUnknown = 0,
  kRegular,
  kDirectory,
  kSymlink,
  kPipe,
  kSocket,
  kBlockDevice,
  kCharDevice,
};

std::string_view FileTypeName(FileType type);

// Open flags (values mirror Linux where it is cheap to do so).
namespace openflag {
constexpr std::uint32_t kReadOnly = 0x0;
constexpr std::uint32_t kWriteOnly = 0x1;
constexpr std::uint32_t kReadWrite = 0x2;
constexpr std::uint32_t kAccessMask = 0x3;
constexpr std::uint32_t kCreate = 0x40;     // O_CREAT
constexpr std::uint32_t kExclusive = 0x80;  // O_EXCL
constexpr std::uint32_t kTruncate = 0x200;  // O_TRUNC
constexpr std::uint32_t kAppend = 0x400;    // O_APPEND
constexpr std::uint32_t kDirectory = 0x10000;  // O_DIRECTORY
}  // namespace openflag

// Mode bits for mknod-style type selection (Linux S_IF*).
namespace filemode {
constexpr std::uint32_t kTypeMask = 0170000;
constexpr std::uint32_t kRegular = 0100000;
constexpr std::uint32_t kDirectory = 0040000;
constexpr std::uint32_t kCharDevice = 0020000;
constexpr std::uint32_t kBlockDevice = 0060000;
constexpr std::uint32_t kFifo = 0010000;
constexpr std::uint32_t kSocket = 0140000;
constexpr std::uint32_t kSymlink = 0120000;
}  // namespace filemode

FileType FileTypeFromMode(std::uint32_t mode);
std::uint32_t ModeFromFileType(FileType type);

// lseek whence values.
enum Whence : int { kSeekSet = 0, kSeekCur = 1, kSeekEnd = 2 };

// errno values (negated in syscall returns, like the real ABI).
namespace err {
constexpr int kEPERM = 1;
constexpr int kENOENT = 2;
constexpr int kEBADF = 9;
constexpr int kENOMEM = 12;
constexpr int kEACCES = 13;
constexpr int kEEXIST = 17;
constexpr int kENOTDIR = 20;
constexpr int kEISDIR = 21;
constexpr int kEINVAL = 22;
constexpr int kEMFILE = 24;
constexpr int kENOSPC = 28;
constexpr int kESPIPE = 29;
constexpr int kENAMETOOLONG = 36;
constexpr int kENOTEMPTY = 39;
constexpr int kENODATA = 61;
constexpr int kEOPNOTSUPP = 95;
}  // namespace err

// stat(2)-style result.
struct StatBuf {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint32_t mode = 0;
  std::uint64_t nlink = 0;
  std::uint64_t size = 0;
  std::int64_t atime_ns = 0;
  std::int64_t mtime_ns = 0;
  std::int64_t ctime_ns = 0;
};

// Directory file descriptor sentinel for *at syscalls: we support AT_FDCWD
// with absolute paths (the substrate has no per-process CWD).
constexpr Fd kAtFdCwd = -100;

// Kernel-structure views exposed to tracepoint handlers for enrichment —
// the stand-in for eBPF reading struct file / struct inode.
struct FdView {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint64_t offset = 0;  // current file position
  std::string path;          // dentry path recorded at open
};

struct PathView {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
};

// Allocation-free fd snapshot for the tracer hook path: the scalar state of
// FdView, with the dentry path copied into a caller-provided buffer instead
// of a std::string (KernelView::SnapshotFd). POD so it can live inside
// fixed-layout pending-map entries.
struct FdSnapshot {
  DeviceNum dev = 0;
  InodeNum ino = 0;
  FileType type = FileType::kUnknown;
  std::uint64_t offset = 0;      // current file position
  std::uint16_t path_len = 0;    // bytes copied into the caller's buffer
  std::uint16_t path_trunc = 0;  // bytes that did not fit it
};

}  // namespace dio::os
