#include "oskernel/tracepoint.h"

#include <thread>

namespace dio::os {

namespace {
template <typename List, typename Entry>
std::shared_ptr<const List> WithAppended(const std::shared_ptr<const List>& old,
                                         Entry entry) {
  auto updated = old ? std::make_shared<List>(*old) : std::make_shared<List>();
  updated->push_back(std::move(entry));
  return updated;
}

template <typename List>
std::shared_ptr<const List> WithRemoved(const std::shared_ptr<const List>& old,
                                        AttachId id, bool* removed) {
  if (!old) return old;
  auto updated = std::make_shared<List>();
  updated->reserve(old->size());
  for (const auto& entry : *old) {
    if (entry.id == id) {
      *removed = true;
    } else {
      updated->push_back(entry);
    }
  }
  return updated;
}
}  // namespace

AttachId TracepointRegistry::AttachEnter(SyscallNr nr,
                                         SysEnterHandler handler) {
  std::scoped_lock lock(mutation_mu_);
  const AttachId id = next_id_++;
  auto& slot = enter_[static_cast<std::size_t>(nr)];
  slot.store(WithAppended(slot.load(), Entry<SysEnterHandler>{id, std::move(handler)}));
  return id;
}

AttachId TracepointRegistry::AttachExit(SyscallNr nr, SysExitHandler handler) {
  std::scoped_lock lock(mutation_mu_);
  const AttachId id = next_id_++;
  auto& slot = exit_[static_cast<std::size_t>(nr)];
  slot.store(WithAppended(slot.load(), Entry<SysExitHandler>{id, std::move(handler)}));
  return id;
}

void TracepointRegistry::Detach(AttachId id) {
  {
    std::scoped_lock lock(mutation_mu_);
    bool removed = false;
    for (auto& slot : enter_) {
      auto updated = WithRemoved(slot.load(), id, &removed);
      if (removed) {
        slot.store(std::move(updated));
        break;
      }
    }
    if (!removed) {
      for (auto& slot : exit_) {
        auto updated = WithRemoved(slot.load(), id, &removed);
        if (removed) {
          slot.store(std::move(updated));
          break;
        }
      }
    }
  }
  Synchronize();
}

void TracepointRegistry::DetachAll() {
  {
    std::scoped_lock lock(mutation_mu_);
    for (auto& slot : enter_) slot.store(nullptr);
    for (auto& slot : exit_) slot.store(nullptr);
  }
  Synchronize();
}

void TracepointRegistry::Synchronize() const {
  while (active_dispatches_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

namespace {
// RAII dispatch marker for the detach grace period.
class DispatchGuard {
 public:
  explicit DispatchGuard(std::atomic<std::uint64_t>& counter)
      : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_acquire);
  }
  ~DispatchGuard() { counter_.fetch_sub(1, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t>& counter_;
};
}  // namespace

void TracepointRegistry::FireEnter(const SysEnterContext& ctx) const {
  DispatchGuard guard(active_dispatches_);
  const auto handlers = enter_[static_cast<std::size_t>(ctx.nr)].load();
  if (!handlers) return;
  for (const auto& entry : *handlers) entry.handler(ctx);
}

void TracepointRegistry::FireExit(const SysExitContext& ctx) const {
  DispatchGuard guard(active_dispatches_);
  const auto handlers = exit_[static_cast<std::size_t>(ctx.nr)].load();
  if (!handlers) return;
  for (const auto& entry : *handlers) entry.handler(ctx);
}

bool TracepointRegistry::HasEnter(SyscallNr nr) const {
  const auto handlers = enter_[static_cast<std::size_t>(nr)].load();
  return handlers && !handlers->empty();
}

bool TracepointRegistry::HasExit(SyscallNr nr) const {
  const auto handlers = exit_[static_cast<std::size_t>(nr)].load();
  return handlers && !handlers->empty();
}

}  // namespace dio::os
