#include "oskernel/tracepoint.h"

#include <thread>

namespace dio::os {

namespace {
// RAII dispatch marker for the attach/detach grace period. seq_cst on both
// ends: see Synchronize().
class DispatchGuard {
 public:
  explicit DispatchGuard(std::atomic<std::uint64_t>& counter)
      : counter_(counter) {
    counter_.fetch_add(1);
  }
  ~DispatchGuard() { counter_.fetch_sub(1); }

 private:
  std::atomic<std::uint64_t>& counter_;
};
}  // namespace

TracepointRegistry::~TracepointRegistry() {
  // Drops every handler list and reclaims all retired snapshots.
  DetachAll();
}

template <typename Handler>
void TracepointRegistry::AppendLocked(
    SlotArray<Handler>& slots,
    std::vector<const HandlerList<Handler>*>& retired, SyscallNr nr,
    AttachId id, Handler handler) {
  auto& slot = slots[static_cast<std::size_t>(nr)];
  const HandlerList<Handler>* old = slot.load(std::memory_order_relaxed);
  auto* updated = old ? new HandlerList<Handler>(*old)
                      : new HandlerList<Handler>();
  updated->push_back(Entry<Handler>{id, std::move(handler)});
  slot.store(updated);  // seq_cst, pairs with the reader's counter increment
  if (old != nullptr) retired.push_back(old);
}

template <typename Handler>
bool TracepointRegistry::RemoveLocked(
    SlotArray<Handler>& slots,
    std::vector<const HandlerList<Handler>*>& retired, AttachId id) {
  for (auto& slot : slots) {
    const HandlerList<Handler>* old = slot.load(std::memory_order_relaxed);
    if (old == nullptr) continue;
    bool found = false;
    for (const auto& entry : *old) {
      if (entry.id == id) {
        found = true;
        break;
      }
    }
    if (!found) continue;
    auto* updated = new HandlerList<Handler>();
    updated->reserve(old->size() - 1);
    for (const auto& entry : *old) {
      if (entry.id != id) updated->push_back(entry);
    }
    slot.store(updated);
    retired.push_back(old);
    return true;
  }
  return false;
}

AttachId TracepointRegistry::AttachEnter(SyscallNr nr,
                                         SysEnterHandler handler) {
  std::scoped_lock lock(mutation_mu_);
  const AttachId id = next_id_++;
  AppendLocked(enter_, retired_enter_, nr, id, std::move(handler));
  ReclaimLocked();
  return id;
}

AttachId TracepointRegistry::AttachExit(SyscallNr nr, SysExitHandler handler) {
  std::scoped_lock lock(mutation_mu_);
  const AttachId id = next_id_++;
  AppendLocked(exit_, retired_exit_, nr, id, std::move(handler));
  ReclaimLocked();
  return id;
}

void TracepointRegistry::Detach(AttachId id) {
  std::scoped_lock lock(mutation_mu_);
  if (!RemoveLocked(enter_, retired_enter_, id)) {
    RemoveLocked(exit_, retired_exit_, id);
  }
  ReclaimLocked();
}

void TracepointRegistry::DetachAll() {
  std::scoped_lock lock(mutation_mu_);
  for (auto& slot : enter_) {
    if (const auto* old = slot.load(std::memory_order_relaxed)) {
      slot.store(nullptr);
      retired_enter_.push_back(old);
    }
  }
  for (auto& slot : exit_) {
    if (const auto* old = slot.load(std::memory_order_relaxed)) {
      slot.store(nullptr);
      retired_exit_.push_back(old);
    }
  }
  ReclaimLocked();
}

void TracepointRegistry::Synchronize() const {
  while (active_dispatches_.load() != 0) {
    std::this_thread::yield();
  }
}

void TracepointRegistry::ReclaimLocked() {
  if (retired_enter_.empty() && retired_exit_.empty()) return;
  Synchronize();
  for (const auto* list : retired_enter_) delete list;
  for (const auto* list : retired_exit_) delete list;
  retired_enter_.clear();
  retired_exit_.clear();
}

void TracepointRegistry::FireEnter(const SysEnterContext& ctx) const {
  DispatchGuard guard(active_dispatches_);
  const auto* handlers = enter_[static_cast<std::size_t>(ctx.nr)].load();
  if (handlers == nullptr) return;
  for (const auto& entry : *handlers) entry.handler(ctx);
}

void TracepointRegistry::FireExit(const SysExitContext& ctx) const {
  DispatchGuard guard(active_dispatches_);
  const auto* handlers = exit_[static_cast<std::size_t>(ctx.nr)].load();
  if (handlers == nullptr) return;
  for (const auto& entry : *handlers) entry.handler(ctx);
}

bool TracepointRegistry::HasEnter(SyscallNr nr) const {
  // The guard keeps the snapshot alive across the empty() dereference.
  DispatchGuard guard(active_dispatches_);
  const auto* handlers = enter_[static_cast<std::size_t>(nr)].load();
  return handlers != nullptr && !handlers->empty();
}

bool TracepointRegistry::HasExit(SyscallNr nr) const {
  DispatchGuard guard(active_dispatches_);
  const auto* handlers = exit_[static_cast<std::size_t>(nr)].load();
  return handlers != nullptr && !handlers->empty();
}

}  // namespace dio::os
