#include "oskernel/inode.h"

namespace dio::os {

InodeTable::InodeTable(InodeNum first_ino) : next_never_used_(first_ino) {}

Inode* InodeTable::Allocate(FileType type, Nanos now) {
  InodeNum ino;
  if (!free_list_.empty()) {
    ino = *free_list_.begin();
    free_list_.erase(free_list_.begin());
  } else {
    ino = next_never_used_++;
  }
  auto inode = std::make_unique<Inode>();
  inode->ino = ino;
  inode->type = type;
  inode->mode = ModeFromFileType(type);
  inode->nlink = type == FileType::kDirectory ? 2 : 1;
  inode->atime_ns = inode->mtime_ns = inode->ctime_ns = now;
  Inode* raw = inode.get();
  live_[ino] = std::move(inode);
  return raw;
}

void InodeTable::Free(InodeNum ino) {
  auto it = live_.find(ino);
  if (it == live_.end()) return;
  live_.erase(it);
  free_list_.insert(ino);
}

Inode* InodeTable::Get(InodeNum ino) {
  auto it = live_.find(ino);
  return it == live_.end() ? nullptr : it->second.get();
}

const Inode* InodeTable::Get(InodeNum ino) const {
  auto it = live_.find(ino);
  return it == live_.end() ? nullptr : it->second.get();
}

}  // namespace dio::os
