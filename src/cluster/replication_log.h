// Per-shard replication log with compaction below the slowest live owner.
//
// PR 7's ShardLog kept every entry since seq 0 (entry seq == vector
// position), so log memory and rejoin replay both grew with total history.
// This module gives the log an explicit `base_seq`: entries below it have
// been applied by every live owner and are dropped, so steady-state memory
// is O(replication lag), and a node whose watermark falls below the base
// (a wiped rejoin, or a fresh node promoted into an owner set after
// compaction) bootstraps from a peer snapshot plus the retained tail
// instead of replaying from seq 0 (ClusterRouter::SnapshotCatchUp).
//
// Thread-safety: ShardLog is a passive structure guarded by the router's
// mutex. Appliers take a LogSlice snapshot (shared_ptr entries) under the
// lock and run outside it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/query.h"
#include "common/json.h"
#include "tracer/wire.h"

namespace dio::cluster {

// One replication-log entry: a per-shard slice of an ingested batch, or an
// update-by-query barrier. Immutable once appended.
struct LogEntry {
  enum class Kind { kIngest, kUpdate };
  Kind kind = Kind::kIngest;
  // kIngest payload (exactly one of wire/docs non-empty).
  std::string session;
  std::vector<tracer::WireEvent> wire;
  std::vector<Json> docs;
  // kUpdate payload.
  backend::Query query = backend::Query::MatchAll();
  std::function<bool(Json&)> update;

  // Estimated resident size, computed once at append time and charged to
  // the log's retained-bytes counter (an estimate: JSON documents are
  // counted at a flat per-doc figure rather than serialized).
  [[nodiscard]] std::size_t ApproxBytes() const;
};

// A contiguous tail snapshot of one shard's log: entry seq `s` lives at
// `entries[s - base]`. Always ends at the log's append point; `base` is at
// or above the log's compaction base.
struct LogSlice {
  std::uint64_t base = 0;
  std::vector<std::shared_ptr<const LogEntry>> entries;

  [[nodiscard]] std::uint64_t end() const { return base + entries.size(); }
  [[nodiscard]] const LogEntry* At(std::uint64_t seq) const {
    return seq >= base && seq < end() ? entries[seq - base].get() : nullptr;
  }
};

// The bounded per-shard log. Seqs are dense and monotonically increasing
// from 0 for the shard's lifetime; compaction only moves `base_seq` forward,
// never renumbers.
class ShardLog {
 public:
  // Appends the entry at seq end_seq().
  void Append(std::shared_ptr<const LogEntry> entry);

  // First retained seq (everything below is compacted away).
  [[nodiscard]] std::uint64_t base_seq() const { return base_seq_; }
  // One past the last appended seq (the next entry's seq).
  [[nodiscard]] std::uint64_t end_seq() const {
    return base_seq_ + entries_.size();
  }
  [[nodiscard]] std::size_t retained_entries() const {
    return entries_.size();
  }
  [[nodiscard]] std::size_t retained_bytes() const { return retained_bytes_; }

  // Snapshot of [max(from, base_seq), end_seq).
  [[nodiscard]] LogSlice Slice(std::uint64_t from) const;
  [[nodiscard]] LogSlice Tail() const { return Slice(base_seq_); }

  struct CompactStats {
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  // Drops entries below min(min_applied, end_seq - retain): only entries
  // every live owner has applied may go, and the newest `retain` entries
  // are kept regardless so a briefly-lagging owner replays from the tail
  // instead of taking a snapshot. Returns what was dropped.
  CompactStats CompactBelow(std::uint64_t min_applied, std::size_t retain);

  // Row position in the shard's sub-index -> global ingestion seq. Grows
  // with every ingested event and is never compacted (queries need the
  // full map); 8 bytes/event, not O(payload).
  std::vector<std::uint64_t> global_seqs;
  // Router-side lower bound of each node's applied watermark (advanced
  // after applies complete; the node's own watermark is authoritative).
  std::vector<std::uint64_t> applied_hint;

 private:
  std::uint64_t base_seq_ = 0;
  std::deque<std::shared_ptr<const LogEntry>> entries_;
  std::size_t retained_bytes_ = 0;
};

}  // namespace dio::cluster
