#include "cluster/replication_log.h"

#include <algorithm>
#include <utility>

namespace dio::cluster {

namespace {
// Flat estimate for one JSON document's resident size; cheaper than
// serializing every doc on the ingest path, and honest enough for a
// retained-bytes gauge that exists to prove the log is O(lag).
constexpr std::size_t kApproxJsonDocBytes = 320;
}  // namespace

std::size_t LogEntry::ApproxBytes() const {
  return sizeof(LogEntry) + session.size() +
         wire.size() * sizeof(tracer::WireEvent) +
         docs.size() * kApproxJsonDocBytes;
}

void ShardLog::Append(std::shared_ptr<const LogEntry> entry) {
  retained_bytes_ += entry->ApproxBytes();
  entries_.push_back(std::move(entry));
}

LogSlice ShardLog::Slice(std::uint64_t from) const {
  LogSlice slice;
  slice.base = std::max(from, base_seq_);
  const std::size_t skip = static_cast<std::size_t>(slice.base - base_seq_);
  slice.entries.assign(entries_.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(skip, entries_.size())),
                       entries_.end());
  return slice;
}

ShardLog::CompactStats ShardLog::CompactBelow(std::uint64_t min_applied,
                                              std::size_t retain) {
  const std::uint64_t keep_floor =
      end_seq() >= retain ? end_seq() - retain : 0;
  const std::uint64_t cut = std::min(min_applied, keep_floor);
  CompactStats stats;
  while (base_seq_ < cut && !entries_.empty()) {
    const std::size_t bytes = entries_.front()->ApproxBytes();
    retained_bytes_ -= std::min(retained_bytes_, bytes);
    stats.bytes += bytes;
    stats.entries += 1;
    entries_.pop_front();
    ++base_seq_;
  }
  return stats;
}

}  // namespace dio::cluster
