// ShardMap: ownership of logical shards across backend nodes via rendezvous
// (highest-random-weight) hashing.
//
// Every index is split into a fixed number of logical shards; an event's
// routing key hashes to one of them (`ShardOf`). Each shard is owned by the
// 1 + replicas live nodes with the highest per-(node, shard) scores
// (`Owners`; the highest-scoring node is the primary). Rendezvous hashing
// gives the rebalancing property the cluster needs without a token ring:
// when a node joins or leaves, a shard's owner list changes only if that
// node scores into (or out of) the shard's top group — every untouched
// shard keeps its exact owner list, and the expected fraction of primaries
// that move on a join is 1/(live node count). The property test
// (shard_map_property_test.cc) pins both guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dio::cluster {

class ShardMap {
 public:
  static constexpr std::size_t kDefaultLogicalShards = 16;

  ShardMap(std::size_t logical_shards, std::size_t replicas);

  // Registers a node (initially live) and returns its id (dense, 0-based).
  std::size_t AddNode();
  // Join/leave: a dead node owns nothing until it is marked live again.
  void SetLive(std::size_t node, bool live);
  [[nodiscard]] bool IsLive(std::size_t node) const;

  [[nodiscard]] std::size_t node_count() const { return salts_.size(); }
  [[nodiscard]] std::size_t live_count() const;
  [[nodiscard]] std::size_t logical_shards() const { return logical_shards_; }
  [[nodiscard]] std::size_t replicas() const { return replicas_; }

  [[nodiscard]] std::size_t ShardOf(std::uint64_t routing_hash) const {
    return static_cast<std::size_t>(routing_hash % logical_shards_);
  }

  // Owner node ids for a shard: primary first, then replicas, in descending
  // rendezvous-score order over live nodes. Size is
  // min(1 + replicas, live_count()); empty only when no node is live.
  [[nodiscard]] std::vector<std::size_t> Owners(std::size_t shard) const;
  // Owners(shard)[0], or node_count() when no node is live.
  [[nodiscard]] std::size_t Primary(std::size_t shard) const;

 private:
  [[nodiscard]] std::uint64_t Score(std::size_t node, std::size_t shard) const;

  std::size_t logical_shards_;
  std::size_t replicas_;
  std::vector<std::uint64_t> salts_;  // per-node hash salt
  std::vector<std::uint8_t> live_;
};

}  // namespace dio::cluster
