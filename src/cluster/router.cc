#include "cluster/router.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <queue>
#include <utility>

namespace dio::cluster {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Routing key: (tid, time_enter) — the fields EventKey uniqueness is built
// on, present in every traced event. All per-thread context stays within
// one shard only by accident of hashing; queries never rely on locality,
// so a plain well-mixed hash is enough.
std::uint64_t RoutingHash(std::int64_t tid, std::int64_t time_enter) {
  return Mix64(static_cast<std::uint64_t>(tid) ^
               Mix64(static_cast<std::uint64_t>(time_enter)));
}

std::uint64_t Fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t RoutingHashOfDoc(const Json& doc) {
  const Json* tid = doc.Find("tid");
  const Json* time_enter = doc.Find("time_enter");
  if (tid != nullptr && tid->is_number() && time_enter != nullptr &&
      time_enter->is_number()) {
    return RoutingHash(tid->as_int(), time_enter->as_int());
  }
  // Documents without the tracer's key fields (hand-built corpora in
  // tests): route by content so the placement is at least deterministic.
  return Fnv1a(doc.Dump(), 0xcbf29ce484222325ULL);
}

// The serial JSON engine's sort comparator (store.cc), minus the docid
// tiebreak: the gather merges hits in ascending global seq and stable_sorts,
// which reproduces the oracle's stable_sort over ascending docids exactly.
bool OracleSortBefore(const std::vector<backend::SortSpec>& specs,
                      const Json& a, const Json& b) {
  for (const backend::SortSpec& spec : specs) {
    const Json* va = a.Find(spec.field);
    const Json* vb = b.Find(spec.field);
    if (va == nullptr && vb == nullptr) continue;
    if (va == nullptr) return false;  // missing sorts last
    if (vb == nullptr) return true;
    int cmp = 0;
    if (va->is_number() && vb->is_number()) {
      const double da = va->as_double();
      const double db = vb->as_double();
      cmp = da < db ? -1 : (da > db ? 1 : 0);
    } else if (va->is_string() && vb->is_string()) {
      cmp = va->as_string().compare(vb->as_string());
    }
    if (cmp != 0) return spec.ascending ? cmp < 0 : cmp > 0;
  }
  return false;
}

}  // namespace

std::string_view ToString(AckLevel level) {
  switch (level) {
    case AckLevel::kPrimary: return "primary";
    case AckLevel::kQuorum: return "quorum";
    case AckLevel::kAll: return "all";
  }
  return "quorum";
}

Expected<AckLevel> AckLevelFromString(std::string_view name) {
  if (name == "primary") return AckLevel::kPrimary;
  if (name == "quorum") return AckLevel::kQuorum;
  if (name == "all") return AckLevel::kAll;
  return InvalidArgument("unknown ack level: " + std::string(name) +
                         " (want primary|quorum|all)");
}

std::string_view ToString(QueryFanout fanout) {
  switch (fanout) {
    case QueryFanout::kSerial: return "serial";
    case QueryFanout::kParallel: return "parallel";
  }
  return "parallel";
}

Expected<QueryFanout> QueryFanoutFromString(std::string_view name) {
  if (name == "serial") return QueryFanout::kSerial;
  if (name == "parallel") return QueryFanout::kParallel;
  return InvalidArgument("unknown query fan-out: " + std::string(name) +
                         " (want serial|parallel)");
}

Expected<ClusterOptions> ClusterOptions::FromConfig(const Config& config) {
  WarnUnknownKeys(config, "cluster",
                  {"nodes", "replicas", "ack", "logical_shards",
                   "query_fanout", "query_threads", "log_retain_batches"});
  ClusterOptions opts;
  opts.nodes = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("cluster.nodes", static_cast<std::int64_t>(opts.nodes))));
  opts.replicas = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("cluster.replicas",
                       static_cast<std::int64_t>(opts.replicas))));
  opts.logical_shards = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("cluster.logical_shards",
                       static_cast<std::int64_t>(opts.logical_shards))));
  opts.query_threads = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("cluster.query_threads",
                       static_cast<std::int64_t>(opts.query_threads))));
  opts.log_retain_batches = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("cluster.log_retain_batches",
                       static_cast<std::int64_t>(opts.log_retain_batches))));
  if (config.Has("cluster.ack")) {
    auto ack = AckLevelFromString(config.GetString("cluster.ack"));
    if (!ack.ok()) return ack.status();
    opts.ack = *ack;
  }
  if (config.Has("cluster.query_fanout")) {
    auto fanout =
        QueryFanoutFromString(config.GetString("cluster.query_fanout"));
    if (!fanout.ok()) return fanout.status();
    opts.query_fanout = *fanout;
  }
  return opts;
}

BackendNode::BackendNode(std::size_t id,
                         const backend::ElasticStoreOptions& options)
    : id_(id),
      store_options_(options),
      store_(std::make_unique<backend::ElasticStore>(options)) {}

ClusterRouter::ClusterRouter(const ClusterOptions& options)
    : options_(options), map_(options.logical_shards, options.replicas) {
  for (std::size_t n = 0; n < std::max<std::size_t>(1, options.nodes); ++n) {
    nodes_.push_back(std::make_unique<BackendNode>(map_.AddNode(),
                                                   options_.store));
  }
  fanout_mode_.store(static_cast<int>(options_.query_fanout),
                     std::memory_order_relaxed);
  if (options_.query_threads > 0) {
    query_pool_ = std::make_unique<ThreadPool>(options_.query_threads,
                                               "cluster-query");
  }
}

std::size_t ClusterRouter::node_count() const { return nodes_.size(); }

std::string ClusterRouter::SubIndexName(const std::string& index,
                                        std::size_t shard) {
  return index + "#" + std::to_string(shard);
}

std::size_t ClusterRouter::AddNode() {
  std::scoped_lock lock(mu_);
  const std::size_t id = map_.AddNode();
  nodes_.push_back(std::make_unique<BackendNode>(id, options_.store));
  return id;
}

Status ClusterRouter::CrashNode(std::size_t id) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  BackendNode& node = *nodes_[id];
  if (!node.up_) return Status::Ok();
  std::scoped_lock apply_lock(node.apply_mu_);
  node.up_ = false;
  map_.SetLive(id, false);
  // Process death: everything node-local is gone. The replication log keeps
  // every acked entry a live owner still needs (compaction never passes a
  // live owner's watermark), so nothing acked is lost cluster-wide.
  node.store_ = std::make_unique<backend::ElasticStore>(node.store_options_);
  node.applied_.clear();
  node.dirty_.clear();
  for (auto& [name, ix] : indices_) {
    for (ShardLog& sl : ix.shards) {
      if (id < sl.applied_hint.size()) sl.applied_hint[id] = 0;
    }
  }
  return Status::Ok();
}

Status ClusterRouter::RestartNode(std::size_t id) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  BackendNode& node = *nodes_[id];
  if (node.up_) return Status::Ok();
  node.up_ = true;
  map_.SetLive(id, true);
  return Status::Ok();
}

Status ClusterRouter::SetReachable(std::size_t id, bool reachable) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  nodes_[id]->reachable_ = reachable;
  return Status::Ok();
}

Status ClusterRouter::SetThrottled(std::size_t id, bool throttled) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  nodes_[id]->throttled_ = throttled;
  return Status::Ok();
}

void ClusterRouter::HealAll() {
  std::vector<std::size_t> down;
  {
    std::scoped_lock lock(mu_);
    // nodes_ is in ascending id order, so `down` is too: restarts (and the
    // shard-owner promotions they trigger) happen in the same order no
    // matter which order the faults crashed the nodes in — deterministic
    // under the sim scheduler.
    for (const auto& node : nodes_) {
      node->reachable_ = true;
      node->throttled_ = false;
      if (!node->up_) down.push_back(node->id());
    }
  }
  for (const std::size_t id : down) (void)RestartNode(id);
  // Rejoined owners whose shard prefix was compacted bootstrap from a peer
  // snapshot now, so the follow-up Settle replays retained tails, never
  // history from seq 0.
  (void)CatchUpStranded();
}

std::size_t ClusterRouter::RequiredAcks(std::size_t owner_count) const {
  switch (options_.ack) {
    case AckLevel::kPrimary: return 1;
    case AckLevel::kQuorum: return owner_count / 2 + 1;
    case AckLevel::kAll: return owner_count;
  }
  return 1;
}

ClusterRouter::ApplyOutcome ClusterRouter::ApplyToStore(
    BackendNode& node, const std::string& index, std::size_t shard,
    const LogSlice& slice, std::uint64_t through_seq) {
  const std::string sub = SubIndexName(index, shard);
  ApplyOutcome out;
  // Lock order is strictly apply_mu_ OR mu_, never nested here: CrashNode
  // holds mu_ while wiping watermarks under apply_mu_, so nesting them the
  // other way round would deadlock. Router-side bookkeeping (NoteApplied)
  // happens after this mutex is released, re-validated against a
  // concurrent crash.
  std::scoped_lock apply_lock(node.apply_mu_);
  if (!node.up_) {
    out.status = Unavailable("node down");
    return out;
  }
  std::uint64_t& watermark = node.applied_[sub];
  if (watermark < slice.base) {
    // The prefix this node still needs was compacted away (wiped rejoin or
    // post-compaction promotion): it must bootstrap from a peer snapshot.
    out.needs_snapshot = true;
    out.status = FailedPrecondition(
        "node " + std::to_string(node.id()) + " watermark " +
        std::to_string(watermark) + " below compacted base " +
        std::to_string(slice.base) + " of " + sub);
    return out;
  }
  while (watermark <= through_seq) {
    const LogEntry* entry = slice.At(watermark);
    if (entry == nullptr) {
      out.status = Internal("replication log snapshot missing seq " +
                            std::to_string(watermark));
      return out;
    }
    out.modified = 0;
    if (entry->kind == LogEntry::Kind::kIngest) {
      if (!entry->wire.empty()) {
        node.store_->BulkWire(sub, entry->session, entry->wire);
      }
      if (!entry->docs.empty()) node.store_->Bulk(sub, entry->docs);
      node.dirty_.insert(sub);
    } else {
      // Update barrier: visibility first, then the same update-by-query
      // the single store ran. A shard that never received documents has
      // no sub-index; the update is vacuously applied. Consecutive update
      // entries share one refresh: only ingest applied since the last
      // barrier re-dirties the sub-index.
      if (node.store_->HasIndex(sub)) {
        if (node.dirty_.erase(sub) != 0) node.store_->Refresh(sub);
        auto result =
            node.store_->UpdateByQuery(sub, entry->query, entry->update);
        if (!result.ok()) {
          out.status = result.status();
          return out;
        }
        out.modified = *result;
      }
    }
    ++watermark;
    ++out.applied;
  }
  out.reached = watermark;
  return out;
}

void ClusterRouter::NoteApplied(const std::string& index, std::size_t shard,
                                const BackendNode& node, std::uint64_t reached,
                                std::size_t applied, bool sync) {
  std::scoped_lock lock(mu_);
  if (sync) {
    sync_applies_ += applied;
  } else {
    async_applies_ += applied;
  }
  auto it = indices_.find(index);
  // A crash between the apply and this bookkeeping zeroed the node's hints;
  // its store is gone, so the watermark we reached no longer describes it.
  if (it != indices_.end() && node.up_) {
    ShardLog& sl = it->second.shards[shard];
    if (sl.applied_hint.size() < nodes_.size()) {
      sl.applied_hint.resize(nodes_.size(), 0);
    }
    sl.applied_hint[node.id()] = std::max(sl.applied_hint[node.id()], reached);
  }
}

ClusterRouter::ApplyOutcome ClusterRouter::ApplyWithCatchUp(
    BackendNode& node, const std::string& index, std::size_t shard,
    const LogSlice& slice, std::uint64_t through_seq, bool sync) {
  ApplyOutcome out = ApplyToStore(node, index, shard, slice, through_seq);
  if (out.needs_snapshot) {
    if (Status snap = SnapshotCatchUp(index, shard, node.id()); !snap.ok()) {
      out.status = snap;
      return out;
    }
    out = ApplyToStore(node, index, shard, slice, through_seq);
    out.needs_snapshot = true;  // preserve "a snapshot happened" for callers
  }
  if (out.status.ok()) {
    NoteApplied(index, shard, node, out.reached, out.applied, sync);
  }
  return out;
}

Status ClusterRouter::SnapshotCatchUp(const std::string& index,
                                      std::size_t shard, std::size_t target) {
  const std::string sub = SubIndexName(index, shard);
  // Pick the source under a shared lock: the most-advanced up+reachable
  // owner at or past the compacted base (ties: lowest id — deterministic).
  std::size_t source_id = nodes_.size();
  {
    std::shared_lock lock(mu_);
    auto it = indices_.find(index);
    if (it == indices_.end()) return NotFound("no such index: " + index);
    const ShardLog& sl = it->second.shards[shard];
    const std::uint64_t base = sl.base_seq();
    std::uint64_t best_hint = 0;
    for (const std::size_t owner : map_.Owners(shard)) {
      if (owner == target) continue;
      const BackendNode& peer = *nodes_[owner];
      if (!peer.up_ || !peer.reachable_) continue;
      const std::uint64_t hint =
          owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
      if (hint < base) continue;
      if (source_id == nodes_.size() || hint > best_hint) {
        source_id = owner;
        best_hint = hint;
      }
    }
    if (source_id == nodes_.size()) {
      return Unavailable("cluster: no catch-up source for shard " +
                         std::to_string(shard) + " of " + index);
    }
  }

  // Freeze the source at its applied watermark and dump the whole
  // sub-index (rows come back in dense append order, so re-bulking them
  // reproduces byte-identical row ids and documents on the target).
  std::vector<Json> docs;
  std::uint64_t source_watermark = 0;
  {
    BackendNode& source = *nodes_[source_id];
    std::scoped_lock apply_lock(source.apply_mu_);
    if (!source.up_) return Unavailable("catch-up source crashed");
    auto wit = source.applied_.find(sub);
    source_watermark = wit == source.applied_.end() ? 0 : wit->second;
    if (source.store_->HasIndex(sub)) {
      source.store_->Refresh(sub);
      backend::SearchRequest all;
      all.size = std::numeric_limits<std::size_t>::max();
      auto hits = source.store_->Search(sub, all);
      if (!hits.ok() && hits.status().code() != ErrorCode::kNotFound) {
        return hits.status();
      }
      if (hits.ok()) {
        docs.reserve(hits->hits.size());
        for (backend::Hit& hit : hits->hits) {
          docs.push_back(std::move(hit.source));
        }
      }
    }
  }

  // Install on the target: replace its copy wholesale and adopt the source
  // watermark; the retained log tail replays on top via the normal path.
  const std::size_t copied = docs.size();
  {
    BackendNode& node = *nodes_[target];
    std::scoped_lock apply_lock(node.apply_mu_);
    if (!node.up_) return Unavailable("node down");
    std::uint64_t& watermark = node.applied_[sub];
    if (watermark >= source_watermark) return Status::Ok();  // raced ahead
    (void)node.store_->DeleteIndex(sub);
    if (!docs.empty()) {
      node.store_->Bulk(sub, std::move(docs));
      node.store_->Refresh(sub);
    }
    watermark = source_watermark;
  }

  snapshot_catchups_.fetch_add(1, std::memory_order_relaxed);
  snapshot_docs_copied_.fetch_add(copied, std::memory_order_relaxed);
  NoteApplied(index, shard, *nodes_[target], source_watermark, /*applied=*/0,
              /*sync=*/false);
  return Status::Ok();
}

Status ClusterRouter::Ingest(const std::string& index,
                             transport::EventBatch batch) {
  if (batch.empty()) return Status::Ok();
  // Deferred events materialize here (the far side of the queue hop, like
  // BulkClient); wire records stay binary end to end.
  if (!batch.events.empty()) {
    transport::EventBatch deferred;
    deferred.session = batch.session;
    deferred.events = std::move(batch.events);
    batch.events.clear();
    deferred.Materialize();
    for (Json& doc : deferred.documents) {
      batch.documents.push_back(std::move(doc));
    }
  }
  const std::uint64_t fingerprint = batch.Fingerprint();
  const std::size_t batch_events = batch.size();

  struct ShardWork {
    std::size_t shard = 0;
    std::vector<std::size_t> owners;
    std::size_t required = 0;
    LogSlice slice;
    std::uint64_t through_seq = 0;
  };
  std::vector<ShardWork> work;
  {
    std::scoped_lock lock(mu_);
    // Retry after a lost ack: the batch is already durable, ack it again.
    if (auto it = acked_fingerprints_.find(fingerprint);
        it != acked_fingerprints_.end()) {
      it->second += 1;
      duplicate_batches_ += 1;
      return Status::Ok();
    }

    // Split into per-shard slices, wire records first then documents — the
    // order BulkClient indexes a mixed batch, and the order global seqs
    // are assigned in.
    std::map<std::size_t, LogEntry> slices;
    std::vector<std::size_t> route;
    route.reserve(batch.wire.size() + batch.documents.size());
    for (const tracer::WireEvent& record : batch.wire) {
      route.push_back(map_.ShardOf(RoutingHash(record.tid, record.time_enter)));
    }
    for (const Json& doc : batch.documents) {
      route.push_back(map_.ShardOf(RoutingHashOfDoc(doc)));
    }

    // Ack feasibility — checked before any state changes so a rejected
    // batch leaves the router untouched and the retry stage can re-drive
    // it verbatim.
    std::map<std::size_t, std::pair<std::vector<std::size_t>, std::size_t>>
        shard_owners;
    for (const std::size_t shard : route) {
      if (shard_owners.count(shard) != 0) continue;
      std::vector<std::size_t> owners = map_.Owners(shard);
      if (owners.empty()) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: no live nodes");
      }
      if (!nodes_[owners[0]]->reachable_) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: shard " + std::to_string(shard) +
                           " primary unreachable");
      }
      const std::size_t required = RequiredAcks(owners.size());
      std::size_t reachable = 0;
      for (const std::size_t owner : owners) {
        if (nodes_[owner]->reachable_) ++reachable;
      }
      if (reachable < required) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: shard " + std::to_string(shard) +
                           " has " + std::to_string(reachable) + "/" +
                           std::to_string(required) + " reachable owners");
      }
      shard_owners[shard] = {std::move(owners), required};
    }

    // Commit: assign global seqs in arrival order, append one log entry per
    // touched shard, and record the fingerprint so a concurrent or later
    // duplicate re-drive acks without re-applying.
    auto [ix_it, created] = indices_.try_emplace(index, map_.logical_shards());
    IndexState& ix = ix_it->second;
    std::size_t pos = 0;
    for (const tracer::WireEvent& record : batch.wire) {
      const std::size_t shard = route[pos++];
      slices[shard].session = batch.session;
      slices[shard].wire.push_back(record);
      ix.shards[shard].global_seqs.push_back(ix.next_global_seq++);
    }
    for (Json& doc : batch.documents) {
      const std::size_t shard = route[pos++];
      slices[shard].docs.push_back(std::move(doc));
      ix.shards[shard].global_seqs.push_back(ix.next_global_seq++);
    }
    for (auto& [shard, slice] : slices) {
      ShardLog& sl = ix.shards[shard];
      sl.Append(std::make_shared<const LogEntry>(std::move(slice)));
      log_appended_entries_ += 1;
      auto& [owners, required] = shard_owners[shard];
      work.push_back(ShardWork{shard, std::move(owners), required,
                               sl.Tail(), sl.end_seq() - 1});
    }
    ix.bulk_requests += 1;
    acked_fingerprints_[fingerprint] = 1;
    acked_batches_ += 1;
    acked_events_ += batch_events;
    // Previous batches' applies have advanced the hints by now; trimming
    // here (and on the pump) keeps steady-state log memory at O(lag).
    CompactLocked();
  }

  // Synchronous owner applications, primary first, until the ack level is
  // satisfied; remaining owners catch up via PumpReplication. Apply runs
  // outside the router mutex — per-(node, shard) order is enforced by the
  // node's applied-watermark.
  for (ShardWork& w : work) {
    std::size_t acked = 0;
    for (const std::size_t owner : w.owners) {
      if (acked >= w.required) break;
      BackendNode& node = *nodes_[owner];
      if (!node.reachable_) continue;
      // A crash racing this apply just defers the entry to the promoted
      // owners — it is already durable in the log.
      if (ApplyWithCatchUp(node, index, w.shard, w.slice, w.through_seq,
                           /*sync=*/true)
              .status.ok()) {
        ++acked;
      }
    }
  }
  return Status::Ok();
}

std::size_t ClusterRouter::PumpReplication(std::size_t max_applies) {
  struct Work {
    std::string index;
    std::size_t shard = 0;
    std::size_t node = 0;
    LogSlice slice;
    std::uint64_t through_seq = 0;
  };
  std::size_t budget = max_applies;
  std::size_t total = 0;
  // Collect-and-apply rounds: each round snapshots pending (entry, owner)
  // pairs in deterministic index/shard/owner order, applies them outside
  // the mutex, and repeats until the budget is spent or nothing is pending.
  while (budget > 0) {
    std::vector<Work> round;
    {
      std::scoped_lock lock(mu_);
      for (auto& [name, ix] : indices_) {
        for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
          ShardLog& sl = ix.shards[shard];
          const std::uint64_t end = sl.end_seq();
          if (end == 0) continue;
          if (sl.applied_hint.size() < nodes_.size()) {
            sl.applied_hint.resize(nodes_.size(), 0);
          }
          for (const std::size_t owner : map_.Owners(shard)) {
            BackendNode& node = *nodes_[owner];
            // A throttled node is the `lag` fault: alive and readable but
            // slow to replicate, so the async pump defers it (its backlog
            // caps compaction until the throttle lifts).
            if (!node.up_ || !node.reachable_ || node.throttled_) continue;
            // An owner below the compacted base replays from the base after
            // its snapshot bootstrap (ApplyWithCatchUp handles both).
            const std::uint64_t from =
                std::max(sl.applied_hint[owner], sl.base_seq());
            if (from >= end) continue;
            const std::uint64_t want =
                std::min<std::uint64_t>(end - from, budget);
            round.push_back(Work{name, shard, owner, sl.Slice(from),
                                 from + want - 1});
            budget -= static_cast<std::size_t>(want);
            if (budget == 0) break;
          }
          if (budget == 0) break;
        }
        if (budget == 0) break;
      }
    }
    if (round.empty()) break;
    std::size_t round_applied = 0;
    std::size_t round_catchups = 0;
    for (Work& w : round) {
      const ApplyOutcome out =
          ApplyWithCatchUp(*nodes_[w.node], w.index, w.shard, w.slice,
                           w.through_seq, /*sync=*/false);
      round_applied += out.applied;
      if (out.needs_snapshot && out.status.ok()) ++round_catchups;
    }
    // No forward progress (owners raced away or every apply failed): stop
    // instead of re-collecting the same work forever. A snapshot catch-up
    // with an empty tail applies zero entries but is still progress.
    if (round_applied == 0 && round_catchups == 0) break;
    total += round_applied;
  }
  CompactLogs();
  return total;
}

std::size_t ClusterRouter::PendingApplies() const {
  std::shared_lock lock(mu_);
  std::size_t pending = 0;
  for (const auto& [name, ix] : indices_) {
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      const ShardLog& sl = ix.shards[shard];
      const std::uint64_t end = sl.end_seq();
      if (end == 0) continue;
      for (const std::size_t owner : map_.Owners(shard)) {
        const std::uint64_t hint = owner < sl.applied_hint.size()
                                       ? sl.applied_hint[owner]
                                       : 0;
        // An owner below the base catches up via snapshot + tail, so its
        // outstanding log work starts at the base.
        const std::uint64_t from = std::max(hint, sl.base_seq());
        if (from < end) pending += static_cast<std::size_t>(end - from);
      }
    }
  }
  return pending;
}

Status ClusterRouter::Settle() {
  for (;;) {
    // An owner stranded below a compacted log prefix has an EMPTY pending
    // window (the pump replays from the base), so the pump alone would
    // declare quiescence on a divergent cluster — e.g. a node added after
    // compaction. Snapshot-bootstrap those first.
    const std::size_t rescued = CatchUpStranded();
    const std::size_t applied =
        PumpReplication(std::numeric_limits<std::size_t>::max());
    const std::size_t pending = PendingApplies();
    if (pending == 0) return Status::Ok();
    if (applied == 0 && rescued == 0) {
      return Unavailable("cluster: " + std::to_string(pending) +
                         " applies pending behind unreachable owners");
    }
  }
}

std::size_t ClusterRouter::CompactLocked() {
  std::size_t dropped = 0;
  for (auto& [name, ix] : indices_) {
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      ShardLog& sl = ix.shards[shard];
      if (sl.retained_entries() == 0) continue;
      // Compaction floor: the minimum applied watermark over live owners.
      // Unreachable or throttled owners still cap it — their prefix must
      // stay replayable from the log so a healed partition never needs a
      // snapshot. Crashed nodes left the owner sets; a later rejoin takes
      // the snapshot path instead.
      std::uint64_t min_applied = std::numeric_limits<std::uint64_t>::max();
      bool any_owner = false;
      for (const std::size_t owner : map_.Owners(shard)) {
        if (!nodes_[owner]->up_) continue;
        any_owner = true;
        const std::uint64_t hint =
            owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
        min_applied = std::min(min_applied, hint);
      }
      if (!any_owner) continue;  // log is the only copy — keep everything
      const ShardLog::CompactStats stats =
          sl.CompactBelow(min_applied, options_.log_retain_batches);
      log_compacted_entries_ += stats.entries;
      log_compacted_bytes_ += stats.bytes;
      dropped += stats.entries;
    }
  }
  return dropped;
}

std::size_t ClusterRouter::CompactLogs() {
  std::scoped_lock lock(mu_);
  return CompactLocked();
}

std::size_t ClusterRouter::CatchUpStranded() {
  struct Target {
    std::string index;
    std::size_t shard = 0;
    std::size_t node = 0;
  };
  std::size_t done = 0;
  for (;;) {
    std::vector<Target> stranded;
    {
      std::shared_lock lock(mu_);
      for (const auto& [name, ix] : indices_) {
        for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
          const ShardLog& sl = ix.shards[shard];
          const std::uint64_t base = sl.base_seq();
          if (base == 0) continue;
          for (const std::size_t owner : map_.Owners(shard)) {
            const BackendNode& node = *nodes_[owner];
            if (!node.up_ || !node.reachable_) continue;
            const std::uint64_t hint =
                owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
            if (hint < base) stranded.push_back({name, shard, owner});
          }
        }
      }
    }
    if (stranded.empty()) return done;
    std::size_t round = 0;
    for (const Target& t : stranded) {
      if (SnapshotCatchUp(t.index, t.shard, t.node).ok()) ++round;
    }
    if (round == 0) return done;
    done += round;
  }
}

std::uint64_t ClusterRouter::log_retained_entries() const {
  std::shared_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, ix] : indices_) {
    for (const ShardLog& sl : ix.shards) total += sl.retained_entries();
  }
  return total;
}

std::uint64_t ClusterRouter::log_retained_bytes() const {
  std::shared_lock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, ix] : indices_) {
    for (const ShardLog& sl : ix.shards) total += sl.retained_bytes();
  }
  return total;
}

void ClusterRouter::RunScatter(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (query_fanout() == QueryFanout::kSerial || query_pool_ == nullptr ||
      n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  fanout_queries_.fetch_add(1, std::memory_order_relaxed);
  fanout_shard_tasks_.fetch_add(n, std::memory_order_relaxed);
  // The store's RunPerShard pattern one tier up: task 0 on the caller, the
  // rest behind a per-call latch on the shared pool. Workers wait on
  // nothing but their own task (fn never touches mu_ or the pool), so
  // concurrent queries sharing the pool cannot deadlock.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining = n - 1;
  for (std::size_t i = 1; i < n; ++i) {
    query_pool_->Submit([&fn, i, &mu, &cv, &remaining] {
      fn(i);
      std::scoped_lock lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  fn(0);
  std::unique_lock lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

const BackendNode* ClusterRouter::ReaderFor(const IndexState& ix,
                                            std::size_t shard) const {
  const ShardLog& sl = ix.shards[shard];
  const BackendNode* best = nullptr;
  std::uint64_t best_hint = 0;
  for (const std::size_t owner : map_.Owners(shard)) {
    const BackendNode& node = *nodes_[owner];
    if (!node.up_ || !node.reachable_) continue;
    const std::uint64_t hint =
        owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
    if (best == nullptr || hint > best_hint) {
      best = &node;
      best_hint = hint;
    }
  }
  return best;
}

Expected<std::vector<std::pair<std::uint64_t, Json>>>
ClusterRouter::GatherMatches(const IndexState& ix, const std::string& index,
                             const backend::Query& query) const {
  // Scatter plan, built in shard order under the caller's (shared) lock:
  // one task per populated shard, reading only state the lock freezes
  // (reader stores, global-seq maps) so tasks are safe on pool workers.
  struct Task {
    std::size_t shard = 0;
    const backend::ElasticStore* store = nullptr;
    const std::vector<std::uint64_t>* gseqs = nullptr;
    Status status = Status::Ok();
    std::vector<std::pair<std::uint64_t, Json>> stream;
  };
  std::vector<Task> tasks;
  tasks.reserve(ix.shards.size());
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    const ShardLog& sl = ix.shards[shard];
    if (sl.global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    Task task;
    task.shard = shard;
    task.store = &reader->store();
    task.gseqs = &sl.global_seqs;
    tasks.push_back(std::move(task));
  }

  backend::SearchRequest scatter;
  scatter.query = query;
  scatter.size = std::numeric_limits<std::size_t>::max();
  RunScatter(tasks.size(), [&](std::size_t i) {
    Task& t = tasks[i];
    auto result = t.store->Search(SubIndexName(index, t.shard), scatter);
    if (!result.ok()) {
      if (result.status().code() != ErrorCode::kNotFound) {
        t.status = result.status();
      }
      return;
    }
    t.stream.reserve(result->hits.size());
    for (backend::Hit& hit : result->hits) {
      const std::size_t row = static_cast<std::size_t>(hit.id);
      if (row >= t.gseqs->size()) {
        t.status = Internal("cluster: shard " + std::to_string(t.shard) +
                            " row " + std::to_string(row) +
                            " beyond the global-seq map");
        t.stream.clear();
        return;
      }
      t.stream.emplace_back((*t.gseqs)[row], std::move(hit.source));
    }
  });
  // Error selection in shard order, identical for serial and parallel runs.
  for (const Task& t : tasks) {
    if (!t.status.ok()) return t.status;
  }
  std::vector<std::vector<std::pair<std::uint64_t, Json>>> streams;
  streams.reserve(tasks.size());
  for (Task& t : tasks) {
    if (!t.stream.empty()) streams.push_back(std::move(t.stream));
  }

  // K-way merge by global seq (each stream is ascending) — the cluster-wide
  // generalization of the store's per-sub-shard docid merge.
  std::vector<std::pair<std::uint64_t, Json>> merged;
  std::size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  merged.reserve(total);
  using Head = std::pair<std::uint64_t, std::size_t>;  // (gseq, stream)
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heads;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    heads.emplace(streams[s][0].first, s);
  }
  while (!heads.empty()) {
    const auto [gseq, s] = heads.top();
    heads.pop();
    merged.push_back(std::move(streams[s][cursor[s]]));
    if (++cursor[s] < streams[s].size()) {
      heads.emplace(streams[s][cursor[s]].first, s);
    }
  }
  return merged;
}

Expected<backend::SearchResult> ClusterRouter::Search(
    const std::string& index, const backend::SearchRequest& request) const {
  std::shared_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  if (query_fanout() == QueryFanout::kSerial) {
    return SearchGatherAll(it->second, index, request);
  }
  return SearchPushdown(it->second, index, request);
}

Expected<backend::SearchResult> ClusterRouter::SearchGatherAll(
    const IndexState& ix, const std::string& index,
    const backend::SearchRequest& request) const {
  auto merged = GatherMatches(ix, index, request.query);
  if (!merged.ok()) return merged.status();

  if (!request.sort.empty()) {
    // Input is ascending global seq, so a stable sort without a tiebreak
    // reproduces the single store's stable_sort over ascending docids.
    std::stable_sort(merged->begin(), merged->end(),
                     [&](const auto& a, const auto& b) {
                       return OracleSortBefore(request.sort, a.second,
                                               b.second);
                     });
  }

  backend::SearchResult result;
  result.total = merged->size();
  const std::size_t start = std::min(request.from, merged->size());
  const std::size_t end = std::min(start + request.size, merged->size());
  result.hits.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) {
    result.hits.push_back(backend::Hit{(*merged)[i].first,
                                       std::move((*merged)[i].second)});
  }
  return result;
}

Expected<backend::SearchResult> ClusterRouter::SearchPushdown(
    const IndexState& ix, const std::string& index,
    const backend::SearchRequest& request) const {
  struct Task {
    std::size_t shard = 0;
    const backend::ElasticStore* store = nullptr;
    const std::vector<std::uint64_t>* gseqs = nullptr;
    Status status = Status::Ok();
    std::size_t matched = 0;
    std::vector<std::pair<std::uint64_t, Json>> stream;
  };
  std::vector<Task> tasks;
  tasks.reserve(ix.shards.size());
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    const ShardLog& sl = ix.shards[shard];
    if (sl.global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    Task task;
    task.shard = shard;
    task.store = &reader->store();
    task.gseqs = &sl.global_seqs;
    tasks.push_back(std::move(task));
  }

  // Each shard only needs its own top `from+size` (saturating): within a
  // shard, docid order IS global-seq order, so the store's (sort keys,
  // docid) ranking equals (sort keys, gseq) — any hit beyond a shard's
  // first `want` cannot make the global first `want` either.
  const std::size_t want =
      request.size > std::numeric_limits<std::size_t>::max() - request.from
          ? std::numeric_limits<std::size_t>::max()
          : request.from + request.size;
  backend::SearchRequest scatter;
  scatter.query = request.query;
  scatter.sort = request.sort;
  scatter.size = want;
  RunScatter(tasks.size(), [&](std::size_t i) {
    Task& t = tasks[i];
    auto result = t.store->Search(SubIndexName(index, t.shard), scatter);
    if (!result.ok()) {
      if (result.status().code() != ErrorCode::kNotFound) {
        t.status = result.status();
      }
      return;
    }
    t.matched = result->total;
    t.stream.reserve(result->hits.size());
    for (backend::Hit& hit : result->hits) {
      const std::size_t row = static_cast<std::size_t>(hit.id);
      if (row >= t.gseqs->size()) {
        t.status = Internal("cluster: shard " + std::to_string(t.shard) +
                            " row " + std::to_string(row) +
                            " beyond the global-seq map");
        t.stream.clear();
        return;
      }
      t.stream.emplace_back((*t.gseqs)[row], std::move(hit.source));
    }
  });
  // Error selection in shard order, identical for serial and parallel runs.
  for (const Task& t : tasks) {
    if (!t.status.ok()) return t.status;
  }

  backend::SearchResult out;
  std::vector<std::vector<std::pair<std::uint64_t, Json>>> streams;
  streams.reserve(tasks.size());
  for (Task& t : tasks) {
    out.total += t.matched;
    if (!t.stream.empty()) streams.push_back(std::move(t.stream));
  }

  // K-way merge of the per-shard runs under the oracle's total order
  // (sort keys first, ascending gseq as the tiebreak — or plain gseq when
  // unsorted), stopping once the page is filled.
  const auto before = [&](const std::pair<std::uint64_t, Json>& a,
                          const std::pair<std::uint64_t, Json>& b) {
    if (!request.sort.empty()) {
      if (OracleSortBefore(request.sort, a.second, b.second)) return true;
      if (OracleSortBefore(request.sort, b.second, a.second)) return false;
    }
    return a.first < b.first;
  };
  std::vector<std::size_t> cursor(streams.size(), 0);
  // Heap of stream indices; a stream's head entry is stable while queued.
  const auto head_after = [&](std::size_t a, std::size_t b) {
    return before(streams[b][cursor[b]], streams[a][cursor[a]]);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(head_after)>
      heads(head_after);
  for (std::size_t s = 0; s < streams.size(); ++s) heads.push(s);
  std::size_t emitted = 0;
  out.hits.reserve(want == std::numeric_limits<std::size_t>::max()
                       ? std::size_t{0}
                       : want - std::min(request.from, want));
  while (!heads.empty() && emitted < want) {
    const std::size_t s = heads.top();
    heads.pop();
    auto& entry = streams[s][cursor[s]];
    if (emitted >= request.from) {
      out.hits.push_back(backend::Hit{entry.first, std::move(entry.second)});
    }
    ++emitted;
    if (++cursor[s] < streams[s].size()) heads.push(s);
  }
  return out;
}

Expected<std::size_t> ClusterRouter::Count(const std::string& index,
                                           const backend::Query& query) const {
  std::shared_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  const IndexState& ix = it->second;
  struct Task {
    std::size_t shard = 0;
    const backend::ElasticStore* store = nullptr;
    Status status = Status::Ok();
    std::size_t count = 0;
  };
  std::vector<Task> tasks;
  tasks.reserve(ix.shards.size());
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    if (ix.shards[shard].global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    Task task;
    task.shard = shard;
    task.store = &reader->store();
    tasks.push_back(std::move(task));
  }
  RunScatter(tasks.size(), [&](std::size_t i) {
    Task& t = tasks[i];
    auto count = t.store->Count(SubIndexName(index, t.shard), query);
    if (!count.ok()) {
      if (count.status().code() != ErrorCode::kNotFound) {
        t.status = count.status();
      }
      return;
    }
    t.count = *count;
  });
  std::size_t total = 0;
  for (const Task& t : tasks) {
    if (!t.status.ok()) return t.status;
    total += t.count;
  }
  return total;
}

Expected<backend::AggResult> ClusterRouter::Aggregate(
    const std::string& index, const backend::Query& query,
    const backend::Aggregation& agg) const {
  std::shared_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  if (query_fanout() == QueryFanout::kSerial) {
    return AggregateGatherAll(it->second, index, query, agg);
  }
  return AggregatePushdown(it->second, index, query, agg);
}

Expected<backend::AggResult> ClusterRouter::AggregateGatherAll(
    const IndexState& ix, const std::string& index,
    const backend::Query& query, const backend::Aggregation& agg) const {
  auto merged = GatherMatches(ix, index, query);
  if (!merged.ok()) return merged.status();
  std::vector<const Json*> docs;
  docs.reserve(merged->size());
  for (const auto& [gseq, doc] : *merged) docs.push_back(&doc);
  return agg.Execute(docs);
}

Expected<backend::AggResult> ClusterRouter::AggregatePushdown(
    const IndexState& ix, const std::string& index,
    const backend::Query& query, const backend::Aggregation& agg) const {
  struct Task {
    std::size_t shard = 0;
    const backend::ElasticStore* store = nullptr;
    Status status = Status::Ok();
    bool has_partial = false;
    backend::AggPartial partial;
  };
  std::vector<Task> tasks;
  tasks.reserve(ix.shards.size());
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    if (ix.shards[shard].global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    Task task;
    task.shard = shard;
    task.store = &reader->store();
    tasks.push_back(std::move(task));
  }
  // Grouping, extraction, and per-shard value sorts all run inside the
  // shard task (columnar, no per-document Json materialization); the gather
  // half only folds the partials, in shard order. Exact for integer-valued
  // fields; see AggPartial for the float `sum` reassociation caveat.
  RunScatter(tasks.size(), [&](std::size_t i) {
    Task& t = tasks[i];
    auto partial =
        t.store->AggregatePartial(SubIndexName(index, t.shard), query, agg);
    if (!partial.ok()) {
      if (partial.status().code() != ErrorCode::kNotFound) {
        t.status = partial.status();
      }
      return;
    }
    t.partial = std::move(*partial);
    t.has_partial = true;
  });
  for (const Task& t : tasks) {
    if (!t.status.ok()) return t.status;
  }
  backend::AggPartial merged;
  for (Task& t : tasks) {
    if (t.has_partial) agg.MergePartial(merged, std::move(t.partial));
  }
  return agg.FinalizePartial(std::move(merged));
}

Expected<std::size_t> ClusterRouter::UpdateByQuery(
    const std::string& index, const backend::Query& query,
    const std::function<bool(Json&)>& update) {
  struct ShardWork {
    std::size_t shard = 0;
    std::vector<std::size_t> owners;
    LogSlice slice;
    std::uint64_t through_seq = 0;
  };
  std::vector<ShardWork> work;
  {
    std::scoped_lock lock(mu_);
    auto it = indices_.find(index);
    if (it == indices_.end()) return NotFound("no such index: " + index);
    IndexState& ix = it->second;
    // Updates are an index-wide barrier applied on every owner, so they
    // require the whole owner set reachable — otherwise a healed replica
    // would diverge (document contents cannot be reconciled by seq alone).
    std::vector<std::vector<std::size_t>> owner_sets(ix.shards.size());
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      owner_sets[shard] = map_.Owners(shard);
      if (owner_sets[shard].empty()) {
        return Unavailable("cluster: no live nodes");
      }
      for (const std::size_t owner : owner_sets[shard]) {
        if (!nodes_[owner]->reachable_) {
          return Unavailable("cluster: update-by-query needs every owner; "
                             "node " + std::to_string(owner) +
                             " is unreachable");
        }
      }
    }
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      ShardLog& sl = ix.shards[shard];
      auto entry = std::make_shared<LogEntry>();
      entry->kind = LogEntry::Kind::kUpdate;
      entry->query = query;
      entry->update = update;
      sl.Append(std::move(entry));
      log_appended_entries_ += 1;
      work.push_back(ShardWork{shard, std::move(owner_sets[shard]),
                               sl.Tail(), sl.end_seq() - 1});
    }
    ix.updates += 1;
  }

  // Apply the barrier on every owner of every shard. The per-shard tasks
  // fan out on the query pool but touch only node apply mutexes
  // (ApplyToStore); router bookkeeping and the stranded path run on this
  // thread after the join, in shard order — byte-deterministic either way.
  struct OwnerOutcome {
    std::size_t owner = 0;
    ApplyOutcome out;
  };
  std::vector<std::vector<OwnerOutcome>> results(work.size());
  RunScatter(work.size(), [&](std::size_t i) {
    ShardWork& w = work[i];
    results[i].reserve(w.owners.size());
    for (const std::size_t owner : w.owners) {
      OwnerOutcome oo;
      oo.owner = owner;
      oo.out = ApplyToStore(*nodes_[owner], index, w.shard, w.slice,
                            w.through_seq);
      results[i].push_back(std::move(oo));
    }
  });

  std::size_t modified = 0;
  Status first_error = Status::Ok();
  for (std::size_t i = 0; i < work.size(); ++i) {
    bool primary = true;
    for (OwnerOutcome& oo : results[i]) {
      ApplyOutcome& out = oo.out;
      if (out.needs_snapshot) {
        // Rare: an owner promoted past a compacted prefix between the
        // barrier append and the apply. Bootstrap it here, serially.
        const Status snap = SnapshotCatchUp(index, work[i].shard, oo.owner);
        if (snap.ok()) {
          out = ApplyToStore(*nodes_[oo.owner], index, work[i].shard,
                             work[i].slice, work[i].through_seq);
        } else {
          out.status = snap;
        }
      }
      if (out.status.ok()) {
        NoteApplied(index, work[i].shard, *nodes_[oo.owner], out.reached,
                    out.applied, /*sync=*/true);
        // Owners converge, so every owner reports the same count; take the
        // primary's.
        if (primary) modified += out.modified;
      } else if (first_error.ok()) {
        first_error = out.status;
      }
      primary = false;
    }
  }
  if (!first_error.ok()) return first_error;
  return modified;
}

void ClusterRouter::Refresh(const std::string& index) {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return;
  for (std::size_t shard = 0; shard < it->second.shards.size(); ++shard) {
    const std::string sub = SubIndexName(index, shard);
    for (const auto& node : nodes_) {
      if (node->up_ && node->store_->HasIndex(sub)) node->store_->Refresh(sub);
    }
  }
}

bool ClusterRouter::HasIndex(const std::string& index) const {
  std::shared_lock lock(mu_);
  return indices_.count(index) != 0;
}

Expected<backend::IndexStats> ClusterRouter::Stats(
    const std::string& index) const {
  std::shared_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  const IndexState& ix = it->second;
  backend::IndexStats stats;
  stats.bulk_requests = ix.bulk_requests;
  stats.updates = ix.updates;
  stats.fanout_queries = fanout_queries_.load(std::memory_order_relaxed);
  stats.fanout_shard_tasks =
      fanout_shard_tasks_.load(std::memory_order_relaxed);
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    if (ix.shards[shard].global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    auto sub = reader->store().Stats(SubIndexName(index, shard));
    if (!sub.ok()) {
      if (sub.status().code() == ErrorCode::kNotFound) continue;
      return sub.status();
    }
    stats.doc_count += sub->doc_count;
    stats.pending_count += sub->pending_count;
    stats.typed_rows += sub->typed_rows;
    stats.doc_value_fields += sub->doc_value_fields;
    stats.column_build_ns += sub->column_build_ns;
    stats.filter_cache_hits += sub->filter_cache_hits;
    stats.filter_cache_misses += sub->filter_cache_misses;
    stats.filter_cache_evictions += sub->filter_cache_evictions;
    stats.segments += sub->segments;
    stats.sealed_segments += sub->sealed_segments;
    stats.refreshes += sub->refreshes;
    stats.refresh_pause_ns.insert(stats.refresh_pause_ns.end(),
                                  sub->refresh_pause_ns.begin(),
                                  sub->refresh_pause_ns.end());
  }
  return stats;
}

Json ClusterRouter::HealthJson() const {
  std::shared_lock lock(mu_);
  Json out = Json::MakeObject();

  Json nodes = Json::MakeArray();
  for (const auto& node : nodes_) {
    Json n = Json::MakeObject();
    n.Set("id", static_cast<std::int64_t>(node->id()));
    n.Set("up", node->up());
    n.Set("reachable", node->reachable());
    n.Set("throttled", node->throttled());
    nodes.Append(std::move(n));
  }
  out.Set("nodes", std::move(nodes));

  Json fanout = Json::MakeObject();
  fanout.Set("mode", std::string(ToString(query_fanout())));
  fanout.Set("threads", static_cast<std::int64_t>(options_.query_threads));
  fanout.Set("queries", static_cast<std::int64_t>(
                            fanout_queries_.load(std::memory_order_relaxed)));
  fanout.Set("shard_tasks",
             static_cast<std::int64_t>(
                 fanout_shard_tasks_.load(std::memory_order_relaxed)));
  out.Set("query_fanout", std::move(fanout));

  // Replication/log counters plus per-index watermark lag: for each shard,
  // lag = end_seq - min live-owner hint (0 when fully applied).
  std::uint64_t retained_entries = 0;
  std::uint64_t retained_bytes = 0;
  std::uint64_t pending = 0;
  Json indices = Json::MakeArray();
  for (const auto& [name, ix] : indices_) {
    std::uint64_t max_lag = 0;
    std::uint64_t min_applied =
        std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_applied = 0;
    bool any = false;
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      const ShardLog& sl = ix.shards[shard];
      retained_entries += sl.retained_entries();
      retained_bytes += sl.retained_bytes();
      const std::uint64_t end = sl.end_seq();
      if (end == 0) continue;
      for (const std::size_t owner : map_.Owners(shard)) {
        if (!nodes_[owner]->up_) continue;
        const std::uint64_t hint =
            owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
        const std::uint64_t from = std::max(hint, sl.base_seq());
        const std::uint64_t lag = end - std::min(end, from);
        pending += lag;
        max_lag = std::max(max_lag, lag);
        min_applied = std::min(min_applied, hint);
        max_applied = std::max(max_applied, hint);
        any = true;
      }
    }
    Json entry = Json::MakeObject();
    entry.Set("index", name);
    entry.Set("max_replication_lag", static_cast<std::int64_t>(max_lag));
    entry.Set("min_applied_watermark",
              static_cast<std::int64_t>(any ? min_applied : 0));
    entry.Set("max_applied_watermark",
              static_cast<std::int64_t>(max_applied));
    indices.Append(std::move(entry));
  }
  out.Set("indices", std::move(indices));

  Json log = Json::MakeObject();
  log.Set("appended_entries",
          static_cast<std::int64_t>(log_appended_entries_));
  log.Set("compacted_entries",
          static_cast<std::int64_t>(log_compacted_entries_));
  log.Set("compacted_bytes", static_cast<std::int64_t>(log_compacted_bytes_));
  log.Set("retained_entries", static_cast<std::int64_t>(retained_entries));
  log.Set("retained_bytes", static_cast<std::int64_t>(retained_bytes));
  log.Set("retain_batches",
          static_cast<std::int64_t>(options_.log_retain_batches));
  out.Set("replication_log", std::move(log));

  Json repl = Json::MakeObject();
  repl.Set("pending_applies", static_cast<std::int64_t>(pending));
  repl.Set("sync_applies", static_cast<std::int64_t>(sync_applies_));
  repl.Set("async_applies", static_cast<std::int64_t>(async_applies_));
  repl.Set("snapshot_catchups", static_cast<std::int64_t>(
                                    snapshot_catchups()));
  repl.Set("snapshot_docs_copied",
           static_cast<std::int64_t>(snapshot_docs_copied()));
  out.Set("replication", std::move(repl));
  return out;
}

std::vector<std::string> ClusterRouter::VerifyConvergence(
    const std::string& index) const {
  std::shared_lock lock(mu_);
  std::vector<std::string> violations;
  auto it = indices_.find(index);
  if (it == indices_.end()) return violations;
  const IndexState& ix = it->second;

  backend::SearchRequest all;
  all.size = std::numeric_limits<std::size_t>::max();
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    const std::string sub = SubIndexName(index, shard);
    const std::vector<std::size_t> owners = map_.Owners(shard);
    // Reference replica = the first up owner; every other up owner must be
    // byte-identical (unreachable-but-up nodes included — after a heal and
    // Settle a partition must leave no trace).
    std::string reference;
    std::size_t reference_owner = 0;
    bool have_reference = false;
    for (const std::size_t owner : owners) {
      const BackendNode& node = *nodes_[owner];
      if (!node.up_) continue;
      std::string dump;
      auto result = node.store_->Search(sub, all);
      if (result.ok()) {
        for (const backend::Hit& hit : result->hits) {
          dump += std::to_string(hit.id);
          dump += '|';
          dump += hit.source.Dump();
          dump += '\n';
        }
      } else if (result.status().code() != ErrorCode::kNotFound) {
        violations.push_back("shard " + std::to_string(shard) + " node " +
                             std::to_string(owner) + ": " +
                             std::string(result.status().message()));
        continue;
      }
      if (!have_reference) {
        reference = std::move(dump);
        reference_owner = owner;
        have_reference = true;
      } else if (dump != reference) {
        violations.push_back(
            "shard " + std::to_string(shard) + ": replica on node " +
            std::to_string(owner) + " diverges from node " +
            std::to_string(reference_owner) + " (" +
            std::to_string(dump.size()) + " vs " +
            std::to_string(reference.size()) + " dump bytes)");
      }
    }
  }
  return violations;
}

}  // namespace dio::cluster
