#include "cluster/router.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace dio::cluster {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Routing key: (tid, time_enter) — the fields EventKey uniqueness is built
// on, present in every traced event. All per-thread context stays within
// one shard only by accident of hashing; queries never rely on locality,
// so a plain well-mixed hash is enough.
std::uint64_t RoutingHash(std::int64_t tid, std::int64_t time_enter) {
  return Mix64(static_cast<std::uint64_t>(tid) ^
               Mix64(static_cast<std::uint64_t>(time_enter)));
}

std::uint64_t Fnv1a(std::string_view bytes, std::uint64_t h) {
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t RoutingHashOfDoc(const Json& doc) {
  const Json* tid = doc.Find("tid");
  const Json* time_enter = doc.Find("time_enter");
  if (tid != nullptr && tid->is_number() && time_enter != nullptr &&
      time_enter->is_number()) {
    return RoutingHash(tid->as_int(), time_enter->as_int());
  }
  // Documents without the tracer's key fields (hand-built corpora in
  // tests): route by content so the placement is at least deterministic.
  return Fnv1a(doc.Dump(), 0xcbf29ce484222325ULL);
}

// The serial JSON engine's sort comparator (store.cc), minus the docid
// tiebreak: the gather merges hits in ascending global seq and stable_sorts,
// which reproduces the oracle's stable_sort over ascending docids exactly.
bool OracleSortBefore(const std::vector<backend::SortSpec>& specs,
                      const Json& a, const Json& b) {
  for (const backend::SortSpec& spec : specs) {
    const Json* va = a.Find(spec.field);
    const Json* vb = b.Find(spec.field);
    if (va == nullptr && vb == nullptr) continue;
    if (va == nullptr) return false;  // missing sorts last
    if (vb == nullptr) return true;
    int cmp = 0;
    if (va->is_number() && vb->is_number()) {
      const double da = va->as_double();
      const double db = vb->as_double();
      cmp = da < db ? -1 : (da > db ? 1 : 0);
    } else if (va->is_string() && vb->is_string()) {
      cmp = va->as_string().compare(vb->as_string());
    }
    if (cmp != 0) return spec.ascending ? cmp < 0 : cmp > 0;
  }
  return false;
}

}  // namespace

std::string_view ToString(AckLevel level) {
  switch (level) {
    case AckLevel::kPrimary: return "primary";
    case AckLevel::kQuorum: return "quorum";
    case AckLevel::kAll: return "all";
  }
  return "quorum";
}

Expected<AckLevel> AckLevelFromString(std::string_view name) {
  if (name == "primary") return AckLevel::kPrimary;
  if (name == "quorum") return AckLevel::kQuorum;
  if (name == "all") return AckLevel::kAll;
  return InvalidArgument("unknown ack level: " + std::string(name) +
                         " (want primary|quorum|all)");
}

Expected<ClusterOptions> ClusterOptions::FromConfig(const Config& config) {
  WarnUnknownKeys(config, "cluster",
                  {"nodes", "replicas", "ack", "logical_shards"});
  ClusterOptions opts;
  opts.nodes = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("cluster.nodes", static_cast<std::int64_t>(opts.nodes))));
  opts.replicas = static_cast<std::size_t>(std::max<std::int64_t>(
      0, config.GetInt("cluster.replicas",
                       static_cast<std::int64_t>(opts.replicas))));
  opts.logical_shards = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.GetInt("cluster.logical_shards",
                       static_cast<std::int64_t>(opts.logical_shards))));
  if (config.Has("cluster.ack")) {
    auto ack = AckLevelFromString(config.GetString("cluster.ack"));
    if (!ack.ok()) return ack.status();
    opts.ack = *ack;
  }
  return opts;
}

BackendNode::BackendNode(std::size_t id,
                         const backend::ElasticStoreOptions& options)
    : id_(id),
      store_options_(options),
      store_(std::make_unique<backend::ElasticStore>(options)) {}

ClusterRouter::ClusterRouter(const ClusterOptions& options)
    : options_(options), map_(options.logical_shards, options.replicas) {
  for (std::size_t n = 0; n < std::max<std::size_t>(1, options.nodes); ++n) {
    nodes_.push_back(std::make_unique<BackendNode>(map_.AddNode(),
                                                   options_.store));
  }
}

std::size_t ClusterRouter::node_count() const { return nodes_.size(); }

std::string ClusterRouter::SubIndexName(const std::string& index,
                                        std::size_t shard) {
  return index + "#" + std::to_string(shard);
}

std::size_t ClusterRouter::AddNode() {
  std::scoped_lock lock(mu_);
  const std::size_t id = map_.AddNode();
  nodes_.push_back(std::make_unique<BackendNode>(id, options_.store));
  return id;
}

Status ClusterRouter::CrashNode(std::size_t id) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  BackendNode& node = *nodes_[id];
  if (!node.up_) return Status::Ok();
  std::scoped_lock apply_lock(node.apply_mu_);
  node.up_ = false;
  map_.SetLive(id, false);
  // Process death: everything node-local is gone. The replication log keeps
  // every acked entry, so nothing acked is lost cluster-wide.
  node.store_ = std::make_unique<backend::ElasticStore>(node.store_options_);
  node.applied_.clear();
  for (auto& [name, ix] : indices_) {
    for (ShardLog& sl : ix.shards) {
      if (id < sl.applied_hint.size()) sl.applied_hint[id] = 0;
    }
  }
  return Status::Ok();
}

Status ClusterRouter::RestartNode(std::size_t id) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  BackendNode& node = *nodes_[id];
  if (node.up_) return Status::Ok();
  node.up_ = true;
  map_.SetLive(id, true);
  return Status::Ok();
}

Status ClusterRouter::SetReachable(std::size_t id, bool reachable) {
  std::scoped_lock lock(mu_);
  if (id >= nodes_.size()) return InvalidArgument("no such node");
  nodes_[id]->reachable_ = reachable;
  return Status::Ok();
}

void ClusterRouter::HealAll() {
  std::vector<std::size_t> down;
  {
    std::scoped_lock lock(mu_);
    for (const auto& node : nodes_) {
      node->reachable_ = true;
      if (!node->up_) down.push_back(node->id());
    }
  }
  for (const std::size_t id : down) (void)RestartNode(id);
}

std::size_t ClusterRouter::RequiredAcks(std::size_t owner_count) const {
  switch (options_.ack) {
    case AckLevel::kPrimary: return 1;
    case AckLevel::kQuorum: return owner_count / 2 + 1;
    case AckLevel::kAll: return owner_count;
  }
  return 1;
}

Expected<std::size_t> ClusterRouter::ApplyTo(
    BackendNode& node, const std::string& index, std::size_t shard,
    const std::vector<std::shared_ptr<const LogEntry>>& snapshot,
    std::uint64_t through_seq, bool sync, std::size_t* applied_out) {
  const std::string sub = SubIndexName(index, shard);
  if (applied_out != nullptr) *applied_out = 0;
  std::size_t modified = 0;
  std::size_t applied = 0;
  std::uint64_t reached = 0;
  // Lock order is strictly apply_mu_ OR mu_, never nested: CrashNode holds
  // mu_ while wiping watermarks under apply_mu_, so nesting them here (the
  // other way round) would deadlock. Router-side bookkeeping happens after
  // the apply mutex is released, re-validated against a concurrent crash.
  {
    std::scoped_lock apply_lock(node.apply_mu_);
    if (!node.up_) return Unavailable("node down");
    std::uint64_t& watermark = node.applied_[sub];
    while (watermark <= through_seq) {
      if (watermark >= snapshot.size() || snapshot[watermark] == nullptr) {
        if (applied_out != nullptr) *applied_out = applied;
        return Internal("replication log snapshot missing seq " +
                        std::to_string(watermark));
      }
      const LogEntry& entry = *snapshot[watermark];
      modified = 0;
      if (entry.kind == LogEntry::Kind::kIngest) {
        if (!entry.wire.empty()) {
          node.store_->BulkWire(sub, entry.session, entry.wire);
        }
        if (!entry.docs.empty()) node.store_->Bulk(sub, entry.docs);
      } else {
        // Update barrier: visibility first, then the same update-by-query
        // the single store ran. A shard that never received documents has
        // no sub-index; the update is vacuously applied.
        if (node.store_->HasIndex(sub)) {
          node.store_->Refresh(sub);
          auto result = node.store_->UpdateByQuery(sub, entry.query,
                                                   entry.update);
          if (!result.ok()) {
            if (applied_out != nullptr) *applied_out = applied;
            return result.status();
          }
          modified = *result;
        }
      }
      ++watermark;
      ++applied;
    }
    reached = watermark;
  }
  if (applied_out != nullptr) *applied_out = applied;
  {
    std::scoped_lock lock(mu_);
    if (sync) {
      sync_applies_ += applied;
    } else {
      async_applies_ += applied;
    }
    auto it = indices_.find(index);
    // A crash between the two critical sections zeroed this node's hints;
    // its store is gone, so the watermark we reached no longer describes it.
    if (it != indices_.end() && node.up_) {
      ShardLog& sl = it->second.shards[shard];
      if (sl.applied_hint.size() < nodes_.size()) {
        sl.applied_hint.resize(nodes_.size(), 0);
      }
      sl.applied_hint[node.id()] =
          std::max(sl.applied_hint[node.id()], reached);
    }
  }
  return modified;
}

Status ClusterRouter::Ingest(const std::string& index,
                             transport::EventBatch batch) {
  if (batch.empty()) return Status::Ok();
  // Deferred events materialize here (the far side of the queue hop, like
  // BulkClient); wire records stay binary end to end.
  if (!batch.events.empty()) {
    transport::EventBatch deferred;
    deferred.session = batch.session;
    deferred.events = std::move(batch.events);
    batch.events.clear();
    deferred.Materialize();
    for (Json& doc : deferred.documents) {
      batch.documents.push_back(std::move(doc));
    }
  }
  const std::uint64_t fingerprint = batch.Fingerprint();
  const std::size_t batch_events = batch.size();

  struct ShardWork {
    std::size_t shard = 0;
    std::vector<std::size_t> owners;
    std::size_t required = 0;
    std::vector<std::shared_ptr<const LogEntry>> snapshot;
    std::uint64_t through_seq = 0;
  };
  std::vector<ShardWork> work;
  {
    std::scoped_lock lock(mu_);
    // Retry after a lost ack: the batch is already durable, ack it again.
    if (auto it = acked_fingerprints_.find(fingerprint);
        it != acked_fingerprints_.end()) {
      it->second += 1;
      duplicate_batches_ += 1;
      return Status::Ok();
    }

    // Split into per-shard slices, wire records first then documents — the
    // order BulkClient indexes a mixed batch, and the order global seqs
    // are assigned in.
    std::map<std::size_t, LogEntry> slices;
    std::vector<std::size_t> route;
    route.reserve(batch.wire.size() + batch.documents.size());
    for (const tracer::WireEvent& record : batch.wire) {
      route.push_back(map_.ShardOf(RoutingHash(record.tid, record.time_enter)));
    }
    for (const Json& doc : batch.documents) {
      route.push_back(map_.ShardOf(RoutingHashOfDoc(doc)));
    }

    // Ack feasibility — checked before any state changes so a rejected
    // batch leaves the router untouched and the retry stage can re-drive
    // it verbatim.
    std::map<std::size_t, std::pair<std::vector<std::size_t>, std::size_t>>
        shard_owners;
    for (const std::size_t shard : route) {
      if (shard_owners.count(shard) != 0) continue;
      std::vector<std::size_t> owners = map_.Owners(shard);
      if (owners.empty()) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: no live nodes");
      }
      if (!nodes_[owners[0]]->reachable_) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: shard " + std::to_string(shard) +
                           " primary unreachable");
      }
      const std::size_t required = RequiredAcks(owners.size());
      std::size_t reachable = 0;
      for (const std::size_t owner : owners) {
        if (nodes_[owner]->reachable_) ++reachable;
      }
      if (reachable < required) {
        rejected_batches_ += 1;
        rejected_events_ += batch_events;
        return Unavailable("cluster: shard " + std::to_string(shard) +
                           " has " + std::to_string(reachable) + "/" +
                           std::to_string(required) + " reachable owners");
      }
      shard_owners[shard] = {std::move(owners), required};
    }

    // Commit: assign global seqs in arrival order, append one log entry per
    // touched shard, and record the fingerprint so a concurrent or later
    // duplicate re-drive acks without re-applying.
    auto [ix_it, created] = indices_.try_emplace(index, map_.logical_shards());
    IndexState& ix = ix_it->second;
    std::size_t pos = 0;
    for (const tracer::WireEvent& record : batch.wire) {
      const std::size_t shard = route[pos++];
      slices[shard].session = batch.session;
      slices[shard].wire.push_back(record);
      ix.shards[shard].global_seqs.push_back(ix.next_global_seq++);
    }
    for (Json& doc : batch.documents) {
      const std::size_t shard = route[pos++];
      slices[shard].docs.push_back(std::move(doc));
      ix.shards[shard].global_seqs.push_back(ix.next_global_seq++);
    }
    for (auto& [shard, slice] : slices) {
      ShardLog& sl = ix.shards[shard];
      sl.entries.push_back(
          std::make_shared<const LogEntry>(std::move(slice)));
      auto& [owners, required] = shard_owners[shard];
      work.push_back(ShardWork{shard, std::move(owners), required,
                               sl.entries,
                               static_cast<std::uint64_t>(
                                   sl.entries.size() - 1)});
    }
    ix.bulk_requests += 1;
    acked_fingerprints_[fingerprint] = 1;
    acked_batches_ += 1;
    acked_events_ += batch_events;
  }

  // Synchronous owner applications, primary first, until the ack level is
  // satisfied; remaining owners catch up via PumpReplication. Apply runs
  // outside the router mutex — per-(node, shard) order is enforced by the
  // node's applied-watermark.
  for (ShardWork& w : work) {
    std::size_t acked = 0;
    for (const std::size_t owner : w.owners) {
      if (acked >= w.required) break;
      BackendNode& node = *nodes_[owner];
      if (!node.reachable_) continue;
      // A crash racing this apply just defers the entry to the promoted
      // owners — it is already durable in the log.
      if (ApplyTo(node, index, w.shard, w.snapshot, w.through_seq,
                  /*sync=*/true).ok()) {
        ++acked;
      }
    }
  }
  return Status::Ok();
}

std::size_t ClusterRouter::PumpReplication(std::size_t max_applies) {
  struct Work {
    std::string index;
    std::size_t shard = 0;
    std::size_t node = 0;
    std::vector<std::shared_ptr<const LogEntry>> snapshot;
    std::uint64_t through_seq = 0;
  };
  std::size_t budget = max_applies;
  std::size_t total = 0;
  // Collect-and-apply rounds: each round snapshots pending (entry, owner)
  // pairs in deterministic index/shard/owner order, applies them outside
  // the mutex, and repeats until the budget is spent or nothing is pending.
  while (budget > 0) {
    std::vector<Work> round;
    {
      std::scoped_lock lock(mu_);
      for (auto& [name, ix] : indices_) {
        for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
          ShardLog& sl = ix.shards[shard];
          if (sl.entries.empty()) continue;
          if (sl.applied_hint.size() < nodes_.size()) {
            sl.applied_hint.resize(nodes_.size(), 0);
          }
          for (const std::size_t owner : map_.Owners(shard)) {
            BackendNode& node = *nodes_[owner];
            if (!node.up_ || !node.reachable_) continue;
            const std::uint64_t hint = sl.applied_hint[owner];
            if (hint >= sl.entries.size()) continue;
            const std::uint64_t want =
                std::min<std::uint64_t>(sl.entries.size() - hint, budget);
            if (want == 0) continue;
            round.push_back(Work{name, shard, owner, sl.entries,
                                 hint + want - 1});
            budget -= static_cast<std::size_t>(want);
            if (budget == 0) break;
          }
          if (budget == 0) break;
        }
        if (budget == 0) break;
      }
    }
    if (round.empty()) break;
    std::size_t round_applied = 0;
    for (Work& w : round) {
      std::size_t applied = 0;
      (void)ApplyTo(*nodes_[w.node], w.index, w.shard, w.snapshot,
                    w.through_seq, /*sync=*/false, &applied);
      round_applied += applied;
    }
    // No forward progress (owners raced away or every apply failed): stop
    // instead of re-collecting the same work forever.
    if (round_applied == 0) break;
    total += round_applied;
  }
  return total;
}

std::size_t ClusterRouter::PendingApplies() const {
  std::scoped_lock lock(mu_);
  std::size_t pending = 0;
  for (const auto& [name, ix] : indices_) {
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      const ShardLog& sl = ix.shards[shard];
      if (sl.entries.empty()) continue;
      for (const std::size_t owner : map_.Owners(shard)) {
        const std::uint64_t hint = owner < sl.applied_hint.size()
                                       ? sl.applied_hint[owner]
                                       : 0;
        if (hint < sl.entries.size()) {
          pending += static_cast<std::size_t>(sl.entries.size() - hint);
        }
      }
    }
  }
  return pending;
}

Status ClusterRouter::Settle() {
  for (;;) {
    const std::size_t applied =
        PumpReplication(std::numeric_limits<std::size_t>::max());
    const std::size_t pending = PendingApplies();
    if (pending == 0) return Status::Ok();
    if (applied == 0) {
      return Unavailable("cluster: " + std::to_string(pending) +
                         " applies pending behind unreachable owners");
    }
  }
}

const BackendNode* ClusterRouter::ReaderFor(const IndexState& ix,
                                            std::size_t shard) const {
  const ShardLog& sl = ix.shards[shard];
  const BackendNode* best = nullptr;
  std::uint64_t best_hint = 0;
  for (const std::size_t owner : map_.Owners(shard)) {
    const BackendNode& node = *nodes_[owner];
    if (!node.up_ || !node.reachable_) continue;
    const std::uint64_t hint =
        owner < sl.applied_hint.size() ? sl.applied_hint[owner] : 0;
    if (best == nullptr || hint > best_hint) {
      best = &node;
      best_hint = hint;
    }
  }
  return best;
}

Expected<std::vector<std::pair<std::uint64_t, Json>>>
ClusterRouter::GatherMatches(const IndexState& ix, const std::string& index,
                             const backend::Query& query) const {
  // Per-shard streams, each already in ascending row (= global seq) order.
  std::vector<std::vector<std::pair<std::uint64_t, Json>>> streams;
  streams.reserve(ix.shards.size());
  backend::SearchRequest scatter;
  scatter.query = query;
  scatter.size = std::numeric_limits<std::size_t>::max();
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    const ShardLog& sl = ix.shards[shard];
    if (sl.global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    auto result = reader->store().Search(SubIndexName(index, shard), scatter);
    if (!result.ok()) {
      if (result.status().code() == ErrorCode::kNotFound) continue;
      return result.status();
    }
    std::vector<std::pair<std::uint64_t, Json>> stream;
    stream.reserve(result->hits.size());
    for (backend::Hit& hit : result->hits) {
      const std::size_t row = static_cast<std::size_t>(hit.id);
      if (row >= sl.global_seqs.size()) {
        return Internal("cluster: shard " + std::to_string(shard) +
                        " row " + std::to_string(row) +
                        " beyond the global-seq map");
      }
      stream.emplace_back(sl.global_seqs[row], std::move(hit.source));
    }
    if (!stream.empty()) streams.push_back(std::move(stream));
  }

  // K-way merge by global seq (each stream is ascending) — the cluster-wide
  // generalization of the store's per-sub-shard docid merge.
  std::vector<std::pair<std::uint64_t, Json>> merged;
  std::size_t total = 0;
  for (const auto& stream : streams) total += stream.size();
  merged.reserve(total);
  using Head = std::pair<std::uint64_t, std::size_t>;  // (gseq, stream)
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heads;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    heads.emplace(streams[s][0].first, s);
  }
  while (!heads.empty()) {
    const auto [gseq, s] = heads.top();
    heads.pop();
    merged.push_back(std::move(streams[s][cursor[s]]));
    if (++cursor[s] < streams[s].size()) {
      heads.emplace(streams[s][cursor[s]].first, s);
    }
  }
  return merged;
}

Expected<backend::SearchResult> ClusterRouter::Search(
    const std::string& index, const backend::SearchRequest& request) const {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  auto merged = GatherMatches(it->second, index, request.query);
  if (!merged.ok()) return merged.status();

  if (!request.sort.empty()) {
    // Input is ascending global seq, so a stable sort without a tiebreak
    // reproduces the single store's stable_sort over ascending docids.
    std::stable_sort(merged->begin(), merged->end(),
                     [&](const auto& a, const auto& b) {
                       return OracleSortBefore(request.sort, a.second,
                                               b.second);
                     });
  }

  backend::SearchResult result;
  result.total = merged->size();
  const std::size_t start = std::min(request.from, merged->size());
  const std::size_t end = std::min(start + request.size, merged->size());
  result.hits.reserve(end - start);
  for (std::size_t i = start; i < end; ++i) {
    result.hits.push_back(backend::Hit{(*merged)[i].first,
                                       std::move((*merged)[i].second)});
  }
  return result;
}

Expected<std::size_t> ClusterRouter::Count(const std::string& index,
                                           const backend::Query& query) const {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  const IndexState& ix = it->second;
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    if (ix.shards[shard].global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    auto count = reader->store().Count(SubIndexName(index, shard), query);
    if (!count.ok()) {
      if (count.status().code() == ErrorCode::kNotFound) continue;
      return count.status();
    }
    total += *count;
  }
  return total;
}

Expected<backend::AggResult> ClusterRouter::Aggregate(
    const std::string& index, const backend::Query& query,
    const backend::Aggregation& agg) const {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  auto merged = GatherMatches(it->second, index, query);
  if (!merged.ok()) return merged.status();
  std::vector<const Json*> docs;
  docs.reserve(merged->size());
  for (const auto& [gseq, doc] : *merged) docs.push_back(&doc);
  return agg.Execute(docs);
}

Expected<std::size_t> ClusterRouter::UpdateByQuery(
    const std::string& index, const backend::Query& query,
    const std::function<bool(Json&)>& update) {
  struct ShardWork {
    std::size_t shard = 0;
    std::vector<std::size_t> owners;
    std::vector<std::shared_ptr<const LogEntry>> snapshot;
    std::uint64_t through_seq = 0;
  };
  std::vector<ShardWork> work;
  {
    std::scoped_lock lock(mu_);
    auto it = indices_.find(index);
    if (it == indices_.end()) return NotFound("no such index: " + index);
    IndexState& ix = it->second;
    // Updates are an index-wide barrier applied on every owner, so they
    // require the whole owner set reachable — otherwise a healed replica
    // would diverge (document contents cannot be reconciled by seq alone).
    std::vector<std::vector<std::size_t>> owner_sets(ix.shards.size());
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      owner_sets[shard] = map_.Owners(shard);
      if (owner_sets[shard].empty()) {
        return Unavailable("cluster: no live nodes");
      }
      for (const std::size_t owner : owner_sets[shard]) {
        if (!nodes_[owner]->reachable_) {
          return Unavailable("cluster: update-by-query needs every owner; "
                             "node " + std::to_string(owner) +
                             " is unreachable");
        }
      }
    }
    for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
      ShardLog& sl = ix.shards[shard];
      auto entry = std::make_shared<LogEntry>();
      entry->kind = LogEntry::Kind::kUpdate;
      entry->query = query;
      entry->update = update;
      sl.entries.push_back(std::move(entry));
      work.push_back(ShardWork{
          shard, std::move(owner_sets[shard]), sl.entries,
          static_cast<std::uint64_t>(sl.entries.size() - 1)});
    }
    ix.updates += 1;
  }

  std::size_t modified = 0;
  for (ShardWork& w : work) {
    bool primary = true;
    for (const std::size_t owner : w.owners) {
      auto result = ApplyTo(*nodes_[owner], index, w.shard, w.snapshot,
                            w.through_seq, /*sync=*/true);
      if (!result.ok()) return result.status();
      // Owners converge, so every owner reports the same count; take the
      // primary's.
      if (primary) modified += *result;
      primary = false;
    }
  }
  return modified;
}

void ClusterRouter::Refresh(const std::string& index) {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return;
  for (std::size_t shard = 0; shard < it->second.shards.size(); ++shard) {
    const std::string sub = SubIndexName(index, shard);
    for (const auto& node : nodes_) {
      if (node->up_ && node->store_->HasIndex(sub)) node->store_->Refresh(sub);
    }
  }
}

bool ClusterRouter::HasIndex(const std::string& index) const {
  std::scoped_lock lock(mu_);
  return indices_.count(index) != 0;
}

Expected<backend::IndexStats> ClusterRouter::Stats(
    const std::string& index) const {
  std::scoped_lock lock(mu_);
  auto it = indices_.find(index);
  if (it == indices_.end()) return NotFound("no such index: " + index);
  const IndexState& ix = it->second;
  backend::IndexStats stats;
  stats.bulk_requests = ix.bulk_requests;
  stats.updates = ix.updates;
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    if (ix.shards[shard].global_seqs.empty()) continue;
    const BackendNode* reader = ReaderFor(ix, shard);
    if (reader == nullptr) {
      return Unavailable("cluster: shard " + std::to_string(shard) + " of " +
                         index + " has no reachable owner");
    }
    auto sub = reader->store().Stats(SubIndexName(index, shard));
    if (!sub.ok()) {
      if (sub.status().code() == ErrorCode::kNotFound) continue;
      return sub.status();
    }
    stats.doc_count += sub->doc_count;
    stats.pending_count += sub->pending_count;
    stats.typed_rows += sub->typed_rows;
    stats.doc_value_fields += sub->doc_value_fields;
    stats.column_build_ns += sub->column_build_ns;
    stats.filter_cache_hits += sub->filter_cache_hits;
    stats.filter_cache_misses += sub->filter_cache_misses;
  }
  return stats;
}

std::vector<std::string> ClusterRouter::VerifyConvergence(
    const std::string& index) const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> violations;
  auto it = indices_.find(index);
  if (it == indices_.end()) return violations;
  const IndexState& ix = it->second;

  backend::SearchRequest all;
  all.size = std::numeric_limits<std::size_t>::max();
  for (std::size_t shard = 0; shard < ix.shards.size(); ++shard) {
    const std::string sub = SubIndexName(index, shard);
    const std::vector<std::size_t> owners = map_.Owners(shard);
    // Reference replica = the first up owner; every other up owner must be
    // byte-identical (unreachable-but-up nodes included — after a heal and
    // Settle a partition must leave no trace).
    std::string reference;
    std::size_t reference_owner = 0;
    bool have_reference = false;
    for (const std::size_t owner : owners) {
      const BackendNode& node = *nodes_[owner];
      if (!node.up_) continue;
      std::string dump;
      auto result = node.store_->Search(sub, all);
      if (result.ok()) {
        for (const backend::Hit& hit : result->hits) {
          dump += std::to_string(hit.id);
          dump += '|';
          dump += hit.source.Dump();
          dump += '\n';
        }
      } else if (result.status().code() != ErrorCode::kNotFound) {
        violations.push_back("shard " + std::to_string(shard) + " node " +
                             std::to_string(owner) + ": " +
                             std::string(result.status().message()));
        continue;
      }
      if (!have_reference) {
        reference = std::move(dump);
        reference_owner = owner;
        have_reference = true;
      } else if (dump != reference) {
        violations.push_back(
            "shard " + std::to_string(shard) + ": replica on node " +
            std::to_string(owner) + " diverges from node " +
            std::to_string(reference_owner) + " (" +
            std::to_string(dump.size()) + " vs " +
            std::to_string(reference.size()) + " dump bytes)");
      }
    }
  }
  return violations;
}

}  // namespace dio::cluster
