// ClusterBulkSink: the terminal transport stage for a clustered backend —
// the drop-in replacement for backend::BulkClient when `cluster.nodes` is
// set. One Submit = one simulated network hop + one replicated, ack-gated
// router ingest. A rejected ingest (ack level unsatisfiable during a crash
// or partition) surfaces as the Submit status, so the retry stage above
// re-drives the batch exactly like a failed bulk request; the router's
// fingerprint dedupe keeps the re-drive exactly-once.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "common/clock.h"
#include "tracer/sink.h"
#include "transport/transport.h"

namespace dio::cluster {

class ClusterBulkSink final : public transport::Transport,
                              public tracer::EventSink {
 public:
  ClusterBulkSink(ClusterRouter* router, std::string index,
                  Nanos network_latency_ns = 200 * kMicrosecond,
                  Clock* clock = SteadyClock::Instance());

  ClusterBulkSink(const ClusterBulkSink&) = delete;
  ClusterBulkSink& operator=(const ClusterBulkSink&) = delete;

  Status Submit(transport::EventBatch batch) override;
  // Drains deferred replication (Settle) and refreshes the index on every
  // node, so teardown leaves the cluster quiescent and searchable.
  void Flush() override;
  void CollectStats(std::vector<transport::StageStats>* out) const override;
  [[nodiscard]] std::string_view name() const override { return "cluster"; }

  // tracer::EventSink facade for direct use without a pipeline.
  void IndexBatch(std::vector<Json> documents) override;
  void IndexEvents(std::string_view session,
                   std::vector<tracer::Event> events) override;

  // Submit() calls refused by the router (ack unsatisfiable) — the ledger
  // checker's expected in/out gap for this stage.
  [[nodiscard]] std::uint64_t rejected_batches() const;
  [[nodiscard]] std::uint64_t rejected_events() const;

  [[nodiscard]] ClusterRouter* router() { return router_; }
  [[nodiscard]] const std::string& index() const { return index_; }

 private:
  ClusterRouter* router_;
  std::string index_;
  Nanos network_latency_ns_;
  Clock* clock_;

  mutable std::mutex mu_;
  transport::StageStats stats_;
  std::uint64_t rejected_batches_ = 0;
  std::uint64_t rejected_events_ = 0;
};

}  // namespace dio::cluster
