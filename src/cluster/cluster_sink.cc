#include "cluster/cluster_sink.h"

#include <utility>

namespace dio::cluster {

ClusterBulkSink::ClusterBulkSink(ClusterRouter* router, std::string index,
                                 Nanos network_latency_ns, Clock* clock)
    : router_(router),
      index_(std::move(index)),
      network_latency_ns_(network_latency_ns),
      clock_(clock) {
  stats_.stage = "cluster";
}

Status ClusterBulkSink::Submit(transport::EventBatch batch) {
  if (batch.empty()) return Status::Ok();
  // Network hop to the routing tier (virtual time under a ManualClock).
  clock_->SleepFor(network_latency_ns_);
  const std::size_t batch_events = batch.size();
  const Status status = router_->Ingest(index_, std::move(batch));
  std::scoped_lock lock(mu_);
  stats_.batches_in += 1;
  stats_.events_in += batch_events;
  if (status.ok()) {
    stats_.batches_out += 1;
    stats_.events_out += batch_events;
  } else {
    // Refused, not lost: the batch stays with the retry stage above, which
    // re-drives it once the cluster can satisfy the ack level again.
    rejected_batches_ += 1;
    rejected_events_ += batch_events;
  }
  return status;
}

void ClusterBulkSink::Flush() {
  (void)router_->Settle();
  // A settled cluster has every live owner at the log head — reclaim the
  // fully-applied prefix before the session goes quiescent.
  (void)router_->CompactLogs();
  router_->Refresh(index_);
}

void ClusterBulkSink::IndexBatch(std::vector<Json> documents) {
  if (documents.empty()) return;
  transport::EventBatch batch;
  batch.documents = std::move(documents);
  (void)Submit(std::move(batch));
}

void ClusterBulkSink::IndexEvents(std::string_view session,
                                  std::vector<tracer::Event> events) {
  if (events.empty()) return;
  transport::EventBatch batch;
  batch.session = std::string(session);
  batch.events = std::move(events);
  (void)Submit(std::move(batch));
}

void ClusterBulkSink::CollectStats(
    std::vector<transport::StageStats>* out) const {
  std::scoped_lock lock(mu_);
  out->push_back(stats_);
}

std::uint64_t ClusterBulkSink::rejected_batches() const {
  std::scoped_lock lock(mu_);
  return rejected_batches_;
}

std::uint64_t ClusterBulkSink::rejected_events() const {
  std::scoped_lock lock(mu_);
  return rejected_events_;
}

}  // namespace dio::cluster
