#include "cluster/shard_map.h"

#include <algorithm>

namespace dio::cluster {

namespace {

// SplitMix64: cheap, well-distributed 64-bit mixer (same construction the
// doc-values string dictionary uses for hashing).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(std::size_t logical_shards, std::size_t replicas)
    : logical_shards_(logical_shards == 0 ? 1 : logical_shards),
      replicas_(replicas) {}

std::size_t ShardMap::AddNode() {
  const std::size_t id = salts_.size();
  // Salt from the node id through two mix rounds so consecutive ids do not
  // produce correlated score streams.
  salts_.push_back(Mix64(Mix64(static_cast<std::uint64_t>(id) + 1)));
  live_.push_back(1);
  return id;
}

void ShardMap::SetLive(std::size_t node, bool live) {
  if (node < live_.size()) live_[node] = live ? 1 : 0;
}

bool ShardMap::IsLive(std::size_t node) const {
  return node < live_.size() && live_[node] != 0;
}

std::size_t ShardMap::live_count() const {
  return static_cast<std::size_t>(
      std::count(live_.begin(), live_.end(), std::uint8_t{1}));
}

std::uint64_t ShardMap::Score(std::size_t node, std::size_t shard) const {
  return Mix64(salts_[node] ^ Mix64(static_cast<std::uint64_t>(shard) + 1));
}

std::vector<std::size_t> ShardMap::Owners(std::size_t shard) const {
  // (score, node) over live nodes, descending; ties broken by node id so
  // the order is total and reproducible.
  std::vector<std::pair<std::uint64_t, std::size_t>> scored;
  scored.reserve(salts_.size());
  for (std::size_t n = 0; n < salts_.size(); ++n) {
    if (live_[n] != 0) scored.emplace_back(Score(n, shard), n);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  const std::size_t want = std::min(scored.size(), replicas_ + 1);
  std::vector<std::size_t> owners;
  owners.reserve(want);
  for (std::size_t i = 0; i < want; ++i) owners.push_back(scored[i].second);
  return owners;
}

std::size_t ShardMap::Primary(std::size_t shard) const {
  const std::vector<std::size_t> owners = Owners(shard);
  return owners.empty() ? node_count() : owners[0];
}

}  // namespace dio::cluster
