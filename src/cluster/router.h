// ClusterRouter: a multi-node backend tier over embedded ElasticStores.
//
// The paper ships traced syscalls to a dedicated Elasticsearch backend; one
// store caps out long before the millions-of-clients target, so this layer
// spreads each tracing session across N `BackendNode`s the way ES spreads an
// index across data nodes:
//
//   * routing — every event's routing key (tid, time_enter) hashes to one of
//     `logical_shards` shards; a rendezvous-hash ShardMap assigns each shard
//     a primary plus `replicas` replica nodes, and node join/leave moves
//     only the shards whose owner set actually changes;
//   * replicated ingest — each accepted batch is split into per-shard
//     sub-batches, appended to a per-shard replication log, and applied to
//     owner stores strictly in log order. The configured AckLevel decides
//     how many owners must apply synchronously before the batch is
//     acknowledged (primary | quorum | all); the rest catch up through
//     `PumpReplication`. A node applies each log entry exactly once (its
//     applied-watermark is the dedupe), and a whole batch re-driven by the
//     retry transport after a lost ack is recognized by content fingerprint
//     and acknowledged without re-applying — the cluster-side twin of the
//     spool's line dedupe;
//   * bounded logs — each shard's log compacts below the minimum applied
//     watermark of its live owners (`CompactLogs`, run opportunistically on
//     the ingest/pump paths), keeping the newest `log_retain_batches`
//     entries as a replay cushion, so steady-state log memory is O(lag)
//     rather than O(history);
//   * failover — `CrashNode` wipes a node (process death: store and
//     watermarks gone) and removes it from ownership, promoting the next
//     live node per shard. Acked-but-unreplicated entries survive in the
//     router's log and replay to the promoted owner without duplicates.
//     A restarted node rejoins empty; entries still retained in the log
//     replay in order, and a watermark below the compacted base instead
//     bootstraps from a peer-store snapshot plus the log tail
//     (`SnapshotCatchUp`) — recovery cost is bounded by lag, not history,
//     and still converges byte-identically (`VerifyConvergence` checks
//     exactly that). `SetReachable(false)` models a network partition: the
//     node keeps its data and ownership, acks that require it fail until
//     the partition heals, and the backlog drains afterwards;
//     `SetThrottled(true)` models a slow replica: it still serves sync
//     acks and reads but the async pump skips it, so lag accumulates (and
//     caps compaction) until the throttle lifts;
//   * scatter/gather — Search/Count/Aggregate fan out over one chosen
//     owner per shard and k-way-merge per-shard hits by global ingestion
//     sequence (the cluster-wide docid: assigned at accept time, in batch
//     arrival order, so results are byte-identical to a single store that
//     indexed the same surviving events — the sim's golden parity check).
//     With `query_fanout=parallel` the per-shard scatter work runs on a
//     shared query pool (the store's RunPerShard pattern, one tier up);
//     results are byte-identical to the serial route because the scatter
//     plan, the merge, and all error selection stay in shard order.
//
// Thread-safety: a router shared_mutex guards topology, logs, and sequence
// assignment — mutators exclusive, queries shared (so N dashboards scatter
// concurrently). Log-entry application to node stores happens outside it,
// ordered per (node, shard) by the node's applied-watermark (taken under
// the node's apply mutex), so concurrent producers fan out across nodes.
// Pool workers never touch the router mutex: query scatter tasks read only
// state frozen by the caller's shared lock, and parallel update-apply tasks
// touch only node apply mutexes (router bookkeeping happens on the caller
// after the join) — so pool-sharing cannot deadlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "backend/query_backend.h"
#include "backend/store.h"
#include "cluster/replication_log.h"
#include "cluster/shard_map.h"
#include "common/config.h"
#include "common/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "transport/transport.h"

namespace dio::cluster {

// How many shard owners must have applied a batch before it is acked:
// primary only, a majority of the owner group, or every owner.
enum class AckLevel { kPrimary, kQuorum, kAll };

[[nodiscard]] std::string_view ToString(AckLevel level);
Expected<AckLevel> AckLevelFromString(std::string_view name);

// Query scatter execution: serial keeps the per-shard scatter on the calling
// thread (the parity oracle); parallel fans it out on the query pool.
enum class QueryFanout { kSerial, kParallel };

[[nodiscard]] std::string_view ToString(QueryFanout fanout);
Expected<QueryFanout> QueryFanoutFromString(std::string_view name);

// The `[cluster]` config section.
struct ClusterOptions {
  std::size_t nodes = 3;
  std::size_t replicas = 1;
  AckLevel ack = AckLevel::kQuorum;
  std::size_t logical_shards = ShardMap::kDefaultLogicalShards;
  // Query scatter route and pool width. query_threads=0 runs the parallel
  // plan inline on the caller (same code path, no pool) — what the
  // deterministic sim uses.
  QueryFanout query_fanout = QueryFanout::kParallel;
  std::size_t query_threads = 4;
  // Replay cushion kept per shard past the all-owners-applied point; lower
  // bounds nothing for safety (compaction never passes a live owner's
  // watermark) but trades snapshot catch-ups against log memory.
  std::size_t log_retain_batches = 64;
  // Engine knobs for every node's embedded store (the `[backend]` section,
  // parsed separately by ElasticStoreOptions::FromConfig).
  backend::ElasticStoreOptions store;

  // Parses cluster.{nodes,replicas,ack,logical_shards,query_fanout,
  // query_threads,log_retain_batches}, warning on unknown cluster.* keys
  // like Pipeline::Build does for transport.*. Fails on an unparseable ack
  // level or fan-out mode.
  static Expected<ClusterOptions> FromConfig(const Config& config);
};

// One backend node: an embedded ElasticStore plus liveness/reachability
// state and the per-(index, shard) applied-watermarks that make log
// application exactly-once. Lifecycle is driven by the router.
class BackendNode {
 public:
  BackendNode(std::size_t id, const backend::ElasticStoreOptions& options);

  [[nodiscard]] std::size_t id() const { return id_; }
  // up = the process is running (false after CrashNode until RestartNode).
  [[nodiscard]] bool up() const { return up_; }
  // reachable = no network partition between router and node.
  [[nodiscard]] bool reachable() const { return reachable_; }
  // throttled = replication to this node is slow; the async pump defers it.
  [[nodiscard]] bool throttled() const { return throttled_; }
  [[nodiscard]] backend::ElasticStore& store() { return *store_; }
  [[nodiscard]] const backend::ElasticStore& store() const { return *store_; }

 private:
  friend class ClusterRouter;

  std::size_t id_;
  backend::ElasticStoreOptions store_options_;
  std::unique_ptr<backend::ElasticStore> store_;
  // Atomic because liveness is consulted under either the router mutex
  // (topology decisions) or the node's apply mutex (apply-time guard), and
  // the two are never nested.
  std::atomic<bool> up_{true};
  std::atomic<bool> reachable_{true};
  std::atomic<bool> throttled_{false};

  // Applied-watermark per "index#shard": the next log seq this node will
  // apply. Entry seq < watermark ⇔ already applied (idempotence across
  // retries and replication pumps). Guarded by apply_mu_; wiped on crash.
  std::mutex apply_mu_;
  std::map<std::string, std::uint64_t> applied_;
  // Sub-indices with ingest applied since their last refresh, so update
  // barriers skip redundant Refresh calls when replaying a log tail with
  // consecutive updates (amortizes refresh across an apply batch). Guarded
  // by apply_mu_; wiped on crash alongside applied_.
  std::set<std::string> dirty_;
};

class ClusterRouter : public backend::QueryBackend {
 public:
  explicit ClusterRouter(const ClusterOptions& options);

  [[nodiscard]] const ClusterOptions& options() const { return options_; }
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] BackendNode& node(std::size_t id) { return *nodes_[id]; }
  [[nodiscard]] const BackendNode& node(std::size_t id) const {
    return *nodes_[id];
  }

  // ---- topology -----------------------------------------------------------
  // Node join: adds a live empty node; it owns ~1/live_count of the shards
  // and catches up via PumpReplication — from the log when the tail is
  // retained, via SnapshotCatchUp when a shard's prefix is compacted.
  std::size_t AddNode();
  // Process death: the node's store and watermarks are wiped and it leaves
  // every owner set (replicas are promoted). Acked batches it alone had
  // applied remain in the router log and replay to the promoted owners.
  Status CrashNode(std::size_t id);
  // Rejoins a crashed node with an empty store; it re-enters owner sets and
  // catches up like AddNode (convergence is byte-exact by construction).
  Status RestartNode(std::size_t id);
  // Network partition toggle. An unreachable node keeps data and ownership;
  // ingest requiring its ack fails (callers retry), replication to it
  // defers until healed.
  Status SetReachable(std::size_t id, bool reachable);
  // Replication-lag toggle (the sim's `lag` fault). A throttled node still
  // serves sync acks and reads; only the async pump skips it, so its
  // backlog — and the shard logs above its watermark — grow until healed.
  Status SetThrottled(std::size_t id, bool throttled);
  // Heals every partition and throttle, then restarts crashed nodes in
  // ascending id order (deterministic under the sim scheduler), and finally
  // snapshot-bootstraps any owner stranded below a compacted log prefix so
  // rejoin replay is bounded by the retained tail, not history.
  void HealAll();

  // ---- ingest -------------------------------------------------------------
  // Routes one transport batch into per-shard replication-log entries and
  // applies them to enough owners to satisfy options().ack (the primary
  // must always be one of them). Returns Unavailable with NO state change
  // when the ack level cannot be met (crashed/partitioned owners) — the
  // retry transport re-drives the batch later. A batch whose content
  // fingerprint was already acked (retry after a lost ack) returns Ok
  // without re-applying.
  Status Ingest(const std::string& index, transport::EventBatch batch);

  // Applies up to `max_applies` outstanding (log entry, owner) pairs, in
  // deterministic index/shard/owner order; returns how many were applied.
  // An owner stranded below a compacted prefix is snapshot-bootstrapped
  // first (counted separately, not against `max_applies`).
  std::size_t PumpReplication(std::size_t max_applies);
  // Outstanding (entry, live owner) applications. An owner below the
  // compacted base counts from the base (the snapshot replaces the prefix).
  [[nodiscard]] std::size_t PendingApplies() const;
  // Pumps until nothing is pending. Fails (leaving the remainder pending)
  // if an unreachable or throttled owner blocks progress.
  Status Settle();

  // Compacts every shard log below the minimum applied watermark of its
  // live owners, keeping options().log_retain_batches entries of cushion.
  // Runs opportunistically on the ingest/pump paths; callable any time.
  // Returns entries dropped.
  std::size_t CompactLogs();
  // Snapshot-bootstraps every live owner whose watermark sits below its
  // shard's compacted base, in deterministic order. Returns catch-ups
  // performed. (PumpReplication does this lazily; HealAll eagerly.)
  std::size_t CatchUpStranded();

  // ---- ingest/ack accounting (for the transport sink's ledger) ------------
  [[nodiscard]] std::uint64_t acked_batches() const { return acked_batches_; }
  [[nodiscard]] std::uint64_t acked_events() const { return acked_events_; }
  [[nodiscard]] std::uint64_t duplicate_batches() const {
    return duplicate_batches_;
  }
  [[nodiscard]] std::uint64_t rejected_batches() const {
    return rejected_batches_;
  }
  [[nodiscard]] std::uint64_t rejected_events() const {
    return rejected_events_;
  }
  // Synchronous owner applications performed at ack time vs deferred ones
  // drained by PumpReplication (the ack-level cost the bench quantifies).
  [[nodiscard]] std::uint64_t sync_applies() const { return sync_applies_; }
  [[nodiscard]] std::uint64_t async_applies() const { return async_applies_; }

  // ---- log/catch-up accounting --------------------------------------------
  // Cumulative entries ever appended across all shard logs.
  [[nodiscard]] std::uint64_t log_appended_entries() const {
    return log_appended_entries_;
  }
  // Cumulative entries/bytes dropped by compaction.
  [[nodiscard]] std::uint64_t log_compacted_entries() const {
    return log_compacted_entries_;
  }
  [[nodiscard]] std::uint64_t log_compacted_bytes() const {
    return log_compacted_bytes_;
  }
  // Currently retained entries/bytes summed over all shard logs (gauges).
  [[nodiscard]] std::uint64_t log_retained_entries() const;
  [[nodiscard]] std::uint64_t log_retained_bytes() const;
  // Snapshot catch-ups performed and documents copied by them.
  [[nodiscard]] std::uint64_t snapshot_catchups() const {
    return snapshot_catchups_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t snapshot_docs_copied() const {
    return snapshot_docs_copied_.load(std::memory_order_relaxed);
  }

  // ---- query fan-out ------------------------------------------------------
  // Runtime switch between the serial oracle and the pooled scatter (the
  // bench and the parity tests re-run the same router both ways).
  void SetQueryFanout(QueryFanout fanout) {
    fanout_mode_.store(static_cast<int>(fanout), std::memory_order_relaxed);
  }
  [[nodiscard]] QueryFanout query_fanout() const {
    return static_cast<QueryFanout>(
        fanout_mode_.load(std::memory_order_relaxed));
  }
  // Queries that took the pooled scatter path, and per-shard tasks fanned
  // out by them.
  [[nodiscard]] std::uint64_t fanout_queries() const {
    return fanout_queries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fanout_shard_tasks() const {
    return fanout_shard_tasks_.load(std::memory_order_relaxed);
  }

  // ---- QueryBackend (scatter/gather) --------------------------------------
  [[nodiscard]] Expected<backend::SearchResult> Search(
      const std::string& index,
      const backend::SearchRequest& request) const override;
  [[nodiscard]] Expected<std::size_t> Count(
      const std::string& index, const backend::Query& query) const override;
  [[nodiscard]] Expected<backend::AggResult> Aggregate(
      const std::string& index, const backend::Query& query,
      const backend::Aggregation& agg) const override;
  Expected<std::size_t> UpdateByQuery(
      const std::string& index, const backend::Query& query,
      const std::function<bool(Json&)>& update) override;
  void Refresh(const std::string& index) override;
  [[nodiscard]] bool HasIndex(const std::string& index) const override;
  [[nodiscard]] Expected<backend::IndexStats> Stats(
      const std::string& index) const override;

  [[nodiscard]] const ShardMap& shard_map() const { return map_; }

  // ---- health -------------------------------------------------------------
  // Operator view of the cluster, surfaced through DioService session info:
  // per-node liveness, fan-out pool stats, replication/log counters, and
  // per-index watermark lag.
  [[nodiscard]] Json HealthJson() const;

  // ---- verification -------------------------------------------------------
  // After quiescence (Settle + Refresh): every live owner of every shard of
  // `index` must hold byte-identical documents in identical order and agree
  // on the applied watermark. Returns one string per divergence (empty =
  // converged). Unreachable-but-up owners are included: a healed partition
  // must leave no trace.
  [[nodiscard]] std::vector<std::string> VerifyConvergence(
      const std::string& index) const;

  // The sub-index holding `index`'s shard `shard` on any owner store.
  static std::string SubIndexName(const std::string& index, std::size_t shard);

 private:
  struct IndexState {
    explicit IndexState(std::size_t shards) : shards(shards) {}
    std::uint64_t next_global_seq = 0;
    std::uint64_t bulk_requests = 0;
    std::uint64_t updates = 0;
    std::vector<ShardLog> shards;
  };

  // Result of applying a log slice to one node's store (no router-mutex
  // bookkeeping — see NoteApplied).
  struct ApplyOutcome {
    Status status = Status::Ok();
    // Modified count when the final applied entry is an update, else 0.
    std::size_t modified = 0;
    // Log entries actually applied (idempotent skips excluded).
    std::size_t applied = 0;
    // The node's watermark after the apply (valid when status is ok).
    std::uint64_t reached = 0;
    // The node's watermark sits below the slice base: the prefix it needs
    // was compacted away, so it must SnapshotCatchUp first.
    bool needs_snapshot = false;
  };

  // Owner acks needed for `owner_count` live owners at options().ack.
  [[nodiscard]] std::size_t RequiredAcks(std::size_t owner_count) const;

  // Applies log entries [node watermark, through_seq] of (index, shard) to
  // `node`, under its apply mutex only — safe from pool workers. The caller
  // must follow up with NoteApplied on success.
  ApplyOutcome ApplyToStore(BackendNode& node, const std::string& index,
                            std::size_t shard, const LogSlice& slice,
                            std::uint64_t through_seq);
  // Router-side bookkeeping for a completed apply: ack-path counters and
  // the node's applied hint. Takes the router mutex exclusively — never
  // call from a pool worker.
  void NoteApplied(const std::string& index, std::size_t shard,
                   const BackendNode& node, std::uint64_t reached,
                   std::size_t applied, bool sync);
  // ApplyToStore with the stranded path handled: a needs_snapshot outcome
  // triggers SnapshotCatchUp and one retry. Bookkeeping included. Not for
  // pool workers (SnapshotCatchUp/NoteApplied take the router mutex).
  ApplyOutcome ApplyWithCatchUp(BackendNode& node, const std::string& index,
                                std::size_t shard, const LogSlice& slice,
                                std::uint64_t through_seq, bool sync);

  // Bootstraps `target` for (index, shard) from the most-advanced
  // up+reachable peer owner: copies the peer's refreshed sub-index
  // wholesale and adopts its watermark; the retained log tail replays on
  // top through the normal apply path. Byte-identical to a from-scratch
  // replay because store row ids are dense append order.
  Status SnapshotCatchUp(const std::string& index, std::size_t shard,
                         std::size_t target);

  // Compacts all shard logs below their live-owner minimum watermark.
  // Caller holds mu_ exclusively. Returns entries dropped.
  std::size_t CompactLocked();

  // Runs fn(0..n-1): inline when serial/poolless, else task 0 on the
  // caller and the rest on the query pool behind a per-call latch (the
  // store's RunPerShard pattern — workers wait on nothing but their own
  // task, so pool-sharing cannot deadlock). fn must not touch mu_.
  void RunScatter(std::size_t n,
                  const std::function<void(std::size_t)>& fn) const;

  // Picks the shard's reader for scatter/gather: the up+reachable owner
  // with the highest applied hint (ties: owner order). Returns nullptr if
  // none. Caller holds mu_ (shared suffices).
  [[nodiscard]] const BackendNode* ReaderFor(const IndexState& ix,
                                             std::size_t shard) const;

  // Gathers all matching documents of `index` in global-seq order (the
  // scatter half of Search/Aggregate), serial or pooled per query_fanout().
  // Caller holds mu_ (shared suffices; the lock freezes topology, readers,
  // and the global-seq maps for the pool workers).
  Expected<std::vector<std::pair<std::uint64_t, Json>>> GatherMatches(
      const IndexState& ix, const std::string& index,
      const backend::Query& query) const;

  // The two query plans behind Search. Serial fan-out keeps the
  // gather-everything plan as the parity oracle; parallel fan-out pushes
  // sort+limit into each shard task (the store materializes only the
  // per-shard top `from+size`) and k-way merges the tiny sorted runs —
  // byte-identical output, O(shards * (from+size)) caller work.
  Expected<backend::SearchResult> SearchGatherAll(
      const IndexState& ix, const std::string& index,
      const backend::SearchRequest& request) const;
  Expected<backend::SearchResult> SearchPushdown(
      const IndexState& ix, const std::string& index,
      const backend::SearchRequest& request) const;

  // Same split for Aggregate: the oracle gathers every matched document and
  // executes once; the pushdown plan runs columnar partial aggregation
  // inside each shard task and folds the partials in shard order.
  Expected<backend::AggResult> AggregateGatherAll(
      const IndexState& ix, const std::string& index,
      const backend::Query& query, const backend::Aggregation& agg) const;
  Expected<backend::AggResult> AggregatePushdown(
      const IndexState& ix, const std::string& index,
      const backend::Query& query, const backend::Aggregation& agg) const;

  const ClusterOptions options_;
  // Mutators exclusive, queries shared. Pool workers never acquire it.
  mutable std::shared_mutex mu_;
  ShardMap map_;
  std::vector<std::unique_ptr<BackendNode>> nodes_;
  std::map<std::string, IndexState> indices_;
  // Content fingerprints of acked batches (duplicate-delivery detection).
  std::map<std::uint64_t, std::uint64_t> acked_fingerprints_;  // fp -> count

  // Lazily sized to options().query_threads; null when query_threads=0.
  std::unique_ptr<ThreadPool> query_pool_;
  std::atomic<int> fanout_mode_{static_cast<int>(QueryFanout::kParallel)};
  mutable std::atomic<std::uint64_t> fanout_queries_{0};
  mutable std::atomic<std::uint64_t> fanout_shard_tasks_{0};

  std::uint64_t acked_batches_ = 0;
  std::uint64_t acked_events_ = 0;
  std::uint64_t duplicate_batches_ = 0;
  std::uint64_t rejected_batches_ = 0;
  std::uint64_t rejected_events_ = 0;
  std::uint64_t sync_applies_ = 0;
  std::uint64_t async_applies_ = 0;
  std::uint64_t log_appended_entries_ = 0;
  std::uint64_t log_compacted_entries_ = 0;
  std::uint64_t log_compacted_bytes_ = 0;
  // Atomic: bumped from SnapshotCatchUp while other threads may read the
  // accessors without the router mutex.
  std::atomic<std::uint64_t> snapshot_catchups_{0};
  std::atomic<std::uint64_t> snapshot_docs_copied_{0};
};

}  // namespace dio::cluster
