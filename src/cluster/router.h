// ClusterRouter: a multi-node backend tier over embedded ElasticStores.
//
// The paper ships traced syscalls to a dedicated Elasticsearch backend; one
// store caps out long before the millions-of-clients target, so this layer
// spreads each tracing session across N `BackendNode`s the way ES spreads an
// index across data nodes:
//
//   * routing — every event's routing key (tid, time_enter) hashes to one of
//     `logical_shards` shards; a rendezvous-hash ShardMap assigns each shard
//     a primary plus `replicas` replica nodes, and node join/leave moves
//     only the shards whose owner set actually changes;
//   * replicated ingest — each accepted batch is split into per-shard
//     sub-batches, appended to a per-shard replication log, and applied to
//     owner stores strictly in log order. The configured AckLevel decides
//     how many owners must apply synchronously before the batch is
//     acknowledged (primary | quorum | all); the rest catch up through
//     `PumpReplication`. A node applies each log entry exactly once (its
//     applied-watermark is the dedupe), and a whole batch re-driven by the
//     retry transport after a lost ack is recognized by content fingerprint
//     and acknowledged without re-applying — the cluster-side twin of the
//     spool's line dedupe;
//   * failover — `CrashNode` wipes a node (process death: store and
//     watermarks gone) and removes it from ownership, promoting the next
//     live node per shard. Acked-but-unreplicated entries survive in the
//     router's log and replay to the promoted owner without duplicates;
//     a restarted node rejoins empty and replays the log from seq 0 until
//     byte-identical with its peers (`VerifyConvergence` checks exactly
//     that). `SetReachable(false)` models a network partition instead: the
//     node keeps its data and ownership, acks that require it fail until
//     the partition heals, and the backlog drains afterwards;
//   * scatter/gather — Search/Count/Aggregate fan out over one chosen
//     owner per shard and k-way-merge per-shard hits by global ingestion
//     sequence (the cluster-wide docid: assigned at accept time, in batch
//     arrival order, so results are byte-identical to a single store that
//     indexed the same surviving events — the sim's golden parity check).
//
// Thread-safety: a router mutex guards topology, logs, and sequence
// assignment; log-entry application to node stores happens outside it,
// ordered per (node, shard) by the node's applied-watermark (taken under
// the node's apply mutex), so concurrent producers fan out across nodes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "backend/query_backend.h"
#include "backend/store.h"
#include "cluster/shard_map.h"
#include "common/config.h"
#include "common/json.h"
#include "common/status.h"
#include "transport/transport.h"

namespace dio::cluster {

// How many shard owners must have applied a batch before it is acked:
// primary only, a majority of the owner group, or every owner.
enum class AckLevel { kPrimary, kQuorum, kAll };

[[nodiscard]] std::string_view ToString(AckLevel level);
Expected<AckLevel> AckLevelFromString(std::string_view name);

// The `[cluster]` config section.
struct ClusterOptions {
  std::size_t nodes = 3;
  std::size_t replicas = 1;
  AckLevel ack = AckLevel::kQuorum;
  std::size_t logical_shards = ShardMap::kDefaultLogicalShards;
  // Engine knobs for every node's embedded store (the `[backend]` section,
  // parsed separately by ElasticStoreOptions::FromConfig).
  backend::ElasticStoreOptions store;

  // Parses cluster.{nodes,replicas,ack,logical_shards}, warning on unknown
  // cluster.* keys like Pipeline::Build does for transport.*. Fails on an
  // unparseable ack level.
  static Expected<ClusterOptions> FromConfig(const Config& config);
};

// One backend node: an embedded ElasticStore plus liveness/reachability
// state and the per-(index, shard) applied-watermarks that make log
// application exactly-once. Lifecycle is driven by the router.
class BackendNode {
 public:
  BackendNode(std::size_t id, const backend::ElasticStoreOptions& options);

  [[nodiscard]] std::size_t id() const { return id_; }
  // up = the process is running (false after CrashNode until RestartNode).
  [[nodiscard]] bool up() const { return up_; }
  // reachable = no network partition between router and node.
  [[nodiscard]] bool reachable() const { return reachable_; }
  [[nodiscard]] backend::ElasticStore& store() { return *store_; }
  [[nodiscard]] const backend::ElasticStore& store() const { return *store_; }

 private:
  friend class ClusterRouter;

  std::size_t id_;
  backend::ElasticStoreOptions store_options_;
  std::unique_ptr<backend::ElasticStore> store_;
  // Atomic because liveness is consulted under either the router mutex
  // (topology decisions) or the node's apply mutex (apply-time guard), and
  // the two are never nested.
  std::atomic<bool> up_{true};
  std::atomic<bool> reachable_{true};

  // Applied-watermark per "index#shard": the next log seq this node will
  // apply. Entry seq < watermark ⇔ already applied (idempotence across
  // retries and replication pumps). Guarded by apply_mu_; wiped on crash.
  std::mutex apply_mu_;
  std::map<std::string, std::uint64_t> applied_;
};

class ClusterRouter : public backend::QueryBackend {
 public:
  explicit ClusterRouter(const ClusterOptions& options);

  [[nodiscard]] const ClusterOptions& options() const { return options_; }
  [[nodiscard]] std::size_t node_count() const;
  [[nodiscard]] BackendNode& node(std::size_t id) { return *nodes_[id]; }
  [[nodiscard]] const BackendNode& node(std::size_t id) const {
    return *nodes_[id];
  }

  // ---- topology -----------------------------------------------------------
  // Node join: adds a live empty node; it owns ~1/live_count of the shards
  // and catches up from the replication log via PumpReplication.
  std::size_t AddNode();
  // Process death: the node's store and watermarks are wiped and it leaves
  // every owner set (replicas are promoted). Acked batches it alone had
  // applied remain in the router log and replay to the promoted owners.
  Status CrashNode(std::size_t id);
  // Rejoins a crashed node with an empty store; it re-enters owner sets and
  // replays the log from seq 0 (convergence is byte-exact by construction).
  Status RestartNode(std::size_t id);
  // Network partition toggle. An unreachable node keeps data and ownership;
  // ingest requiring its ack fails (callers retry), replication to it
  // defers until healed.
  Status SetReachable(std::size_t id, bool reachable);
  // Heals every partition and restarts every crashed node.
  void HealAll();

  // ---- ingest -------------------------------------------------------------
  // Routes one transport batch into per-shard replication-log entries and
  // applies them to enough owners to satisfy options().ack (the primary
  // must always be one of them). Returns Unavailable with NO state change
  // when the ack level cannot be met (crashed/partitioned owners) — the
  // retry transport re-drives the batch later. A batch whose content
  // fingerprint was already acked (retry after a lost ack) returns Ok
  // without re-applying.
  Status Ingest(const std::string& index, transport::EventBatch batch);

  // Applies up to `max_applies` outstanding (log entry, owner) pairs, in
  // deterministic index/shard/owner order; returns how many were applied.
  std::size_t PumpReplication(std::size_t max_applies);
  // Outstanding (entry, live owner) applications.
  [[nodiscard]] std::size_t PendingApplies() const;
  // Pumps until nothing is pending. Fails (leaving the remainder pending)
  // if an unreachable owner blocks progress.
  Status Settle();

  // ---- ingest/ack accounting (for the transport sink's ledger) ------------
  [[nodiscard]] std::uint64_t acked_batches() const { return acked_batches_; }
  [[nodiscard]] std::uint64_t acked_events() const { return acked_events_; }
  [[nodiscard]] std::uint64_t duplicate_batches() const {
    return duplicate_batches_;
  }
  [[nodiscard]] std::uint64_t rejected_batches() const {
    return rejected_batches_;
  }
  [[nodiscard]] std::uint64_t rejected_events() const {
    return rejected_events_;
  }
  // Synchronous owner applications performed at ack time vs deferred ones
  // drained by PumpReplication (the ack-level cost the bench quantifies).
  [[nodiscard]] std::uint64_t sync_applies() const { return sync_applies_; }
  [[nodiscard]] std::uint64_t async_applies() const { return async_applies_; }

  // ---- QueryBackend (scatter/gather) --------------------------------------
  [[nodiscard]] Expected<backend::SearchResult> Search(
      const std::string& index,
      const backend::SearchRequest& request) const override;
  [[nodiscard]] Expected<std::size_t> Count(
      const std::string& index, const backend::Query& query) const override;
  [[nodiscard]] Expected<backend::AggResult> Aggregate(
      const std::string& index, const backend::Query& query,
      const backend::Aggregation& agg) const override;
  Expected<std::size_t> UpdateByQuery(
      const std::string& index, const backend::Query& query,
      const std::function<bool(Json&)>& update) override;
  void Refresh(const std::string& index) override;
  [[nodiscard]] bool HasIndex(const std::string& index) const override;
  [[nodiscard]] Expected<backend::IndexStats> Stats(
      const std::string& index) const override;

  [[nodiscard]] const ShardMap& shard_map() const { return map_; }

  // ---- verification -------------------------------------------------------
  // After quiescence (Settle + Refresh): every live owner of every shard of
  // `index` must hold byte-identical documents in identical order and agree
  // on the applied watermark. Returns one string per divergence (empty =
  // converged). Unreachable-but-up owners are included: a healed partition
  // must leave no trace.
  [[nodiscard]] std::vector<std::string> VerifyConvergence(
      const std::string& index) const;

  // The sub-index holding `index`'s shard `shard` on any owner store.
  static std::string SubIndexName(const std::string& index, std::size_t shard);

 private:
  // One replication-log entry: a per-shard slice of an ingested batch, or
  // an update-by-query barrier. Immutable once appended.
  struct LogEntry {
    enum class Kind { kIngest, kUpdate };
    Kind kind = Kind::kIngest;
    // kIngest payload (exactly one of wire/docs non-empty).
    std::string session;
    std::vector<tracer::WireEvent> wire;
    std::vector<Json> docs;
    // kUpdate payload.
    backend::Query query = backend::Query::MatchAll();
    std::function<bool(Json&)> update;
  };

  struct ShardLog {
    // seq = position. shared_ptr so appliers can snapshot entry pointers
    // and run outside the router mutex while producers keep appending.
    std::vector<std::shared_ptr<const LogEntry>> entries;
    // Row position in the shard's sub-index -> global ingestion seq.
    std::vector<std::uint64_t> global_seqs;
    // Router-side lower bound of each node's applied watermark (advanced
    // after applies complete; the node's own watermark is authoritative).
    std::vector<std::uint64_t> applied_hint;
  };

  struct IndexState {
    explicit IndexState(std::size_t shards) : shards(shards) {}
    std::uint64_t next_global_seq = 0;
    std::uint64_t bulk_requests = 0;
    std::uint64_t updates = 0;
    std::vector<ShardLog> shards;
  };

  // Owner acks needed for `owner_count` live owners at options().ack.
  [[nodiscard]] std::size_t RequiredAcks(std::size_t owner_count) const;

  // Applies log entries [node watermark, through_seq] of (index, shard) to
  // `node`, under its apply mutex. `snapshot` holds entry pointers for
  // [0, through_seq] (later positions may be absent). Returns the modified
  // count when the final applied entry is an update, else 0. `applied_out`
  // (optional) receives how many log entries were actually applied.
  Expected<std::size_t> ApplyTo(
      BackendNode& node, const std::string& index, std::size_t shard,
      const std::vector<std::shared_ptr<const LogEntry>>& snapshot,
      std::uint64_t through_seq, bool sync,
      std::size_t* applied_out = nullptr);

  // Picks the shard's reader for scatter/gather: the up+reachable owner
  // with the highest applied hint (ties: owner order). Returns nullptr if
  // none. Caller holds mu_.
  [[nodiscard]] const BackendNode* ReaderFor(const IndexState& ix,
                                             std::size_t shard) const;

  // Gathers all matching documents of `index` in global-seq order (the
  // scatter half of Search/Aggregate). Caller holds mu_.
  Expected<std::vector<std::pair<std::uint64_t, Json>>> GatherMatches(
      const IndexState& ix, const std::string& index,
      const backend::Query& query) const;

  const ClusterOptions options_;
  mutable std::mutex mu_;
  ShardMap map_;
  std::vector<std::unique_ptr<BackendNode>> nodes_;
  std::map<std::string, IndexState> indices_;
  // Content fingerprints of acked batches (duplicate-delivery detection).
  std::map<std::uint64_t, std::uint64_t> acked_fingerprints_;  // fp -> count

  std::uint64_t acked_batches_ = 0;
  std::uint64_t acked_events_ = 0;
  std::uint64_t duplicate_batches_ = 0;
  std::uint64_t rejected_batches_ = 0;
  std::uint64_t rejected_events_ = 0;
  std::uint64_t sync_applies_ = 0;
  std::uint64_t async_applies_ = 0;
};

}  // namespace dio::cluster
