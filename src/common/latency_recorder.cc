#include "common/latency_recorder.h"

namespace dio {

WindowedLatencyRecorder::WindowedLatencyRecorder(Clock* clock, Nanos window)
    : clock_(clock), window_(window <= 0 ? kSecond : window),
      origin_(clock_->NowNanos()) {}

void WindowedLatencyRecorder::Record(Nanos latency) {
  const Nanos now = clock_->NowNanos();
  const Nanos offset = now - origin_;
  const Nanos start = origin_ + (offset / window_) * window_;
  std::scoped_lock lock(mu_);
  if (slots_.empty() || slots_.back().start < start) {
    slots_.push_back(Slot{start, Histogram{}});
  }
  // Late arrivals (rare, bounded by thread scheduling) fold into the most
  // recent window.
  slots_.back().hist.Record(latency);
  total_.Record(latency);
}

std::vector<LatencyWindow> WindowedLatencyRecorder::Windows() const {
  std::scoped_lock lock(mu_);
  std::vector<LatencyWindow> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    LatencyWindow w;
    w.window_start = slot.start - origin_;
    w.count = slot.hist.count();
    w.p50 = slot.hist.p50();
    w.p99 = slot.hist.p99();
    w.max = slot.hist.max();
    w.throughput_ops_per_sec =
        static_cast<double>(slot.hist.count()) /
        (static_cast<double>(window_) / static_cast<double>(kSecond));
    out.push_back(w);
  }
  return out;
}

Histogram WindowedLatencyRecorder::Total() const {
  std::scoped_lock lock(mu_);
  return total_;
}

}  // namespace dio
