#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace dio::log {

namespace {
std::atomic<int> g_min_level{static_cast<int>(Level::kInfo)};
std::mutex g_write_mu;

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(g_min_level.load(std::memory_order_relaxed));
}

void Write(Level level, std::string_view message) {
  std::scoped_lock lock(g_write_mu);
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(LevelName(level).size()),
               LevelName(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace dio::log
