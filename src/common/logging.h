// Tiny leveled logger. Thread-safe, writes to stderr. Intended for tool
// diagnostics, not the event hot path (events go through the ring buffer).
#pragma once

#include <sstream>
#include <string_view>

namespace dio::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetMinLevel(Level level);
[[nodiscard]] Level MinLevel();

void Write(Level level, std::string_view message);

namespace internal {
inline void AppendAll(std::ostringstream&) {}
template <typename T, typename... Rest>
void AppendAll(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  AppendAll(os, rest...);
}
}  // namespace internal

template <typename... Args>
void Debug(const Args&... args) {
  if (MinLevel() > Level::kDebug) return;
  std::ostringstream os;
  internal::AppendAll(os, args...);
  Write(Level::kDebug, os.str());
}

template <typename... Args>
void Info(const Args&... args) {
  if (MinLevel() > Level::kInfo) return;
  std::ostringstream os;
  internal::AppendAll(os, args...);
  Write(Level::kInfo, os.str());
}

template <typename... Args>
void Warn(const Args&... args) {
  if (MinLevel() > Level::kWarn) return;
  std::ostringstream os;
  internal::AppendAll(os, args...);
  Write(Level::kWarn, os.str());
}

template <typename... Args>
void Error(const Args&... args) {
  std::ostringstream os;
  internal::AppendAll(os, args...);
  Write(Level::kError, os.str());
}

}  // namespace dio::log
