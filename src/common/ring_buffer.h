// MPSC byte ring buffer modelled after the BPF ring buffer (BPF_MAP_TYPE_RINGBUF):
//  - multiple producers reserve space with a CAS on the head cursor,
//  - each record carries a header with its length and a commit flag,
//  - a single consumer walks records in order and stops at the first
//    uncommitted record,
//  - when the buffer is full the record is DROPPED and a counter incremented —
//    this is the §III-D behaviour ("new I/O events ... are discarded").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dio {

class ByteRingBuffer {
 public:
  // `capacity_bytes` is rounded up to a power of two, minimum 64.
  explicit ByteRingBuffer(std::size_t capacity_bytes);

  ByteRingBuffer(const ByteRingBuffer&) = delete;
  ByteRingBuffer& operator=(const ByteRingBuffer&) = delete;

  // Producer side. Returns false (and counts a drop) if there is no room.
  // Thread-safe for concurrent producers.
  bool TryPush(std::span<const std::byte> record);

  // Consumer side. Single consumer only. Appends the record payload to `out`
  // and returns true, or returns false if no committed record is available.
  bool TryPop(std::vector<std::byte>& out);

  // Number of committed-but-unconsumed bytes (approximate under concurrency).
  [[nodiscard]] std::size_t ApproxBytesUsed() const;

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped_records() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pushed_records() const {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  struct RecordHeader {
    std::uint32_t length;     // payload bytes
    std::uint32_t committed;  // 0 while being written, 1 when readable
  };
  static constexpr std::size_t kHeaderSize = sizeof(RecordHeader);
  static constexpr std::size_t kAlign = 8;

  [[nodiscard]] std::size_t Index(std::uint64_t cursor) const {
    return static_cast<std::size_t>(cursor) & mask_;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<std::byte> data_;
  // head_: next byte to reserve (producers). tail_: next byte to read.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace dio
