// MPSC byte ring buffer modelled after the BPF ring buffer (BPF_MAP_TYPE_RINGBUF):
//  - multiple producers reserve space with a CAS on the head cursor,
//  - each record carries a header with its length and a commit flag,
//  - a single consumer walks records in order and stops at the first
//    uncommitted record,
//  - when the buffer is full the record is DROPPED and a counter incremented —
//    this is the §III-D behaviour ("new I/O events ... are discarded").
//
// Producers have two interfaces mirroring the BPF helper pairs:
//  - TryPush = bpf_ringbuf_output: copy a finished record in.
//  - Reserve/Commit/Discard = bpf_ringbuf_reserve/submit/discard: obtain a
//    writable, CONTIGUOUS span inside the ring, serialize directly into it,
//    then publish (or abandon) it — no intermediate buffer, one copy total.
// Contiguity across the wrap point is guaranteed the same way the kernel
// ringbuf does it (via its data-page double mapping): when a reservation
// would straddle the end of the ring, a pad record fills the rest of the lap
// and the real record starts at offset 0. Consumers skip pad and discarded
// records transparently.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace dio {

class ByteRingBuffer {
 public:
  // `capacity_bytes` is rounded up to a power of two, minimum 64.
  explicit ByteRingBuffer(std::size_t capacity_bytes);

  ByteRingBuffer(const ByteRingBuffer&) = delete;
  ByteRingBuffer& operator=(const ByteRingBuffer&) = delete;

  // A producer's claim on a contiguous writable region of the ring. Obtained
  // from Reserve(); MUST be resolved with exactly one Commit() or Discard()
  // call before the owning thread reserves again (the consumer stalls at the
  // first unresolved record, exactly like an un-submitted bpf_ringbuf
  // reservation). Default-constructed and post-resolve reservations are
  // !valid().
  class Reservation {
   public:
    Reservation() = default;
    [[nodiscard]] bool valid() const { return data_ != nullptr; }
    [[nodiscard]] std::byte* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::span<std::byte> span() const { return {data_, size_}; }

   private:
    friend class ByteRingBuffer;
    std::byte* data_ = nullptr;
    std::size_t size_ = 0;
    std::uint64_t cursor_ = 0;  // ring cursor of the record header
  };

  // Producer side, in-place. Claims `payload_bytes` of contiguous ring
  // memory (inserting a pad record first when the claim would wrap).
  // Returns an invalid reservation — and counts a drop — if there is no
  // room. Thread-safe for concurrent producers.
  Reservation Reserve(std::size_t payload_bytes);
  // Publishes a reservation to the consumer (bpf_ringbuf_submit).
  void Commit(Reservation& reservation);
  // Abandons a reservation mid-write (bpf_ringbuf_discard). The space is
  // reclaimed when the consumer walks past it; counted in
  // discarded_records(), not dropped_records().
  void Discard(Reservation& reservation);

  // Producer side, copying (bpf_ringbuf_output; implemented atop Reserve).
  // Returns false (and counts a drop) if there is no room. Thread-safe for
  // concurrent producers.
  bool TryPush(std::span<const std::byte> record);

  // Consumer side. Single consumer only. Appends the record payload to `out`
  // and returns true, or returns false if no committed record is available.
  // Legacy per-record interface; ConsumeBatch is the fast path.
  bool TryPop(std::vector<std::byte>& out);

  // Consumer side, zero-copy batch drain. Single consumer only. Walks up to
  // `max_records` committed records, handing each payload to `visit` as a
  // span — aliasing the ring storage directly for records that do not cross
  // the wrap point (the common case; wrapped payloads are assembled in a
  // reusable scratch buffer). The tail cursor is advanced ONCE after the
  // batch, so producers see freed space in one release-store instead of one
  // per record; the consumed region is zeroed first so stale payload bytes
  // can never masquerade as a commit flag on the next lap. The spans are
  // valid only during the `visit` call.
  template <typename Visitor>
  std::size_t ConsumeBatch(Visitor&& visit, std::size_t max_records) {
    const std::uint64_t tail0 = tail_.load(std::memory_order_relaxed);
    std::uint64_t tail = tail0;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::size_t consumed = 0;
    while (consumed < max_records && tail != head) {
      auto* hdr = reinterpret_cast<RecordHeader*>(&data_[Index(tail)]);
      const std::uint32_t committed =
          reinterpret_cast<std::atomic<std::uint32_t>*>(&hdr->committed)
              ->load(std::memory_order_acquire);
      if (committed == kFlagInFlight) break;  // producer still writing
      const std::size_t payload = hdr->length;
      if (committed == kFlagCommitted) {
        const std::size_t payload_start = Index(tail + kHeaderSize);
        const std::size_t first_chunk =
            std::min(payload, capacity_ - payload_start);
        if (first_chunk == payload) {
          visit(std::span<const std::byte>(&data_[payload_start], payload));
        } else {
          wrap_scratch_.resize(payload);
          std::memcpy(wrap_scratch_.data(), &data_[payload_start],
                      first_chunk);
          std::memcpy(wrap_scratch_.data() + first_chunk, &data_[0],
                      payload - first_chunk);
          visit(std::span<const std::byte>(wrap_scratch_));
        }
        ++consumed;
      }
      // kFlagPad / kFlagDiscarded: reclaim the space without visiting and
      // without counting toward max_records.
      tail += (kHeaderSize + payload + kAlign - 1) & ~(kAlign - 1);
    }
    if (tail != tail0) {
      // Zero the whole consumed region before releasing it. Record
      // boundaries shift between laps (sizes vary), so a future header can
      // land on bytes that used to be payload; any nonzero residue there
      // would read as a commit flag for a record whose producer has
      // reserved space (head_ already advanced) but not yet written the
      // header. Producers only reuse this region after acquiring the new
      // tail_, which orders these writes before theirs.
      const std::size_t begin = Index(tail0);
      const std::size_t len = static_cast<std::size_t>(tail - tail0);
      const std::size_t first = std::min(len, capacity_ - begin);
      std::memset(&data_[begin], 0, first);
      std::memset(&data_[0], 0, len - first);
      tail_.store(tail, std::memory_order_release);
    }
    return consumed;
  }

  // Number of committed-but-unconsumed bytes (approximate under concurrency).
  [[nodiscard]] std::size_t ApproxBytesUsed() const;

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped_records() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pushed_records() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t discarded_records() const {
    return discarded_.load(std::memory_order_relaxed);
  }

 private:
  // Test-only: lets the unit test stage a partially-committed record to
  // exercise the consumer's stop-at-uncommitted stall deterministically.
  friend class ByteRingBufferTestPeer;

  struct RecordHeader {
    std::uint32_t length;     // payload bytes
    std::uint32_t committed;  // kFlag* below; 0 while being written
  };
  static constexpr std::size_t kHeaderSize = sizeof(RecordHeader);
  static constexpr std::size_t kAlign = 8;
  // Record states (the ringbuf's BUSY/DISCARD header bits, as values). The
  // in-flight state is 0 because all ring memory a producer can claim is
  // pre-zeroed: the consumer zeroes everything it releases.
  static constexpr std::uint32_t kFlagInFlight = 0;
  static constexpr std::uint32_t kFlagCommitted = 1;
  static constexpr std::uint32_t kFlagDiscarded = 2;
  static constexpr std::uint32_t kFlagPad = 3;

  [[nodiscard]] std::size_t Index(std::uint64_t cursor) const {
    return static_cast<std::size_t>(cursor) & mask_;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::vector<std::byte> data_;
  // head_: next byte to reserve (producers). tail_: next byte to read.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> discarded_{0};
  // Assembly buffer for payloads crossing the wrap point. Touched only by
  // the (single) consumer, so it needs no lock.
  std::vector<std::byte> wrap_scratch_;
};

}  // namespace dio
