#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/string_util.h"

namespace dio {

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kBucketGroups) * kSubBuckets, 0) {}

std::size_t Histogram::BucketFor(std::int64_t value) {
  if (value < 0) value = 0;
  const auto uv = static_cast<std::uint64_t>(value);
  if (uv < kSubBuckets) return static_cast<std::size_t>(uv);
  const int msb = 63 - std::countl_zero(uv);
  const int group = msb - kSubBucketBits + 1;
  const auto sub =
      static_cast<std::size_t>((uv >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const std::size_t idx = static_cast<std::size_t>(group) * kSubBuckets + sub;
  return std::min(idx, static_cast<std::size_t>(kBucketGroups) * kSubBuckets - 1);
}

std::int64_t Histogram::BucketMidpoint(std::size_t bucket) {
  const std::size_t group = bucket / kSubBuckets;
  const std::size_t sub = bucket % kSubBuckets;
  if (group == 0) return static_cast<std::int64_t>(sub);
  const int shift = static_cast<int>(group) - 1;
  const std::uint64_t base = (static_cast<std::uint64_t>(kSubBuckets) + sub)
                             << shift;
  const std::uint64_t width = 1ULL << shift;
  return static_cast<std::int64_t>(base + width / 2);
}

void Histogram::Record(std::int64_t value) { RecordN(value, 1); }

void Histogram::RecordN(std::int64_t value, std::int64_t count) {
  if (count <= 0) return;
  buckets_[BucketFor(value)] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  for (std::int64_t i = 0; i < count; ++i) {
    ++count_;
    sum_ += value;
    const double delta = static_cast<double>(value) - mean_acc_;
    mean_acc_ += delta / static_cast<double>(count_);
    m2_acc_ += delta * (static_cast<double>(value) - mean_acc_);
  }
}

void Histogram::Merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Parallel-variance merge (Chan et al.).
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_acc_ - mean_acc_;
  const double n = n1 + n2;
  mean_acc_ += delta * n2 / n;
  m2_acc_ += other.m2_acc_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_acc_ / static_cast<double>(count_ - 1));
}

std::int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketMidpoint(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  mean_acc_ = 0.0;
  m2_acc_ = 0.0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::Summary() const {
  std::string out;
  out += "count=" + std::to_string(count_);
  out += " mean=" + FormatFixed(mean(), 1) + "ns";
  out += " p50=" + std::to_string(p50()) + "ns";
  out += " p99=" + std::to_string(p99()) + "ns";
  out += " max=" + std::to_string(max()) + "ns";
  return out;
}

}  // namespace dio
